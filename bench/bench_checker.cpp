// Checker throughput and memory: the streaming polynomial-time causal
// checker (docs/CHECKING.md) against the brute Definition-1 oracle, on
// synthetic causally-consistent histories from 10^3 to 10^6 ops. The brute
// arm re-walks the causality graph per read and is capped (--brute-cap,
// default 10^4 ops) — past that it is the reason the streaming checker
// exists. Each streaming row also reports the checker's own peak state
// estimate, which must stay a small fraction of the history: the GC'd write
// table + vector clocks are the whole point of the design.
//
// Every run must come back checker-clean (the generator is proven causal —
// see synthetic.hpp) and, where both arms run, the verdicts must agree; the
// binary exits non-zero otherwise, so CI's smoke invocation doubles as a
// correctness check. Emits a causalmem-metrics-v1 document (--json) whose
// committed snapshot is bench/BENCH_9.json.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/streaming_checker.hpp"
#include "causalmem/history/synthetic.hpp"
#include "causalmem/obs/json.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

std::uint64_t flag_or(int argc, char** argv, std::string_view flag,
                      std::uint64_t fallback) {
  const std::string v = parse_flag_value(argc, argv, flag);
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

std::uint64_t maxrss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

struct ArmResult {
  double ops_per_sec{0.0};
  std::chrono::microseconds elapsed{0};
  bool clean{true};
  std::uint64_t peak_bytes{0};       ///< streaming only
  std::uint64_t peak_live_writes{0};  ///< streaming only
  std::uint64_t tombstones{0};        ///< streaming only
};

ArmResult time_streaming(const History& h) {
  const auto start = std::chrono::steady_clock::now();
  const auto res = StreamingCausalChecker::check(h);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  ArmResult r;
  r.elapsed = elapsed;
  r.ops_per_sec = static_cast<double>(res.stats.ops_seen) /
                  (static_cast<double>(elapsed.count()) * 1e-6);
  r.clean = res.causal;
  r.peak_bytes = res.stats.peak_approx_bytes;
  r.peak_live_writes = res.stats.peak_live_writes;
  r.tombstones = res.stats.tombstones;
  return r;
}

ArmResult time_brute(const History& h, std::uint64_t ops) {
  const auto start = std::chrono::steady_clock::now();
  const CausalChecker checker(h);
  const auto violation = checker.check();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  ArmResult r;
  r.elapsed = elapsed;
  r.ops_per_sec = static_cast<double>(ops) /
                  (static_cast<double>(elapsed.count()) * 1e-6);
  r.clean = !violation.has_value();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t max_ops = flag_or(argc, argv, "--max-ops", 1'000'000);
  const std::uint64_t brute_cap = flag_or(argc, argv, "--brute-cap", 10'000);
  const std::uint64_t procs = flag_or(argc, argv, "--procs", 4);
  const std::uint64_t addrs = flag_or(argc, argv, "--addrs", 64);
  const std::string json_path = parse_json_path(argc, argv);

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t n = 1'000; n <= max_ops; n *= 10) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(max_ops);

  std::printf("checker bench: %llu procs, %llu addrs, sizes up to %llu ops "
              "(brute capped at %llu)\n\n",
              static_cast<unsigned long long>(procs),
              static_cast<unsigned long long>(addrs),
              static_cast<unsigned long long>(max_ops),
              static_cast<unsigned long long>(brute_cap));

  obs::MetricsExporter exporter("bench_checker");
  exporter.set_meta("workload", "synthetic_causal_lamport_lww");

  Table table({"checker", "ops", "ops/sec", "elapsed ms", "peak state KB",
               "live writes", "tombstones"});
  table.set_align(0, Table::Align::kLeft);

  bool failed = false;
  for (const std::uint64_t n : sizes) {
    SyntheticWorkload w;
    w.procs = procs;
    w.addrs = addrs;
    w.ops = n;
    w.deliver_ratio = 0.8;
    const History h = make_synthetic_causal_history(w, /*seed=*/41 + n);

    const ArmResult sr = time_streaming(h);
    table.add_row({"streaming", std::to_string(n), Table::num(sr.ops_per_sec, 0),
                   Table::num(static_cast<double>(sr.elapsed.count()) / 1e3, 1),
                   Table::num(static_cast<double>(sr.peak_bytes) / 1024.0, 1),
                   std::to_string(sr.peak_live_writes),
                   std::to_string(sr.tombstones)});
    obs::RunMetrics& srm = exporter.add_run("streaming_" + std::to_string(n));
    srm.set_param("ops", static_cast<double>(n));
    srm.set_param("procs", static_cast<double>(procs));
    srm.set_param("addrs", static_cast<double>(addrs));
    srm.set_value("ops_per_sec", sr.ops_per_sec);
    srm.set_value("elapsed_us", static_cast<double>(sr.elapsed.count()));
    srm.set_value("peak_state_bytes", static_cast<double>(sr.peak_bytes));
    srm.set_value("peak_live_writes",
                  static_cast<double>(sr.peak_live_writes));
    if (!sr.clean) {
      std::fprintf(stderr,
                   "FATAL: streaming checker flagged a synthetic history "
                   "(%llu ops) that is causal by construction\n",
                   static_cast<unsigned long long>(n));
      failed = true;
    }

    if (n <= brute_cap) {
      const ArmResult br = time_brute(h, n);
      table.add_row(
          {"brute", std::to_string(n), Table::num(br.ops_per_sec, 0),
           Table::num(static_cast<double>(br.elapsed.count()) / 1e3, 1), "-",
           "-", "-"});
      obs::RunMetrics& brm = exporter.add_run("brute_" + std::to_string(n));
      brm.set_param("ops", static_cast<double>(n));
      brm.set_value("ops_per_sec", br.ops_per_sec);
      brm.set_value("elapsed_us", static_cast<double>(br.elapsed.count()));
      if (br.clean != sr.clean) {
        std::fprintf(stderr,
                     "FATAL: brute and streaming verdicts disagree at %llu "
                     "ops\n",
                     static_cast<unsigned long long>(n));
        failed = true;
      }
    }
  }
  table.print(std::cout);
  exporter.set_meta("maxrss_kb", std::to_string(maxrss_kb()));
  std::printf("\nprocess peak RSS: %llu KB (includes the in-memory input "
              "histories; the checker's own state is the peak-state column)\n",
              static_cast<unsigned long long>(maxrss_kb()));

  // Self-validation, same contract as the other benches: the document must
  // parse and every run must carry a positive ops_per_sec.
  {
    std::string error;
    const auto doc = obs::parse_json(exporter.to_json(), &error);
    if (!doc) {
      std::fprintf(stderr, "FATAL: emitted metrics do not parse: %s\n",
                   error.c_str());
      return 1;
    }
    const obs::JsonValue* runs = doc->find("runs");
    if (runs == nullptr || !runs->is_array() || runs->array.empty()) {
      std::fprintf(stderr, "FATAL: metrics document missing runs\n");
      return 1;
    }
    for (const obs::JsonValue& run : runs->array) {
      const obs::JsonValue* values = run.find("values");
      const obs::JsonValue* ops =
          values != nullptr ? values->find("ops_per_sec") : nullptr;
      if (ops == nullptr || !ops->is_number() || !(ops->number > 0.0)) {
        std::fprintf(stderr, "FATAL: run missing positive ops_per_sec\n");
        return 1;
      }
    }
    std::printf("metrics self-check: OK (%zu runs)\n", runs->array.size());
  }

  maybe_write_metrics(exporter, json_path);
  return failed ? 1 : 0;
}

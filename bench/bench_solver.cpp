// E8 — the paper's motivating thesis: weakly consistent memory is "better
// suited to the high latencies encountered in distributed systems". We sweep
// injected per-message latency and compare wall-clock time of the identical
// Figure 6 solver on causal vs atomic DSM, plus the asynchronous variant on
// causal memory. Causal memory's advantage must grow with latency (it sends
// fewer messages, and none of its writes wait for system-wide invalidation).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

using namespace causalmem;
using namespace causalmem::bench;

int main(int argc, char** argv) {
  constexpr std::size_t kIterations = 10;
  const std::string n_flag = parse_flag_value(argc, argv, "--n");
  const std::size_t kN =
      n_flag.empty() ? 6 : std::strtoull(n_flag.c_str(), nullptr, 10);
  if (kN < 2) {
    std::fprintf(stderr, "--n must be >= 2\n");
    return 2;
  }
  const double drop_rate = parse_drop_rate(argc, argv);
  const std::string json_path = parse_json_path(argc, argv);
  const std::string trace_path = parse_flag_value(argc, argv, "--trace");
  const std::string crash_at_flag = parse_flag_value(argc, argv, "--crash-at");
  const std::string restart_at_flag =
      parse_flag_value(argc, argv, "--restart-at");
  const SolverProblem problem = SolverProblem::random(kN, 77);

  std::printf("E8: solver wall-clock vs injected message latency (n=%zu, %zu "
              "iterations, drop rate %.2f)\n\n",
              kN, kIterations, drop_rate);

  obs::MetricsExporter exporter("bench_solver");
  exporter.set_meta("experiment", "E8");
  exporter.set_meta("workload", "fig6_sync_solver");

  Table table({"latency (us)", "causal (ms)", "atomic (ms)",
               "async causal (ms)", "atomic/causal", "retransmits"});
  for (const std::uint64_t lat : {0ull, 50ull, 200ull, 500ull}) {
    SystemOptions opts;
    opts.latency = latency_us(lat);
    opts = with_drop_rate(opts, drop_rate);
    const auto causal =
        run_solver<CausalNode>(problem, kIterations, false, {}, opts);
    const auto atomic =
        run_solver<AtomicNode>(problem, kIterations, false, {}, opts);
    const auto async =
        run_solver<CausalNode>(problem, kIterations, true, {}, opts);
    const double causal_ms = static_cast<double>(causal.elapsed.count()) / 1e3;
    const double atomic_ms = static_cast<double>(atomic.elapsed.count()) / 1e3;
    const double async_ms = static_cast<double>(async.elapsed.count()) / 1e3;
    const std::uint64_t retransmits = causal.stats[Counter::kNetRetransmit] +
                                      atomic.stats[Counter::kNetRetransmit] +
                                      async.stats[Counter::kNetRetransmit];
    table.add_row({std::to_string(lat), Table::num(causal_ms, 1),
                   Table::num(atomic_ms, 1), Table::num(async_ms, 1),
                   Table::num(atomic_ms / causal_ms, 2),
                   std::to_string(retransmits)});

    const auto export_run = [&](const char* label,
                                const SolverRunResult& result) {
      obs::RunMetrics& rm = exporter.add_run(std::string(label) + " lat=" +
                                             std::to_string(lat) + "us");
      const std::string name = rm.label;
      rm = result.metrics;
      rm.label = name;
      rm.set_param("n", static_cast<double>(kN));
      rm.set_param("iterations", static_cast<double>(kIterations));
      rm.set_param("latency_us", static_cast<double>(lat));
      rm.set_param("drop_rate", drop_rate);
      rm.set_value("elapsed_ms",
                   static_cast<double>(result.elapsed.count()) / 1e3);
    };
    export_run("causal", causal);
    export_run("atomic", atomic);
    export_run("async causal", async);
  }
  table.print(std::cout);

  if (!trace_path.empty()) {
    // A dedicated traced run (tracing perturbs nothing when off; keeping the
    // timed sweep above untraced keeps its numbers honest). The exported
    // Chrome-trace JSON loads directly in ui.perfetto.dev.
    const auto traced = run_solver<CausalNode>(
        problem, kIterations, false, {}, with_drop_rate({}, drop_rate), true,
        trace_path);
    std::printf("\ntrace of a causal solver run (%llu events, %llu dropped) "
                "written to %s\n",
                static_cast<unsigned long long>(traced.metrics.trace_retained),
                static_cast<unsigned long long>(traced.metrics.trace_dropped),
                trace_path.c_str());
    obs::RunMetrics& rm = exporter.add_run("traced causal");
    const std::string name = rm.label;
    rm = traced.metrics;
    rm.label = name;
    rm.set_param("n", static_cast<double>(kN));
    rm.set_param("iterations", static_cast<double>(kIterations));
  }

  std::printf("\nExpected shape: causal wins clearly where message handling\n"
              "dominates (low latency); at high latency the phase-structured\n"
              "solver's critical path (sequential x-reads) is shared by both\n"
              "memories, and the asynchronous variant is the real winner.\n"
              "With --drop-rate=X both memories pay the same reliable-channel\n"
              "recovery cost (retransmits column, summed over the three runs;\n"
              "0 at drop rate 0).\n");

  // Companion table: coordinator (Fig. 6) vs coordinator-free barrier
  // solver on causal memory — same bit-exact iterates, different sync
  // topology.
  std::printf("\nCoordinator vs decentralized barrier solver (causal memory, "
              "n=%zu, %zu iterations):\n\n",
              kN, kIterations);
  {
    Table t2({"variant", "time (ms)", "messages", "spin refetches"});
    {
      const auto coord = run_solver<CausalNode>(problem, kIterations);
      t2.add_row({"Fig. 6 coordinator",
                  Table::num(static_cast<double>(coord.elapsed.count()) / 1e3, 1),
                  std::to_string(coord.stats.messages_sent()),
                  std::to_string(coord.stats[Counter::kSpinRefetch])});
    }
    {
      const DecentralizedSolverLayout layout(problem.n, problem.n);
      DsmSystem<CausalNode> sys(layout.node_count(), {}, {},
                                layout.make_ownership());
      std::vector<SharedMemory*> mems;
      for (NodeId i = 0; i < layout.node_count(); ++i) {
        mems.push_back(&sys.memory(i));
      }
      SolverOptions opts;
      opts.iterations = kIterations;
      const auto start = std::chrono::steady_clock::now();
      (void)run_decentralized_solver(problem, layout, mems, opts);
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start);
      const StatsSnapshot s = sys.stats().total();
      t2.add_row({"all-to-all barrier",
                  Table::num(static_cast<double>(elapsed.count()) / 1e3, 1),
                  std::to_string(s.messages_sent()),
                  std::to_string(s[Counter::kSpinRefetch])});
    }
    t2.print(std::cout);
    std::printf("\nThe barrier version removes the central process but every\n"
                "worker polls every other worker's arrival counter: message\n"
                "totals trade a coordinator bottleneck for O(n^2) polling.\n");
  }

  // Chaos axis (--crash-at <iter> [--restart-at <iter>]): a dedicated
  // storage node owns A and b; it is crashed at the start of the given
  // phase (and optionally restarted later). The run exercises request
  // deadlines, owner failover and — with --restart-at — node rejoin, and
  // must still converge bit-exactly to the sequential reference.
  if (!crash_at_flag.empty()) {
    const std::size_t crash_at = std::strtoull(crash_at_flag.c_str(), nullptr, 10);
    const std::size_t restart_at =
        restart_at_flag.empty()
            ? kIterations + 1
            : std::strtoull(restart_at_flag.c_str(), nullptr, 10);
    std::printf("\nChaos run: crash storage owner at phase %zu%s "
                "(n=%zu, %zu iterations)\n\n",
                crash_at,
                restart_at <= kIterations ? ", restart later" : "",
                kN, kIterations);
    const SolverLayout layout(problem.n);
    const NodeId storage = static_cast<NodeId>(layout.node_count());
    SystemOptions fo_opts;
    fo_opts.fault_layer = true;
    fo_opts.failover.enabled = true;
    fo_opts.reliable = true;
    fo_opts.reliable_config.initial_rto = std::chrono::milliseconds(2);
    fo_opts.reliable_config.max_retransmits = 5;
    CausalConfig cfg;
    cfg.request_timeout = std::chrono::milliseconds(20);
    cfg.request_retries = 2;
    SolverRun run;
    StatsSnapshot stats{};
    obs::RunMetrics metrics;
    bool restarted = false;
    const auto start = std::chrono::steady_clock::now();
    {
      DsmSystem<CausalNode> sys(layout.node_count() + 1, cfg, fo_opts,
                                layout.make_ownership_constants_at(storage));
      std::vector<SharedMemory*> mems;
      for (NodeId i = 0; i < layout.node_count(); ++i) {
        mems.push_back(&sys.memory(i));
      }
      SolverOptions opts;
      opts.iterations = kIterations;
      opts.protect_constants = false;  // cached constants must re-fetch
      opts.on_phase = [&](std::size_t k) {
        if (k == crash_at) sys.faulty_transport()->crash_node(storage);
        if (k == restart_at) restarted = sys.restart_node(storage);
      };
      run = run_sync_solver(problem, layout, mems, opts);
      stats = sys.stats().total();
      metrics.capture(sys.stats());
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    const auto ref = problem.jacobi_reference(kIterations);
    bool bit_exact = run.x.size() == ref.size();
    for (std::size_t i = 0; bit_exact && i < ref.size(); ++i) {
      bit_exact = run.x[i] == ref[i];
    }
    Table t3({"crash at", "restart at", "time (ms)", "bit-exact", "suspects",
              "failovers", "recover reqs", "req timeouts"});
    t3.add_row({std::to_string(crash_at),
                restart_at <= kIterations
                    ? std::to_string(restart_at) + (restarted ? "" : " (!)")
                    : "-",
                Table::num(static_cast<double>(elapsed.count()) / 1e3, 1),
                bit_exact ? "yes" : "NO",
                std::to_string(stats[Counter::kFoSuspect]),
                std::to_string(stats[Counter::kFoFailover]),
                std::to_string(stats[Counter::kFoRecoverRequest]),
                std::to_string(stats[Counter::kFoRequestTimeout])});
    t3.print(std::cout);
    std::printf("\nDeadlined requests suspect the dead owner, its locations\n"
                "migrate to the ring successor (election over live journals),\n"
                "and the run completes without manual intervention.\n");
    obs::RunMetrics& rm = exporter.add_run("failover chaos");
    const std::string name = rm.label;
    rm = metrics;
    rm.label = name;
    rm.set_param("n", static_cast<double>(kN));
    rm.set_param("iterations", static_cast<double>(kIterations));
    rm.set_param("crash_at", static_cast<double>(crash_at));
    if (restart_at <= kIterations) {
      rm.set_param("restart_at", static_cast<double>(restart_at));
      rm.set_value("restarted", restarted ? 1.0 : 0.0);
    }
    rm.set_value("elapsed_ms", static_cast<double>(elapsed.count()) / 1e3);
    rm.set_value("bit_exact", bit_exact ? 1.0 : 0.0);
  }
  maybe_write_metrics(exporter, json_path);
  return 0;
}

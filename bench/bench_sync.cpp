// E17 (extension) — costs of the causal synchronization variables
// (apps/sync): event-count handoff latency and all-to-all barrier cost vs
// party count, on causal and atomic memory. The causal barrier's polling is
// the paper's discard-based liveness at work; atomic memory's push
// invalidation polls for free but pays invalidation rounds on every arrival
// counter update.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "causalmem/apps/sync/sync.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

template <typename NodeT>
double barrier_us_per_phase(std::size_t parties, int phases) {
  DsmSystem<NodeT> sys(parties);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < parties; ++p) {
      threads.emplace_back([&sys, parties, p, phases] {
        CausalBarrier b(sys.memory(static_cast<NodeId>(p)), 0, parties, p);
        for (int k = 0; k < phases; ++k) (void)b.arrive_and_wait();
      });
    }
  }
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return static_cast<double>(us) / phases;
}

template <typename NodeT>
double eventcount_handoff_us(int rounds) {
  DsmSystem<NodeT> sys(2);
  // Two event counts, one owned by each side; ping-pong.
  const auto start = std::chrono::steady_clock::now();
  std::jthread peer([&] {
    EventCount mine(sys.memory(1), 1);
    EventCount theirs(sys.memory(1), 0);
    for (int r = 1; r <= rounds; ++r) {
      theirs.await(r);
      (void)mine.advance();
    }
  });
  EventCount mine(sys.memory(0), 0);
  EventCount theirs(sys.memory(0), 1);
  for (int r = 1; r <= rounds; ++r) {
    (void)mine.advance();
    theirs.await(r);
  }
  peer.join();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return static_cast<double>(us) / (2.0 * rounds);
}

}  // namespace

int main() {
  std::printf("E17: synchronization-variable costs (extension)\n\n");
  std::printf("Event-count handoff (one causal signal edge, 500 rounds):\n");
  std::printf("  causal memory: %.1f us/handoff\n",
              eventcount_handoff_us<CausalNode>(500));
  std::printf("  atomic memory: %.1f us/handoff\n\n",
              eventcount_handoff_us<AtomicNode>(500));

  Table table({"parties", "causal barrier (us/phase)",
               "atomic barrier (us/phase)"});
  for (const std::size_t parties : {2u, 4u, 8u}) {
    table.add_row({std::to_string(parties),
                   Table::num(barrier_us_per_phase<CausalNode>(parties, 40), 0),
                   Table::num(barrier_us_per_phase<AtomicNode>(parties, 40), 0)});
  }
  table.print(std::cout);
  std::printf("\nBoth memories support the same barrier code (the paper's\n"
              "programmability claim); cost grows with the all-to-all fan-in.\n");
  return 0;
}

// E14 — protocol primitive micro-benchmarks (google-benchmark): the cost of
// each Figure 4 operation class on the in-memory transport, plus remote
// reads over real TCP loopback.
#include <benchmark/benchmark.h>

#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

namespace {

using namespace causalmem;

void BM_CausalReadHitOwned(benchmark::State& state) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(0).write(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.memory(0).read(0));
  }
}
BENCHMARK(BM_CausalReadHitOwned);

void BM_CausalReadHitCached(benchmark::State& state) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(1).write(1, 1);
  (void)sys.memory(0).read(1);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.memory(0).read(1));
  }
}
BENCHMARK(BM_CausalReadHitCached);

void BM_CausalReadMiss(benchmark::State& state) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(1).write(1, 1);
  for (auto _ : state) {
    (void)sys.memory(0).discard(1);
    benchmark::DoNotOptimize(sys.memory(0).read(1));
  }
}
BENCHMARK(BM_CausalReadMiss);

void BM_CausalWriteLocal(benchmark::State& state) {
  DsmSystem<CausalNode> sys(2);
  Value v = 0;
  for (auto _ : state) {
    sys.memory(0).write(0, ++v);
  }
}
BENCHMARK(BM_CausalWriteLocal);

void BM_CausalWriteRemoteBlocking(benchmark::State& state) {
  DsmSystem<CausalNode> sys(2);
  Value v = 0;
  for (auto _ : state) {
    sys.memory(0).write(1, ++v);
  }
}
BENCHMARK(BM_CausalWriteRemoteBlocking);

void BM_CausalWriteRemoteAsync(benchmark::State& state) {
  CausalConfig cfg;
  cfg.write_mode = WriteMode::kAsync;
  DsmSystem<CausalNode> sys(2, cfg);
  Value v = 0;
  for (auto _ : state) {
    sys.memory(0).write(1, ++v);
  }
  sys.memory(0).flush();
}
BENCHMARK(BM_CausalWriteRemoteAsync);

void BM_AtomicWriteOwnedNoCopies(benchmark::State& state) {
  DsmSystem<AtomicNode> sys(2);
  Value v = 0;
  for (auto _ : state) {
    sys.memory(0).write(0, ++v);
  }
}
BENCHMARK(BM_AtomicWriteOwnedNoCopies);

void BM_AtomicWriteOwnedOneCopy(benchmark::State& state) {
  // Every write must invalidate the other node's cached copy, which the
  // other node immediately refetches: the strong-consistency treadmill.
  DsmSystem<AtomicNode> sys(2);
  sys.memory(0).write(0, 1);
  Value v = 1;
  for (auto _ : state) {
    (void)sys.memory(1).read(0);  // re-join the copyset
    sys.memory(0).write(0, ++v);
  }
}
BENCHMARK(BM_AtomicWriteOwnedOneCopy);

void BM_CausalReadMissTcp(benchmark::State& state) {
  SystemOptions opts;
  opts.use_tcp = true;
  DsmSystem<CausalNode> sys(2, {}, opts);
  sys.memory(1).write(1, 1);
  for (auto _ : state) {
    (void)sys.memory(0).discard(1);
    benchmark::DoNotOptimize(sys.memory(0).read(1));
  }
}
BENCHMARK(BM_CausalReadMissTcp);

void BM_CausalWriteRemoteTcp(benchmark::State& state) {
  SystemOptions opts;
  opts.use_tcp = true;
  DsmSystem<CausalNode> sys(2, {}, opts);
  Value v = 0;
  for (auto _ : state) {
    sys.memory(0).write(1, ++v);
  }
}
BENCHMARK(BM_CausalWriteRemoteTcp);

}  // namespace

BENCHMARK_MAIN();

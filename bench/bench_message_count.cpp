// E1 — the paper's headline quantitative claim (Section 4.1):
//
//   "each phase of the synchronous linear solver requires at least 3n+5
//    messages per processor when executed on atomic memory compared to
//    2n+6 when executed on causal memory."
//
// We run the *same* Figure 6 solver binary on both memories across n and
// report measured messages per worker per iteration:
//   - "effective": total sends minus busy-wait re-fetch pairs (the paper's
//     count assumes one fetch per flag transition);
//   - "no-acks": additionally excluding INV_ACKs, matching the paper's
//     convention of counting n-1 invalidation messages (not 2(n-1)).
//
// Expected shape: causal ~ 2n+6; atomic >= 3n+5; the gap grows ~ n.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

using namespace causalmem;
using namespace causalmem::bench;

int main() {
  constexpr std::size_t kIterations = 20;
  std::printf(
      "E1: messages per worker per solver iteration (Fig. 6 solver, %zu "
      "iterations)\n\n",
      kIterations);

  Table table({"n", "causal measured", "paper 2n+6", "atomic measured",
               "atomic no-acks", "paper 3n+5", "atomic/causal"});

  for (const std::size_t n : {2u, 4u, 8u, 12u, 16u, 24u}) {
    const SolverProblem problem = SolverProblem::random(n, 1234 + n);

    const auto causal = run_solver<CausalNode>(problem, kIterations);
    const auto atomic = run_solver<AtomicNode>(problem, kIterations);

    const double causal_per = causal.effective_per_worker_iter(n);
    const double atomic_per = atomic.effective_per_worker_iter(n);
    const double atomic_noack_per =
        (atomic.effective_messages() -
         static_cast<double>(atomic.stats[Counter::kMsgInvalidateAck])) /
        static_cast<double>(n * kIterations);

    table.add_row({std::to_string(n), Table::num(causal_per, 1),
                   std::to_string(2 * n + 6), Table::num(atomic_per, 1),
                   Table::num(atomic_noack_per, 1), std::to_string(3 * n + 5),
                   Table::num(atomic_per / causal_per, 2)});
  }
  table.print(std::cout);

  std::printf(
      "\nReading the table: measured counts sit slightly above the paper's\n"
      "closed forms because they amortize one-time costs (fetching A and b,\n"
      "collecting the result) and include flag-write invalidation traffic\n"
      "the paper's count omits; the *shape* — causal ~2n, atomic ~3n, gap\n"
      "growing linearly, causal always cheaper — is the reproduced result.\n");
  return 0;
}

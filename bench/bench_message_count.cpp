// E1 — the paper's headline quantitative claim (Section 4.1):
//
//   "each phase of the synchronous linear solver requires at least 3n+5
//    messages per processor when executed on atomic memory compared to
//    2n+6 when executed on causal memory."
//
// We run the *same* Figure 6 solver binary on both memories across n and
// report measured messages per worker per iteration:
//   - "effective": total sends minus busy-wait re-fetch pairs (the paper's
//     count assumes one fetch per flag transition);
//   - "no-acks": additionally excluding INV_ACKs, matching the paper's
//     convention of counting n-1 invalidation messages (not 2(n-1)).
//
// Expected shape: causal ~ 2n+6; atomic >= 3n+5; the gap grows ~ n.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

using namespace causalmem;
using namespace causalmem::bench;

int main(int argc, char** argv) {
  constexpr std::size_t kIterations = 20;
  const double drop_rate = parse_drop_rate(argc, argv);
  const std::string json_path = parse_json_path(argc, argv);
  std::printf(
      "E1: messages per worker per solver iteration (Fig. 6 solver, %zu "
      "iterations, drop rate %.2f)\n\n",
      kIterations, drop_rate);
  const SystemOptions options = with_drop_rate({}, drop_rate);

  obs::MetricsExporter exporter("bench_message_count");
  exporter.set_meta("experiment", "E1");
  exporter.set_meta("workload", "fig6_sync_solver");

  // The recovery columns (retransmits, receive-side duplicate drops, summed
  // over both runs) come from the net.* counters, which are *excluded* from
  // the protocol message accounting: the 2n+6-vs-3n+5 comparison measures
  // the protocols, not the channel quality. At drop rate 0 they must be 0.
  Table table({"n", "causal measured", "paper 2n+6", "atomic measured",
               "atomic no-acks", "paper 3n+5", "atomic/causal", "retransmits",
               "dup drops"});

  for (const std::size_t n : {2u, 4u, 8u, 12u, 16u, 24u}) {
    const SolverProblem problem = SolverProblem::random(n, 1234 + n);

    const auto causal =
        run_solver<CausalNode>(problem, kIterations, false, {}, options);
    const auto atomic =
        run_solver<AtomicNode>(problem, kIterations, false, {}, options);

    const double causal_per = causal.effective_per_worker_iter(n);
    const double atomic_per = atomic.effective_per_worker_iter(n);
    const double atomic_noack_per =
        (atomic.effective_messages() -
         static_cast<double>(atomic.stats[Counter::kMsgInvalidateAck])) /
        static_cast<double>(n * kIterations);
    const std::uint64_t retransmits = causal.stats[Counter::kNetRetransmit] +
                                      atomic.stats[Counter::kNetRetransmit];
    const std::uint64_t dup_drops = causal.stats[Counter::kNetDupDropped] +
                                    atomic.stats[Counter::kNetDupDropped];

    table.add_row({std::to_string(n), Table::num(causal_per, 1),
                   std::to_string(2 * n + 6), Table::num(atomic_per, 1),
                   Table::num(atomic_noack_per, 1), std::to_string(3 * n + 5),
                   Table::num(atomic_per / causal_per, 2),
                   std::to_string(retransmits), std::to_string(dup_drops)});

    const auto export_run = [&](const char* memory,
                                const SolverRunResult& result,
                                double per_worker_iter, double paper) {
      obs::RunMetrics& rm =
          exporter.add_run(std::string(memory) + " n=" + std::to_string(n));
      rm = result.metrics;
      rm.label = std::string(memory) + " n=" + std::to_string(n);
      rm.set_param("n", static_cast<double>(n));
      rm.set_param("iterations", static_cast<double>(kIterations));
      rm.set_param("drop_rate", drop_rate);
      rm.set_value("msgs_per_worker_iter", per_worker_iter);
      rm.set_value("paper_msgs_per_worker_iter", paper);
      rm.set_value("elapsed_us", static_cast<double>(result.elapsed.count()));
    };
    export_run("causal", causal, causal_per, static_cast<double>(2 * n + 6));
    export_run("atomic", atomic, atomic_per, static_cast<double>(3 * n + 5));
  }
  table.print(std::cout);
  maybe_write_metrics(exporter, json_path);

  std::printf(
      "\nReading the table: measured counts sit slightly above the paper's\n"
      "closed forms because they amortize one-time costs (fetching A and b,\n"
      "collecting the result) and include flag-write invalidation traffic\n"
      "the paper's count omits; the *shape* — causal ~2n, atomic ~3n, gap\n"
      "growing linearly, causal always cheaper — is the reproduced result.\n"
      "With --drop-rate=X the solver runs over lossy channels repaired by\n"
      "the reliable-delivery layer; the per-iteration message counts barely\n"
      "move because recovery traffic is accounted separately (last two\n"
      "columns).\n");
  return 0;
}

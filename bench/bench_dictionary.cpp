// E13 — throughput of the Section 4.2 distributed dictionary: causal memory
// (owner-wins conflict policy, rows shared at page granularity — the
// Section 3.2 enhancement, one row = one page) vs the atomic baseline,
// sweeping process count and injected message latency.
//
// The paper's claim is about synchronization, not raw hit rate: on causal
// memory an insert or an owner-favored delete is a purely local write, while
// every atomic-memory insert pays an invalidation round over the copyset of
// readers that ever scanned the row. Injected latency makes that round
// expensive; at zero latency atomic's push-invalidation keeps caches
// fresher and can win on messages.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "causalmem/apps/dict/dictionary.hpp"
#include "causalmem/common/rng.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

constexpr std::size_t kSlots = 32;
constexpr int kOpsPerProc = 300;

struct DictResult {
  double ops_per_ms{0};
  std::uint64_t messages{0};
  obs::RunMetrics metrics;
};

template <typename NodeT>
DictResult run_dict(std::size_t procs, std::uint64_t latency,
                    typename NodeT::Config cfg = {}) {
  SystemOptions opts;
  opts.latency = latency_us(latency);
  DsmSystem<NodeT> sys(procs, cfg, opts,
                       Dictionary::make_ownership(procs, kSlots));
  std::vector<std::unique_ptr<Dictionary>> dicts;
  for (NodeId i = 0; i < procs; ++i) {
    dicts.push_back(
        std::make_unique<Dictionary>(sys.memory(i), procs, kSlots));
  }
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < procs; ++p) {
      threads.emplace_back([&dicts, p, procs] {
        Rng rng(321 + p);
        Dictionary& d = *dicts[p];
        std::vector<Value> mine;
        for (int i = 0; i < kOpsPerProc; ++i) {
          const double roll = rng.next_double();
          if (roll < 0.3) {
            const Value v = static_cast<Value>((p + 1) * 1000000 + i);
            if (d.insert(v)) mine.push_back(v);
          } else if (roll < 0.45 && !mine.empty()) {
            (void)d.remove(mine.back());
            mine.pop_back();
          } else {
            if (roll < 0.70) {
              // A "fresh" lookup: discard cached rows first so the scan
              // re-reads the owners (the paper's liveness use of discard —
              // without it a causal replica may serve stale views forever,
              // which would make this comparison a sham).
              d.refresh();
            }
            (void)d.lookup(static_cast<Value>(
                (rng.next_below(procs) + 1) * 1000000 +
                rng.next_below(kSlots)));
          }
        }
      });
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  DictResult r;
  r.ops_per_ms = static_cast<double>(procs * kOpsPerProc) /
                 std::max(0.001, static_cast<double>(elapsed.count()) / 1e3);
  r.messages = sys.stats().total().messages_sent();
  r.metrics.capture(sys.stats());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = parse_json_path(argc, argv);
  std::printf("E13: dictionary throughput, causal (owner-wins, row=page) vs "
              "atomic (%d ops/process, 30%% insert / 15%% delete / 25%% "
              "fresh lookup / 30%% cached lookup, %zu slots/row)\n\n",
              kOpsPerProc, kSlots);
  obs::MetricsExporter exporter("bench_dictionary");
  exporter.set_meta("experiment", "E13");
  exporter.set_meta("workload", "dictionary");
  Table table({"procs", "latency us", "causal ops/ms", "causal msgs",
               "atomic ops/ms", "atomic msgs", "causal/atomic"});
  for (const std::size_t procs : {2u, 4u, 8u}) {
    for (const std::uint64_t lat : {0ull, 200ull}) {
      CausalConfig ccfg;
      ccfg.conflict = ConflictPolicy::kOwnerWins;
      ccfg.page_size = kSlots;  // one dictionary row = one sharing unit
      const DictResult c = run_dict<CausalNode>(procs, lat, ccfg);
      const DictResult a = run_dict<AtomicNode>(procs, lat);
      table.add_row({std::to_string(procs), std::to_string(lat),
                     Table::num(c.ops_per_ms, 1), std::to_string(c.messages),
                     Table::num(a.ops_per_ms, 1), std::to_string(a.messages),
                     Table::num(c.ops_per_ms / a.ops_per_ms, 2) + "x"});
      const auto export_run = [&](const char* memory, const DictResult& r) {
        obs::RunMetrics& rm = exporter.add_run(
            std::string(memory) + " procs=" + std::to_string(procs) +
            " lat=" + std::to_string(lat) + "us");
        const std::string name = rm.label;
        rm = r.metrics;
        rm.label = name;
        rm.set_param("procs", static_cast<double>(procs));
        rm.set_param("latency_us", static_cast<double>(lat));
        rm.set_param("ops_per_proc", static_cast<double>(kOpsPerProc));
        rm.set_value("ops_per_ms", r.ops_per_ms);
        rm.set_value("messages", static_cast<double>(r.messages));
      };
      export_run("causal", c);
      export_run("atomic", a);
    }
  }
  table.print(std::cout);
  maybe_write_metrics(exporter, json_path);
  std::printf(
      "\nExpected: causal memory sends fewer messages throughout (inserts\n"
      "and owner-favored deletes never trigger invalidation rounds) and\n"
      "wins on throughput at small scale and under latency. With many\n"
      "processes and a high fresh-lookup rate, the causal reader's\n"
      "sequential row re-fetches approach atomic's costs — freshness is\n"
      "exactly what causal memory lets applications *choose* to pay for.\n");
  return 0;
}

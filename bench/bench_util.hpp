// Shared helpers for the benchmark harness: run the paper's workloads on a
// chosen memory implementation and collect wall-clock plus the categorized
// message counters that experiments E1/E8–E13 report.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "causalmem/apps/solver/solver.hpp"
#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/stats/table.hpp"

namespace causalmem::bench {

struct SolverRunResult {
  SolverRun run;
  StatsSnapshot stats;
  std::chrono::microseconds elapsed{0};

  /// The paper counts protocol messages; busy-wait re-fetches (a READ +
  /// R_REPLY pair per failed poll) are accounted separately and subtracted.
  [[nodiscard]] double effective_messages() const {
    return static_cast<double>(stats.messages_sent()) -
           2.0 * static_cast<double>(stats[Counter::kSpinRefetch]);
  }

  [[nodiscard]] double effective_per_worker_iter(std::size_t workers) const {
    return effective_messages() /
           static_cast<double>(workers * std::max<std::size_t>(run.iterations, 1));
  }
};

template <typename NodeT>
SolverRunResult run_solver(const SolverProblem& problem, std::size_t iterations,
                           bool async = false,
                           typename NodeT::Config config = {},
                           SystemOptions options = {},
                           bool protect_constants = true) {
  const SolverLayout layout(problem.n);
  DsmSystem<NodeT> sys(layout.node_count(), config, options,
                       layout.make_ownership());
  std::vector<SharedMemory*> mems;
  mems.reserve(layout.node_count());
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  opts.protect_constants = protect_constants;
  if (async) {
    opts.iterations = 500000;
    opts.tolerance = 1e-8;
  } else {
    opts.iterations = iterations;
  }
  const auto start = std::chrono::steady_clock::now();
  SolverRunResult result;
  result.run = async ? run_async_solver(problem, layout, mems, opts)
                     : run_sync_solver(problem, layout, mems, opts);
  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  result.stats = sys.stats().total();
  return result;
}

inline LatencyModel latency_us(std::uint64_t micros) {
  LatencyModel m;
  m.base = std::chrono::microseconds(micros);
  return m;
}

/// Parses `--drop-rate=X` (X in [0, 1]) from argv; 0 when absent, so the
/// default benchmark run stays on the fault-free fast path.
inline double parse_drop_rate(int argc, char** argv) {
  constexpr std::string_view kFlag = "--drop-rate=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, kFlag.size()) == kFlag) {
      const double rate = std::strtod(arg.data() + kFlag.size(), nullptr);
      if (rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "drop rate must be in [0, 1], got %s\n",
                     arg.data() + kFlag.size());
        std::exit(1);
      }
      return rate;
    }
  }
  return 0.0;
}

/// Applies the --drop-rate axis: a positive rate wraps the transport in
/// FaultyTransport(drop_rate) + ReliableChannel, so the measured workload
/// pays real recovery cost (visible in the net.* counters); rate 0 leaves
/// the options untouched — no extra layers, counters stay zero.
inline SystemOptions with_drop_rate(SystemOptions options, double drop_rate) {
  if (drop_rate > 0.0) {
    options.faults.drop_rate = drop_rate;
    options.reliable = true;
  }
  return options;
}

}  // namespace causalmem::bench

// Shared helpers for the benchmark harness: run the paper's workloads on a
// chosen memory implementation and collect wall-clock plus the categorized
// message counters that experiments E1/E8–E13 report.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "causalmem/apps/solver/solver.hpp"
#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/obs/metrics_export.hpp"
#include "causalmem/stats/table.hpp"

namespace causalmem::bench {

struct SolverRunResult {
  SolverRun run;
  StatsSnapshot stats;
  /// Full per-node counters + merged latency histograms (+ trace summary
  /// when tracing was on), captured before the system was torn down. Benches
  /// copy this into a MetricsExporter run for --json output.
  obs::RunMetrics metrics;
  std::chrono::microseconds elapsed{0};

  /// The paper counts protocol messages; busy-wait re-fetches (a READ +
  /// R_REPLY pair per failed poll) are accounted separately and subtracted.
  [[nodiscard]] double effective_messages() const {
    return static_cast<double>(stats.messages_sent()) -
           2.0 * static_cast<double>(stats[Counter::kSpinRefetch]);
  }

  [[nodiscard]] double effective_per_worker_iter(std::size_t workers) const {
    return effective_messages() /
           static_cast<double>(workers * std::max<std::size_t>(run.iterations, 1));
  }
};

/// Runs the Fig. 6 solver on a fresh DsmSystem<NodeT>. When `trace_path` is
/// non-empty, tracing is enabled for the run and the Chrome-trace JSON
/// (Perfetto-loadable) is written there after the system quiesces.
template <typename NodeT>
SolverRunResult run_solver(const SolverProblem& problem, std::size_t iterations,
                           bool async = false,
                           typename NodeT::Config config = {},
                           SystemOptions options = {},
                           bool protect_constants = true,
                           const std::string& trace_path = {}) {
  if (!trace_path.empty()) options.trace.enabled = true;
  const SolverLayout layout(problem.n);
  DsmSystem<NodeT> sys(layout.node_count(), config, options,
                       layout.make_ownership());
  std::vector<SharedMemory*> mems;
  mems.reserve(layout.node_count());
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  opts.protect_constants = protect_constants;
  if (async) {
    opts.iterations = 500000;
    opts.tolerance = 1e-8;
  } else {
    opts.iterations = iterations;
  }
  const auto start = std::chrono::steady_clock::now();
  SolverRunResult result;
  result.run = async ? run_async_solver(problem, layout, mems, opts)
                     : run_sync_solver(problem, layout, mems, opts);
  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  result.stats = sys.stats().total();
  result.metrics.capture(sys.stats());
  if (sys.trace_hub() != nullptr) {
    // Quiesce the tracer's writers (solver threads joined above; delivery
    // threads stop here) before draining the rings.
    sys.shutdown();
    result.metrics.capture_trace(*sys.trace_hub());
    if (!trace_path.empty() &&
        !obs::write_chrome_trace(trace_path, *sys.trace_hub())) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      std::exit(1);
    }
  }
  return result;
}

inline LatencyModel latency_us(std::uint64_t micros) {
  LatencyModel m;
  m.base = std::chrono::microseconds(micros);
  return m;
}

/// Parses `--<flag> <value>` or `--<flag>=<value>` from argv; empty string
/// when absent. `flag` includes the leading dashes (e.g. "--json").
inline std::string parse_flag_value(int argc, char** argv,
                                    std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", std::string(flag).c_str());
        std::exit(1);
      }
      return argv[i + 1];
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return std::string(arg.substr(flag.size() + 1));
    }
  }
  return {};
}

/// `--json <path>`: where to write the machine-readable metrics document
/// (schema causalmem-metrics-v1); empty = no export.
inline std::string parse_json_path(int argc, char** argv) {
  return parse_flag_value(argc, argv, "--json");
}

/// Writes the exporter's document to `path` (when non-empty), exiting
/// non-zero on I/O failure so CI catches a broken export.
inline void maybe_write_metrics(const obs::MetricsExporter& exporter,
                                const std::string& path) {
  if (path.empty()) return;
  if (!exporter.write(path)) {
    std::fprintf(stderr, "failed to write metrics to %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("\nmetrics written to %s\n", path.c_str());
}

/// Parses `--drop-rate=X` (X in [0, 1]) from argv; 0 when absent, so the
/// default benchmark run stays on the fault-free fast path.
inline double parse_drop_rate(int argc, char** argv) {
  constexpr std::string_view kFlag = "--drop-rate=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, kFlag.size()) == kFlag) {
      const double rate = std::strtod(arg.data() + kFlag.size(), nullptr);
      if (rate < 0.0 || rate > 1.0) {
        std::fprintf(stderr, "drop rate must be in [0, 1], got %s\n",
                     arg.data() + kFlag.size());
        std::exit(1);
      }
      return rate;
    }
  }
  return 0.0;
}

/// Applies the --drop-rate axis: a positive rate wraps the transport in
/// FaultyTransport(drop_rate) + ReliableChannel, so the measured workload
/// pays real recovery cost (visible in the net.* counters); rate 0 leaves
/// the options untouched — no extra layers, counters stay zero.
inline SystemOptions with_drop_rate(SystemOptions options, double drop_rate) {
  if (drop_rate > 0.0) {
    options.faults.drop_rate = drop_rate;
    options.reliable = true;
  }
  return options;
}

}  // namespace causalmem::bench

// Restart-to-serving: how fast does a crashed owner get back to answering
// reads for its pages? Two recovery strategies over identical populated
// systems, at 10^3 / 10^4 / 10^5 pages:
//
//   local_replay    the disk survived — rejoin restores every owned cell
//                   from checkpoint + WAL, zero protocol messages, and the
//                   first read of every page is a local hit.
//   election_only   the disk was lost (persist::Store::lose_disk before the
//                   restart) — every page must win a per-page recovery
//                   election (one payload-free poll round trip per live
//                   peer) before it is servable again.
//
// The headline number is pages/sec of restart-to-serving (restart_node()
// plus reading every owned page once). Local replay costs O(pages) of local
// decode; election-only costs O(pages) of round trips — the gap widens with
// scale, and BENCH_8.json pins it at each tier. The store runs on a MemVfs
// so the numbers measure replay/election cost, not container disk jitter.
//
// Self-validating like bench_throughput: the emitted causalmem-metrics-v1
// document must parse and carry a positive pages_per_sec per run, or the
// process exits non-zero (ctest runs a tiny smoke version).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/persist/vfs.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

struct RecoveryResult {
  std::chrono::microseconds populate{0};
  std::chrono::microseconds restart{0};  ///< restart_node() wall time
  std::chrono::microseconds serve{0};    ///< first read of every owned page
  std::uint64_t restored_cells{0};
  std::uint64_t recover_requests{0};  ///< fo.recover_request + catch-up polls
  std::uint64_t wal_replayed{0};
  std::uint64_t checkpoints{0};

  [[nodiscard]] double pages_per_sec(std::uint64_t pages) const {
    const double us =
        static_cast<double>(restart.count() + serve.count());
    return us > 0.0 ? static_cast<double>(pages) / (us * 1e-6) : 0.0;
  }
};

RecoveryResult run_recovery(std::uint64_t pages, bool keep_disk) {
  persist::MemVfs vfs;
  CausalConfig cfg;
  cfg.request_timeout = std::chrono::seconds(10);  // no deadline noise
  cfg.request_retries = 2;
  SystemOptions options;
  options.fault_layer = true;
  options.failover.enabled = true;
  options.persist.enabled = true;
  options.persist.dir = "bench";
  options.persist.vfs = &vfs;
  // A checkpoint every quarter of the workload: recovery replays a mix of
  // snapshot cells and WAL-tail records, like a long-running node would.
  options.persist.checkpoint_every =
      static_cast<std::uint32_t>(pages / 4 > 0 ? pages / 4 : 1);
  DsmSystem<CausalNode> sys(2, cfg, options);

  RecoveryResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < pages; ++k) {
    // Striped 2-node layout: even addresses are node 0's own pages.
    sys.memory(0).write(2 * k, static_cast<Value>(k) + 1);
  }
  const auto t1 = std::chrono::steady_clock::now();

  sys.faulty_transport()->crash_node(0);
  if (!keep_disk) sys.store(0)->lose_disk();
  const auto t2 = std::chrono::steady_clock::now();
  (void)sys.restart_node(0);
  const auto t3 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < pages; ++k) {
    // Blocking read: returns only once the page is actually servable again
    // (local hit after replay, or election completion after media loss).
    (void)sys.memory(0).read(2 * k);
  }
  const auto t4 = std::chrono::steady_clock::now();

  const auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  };
  r.populate = us(t0, t1);
  r.restart = us(t2, t3);
  r.serve = us(t3, t4);
  const StatsSnapshot stats = sys.stats().total();
  r.restored_cells = stats[Counter::kPersistRestoredCells];
  r.recover_requests = stats[Counter::kFoRecoverRequest] +
                       stats[Counter::kPersistCatchupRequest];
  r.wal_replayed = stats[Counter::kPersistWalReplayed];
  r.checkpoints = stats[Counter::kPersistCheckpoint];
  return r;
}

/// The same populate loop on a persistence-free system: the write-path
/// overhead of the WAL (fsync-per-apply on the MemVfs) is the ratio of the
/// two populate times, recorded in the metrics document per tier.
std::chrono::microseconds run_volatile_populate(std::uint64_t pages) {
  CausalConfig cfg;
  cfg.request_timeout = std::chrono::seconds(10);
  SystemOptions options;
  options.fault_layer = true;
  options.failover.enabled = true;
  DsmSystem<CausalNode> sys(2, cfg, options);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t k = 0; k < pages; ++k) {
    sys.memory(0).write(2 * k, static_cast<Value>(k) + 1);
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}

std::uint64_t flag_or(int argc, char** argv, std::string_view flag,
                      std::uint64_t fallback) {
  const std::string v = parse_flag_value(argc, argv, flag);
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t max_pages = flag_or(argc, argv, "--max-pages", 100'000);
  const std::string json_path = parse_json_path(argc, argv);

  std::vector<std::uint64_t> tiers;
  for (const std::uint64_t p : {1'000ULL, 10'000ULL, 100'000ULL}) {
    if (p <= max_pages) tiers.push_back(p);
  }
  if (tiers.empty()) tiers.push_back(max_pages);

  std::printf("recovery: restart-to-serving, 2 nodes, tiers up to %llu pages\n\n",
              static_cast<unsigned long long>(max_pages));

  obs::MetricsExporter exporter("bench_recovery");
  exporter.set_meta("workload", "restart_to_serving");

  Table table({"scenario", "pages", "restart ms", "serve ms", "pages/sec",
               "restored", "recover reqs"});
  std::size_t expected_runs = 0;
  for (const std::uint64_t pages : tiers) {
    // Write-path overhead receipt: identical populate loop without a store.
    const auto volatile_us = run_volatile_populate(pages);
    {
      obs::RunMetrics& rm = exporter.add_run("write_path_volatile");
      rm.label = "write_path_volatile";
      rm.set_param("pages", static_cast<double>(pages));
      rm.set_value("populate_us", static_cast<double>(volatile_us.count()));
      rm.set_value("pages_per_sec",
                   volatile_us.count() > 0
                       ? static_cast<double>(pages) /
                             (static_cast<double>(volatile_us.count()) * 1e-6)
                       : 0.0);
      ++expected_runs;
    }
    for (const bool keep_disk : {true, false}) {
      const char* label = keep_disk ? "local_replay" : "election_only";
      const RecoveryResult r = run_recovery(pages, keep_disk);
      table.add_row(
          {label, std::to_string(pages),
           Table::num(static_cast<double>(r.restart.count()) / 1000.0, 2),
           Table::num(static_cast<double>(r.serve.count()) / 1000.0, 2),
           Table::num(r.pages_per_sec(pages), 0),
           std::to_string(r.restored_cells),
           std::to_string(r.recover_requests)});
      obs::RunMetrics& rm = exporter.add_run(label);
      rm.label = label;
      rm.set_param("pages", static_cast<double>(pages));
      rm.set_param("keep_disk", keep_disk ? 1.0 : 0.0);
      rm.set_value("pages_per_sec", r.pages_per_sec(pages));
      rm.set_value("restart_us", static_cast<double>(r.restart.count()));
      rm.set_value("serve_us", static_cast<double>(r.serve.count()));
      rm.set_value("restart_to_serving_us",
                   static_cast<double>(r.restart.count() + r.serve.count()));
      rm.set_value("populate_us", static_cast<double>(r.populate.count()));
      rm.set_value("restored_cells", static_cast<double>(r.restored_cells));
      rm.set_value("recover_requests",
                   static_cast<double>(r.recover_requests));
      rm.set_value("wal_replayed", static_cast<double>(r.wal_replayed));
      rm.set_value("checkpoints", static_cast<double>(r.checkpoints));
      ++expected_runs;
    }
  }
  table.print(std::cout);

  // Self-validation: the document must parse and carry a positive
  // pages_per_sec per run (what the ctest smoke run asserts).
  {
    std::string error;
    const auto doc = obs::parse_json(exporter.to_json(), &error);
    if (!doc) {
      std::fprintf(stderr, "FATAL: emitted metrics do not parse: %s\n",
                   error.c_str());
      return 1;
    }
    const obs::JsonValue* runs = doc->find("runs");
    if (runs == nullptr || !runs->is_array() ||
        runs->array.size() != expected_runs) {
      std::fprintf(stderr, "FATAL: metrics document missing runs\n");
      return 1;
    }
    for (const obs::JsonValue& run : runs->array) {
      const obs::JsonValue* values = run.find("values");
      const obs::JsonValue* pps =
          values != nullptr ? values->find("pages_per_sec") : nullptr;
      if (pps == nullptr || !pps->is_number() || !(pps->number > 0.0)) {
        std::fprintf(stderr, "FATAL: run missing positive pages_per_sec\n");
        return 1;
      }
    }
    std::printf("\nmetrics self-check: OK (%zu runs)\n", runs->array.size());
  }

  maybe_write_metrics(exporter, json_path);
  return 0;
}

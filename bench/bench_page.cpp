// E11 — Section 3.2's enhancement: "scaling the unit of sharing to a page".
//
// Two workloads sweep the page size:
//  1. sequential scan — one node repeatedly scans a neighbour-owned array;
//     larger pages amortize misses (messages drop ~1/page_size);
//  2. false sharing — a writer updates one hot cell per page while a reader
//     scans; larger pages drag whole-page invalidations and refetches.
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "causalmem/common/rng.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

constexpr std::size_t kArray = 256;  // locations owned by node 1

StatsSnapshot run_scan(Addr page_size, int sweeps) {
  CausalConfig cfg;
  cfg.page_size = page_size;
  DsmSystem<CausalNode> sys(2, cfg);
  // Node 1 owns pages where (page % 2) == 1; scan only node-1 pages.
  for (int s = 0; s < sweeps; ++s) {
    for (Addr a = 0; a < kArray; ++a) {
      if (!sys.memory(0).owns(a)) (void)sys.memory(0).read(a);
    }
  }
  return sys.stats().total();
}

StatsSnapshot run_false_sharing(Addr page_size, int rounds) {
  CausalConfig cfg;
  cfg.page_size = page_size;
  DsmSystem<CausalNode> sys(2, cfg);
  SharedMemory& reader = sys.memory(0);
  SharedMemory& writer = sys.memory(1);
  // A writer-owned marker location past the array.
  Addr marker = kArray;
  while (!writer.owns(marker)) ++marker;
  Rng rng(99);
  for (int r = 0; r < rounds; ++r) {
    // Writer dirties ~one cell per page (all local writes)...
    for (Addr a = 0; a < kArray; ++a) {
      if (writer.owns(a) && rng.chance(1.0 / static_cast<double>(page_size))) {
        writer.write(a, static_cast<Value>(rng.next() >> 8));
      }
    }
    writer.write(marker, r);
    // ...then the reader fetches the fresh marker: the introduced stamp
    // invalidates every cached page with a dirty (now causally older) cell.
    (void)reader.discard(marker);
    (void)reader.read(marker);
    for (Addr a = 0; a < kArray; ++a) {
      if (!reader.owns(a)) (void)reader.read(a);
    }
  }
  return sys.stats().total();
}

}  // namespace

int main() {
  std::printf("E11: page-granularity sharing (Section 3.2 enhancement)\n\n");
  std::printf("Sequential scan of a %zu-location remote array, 10 sweeps:\n\n",
              kArray);
  {
    Table table({"page size", "messages", "read misses", "hit rate"});
    for (const Addr ps : {1u, 2u, 4u, 8u, 16u}) {
      const StatsSnapshot s = run_scan(ps, 10);
      const double hits = static_cast<double>(s[Counter::kReadHit]);
      const double misses = static_cast<double>(s[Counter::kReadMiss]);
      table.add_row({std::to_string(ps), std::to_string(s.messages_sent()),
                     std::to_string(s[Counter::kReadMiss]),
                     Table::num(100.0 * hits / (hits + misses), 1) + "%"});
    }
    table.print(std::cout);
  }

  std::printf("\nSparse writes (~1 dirty cell per page per round), reader "
              "re-scans every round (20 rounds):\n\n");
  {
    Table table({"page size", "messages", "read misses", "cells transferred",
                 "useful cells"});
    for (const Addr ps : {1u, 2u, 4u, 8u, 16u}) {
      const StatsSnapshot s = run_false_sharing(ps, 20);
      // Every miss ships a whole page; with ~1 dirty cell per page the rest
      // of the payload is re-transfer of data the reader already had.
      const std::uint64_t transferred = s[Counter::kReadMiss] * ps;
      table.add_row({std::to_string(ps), std::to_string(s.messages_sent()),
                     std::to_string(s[Counter::kReadMiss]),
                     std::to_string(transferred),
                     Table::num(100.0 *
                                    static_cast<double>(s[Counter::kReadMiss]) /
                                    static_cast<double>(transferred),
                                1) + "%"});
    }
    table.print(std::cout);
  }

  std::printf(
      "\nExpected: scans get ~1/page_size messages. Under sparse writes the\n"
      "message count still drops with page size, but the transfer volume\n"
      "stays flat while its useful fraction collapses — the bandwidth face\n"
      "of false sharing. (Figure 4's stamp rule is time-coarse: a fresh\n"
      "stamp invalidates every older cached unit whatever its size, so the\n"
      "*count* of invalidations does not expose false sharing; the wasted\n"
      "payload does.)\n");
  return 0;
}

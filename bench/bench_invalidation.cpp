// E9/E10 — ablations of the invalidation design choices the paper calls out.
//
// E9 (Section 3.2: the Figure 4 protocol "may invalidate more cached values
// than strictly necessary but requires little bookkeeping"): compare the
// Figure 4 invalidate-older rule against the maximally conservative
// flush-all-on-introduce baseline. Invalidate-older must preserve more of
// the cache (higher hit rate, fewer messages).
//
// E10 (footnote 2: "a simple enhancement ... can be used to avoid
// invalidations of A and b"): the read-only-segment enhancement, measured as
// saved messages on the solver.
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "causalmem/common/rng.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

struct WorkloadStats {
  StatsSnapshot stats;

  [[nodiscard]] double hit_rate() const {
    const double hits = static_cast<double>(stats[Counter::kReadHit]);
    const double misses = static_cast<double>(stats[Counter::kReadMiss]);
    return hits / std::max(1.0, hits + misses);
  }
};

/// Independent-writers workload: three writer nodes update their own
/// (owned) regions and never communicate, while a reader scans all regions.
/// The regions' writestamps stay pairwise *concurrent*, so the Figure 4
/// invalidate-older rule keeps region B cached when a fresh region-A value
/// arrives — flush-all throws everything away. This isolates exactly what
/// the paper's per-stamp bookkeeping buys.
WorkloadStats run_random_workload(InvalidationStrategy strategy) {
  constexpr std::size_t kNodes = 4;  // node 0 reads; nodes 1..3 write
  constexpr std::size_t kRegion = 16;
  constexpr int kOps = 4000;
  CausalConfig cfg;
  cfg.invalidation = strategy;
  DsmSystem<CausalNode> sys(kNodes, cfg);
  // Addresses are striped: writer w owns {a : a % 4 == w}.
  {
    std::vector<std::jthread> threads;
    for (NodeId w = 1; w < kNodes; ++w) {
      threads.emplace_back([&sys, w] {
        Rng rng(555 + w);
        for (int i = 0; i < kOps / 4; ++i) {
          const Addr a = rng.next_below(kRegion) * kNodes + w;  // owned
          sys.memory(w).write(a, static_cast<Value>(rng.next() >> 8));
        }
      });
    }
    threads.emplace_back([&sys] {
      Rng rng(999);
      for (int i = 0; i < kOps; ++i) {
        const NodeId w = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
        const Addr a = rng.next_below(kRegion) * kNodes + w;
        (void)sys.memory(0).read(a);
      }
    });
  }
  return WorkloadStats{sys.stats().total()};
}

const char* strategy_name(InvalidationStrategy s) {
  return s == InvalidationStrategy::kInvalidateOlder ? "invalidate-older"
                                                     : "flush-all";
}

}  // namespace

int main() {
  std::printf("E9: invalidation strategy ablation (4 nodes, 64 locations, "
              "15%% writes)\n\n");
  {
    Table table({"strategy", "hit rate", "messages", "invalidations"});
    for (const auto strategy : {InvalidationStrategy::kInvalidateOlder,
                                InvalidationStrategy::kFlushAll}) {
      const WorkloadStats w = run_random_workload(strategy);
      table.add_row(
          {strategy_name(strategy), Table::num(w.hit_rate() * 100, 1) + "%",
           std::to_string(w.stats.messages_sent()),
           std::to_string(w.stats[Counter::kInvalidationApplied])});
    }
    table.print(std::cout);
  }

  std::printf("\nE9 (solver): same ablation on the Figure 6 solver\n\n");
  {
    constexpr std::size_t kN = 8;
    constexpr std::size_t kIters = 15;
    const SolverProblem problem = SolverProblem::random(kN, 42);
    Table table({"strategy", "msgs/worker/iter", "invalidations"});
    for (const auto strategy : {InvalidationStrategy::kInvalidateOlder,
                                InvalidationStrategy::kFlushAll}) {
      CausalConfig cfg;
      cfg.invalidation = strategy;
      const auto r = run_solver<CausalNode>(problem, kIters, false, cfg);
      table.add_row({strategy_name(strategy),
                     Table::num(r.effective_per_worker_iter(kN), 1),
                     std::to_string(r.stats[Counter::kInvalidationApplied])});
    }
    table.print(std::cout);
  }

  std::printf("\nE10: read-only constants (footnote 2) on the solver\n\n");
  {
    constexpr std::size_t kN = 8;
    constexpr std::size_t kIters = 15;
    const SolverProblem problem = SolverProblem::random(kN, 43);
    Table table({"A,b protected", "msgs/worker/iter", "total messages"});
    for (const bool protect : {true, false}) {
      const auto r =
          run_solver<CausalNode>(problem, kIters, false, {}, {}, protect);
      table.add_row({protect ? "yes" : "no",
                     Table::num(r.effective_per_worker_iter(kN), 1),
                     std::to_string(r.stats.messages_sent())});
    }
    table.print(std::cout);
  }

  std::printf(
      "\nExpected: with independent writers, invalidate-older keeps the\n"
      "concurrent regions cached and wins decisively on hit rate; on the\n"
      "tightly synchronized solver every introduced stamp dominates all\n"
      "cached x_j anyway, so the two rules send the same messages — the\n"
      "paper's coarse rule is exactly right for that pattern. Protecting\n"
      "A and b removes their per-phase refetch ((n+1) x 2 messages per\n"
      "worker per iteration).\n");
  return 0;
}

// E14 (micro): vector timestamp primitive costs — the per-operation overhead
// the owner protocol pays for causality tracking.
#include <benchmark/benchmark.h>

#include "causalmem/vclock/vector_clock.hpp"

namespace {

using causalmem::ByteReader;
using causalmem::ByteWriter;
using causalmem::VectorClock;

VectorClock make_clock(std::size_t n, std::uint64_t salt) {
  std::vector<std::uint64_t> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = (i * 2654435761u + salt) % 97;
  return VectorClock(std::move(c));
}

void BM_VClockIncrement(benchmark::State& state) {
  VectorClock vt(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    vt.increment(0);
    benchmark::DoNotOptimize(vt);
  }
}
BENCHMARK(BM_VClockIncrement)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VClockUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock a = make_clock(n, 1);
  const VectorClock b = make_clock(n, 2);
  for (auto _ : state) {
    a.update(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VClockUpdate)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VClockCompare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VectorClock a = make_clock(n, 1);
  const VectorClock b = make_clock(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_VClockCompare)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_VClockCodecRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VectorClock a = make_clock(n, 3);
  for (auto _ : state) {
    ByteWriter w;
    a.encode(w);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(VectorClock::decode(r));
  }
}
BENCHMARK(BM_VClockCodecRoundTrip)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

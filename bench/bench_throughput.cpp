// Hot-path throughput: millions of mixed read/write operations driven by
// concurrent application threads across the nodes of a DsmSystem<CausalNode>.
// This is the benchmark behind the BENCH_*.json perf trajectory (see
// docs/PERFORMANCE.md): every scenario reports ops/sec, and --compare diffs
// the rates against a previously committed snapshot so a regression (or an
// optimization claim) is a number, not an anecdote.
//
// Scenarios:
//   local          100% node-local traffic — the allocation-free fast path
//                  (no protocol messages at all).
//   mixed          the headline: --remote-pct of operations target another
//                  node's locations (READ/W + reply round trips, cache fills,
//                  invalidations), codec exercised on every message.
//   mixed_reliable mixed, with the ReliableChannel (seq/ack/retransmit
//                  bookkeeping) on the path — fault-free, so any cost is
//                  pure channel overhead.
//   mixed_traced   mixed, with the per-node trace rings enabled — the delta
//                  against mixed is the full cost of always-on tracing.
//
// The binary self-validates: the metrics document it emits must parse with
// obs::parse_json and contain an ops_per_sec value per scenario, or the
// process exits non-zero. CI runs a tiny --ops version of this as a smoke
// test via ctest (bench_throughput_smoke).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "causalmem/common/rng.hpp"
#include "causalmem/obs/json.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

struct Shape {
  std::size_t nodes{4};
  std::size_t threads_per_node{2};
  std::uint64_t total_ops{400000};
  std::uint64_t remote_pct{30};  ///< % of ops targeting another node's data
  std::uint64_t read_pct{50};    ///< % of ops that are reads
  std::uint64_t slots_per_node{64};  ///< distinct locations owned per node
};

struct ScenarioResult {
  double ops_per_sec{0.0};
  std::chrono::microseconds elapsed{0};
  std::uint64_t messages{0};
  obs::RunMetrics metrics;
};

/// Runs one scenario: spawn nodes*threads_per_node app threads, each issuing
/// its share of the mixed workload, and time the whole thing wall-clock.
ScenarioResult run_scenario(const Shape& s, const SystemOptions& options) {
  DsmSystem<CausalNode> sys(s.nodes, {}, options);

  // Pre-populate every slot with a local write so the timed loop reads real
  // values and the owner maps are warm.
  for (NodeId i = 0; i < s.nodes; ++i) {
    for (std::uint64_t k = 0; k < s.slots_per_node; ++k) {
      sys.memory(i).write(i + s.nodes * k, 1);
    }
  }

  const std::size_t n_threads = s.nodes * s.threads_per_node;
  const std::uint64_t per_thread = s.total_ops / n_threads;
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<Value> sink{0};

  std::vector<std::jthread> workers;
  workers.reserve(n_threads);
  for (NodeId i = 0; i < s.nodes; ++i) {
    for (std::size_t t = 0; t < s.threads_per_node; ++t) {
      workers.emplace_back([&, i, t] {
        SharedMemory& mem = sys.memory(i);
        Rng rng(0x6A09E667F3BCC909ULL + i * 131 + t);
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        Value acc = 0;
        Value next = 2;
        for (std::uint64_t op = 0; op < per_thread; ++op) {
          NodeId target = i;
          if (s.nodes > 1 && rng.next_below(100) < s.remote_pct) {
            target = static_cast<NodeId>(
                (i + 1 + rng.next_below(s.nodes - 1)) % s.nodes);
          }
          const Addr a = target + s.nodes * rng.next_below(s.slots_per_node);
          if (rng.next_below(100) < s.read_pct) {
            acc += mem.read(a);
          } else {
            mem.write(a, next++);
          }
        }
        sink.fetch_add(acc);
      });
    }
  }
  while (ready.load() < n_threads) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  workers.clear();  // join
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);

  ScenarioResult result;
  result.elapsed = elapsed;
  const std::uint64_t done = per_thread * n_threads;
  result.ops_per_sec = static_cast<double>(done) /
                       (static_cast<double>(elapsed.count()) * 1e-6);
  result.metrics.capture(sys.stats());
  result.messages = sys.stats().total().messages_sent();
  return result;
}

/// Baseline rates from a previous metrics document (--compare): maps
/// scenario label -> ops_per_sec.
std::vector<std::pair<std::string, double>> load_baseline(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> rates;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = obs::parse_json(buf.str(), &error);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "baseline %s does not parse: %s\n", path.c_str(),
                 error.c_str());
    std::exit(1);
  }
  const obs::JsonValue* runs = doc->find("runs");
  if (runs == nullptr || !runs->is_array()) return rates;
  for (const obs::JsonValue& run : runs->array) {
    const obs::JsonValue* label = run.find("label");
    const obs::JsonValue* values = run.find("values");
    if (label == nullptr || values == nullptr) continue;
    const obs::JsonValue* ops = values->find("ops_per_sec");
    if (ops != nullptr && ops->is_number()) {
      rates.emplace_back(label->string, ops->number);
    }
  }
  return rates;
}

std::uint64_t flag_or(int argc, char** argv, std::string_view flag,
                      std::uint64_t fallback) {
  const std::string v = parse_flag_value(argc, argv, flag);
  return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  Shape shape;
  shape.nodes = flag_or(argc, argv, "--nodes", shape.nodes);
  shape.threads_per_node = flag_or(argc, argv, "--threads", shape.threads_per_node);
  shape.total_ops = flag_or(argc, argv, "--ops", shape.total_ops);
  shape.remote_pct = flag_or(argc, argv, "--remote-pct", shape.remote_pct);
  shape.read_pct = flag_or(argc, argv, "--read-pct", shape.read_pct);
  shape.slots_per_node = flag_or(argc, argv, "--slots", shape.slots_per_node);
  const std::string json_path = parse_json_path(argc, argv);
  const std::string compare_path = parse_flag_value(argc, argv, "--compare");

  std::printf(
      "throughput: %zu nodes x %zu threads, %llu ops total "
      "(%llu%% remote, %llu%% reads, %llu slots/node)\n\n",
      shape.nodes, shape.threads_per_node,
      static_cast<unsigned long long>(shape.total_ops),
      static_cast<unsigned long long>(shape.remote_pct),
      static_cast<unsigned long long>(shape.read_pct),
      static_cast<unsigned long long>(shape.slots_per_node));

  obs::MetricsExporter exporter("bench_throughput");
  exporter.set_meta("workload", "mixed_read_write");

  struct Scenario {
    const char* label;
    Shape shape;
    SystemOptions options;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario local{"local", shape, {}};
    local.shape.remote_pct = 0;
    local.options.exercise_codec = true;
    scenarios.push_back(local);

    Scenario mixed{"mixed", shape, {}};
    mixed.options.exercise_codec = true;
    scenarios.push_back(mixed);

    Scenario rel{"mixed_reliable", shape, {}};
    rel.options.exercise_codec = true;
    rel.options.reliable = true;
    scenarios.push_back(rel);

    // mixed with the tracer rings live: the delta between this row and
    // "mixed" is the whole cost of always-on tracing (ring writes + trace-id
    // minting on every protocol message). docs/PERFORMANCE.md tracks it.
    Scenario traced{"mixed_traced", shape, {}};
    traced.options.exercise_codec = true;
    traced.options.trace.enabled = true;
    scenarios.push_back(traced);
  }

  Table table({"scenario", "ops/sec", "elapsed ms", "messages"});
  for (const Scenario& sc : scenarios) {
    const ScenarioResult r = run_scenario(sc.shape, sc.options);
    table.add_row({sc.label, Table::num(r.ops_per_sec, 0),
                   Table::num(static_cast<double>(r.elapsed.count()) / 1000.0, 1),
                   std::to_string(r.messages)});
    obs::RunMetrics& rm = exporter.add_run(sc.label);
    rm = r.metrics;
    rm.label = sc.label;
    rm.set_param("nodes", static_cast<double>(sc.shape.nodes));
    rm.set_param("threads_per_node",
                 static_cast<double>(sc.shape.threads_per_node));
    rm.set_param("total_ops", static_cast<double>(sc.shape.total_ops));
    rm.set_param("remote_pct", static_cast<double>(sc.shape.remote_pct));
    rm.set_param("read_pct", static_cast<double>(sc.shape.read_pct));
    rm.set_param("slots_per_node",
                 static_cast<double>(sc.shape.slots_per_node));
    rm.set_value("ops_per_sec", r.ops_per_sec);
    rm.set_value("elapsed_us", static_cast<double>(r.elapsed.count()));
    rm.set_value("messages", static_cast<double>(r.messages));
  }
  table.print(std::cout);

  // Self-validation: the emitted document must parse and carry one
  // ops_per_sec per scenario — this is what the ctest smoke run asserts.
  {
    std::string error;
    const auto doc = obs::parse_json(exporter.to_json(), &error);
    if (!doc) {
      std::fprintf(stderr, "FATAL: emitted metrics do not parse: %s\n",
                   error.c_str());
      return 1;
    }
    const obs::JsonValue* runs = doc->find("runs");
    if (runs == nullptr || !runs->is_array() ||
        runs->array.size() != scenarios.size()) {
      std::fprintf(stderr, "FATAL: metrics document missing runs\n");
      return 1;
    }
    for (const obs::JsonValue& run : runs->array) {
      const obs::JsonValue* values = run.find("values");
      const obs::JsonValue* ops =
          values != nullptr ? values->find("ops_per_sec") : nullptr;
      if (ops == nullptr || !ops->is_number() || !(ops->number > 0.0)) {
        std::fprintf(stderr, "FATAL: run missing positive ops_per_sec\n");
        return 1;
      }
    }
    std::printf("\nmetrics self-check: OK (%zu runs)\n", runs->array.size());
  }

  if (!compare_path.empty()) {
    const auto baseline = load_baseline(compare_path);
    std::printf("\nvs baseline %s:\n", compare_path.c_str());
    bool regressed = false;
    for (std::size_t i = 0; i < exporter.run_count(); ++i) {
      const obs::RunMetrics& rm = exporter.run(i);
      for (const auto& [label, base_rate] : baseline) {
        if (label != rm.label) continue;
        double now_rate = 0.0;
        for (const auto& [k, v] : rm.values) {
          if (k == "ops_per_sec") now_rate = v;
        }
        const double ratio = now_rate / base_rate;
        std::printf("  %-16s %12.0f -> %12.0f ops/sec  (%.2fx)\n",
                    label.c_str(), base_rate, now_rate, ratio);
        // Lenient gate: CI hardware varies run to run, so only flag a
        // collapse, not noise. 0.5x against the committed snapshot means
        // something real broke.
        if (ratio < 0.5) regressed = true;
      }
    }
    if (regressed) {
      std::fprintf(stderr,
                   "FATAL: throughput regressed more than 2x vs baseline\n");
      return 1;
    }
  }

  maybe_write_metrics(exporter, json_path);
  return 0;
}

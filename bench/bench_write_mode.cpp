// E12 — Section 3.2's "reducing the blocking of processors": non-blocking
// (pipelined) remote writes vs the blocking Figure 4 write, under injected
// latency. A blocking writer pays a full round trip per write; the async
// writer overlaps them (pipelining is restricted to one owner at a time,
// which this workload — a burst to a single owner — exploits fully).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

using namespace causalmem;
using namespace causalmem::bench;

namespace {

std::chrono::microseconds time_burst(WriteMode mode, std::uint64_t latency,
                                     int writes) {
  CausalConfig cfg;
  cfg.write_mode = mode;
  SystemOptions opts;
  opts.latency = latency_us(latency);
  DsmSystem<CausalNode> sys(2, cfg, opts);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < writes; ++i) {
    sys.memory(0).write(1, i);  // owner: node 1
  }
  sys.memory(0).flush();
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
}

}  // namespace

int main() {
  constexpr int kWrites = 200;
  std::printf("E12: burst of %d remote writes to one owner, blocking vs "
              "async (pipelined)\n\n",
              kWrites);
  Table table({"latency (us)", "blocking (ms)", "async (ms)", "speedup"});
  for (const std::uint64_t lat : {0ull, 50ull, 200ull, 1000ull}) {
    const auto blocking = time_burst(WriteMode::kBlocking, lat, kWrites);
    const auto async = time_burst(WriteMode::kAsync, lat, kWrites);
    const double b_ms = static_cast<double>(blocking.count()) / 1e3;
    const double a_ms = static_cast<double>(async.count()) / 1e3;
    table.add_row({std::to_string(lat), Table::num(b_ms, 2),
                   Table::num(a_ms, 2), Table::num(b_ms / a_ms, 1) + "x"});
  }
  table.print(std::cout);
  std::printf("\nExpected: blocking time ~ writes x 2 x latency; async time\n"
              "~ writes x send-cost + one round trip — the speedup grows\n"
              "linearly with latency.\n");
  return 0;
}

// Determinism regression: the same seed on the same scenario must produce a
// bit-identical execution — schedule, per-process history, merged trace
// stream, and every per-node counter (net.*, fo.*, ...). Any divergence
// means wall-clock, iteration order, or address-dependent state leaked into
// the simulation, which would make CI schedule artifacts unreproducible.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "causalmem/sim/scenarios.hpp"

namespace causalmem::sim {
namespace {

struct Observation {
  ExecutionResult result;
  ScenarioOutcome outcome;
};

Observation observe_causal(const CausalScenarioConfig& cfg,
                           std::uint64_t seed) {
  Observation obs;
  RandomWalkStrategy walk(seed);
  obs.result = run_causal_scenario(cfg, walk, &obs.outcome);
  return obs;
}

Observation observe_broadcast(const BroadcastScenarioConfig& cfg,
                              std::uint64_t seed) {
  Observation obs;
  RandomWalkStrategy walk(seed);
  obs.result = run_broadcast_scenario(cfg, walk, &obs.outcome);
  return obs;
}

void expect_identical(const Observation& a, const Observation& b,
                      std::uint64_t seed) {
  EXPECT_EQ(a.result.report.schedule.to_text(),
            b.result.report.schedule.to_text())
      << "seed " << seed << ": schedules diverged";
  EXPECT_EQ(a.result.report.steps, b.result.report.steps) << "seed " << seed;
  EXPECT_EQ(a.result.report.end_ns, b.result.report.end_ns)
      << "seed " << seed;
  EXPECT_EQ(a.outcome.history_text, b.outcome.history_text)
      << "seed " << seed << ": histories diverged";
  EXPECT_EQ(a.outcome.trace_text, b.outcome.trace_text)
      << "seed " << seed << ": trace streams diverged";
  EXPECT_EQ(a.outcome.counters_text, b.outcome.counters_text)
      << "seed " << seed << ": counters diverged";
  EXPECT_EQ(a.result.consistent, b.result.consistent) << "seed " << seed;
  EXPECT_EQ(a.result.violation, b.result.violation) << "seed " << seed;
}

TEST(Determinism, CausalSmallScopeBitIdenticalAcrossReruns) {
  const CausalScenarioConfig cfg = small_scope_causal();
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const Observation a = observe_causal(cfg, seed);
    const Observation b = observe_causal(cfg, seed);
    ASSERT_TRUE(a.result.report.ok()) << a.result.report.error;
    EXPECT_TRUE(a.result.consistent) << a.result.violation;
    EXPECT_FALSE(a.outcome.trace_text.empty());
    EXPECT_FALSE(a.outcome.counters_text.empty());
    expect_identical(a, b, seed);
  }
}

TEST(Determinism, DifferentSeedsExploreDifferentSchedules) {
  const CausalScenarioConfig cfg = small_scope_causal();
  const Observation a = observe_causal(cfg, 1);
  const Observation b = observe_causal(cfg, 2);
  ASSERT_TRUE(a.result.report.ok()) << a.result.report.error;
  ASSERT_TRUE(b.result.report.ok()) << b.result.report.error;
  // Not a hard guarantee for arbitrary seeds, but for this scenario these
  // two walks do interleave differently; if they ever collide the test
  // seeds just need adjusting.
  EXPECT_NE(a.result.report.schedule.to_text(),
            b.result.report.schedule.to_text());
}

TEST(Determinism, BroadcastScenarioBitIdenticalAcrossReruns) {
  const BroadcastScenarioConfig cfg = small_scope_broadcast(true);
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    const Observation a = observe_broadcast(cfg, seed);
    const Observation b = observe_broadcast(cfg, seed);
    ASSERT_TRUE(a.result.report.ok()) << a.result.report.error;
    EXPECT_TRUE(a.result.consistent) << a.result.violation;
    expect_identical(a, b, seed);
  }
}

/// Chaos configuration: crash the owner of address 2 mid-run and restart it
/// later, with bounded requests + failover so its clients make progress.
/// Exercises the fo.* failover counters and the net.fault_drop purge path —
/// all of which must still be bit-identical across reruns.
CausalScenarioConfig chaos_config() {
  CausalScenarioConfig cfg;
  cfg.nodes = 3;
  cfg.failover = true;
  cfg.heartbeat = true;
  cfg.heartbeat_interval = std::chrono::microseconds(100);
  cfg.heartbeat_suspect_after = std::chrono::microseconds(400);
  cfg.config.request_timeout = std::chrono::microseconds(200);
  cfg.config.request_retries = 2;
  cfg.scripts = {
      {ScriptOp::write(2, 10), ScriptOp::read(0), ScriptOp::read(2)},
      {ScriptOp::write(0, 20), ScriptOp::read(2)},
      {ScriptOp::write(2, 30), ScriptOp::read(1)},
  };
  cfg.chaos = {
      ChaosEvent::crash(20'000, 2),
      ChaosEvent::restart(400'000, 2),
  };
  return cfg;
}

TEST(Determinism, ChaosScheduleBitIdenticalAcrossReruns) {
  const CausalScenarioConfig cfg = chaos_config();
  for (const std::uint64_t seed : {5ULL, 13ULL}) {
    const Observation a = observe_causal(cfg, seed);
    const Observation b = observe_causal(cfg, seed);
    EXPECT_TRUE(a.result.consistent) << a.result.violation;
    expect_identical(a, b, seed);
  }
}

TEST(Determinism, PartitionScheduleBitIdenticalAcrossReruns) {
  CausalScenarioConfig cfg = small_scope_causal();
  cfg.config.request_timeout = std::chrono::microseconds(200);
  cfg.chaos = {
      ChaosEvent::partition(10'000, 0, 1),
      ChaosEvent::heal(300'000, 0, 1),
  };
  const Observation a = observe_causal(cfg, 9);
  const Observation b = observe_causal(cfg, 9);
  EXPECT_TRUE(a.result.consistent) << a.result.violation;
  expect_identical(a, b, 9);
}

}  // namespace
}  // namespace causalmem::sim

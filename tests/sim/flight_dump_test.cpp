// Injected causal violation → automatic flight-recorder dump. The ungated
// broadcast scenario is the explorer's known-bad self-test; with a flight
// dir armed, the failing schedule must leave behind a loadable artifact
// (manifest with a "violation" trigger, correlated trace) alongside the
// minimized schedule — and a clean scenario must leave nothing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "causalmem/obs/correlate.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/sim/explorer.hpp"
#include "causalmem/sim/scenarios.hpp"

namespace causalmem::sim {
namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(FlightDump, UngatedBroadcastViolationDumpsLoadableArtifact) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "flight_dump_bad";
  BroadcastScenarioConfig cfg = small_scope_broadcast(false);
  cfg.flight_dir = base.string();

  ExploreOptions opt;
  // Empirically the violation needs 5 non-canonical delay choices (see
  // ExploreDfs.DelayBoundedSearchStillFindsTheUngatedViolation).
  opt.delay_bound = 5;
  opt.max_schedules = 500'000;
  const ExploreResult res = explore_dfs(make_broadcast_run(cfg), opt);
  ASSERT_FALSE(res.clean()) << "self-test scenario must fail";
  ASSERT_FALSE(res.flight_artifact.empty());

  const std::filesystem::path dir = res.flight_artifact;
  ASSERT_TRUE(std::filesystem::is_directory(dir));

  // manifest.json is written last — its presence marks a complete dump.
  std::string error;
  const auto manifest = obs::parse_json(slurp(dir / "manifest.json"), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->find("schema")->string, "causalmem-flightrec-v1");
  EXPECT_EQ(manifest->find("run_label")->string, "broadcast_scenario");
  const obs::JsonValue* trig = manifest->find("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->find("kind")->string, "violation");
  // The checker's reason (the r(y)=2, r(x)=0 transitivity break) rides in
  // the trigger detail so the artifact is self-explanatory.
  EXPECT_FALSE(trig->find("detail")->string.empty());

  const auto metrics = obs::parse_json(slurp(dir / "metrics.json"), &error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_EQ(metrics->find("schema")->string, "causalmem-metrics-v1");

  // The frozen trace loads back through the correlator and spans the three
  // replicas of the scenario.
  std::vector<obs::TraceEvent> events;
  ASSERT_TRUE(
      obs::trace_events_from_json(slurp(dir / "trace.json"), &events, &error))
      << error;
  EXPECT_FALSE(events.empty());
  obs::TraceCorrelator corr(std::move(events));
  EXPECT_EQ(corr.node_count(), 3u);

  const auto state = obs::parse_json(slurp(dir / "state.json"), &error);
  ASSERT_TRUE(state.has_value()) << error;
  EXPECT_EQ(state->find("schema")->string, "causalmem-flightrec-state-v1");
  EXPECT_EQ(state->find("recent_ops")->array.size(), 3u);
}

TEST(FlightDump, CleanCausalScenarioLeavesNoArtifact) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "flight_dump_clean";
  CausalScenarioConfig cfg = small_scope_causal();
  cfg.flight_dir = base.string();

  ExploreOptions opt;
  opt.delay_bound = 1;
  opt.max_schedules = 200;
  const ExploreResult res = explore_dfs(make_causal_run(cfg), opt);
  EXPECT_TRUE(res.clean()) << res.failure;
  EXPECT_TRUE(res.flight_artifact.empty());
  // Armed but never fired: no artifact directories were created.
  if (std::filesystem::exists(base)) {
    EXPECT_TRUE(std::filesystem::is_empty(base));
  }
}

}  // namespace
}  // namespace causalmem::sim

// Schedule explorer: prefix odometer, DFS / delay-bounded / random search,
// failure minimization and artifact replay. Includes the two acceptance
// anchors of the harness: the causal owner protocol is checker-clean under
// exhaustive small-scope DFS, and the deliberately broken ungated-broadcast
// memory yields a reproducible causal-consistency violation.
#include "causalmem/sim/explorer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "causalmem/sim/scenarios.hpp"

namespace causalmem::sim {
namespace {

std::vector<Choice> dummy_choices(std::size_t n) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Choice{ChoiceKind::kStep, kNoNode, kNoNode,
                         static_cast<std::uint32_t>(i), "t"});
  }
  return out;
}

TEST(NextPrefix, AdvancesDeepestAdvanceablePosition) {
  std::vector<std::size_t> out;
  ASSERT_TRUE(next_prefix({0, 0, 0}, {2, 3, 1}, -1, &out));
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1}));
  ASSERT_TRUE(next_prefix({0, 1, 0}, {2, 3, 1}, -1, &out));
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 2}));
  ASSERT_TRUE(next_prefix({0, 2, 0}, {2, 3, 1}, -1, &out));
  EXPECT_EQ(out, (std::vector<std::size_t>{1}));
}

TEST(NextPrefix, ExhaustsWhenNothingAdvances) {
  std::vector<std::size_t> out;
  EXPECT_FALSE(next_prefix({1, 2}, {2, 3}, -1, &out));
  EXPECT_FALSE(next_prefix({}, {}, -1, &out));
}

TEST(NextPrefix, DelayBoundLimitsDeviations) {
  std::vector<std::size_t> out;
  // One deviation already spent at position 0: bound 1 forbids a second.
  EXPECT_FALSE(next_prefix({1, 0}, {2, 2}, 1, &out));
  ASSERT_TRUE(next_prefix({1, 0}, {2, 2}, 2, &out));
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 1}));
  // Bound 0 permits only the canonical schedule.
  EXPECT_FALSE(next_prefix({0, 0}, {3, 3}, 0, &out));
}

TEST(PrefixStrategy, ReplaysPrefixThenCanonicalTail) {
  PrefixStrategy strat({2, 1});
  const auto choices = dummy_choices(3);
  EXPECT_EQ(strat.pick(choices), 2u);
  EXPECT_EQ(strat.pick(choices), 1u);
  EXPECT_EQ(strat.pick(choices), 0u);
  EXPECT_EQ(strat.pick(choices), 0u);
}

TEST(PrefixStrategy, OutOfRangeIndexAborts) {
  PrefixStrategy strat({5});
  EXPECT_EQ(strat.pick(dummy_choices(3)), Strategy::kAbort);
  EXPECT_NE(strat.error_message().find("out of range"), std::string::npos)
      << strat.error_message();
}

// --- acceptance anchor 1: the owner protocol survives exhaustive DFS ------

TEST(ExploreDfs, CausalSmallScopeExhaustivelyCheckerClean) {
  const RunFn run = make_causal_run(small_scope_causal());
  ExploreOptions opt;
  opt.max_schedules = 10'000;  // exhausts at 584 schedules, ~2s
  const ExploreResult res = explore_dfs(run, opt);
  EXPECT_TRUE(res.clean()) << res.failure << "\n"
                           << res.repro.to_text();
  EXPECT_TRUE(res.exhausted) << res.schedules_run << " schedules ran";
  EXPECT_GT(res.schedules_run, 1u);
}

TEST(ExploreDfs, GatedBroadcastSmallScopeCheckerClean) {
  const RunFn run = make_broadcast_run(small_scope_broadcast(true));
  ExploreOptions opt;
  // Unbounded exhaustion of the broadcast scope is out of unit-test reach
  // (>400k schedules). Bound 4 exhausts at 7354 schedules (~15s); CI's
  // sim-explore job pushes the same scope to bound 5, where the UNGATED
  // variant demonstrably fails — so "gated is clean at the bound that
  // catches ungated" is checked there.
  opt.delay_bound = 4;
  opt.max_schedules = 100'000;
  const ExploreResult res = explore_dfs(run, opt);
  EXPECT_TRUE(res.clean()) << res.failure;
  EXPECT_TRUE(res.exhausted);
}

// --- acceptance anchor 2: ungated broadcast is caught, with a repro -------

TEST(ExploreDfs, UngatedBroadcastViolationFoundAndReplayable) {
  const std::string artifact =
      ::testing::TempDir() + "ungated_broadcast.schedule";
  const RunFn run = make_broadcast_run(small_scope_broadcast(false));
  ExploreOptions opt;
  opt.max_schedules = 500'000;
  opt.artifact_path = artifact;
  const ExploreResult res = explore_dfs(run, opt);
  ASSERT_TRUE(res.found_failure) << res.schedules_run << " schedules ran";
  EXPECT_NE(res.failure.find("causal"), std::string::npos) << res.failure;
  EXPECT_EQ(res.artifact_written, artifact);
  EXPECT_EQ(res.repro.meta_value("minimized"), "true");
  EXPECT_FALSE(res.repro.steps.empty());

  // The artifact file replays to the same violation, twice.
  std::string err;
  const auto loaded = Schedule::load(artifact, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  const ExecutionResult first = replay(run, *loaded);
  ASSERT_TRUE(first.failed()) << "artifact did not reproduce";
  EXPECT_FALSE(first.consistent);
  const ExecutionResult second = replay(run, *loaded);
  EXPECT_EQ(second.violation, first.violation);
  std::remove(artifact.c_str());
}

TEST(ExploreDfs, DelayBoundZeroRunsOnlyTheCanonicalSchedule) {
  const RunFn run = make_causal_run(small_scope_causal());
  ExploreOptions opt;
  opt.delay_bound = 0;
  const ExploreResult res = explore_dfs(run, opt);
  EXPECT_TRUE(res.clean()) << res.failure;
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.schedules_run, 1u);
}

TEST(ExploreDfs, DelayBoundedSearchStillFindsTheUngatedViolation) {
  const RunFn run = make_broadcast_run(small_scope_broadcast(false));
  ExploreOptions opt;
  // Empirically the violation needs 5 non-canonical choices; bound 4
  // exhausts clean in ~7k schedules.
  opt.delay_bound = 5;
  opt.max_schedules = 500'000;
  const ExploreResult bounded = explore_dfs(run, opt);
  EXPECT_TRUE(bounded.found_failure)
      << "delay bound 5 missed the violation after " << bounded.schedules_run
      << " schedules";
}

TEST(ExploreRandom, CausalSmallScopeCleanAcrossSeeds) {
  const RunFn run = make_causal_run(small_scope_causal());
  const ExploreResult res = explore_random(run, /*first_seed=*/1,
                                           /*num_seeds=*/16);
  EXPECT_TRUE(res.clean()) << res.failure << "\n" << res.repro.to_text();
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.schedules_run, 16u);
}

TEST(ExploreRandom, UngatedBroadcastFoundByRandomWalks) {
  const std::string artifact =
      ::testing::TempDir() + "ungated_random.schedule";
  const RunFn run = make_broadcast_run(small_scope_broadcast(false));
  ExploreOptions opt;
  opt.artifact_path = artifact;
  // Seed 145's walk hits the violation (deterministic; the hit rate is
  // roughly 1 in a few hundred walks for this scenario).
  const ExploreResult res = explore_random(run, /*first_seed=*/1,
                                           /*num_seeds=*/512, opt);
  ASSERT_TRUE(res.found_failure)
      << "no random walk in 512 seeds hit the violation";
  EXPECT_EQ(res.repro.meta_value("strategy"), "random");
  ASSERT_TRUE(res.repro.meta_value("seed").has_value());
  // The recorded seed's walk is the repro's provenance; the schedule itself
  // must still replay to a failure.
  const ExecutionResult again = replay(run, res.repro);
  EXPECT_TRUE(again.failed());
  std::remove(artifact.c_str());
}

TEST(Minimize, ReproducesWithShortestFailingPrefix) {
  const RunFn run = make_broadcast_run(small_scope_broadcast(false));
  ExploreOptions opt;
  opt.minimize = false;
  opt.max_schedules = 500'000;
  const ExploreResult raw = explore_dfs(run, opt);
  ASSERT_TRUE(raw.found_failure);

  RunReport failing;
  {
    ReplayStrategy strat(raw.repro);
    const ExecutionResult er = run(strat);
    ASSERT_TRUE(er.failed());
    failing = er.report;
  }
  std::uint64_t runs = 0;
  const Schedule minimized = minimize_failure(run, failing, &runs);
  EXPECT_GT(runs, 0u);
  EXPECT_LE(minimized.steps.size(), raw.repro.steps.size());
  EXPECT_EQ(minimized.meta_value("minimized"), "true");
  const ExecutionResult er = replay(run, minimized);
  EXPECT_TRUE(er.failed());
}

}  // namespace
}  // namespace causalmem::sim

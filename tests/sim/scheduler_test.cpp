// SimScheduler mechanics: cooperative task stepping, park/ready wakeups,
// virtual-time deadlines and timers, deadlock/livelock reporting, transport
// delivery choices, and schedule record/replay.
#include "causalmem/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "causalmem/common/coop.hpp"
#include "causalmem/net/message.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/sim/transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem::sim {
namespace {

/// Cycles through the runnable set: pick 0, 1, 2, ... mod size. Gives the
/// tests a deterministic *interleaving* strategy (FirstChoice never
/// interleaves same-kind choices).
class RoundRobinStrategy final : public Strategy {
 public:
  std::size_t pick(const std::vector<Choice>& choices) override {
    return next_++ % choices.size();
  }

 private:
  std::size_t next_{0};
};

TEST(SimScheduler, RunsTasksToCompletion) {
  SimScheduler sched;
  std::vector<int> order;
  sched.add_task("a", [&] { order.push_back(1); });
  sched.add_task("b", [&] { order.push_back(2); });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(r.steps, 2u);
  ASSERT_EQ(r.schedule.steps.size(), 2u);
  EXPECT_EQ(r.schedule.steps[0].kind, ChoiceKind::kStep);
  EXPECT_EQ(r.schedule.steps[0].label, "a");
}

TEST(SimScheduler, YieldGivesInterleavingChoicePoints) {
  SimScheduler sched;
  std::string order;
  const auto worker = [&order](char tag) {
    return [&order, tag] {
      order.push_back(tag);
      coop::yield();
      order.push_back(tag);
    };
  };
  sched.add_task("a", worker('a'));
  sched.add_task("b", worker('b'));
  RoundRobinStrategy rr;
  const RunReport r = sched.run(rr);
  EXPECT_TRUE(r.ok()) << r.error;
  // pick 0 of {a,b} -> a; pick 1 of {a,b} -> b; pick 0 -> a; pick 1 -> b.
  EXPECT_EQ(order, "abab");
}

TEST(SimScheduler, VirtualTimeTicksPerEvent) {
  SimOptions opt;
  opt.start_ns = 500;
  opt.event_tick_ns = 10;
  SimScheduler sched(opt);
  std::uint64_t seen = 0;
  sched.add_task("t", [&] { seen = obs::now_ns(); });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(seen, 510u);    // one tick before the only event
  EXPECT_EQ(r.end_ns, 510u);
}

TEST(SimScheduler, DeadlineParkForcesTimeAdvance) {
  SimScheduler sched;
  const std::uint64_t deadline = 1'000'000'000ULL + 700'000;
  std::uint64_t woke_at = 0;
  sched.add_task("sleeper", [&] {
    while (obs::now_ns() < deadline) {
      coop::park([] { return false; }, deadline, "sleep");
    }
    woke_at = obs::now_ns();
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GE(woke_at, deadline);
}

TEST(SimScheduler, ParkWakesOnReadyPredicate) {
  SimScheduler sched;
  int flag = 0;
  int observed = -1;
  sched.add_task("consumer", [&] {
    while (flag == 0) {
      coop::park([&flag] { return flag != 0; }, 0, "flag");
    }
    observed = flag;
  });
  sched.add_task("producer", [&] { flag = 1; });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(observed, 1);
}

TEST(SimScheduler, ReportsDeadlockWithDiagnosis) {
  SimScheduler sched;
  sched.add_task("loner", [] {
    coop::park([] { return false; }, 0, "never");
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_NE(r.error.find("loner"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("never"), std::string::npos) << r.error;
}

TEST(SimScheduler, MaxStepsCatchesLivelock) {
  SimOptions opt;
  opt.max_steps = 50;
  SimScheduler sched(opt);
  sched.add_task("spinner", [] {
    for (;;) coop::yield();
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NE(r.error.find("max_steps"), std::string::npos) << r.error;
}

TEST(SimScheduler, OneShotTimerFiresAtDueTime) {
  SimScheduler sched;
  const std::uint64_t due = 1'000'000'000ULL + 5'000;
  std::uint64_t fired_at = 0;
  sched.add_timer("once", due, 0, [&] { fired_at = obs::now_ns(); });
  bool done = false;
  sched.add_task("waiter", [&] {
    while (fired_at == 0) {
      coop::park([&] { return fired_at != 0; }, 0, "timer");
    }
    done = true;
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(done);
  EXPECT_GE(fired_at, due);
}

TEST(SimScheduler, PeriodicTimerReArms) {
  SimScheduler sched;
  const std::uint64_t start = 1'000'000'000ULL;
  int fired = 0;
  sched.add_timer("tick", start + 1'000, 1'000, [&] { ++fired; });
  sched.add_task("waiter", [&] {
    while (fired < 3) {
      coop::park([&] { return fired >= 3; }, 0, "ticks");
    }
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GE(fired, 3);
}

TEST(SimScheduler, TransportSendsBecomeDeliverChoices) {
  SimScheduler sched;
  SimTransport net(2, &sched);
  StatsRegistry stats(2);
  net.attach_stats(&stats);
  std::vector<Value> got;
  net.register_node(0, [](const Message&) {});
  net.register_node(1, [&](const Message& m) { got.push_back(m.value); });
  net.start();
  sched.add_task("sender", [&] {
    for (Value v = 1; v <= 2; ++v) {
      Message m;
      m.type = MsgType::kRead;
      m.from = 0;
      m.to = 1;
      m.value = v;
      net.send(std::move(m));
      coop::yield();
    }
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(got, (std::vector<Value>{1, 2}));  // per-channel FIFO
  EXPECT_EQ(net.delivered_count(), 2u);
  EXPECT_EQ(net.pending_count(), 0u);
  bool saw_deliver = false;
  for (const Choice& c : r.schedule.steps) {
    if (c.kind == ChoiceKind::kDeliver) {
      saw_deliver = true;
      EXPECT_EQ(c.from, 0u);
      EXPECT_EQ(c.to, 1u);
    }
  }
  EXPECT_TRUE(saw_deliver);
}

TEST(SimScheduler, CrashPurgesQueuesAndCountsDrops) {
  SimScheduler sched;
  SimTransport net(2, &sched);
  StatsRegistry stats(2);
  net.attach_stats(&stats);
  int delivered = 0;
  net.register_node(0, [](const Message&) {});
  net.register_node(1, [&](const Message&) { ++delivered; });
  net.start();
  sched.add_task("chaos", [&] {
    Message m;
    m.type = MsgType::kRead;
    m.from = 0;
    m.to = 1;
    net.send(Message(m));      // queued...
    net.crash_node(1);         // ...purged here
    net.send(Message(m));      // dropped at the source
    net.restart_node(1);
    net.send(Message(m));      // delivered normally
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(stats.node(0).get(Counter::kNetFaultDrop), 2u);
}

TEST(SimScheduler, PartitionBlocksSendsButNotInFlight) {
  SimScheduler sched;
  SimTransport net(2, &sched);
  int delivered = 0;
  net.register_node(0, [](const Message&) {});
  net.register_node(1, [&](const Message&) { ++delivered; });
  net.start();
  sched.add_task("t", [&] {
    Message m;
    m.type = MsgType::kRead;
    m.from = 0;
    m.to = 1;
    net.send(Message(m));              // in flight before the cut
    net.set_partition(0, 1, true);
    net.send(Message(m));              // dropped
    net.set_partition(0, 1, false);
    net.send(Message(m));              // flows again
  });
  FirstChoiceStrategy first;
  const RunReport r = sched.run(first);
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(delivered, 2);
}

// A nontrivial scenario for record/replay: two senders race into one
// receiver, so deliver choices from different channels coexist.
RunReport run_pingpong(Strategy& strategy) {
  SimScheduler sched;
  SimTransport net(3, &sched);
  net.register_node(0, [](const Message&) {});
  net.register_node(1, [](const Message&) {});
  net.register_node(2, [](const Message&) {});
  net.start();
  for (NodeId sender = 0; sender < 2; ++sender) {
    sched.add_task("s" + std::to_string(sender), [&net, sender] {
      for (int i = 0; i < 2; ++i) {
        Message m;
        m.type = MsgType::kRead;
        m.from = sender;
        m.to = 2;
        net.send(std::move(m));
        coop::yield();
      }
    });
  }
  return sched.run(strategy);
}

TEST(SimScheduler, ReplayReproducesRecordedSchedule) {
  RandomWalkStrategy walk(1234);
  const RunReport recorded = run_pingpong(walk);
  ASSERT_TRUE(recorded.ok()) << recorded.error;

  ReplayStrategy replay(recorded.schedule);
  const RunReport replayed = run_pingpong(replay);
  EXPECT_TRUE(replayed.ok()) << replayed.error;
  EXPECT_EQ(replayed.schedule.to_text(), recorded.schedule.to_text());
}

TEST(SimScheduler, ReplayDivergenceAborts) {
  Schedule bogus;
  // Nothing is in flight at step 0, so this deliver can never match.
  bogus.steps.push_back(Choice{ChoiceKind::kDeliver, 1, 0, 0, ""});
  ReplayStrategy replay(bogus);
  const RunReport r = run_pingpong(replay);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("diverged"), std::string::npos) << r.error;
}

TEST(SimScheduler, SchedulersAreSequentiallyReusable) {
  for (int i = 0; i < 2; ++i) {
    SimScheduler sched;  // ctor asserts no other scheduler is active
    int ran = 0;
    sched.add_task("t", [&] { ++ran; });
    FirstChoiceStrategy first;
    EXPECT_TRUE(sched.run(first).ok());
    EXPECT_EQ(ran, 1);
  }
}

}  // namespace
}  // namespace causalmem::sim

// Deterministic persistence chaos: checkpoint/crash-with-disk/recover
// schedules must be bit-identical across reruns (including every persist.*
// counter), and the disk-loss + quorum-loss scenario — original owner and
// its successor both dead, only a restarted node's durable copy left — must
// recover the acknowledged write that a persistence-free system provably
// loses. All of it runs on the scenario-owned MemVfs under the scheduler,
// so fault timing is part of the explored schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "causalmem/sim/scenarios.hpp"

namespace causalmem::sim {
namespace {

struct Observation {
  ExecutionResult result;
  ScenarioOutcome outcome;
};

Observation observe(const CausalScenarioConfig& cfg, std::uint64_t seed) {
  Observation obs;
  RandomWalkStrategy walk(seed);
  obs.result = run_causal_scenario(cfg, walk, &obs.outcome);
  return obs;
}

void expect_identical(const Observation& a, const Observation& b,
                      std::uint64_t seed) {
  EXPECT_EQ(a.result.report.schedule.to_text(),
            b.result.report.schedule.to_text())
      << "seed " << seed << ": schedules diverged";
  EXPECT_EQ(a.outcome.history_text, b.outcome.history_text)
      << "seed " << seed << ": histories diverged";
  EXPECT_EQ(a.outcome.trace_text, b.outcome.trace_text)
      << "seed " << seed << ": trace streams diverged";
  EXPECT_EQ(a.outcome.counters_text, b.outcome.counters_text)
      << "seed " << seed << ": counters diverged";
  EXPECT_EQ(a.result.consistent, b.result.consistent) << "seed " << seed;
  EXPECT_EQ(a.result.violation, b.result.violation) << "seed " << seed;
}

/// Node 0 checkpoints, crashes with its disk intact, and recovers from it
/// mid-run while peers keep writing through the owner protocol.
CausalScenarioConfig disk_chaos_config() {
  CausalScenarioConfig cfg;
  cfg.nodes = 3;
  cfg.failover = true;
  cfg.persist = true;
  cfg.checkpoint_every = 2;
  cfg.config.request_timeout = std::chrono::microseconds(200);
  cfg.config.request_retries = 2;
  cfg.scripts = {
      {ScriptOp::write(0, 10), ScriptOp::write(0, 11), ScriptOp::read(1)},
      {ScriptOp::write(1, 20), ScriptOp::read(0), ScriptOp::read(2)},
      {ScriptOp::write(2, 30), ScriptOp::read(0)},
  };
  cfg.chaos = {
      ChaosEvent::checkpoint(15'000, 0),
      ChaosEvent::crash_with_disk(30'000, 0),
      ChaosEvent::recover_from_disk(250'000, 0),
  };
  return cfg;
}

TEST(PersistChaos, DiskRecoveryScheduleBitIdenticalAcrossReruns) {
  const CausalScenarioConfig cfg = disk_chaos_config();
  for (const std::uint64_t seed : {5ULL, 21ULL}) {
    const Observation a = observe(cfg, seed);
    const Observation b = observe(cfg, seed);
    EXPECT_TRUE(a.result.consistent) << a.result.violation;
    // The persist machinery must actually have run: counters_text lists
    // every counter including persist.*, so divergence there is caught by
    // the identity check; non-zero WAL traffic proves coverage.
    EXPECT_NE(a.outcome.counters_text.find("persist.wal_append"),
              std::string::npos);
    expect_identical(a, b, seed);
  }
}

TEST(PersistChaos, MediaLossScheduleBitIdenticalAcrossReruns) {
  CausalScenarioConfig cfg = disk_chaos_config();
  cfg.chaos = {
      ChaosEvent::crash_losing_disk(30'000, 0),
      ChaosEvent::recover_from_disk(250'000, 0),
  };
  for (const std::uint64_t seed : {7ULL, 13ULL}) {
    const Observation a = observe(cfg, seed);
    const Observation b = observe(cfg, seed);
    EXPECT_TRUE(a.result.consistent) << a.result.violation;
    expect_identical(a, b, seed);
  }
}

/// The disk-loss + quorum-loss scenario, sequenced by virtual time:
///   t=5'000      address 2's base owner (node 2) dies — forever.
///   t=50'000     node 0 writes 77; the request times out on the corpse,
///                suspicion migrates the page to node 0 itself, and the
///                write applies there. The value now exists ONLY at node 0.
///   t=600'000    node 0 crashes too — quorum lost, with its disk either
///                surviving (crash_with_disk) or destroyed
///                (crash_losing_disk, the regression's "before" arm).
///   t=900'000    node 0 restarts from whatever its disk still holds.
///   t=1'500'000  node 1 — which observed nothing so far — reads address 2.
CausalScenarioConfig quorum_loss_config(bool keep_disk) {
  CausalScenarioConfig cfg;
  cfg.nodes = 3;
  cfg.failover = true;
  cfg.persist = true;
  cfg.config.request_timeout = std::chrono::microseconds(200);
  cfg.config.request_retries = 2;
  cfg.scripts = {
      {ScriptOp::sleep_until(50'000), ScriptOp::write(2, 77)},
      {ScriptOp::sleep_until(1'500'000), ScriptOp::read(2)},
  };
  cfg.chaos = {
      ChaosEvent::crash_with_disk(5'000, 2),
      keep_disk ? ChaosEvent::crash_with_disk(600'000, 0)
                : ChaosEvent::crash_losing_disk(600'000, 0),
      ChaosEvent::recover_from_disk(900'000, 0),
  };
  return cfg;
}

Value final_read_of_addr2(const Observation& a) {
  Value v = -1;
  for (const Operation& op : a.outcome.history.per_process[1]) {
    if (op.kind == OpKind::kRead && op.addr == 2) v = op.value;
  }
  return v;
}

TEST(PersistChaos, DurableCopySurvivesQuorumLoss) {
  // One schedule, replayed for determinism AND for the durability claim:
  // node 1's read must observe the acknowledged 77 after the only node that
  // ever held it crashed and came back from its (synced) disk.
  const CausalScenarioConfig cfg = quorum_loss_config(/*keep_disk=*/true);
  const Observation a = observe(cfg, 3);
  const Observation b = observe(cfg, 3);
  ASSERT_TRUE(a.result.report.ok()) << a.result.report.error;
  EXPECT_TRUE(a.result.consistent) << a.result.violation;
  expect_identical(a, b, 3);
  EXPECT_EQ(final_read_of_addr2(a), 77)
      << "acknowledged write lost despite durable store:\n"
      << a.outcome.history_text;
}

TEST(PersistChaos, MediaLossLosesWhatTheSyncedDiskKeeps) {
  // The identical schedule with node 0's disk destroyed in the crash: the
  // restarted incarnation restores nothing, enters its lost-disk epoch, and
  // the election finds no copy anywhere (node 2 is dead, node 1 never read
  // the address). The write is gone — node 1 sees the initial value, which
  // is causally sound since nobody surviving ever observed 77. This pins
  // the data-loss baseline that DurableCopySurvivesQuorumLoss improves on.
  const CausalScenarioConfig cfg = quorum_loss_config(/*keep_disk=*/false);
  const Observation a = observe(cfg, 3);
  ASSERT_TRUE(a.result.report.ok()) << a.result.report.error;
  EXPECT_TRUE(a.result.consistent) << a.result.violation;
  EXPECT_EQ(final_read_of_addr2(a), kInitialValue) << a.outcome.history_text;
}

}  // namespace
}  // namespace causalmem::sim

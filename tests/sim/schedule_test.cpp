// Schedule serialization: the text format is the CI artifact contract, so
// round-trips and parse diagnostics get their own coverage.
#include "causalmem/sim/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace causalmem::sim {
namespace {

Schedule sample() {
  Schedule s;
  s.set_meta("scenario", "unit test");
  s.set_meta("seed", "42");
  s.steps.push_back(Choice{ChoiceKind::kDeliver, 0, 1, 0, "READ"});
  s.steps.push_back(Choice{ChoiceKind::kStep, kNoNode, kNoNode, 2, "p2"});
  s.steps.push_back(Choice{ChoiceKind::kTimer, kNoNode, kNoNode, 0, "hb"});
  return s;
}

TEST(Schedule, TextRoundTrip) {
  const Schedule s = sample();
  Schedule back;
  std::string err;
  ASSERT_TRUE(Schedule::parse(s.to_text(), &back, &err)) << err;
  ASSERT_EQ(back.steps.size(), s.steps.size());
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].kind, s.steps[i].kind) << i;
    EXPECT_EQ(back.steps[i].label, s.steps[i].label) << i;
  }
  EXPECT_TRUE(back.steps[0].matches(s.steps[0]));
  EXPECT_EQ(back.meta_value("scenario"), "unit test");
  EXPECT_EQ(back.meta_value("seed"), "42");
  EXPECT_EQ(back.meta_value("absent"), std::nullopt);
}

TEST(Schedule, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "sched_roundtrip.txt";
  const Schedule s = sample();
  std::string err;
  ASSERT_TRUE(s.save(path, &err)) << err;
  const auto back = Schedule::load(path, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->to_text(), s.to_text());
  std::remove(path.c_str());
}

TEST(Schedule, ParseRejectsMissingHeader) {
  Schedule out;
  std::string err;
  EXPECT_FALSE(Schedule::parse("deliver 0 1\n", &out, &err));
  EXPECT_NE(err.find("header"), std::string::npos) << err;
}

TEST(Schedule, ParseRejectsUnknownDirective) {
  Schedule out;
  std::string err;
  EXPECT_FALSE(
      Schedule::parse("# causalmem-schedule-v1\nfrobnicate 1 2\n", &out, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("frobnicate"), std::string::npos) << err;
}

TEST(Schedule, ParseRejectsTruncatedDeliver) {
  Schedule out;
  std::string err;
  EXPECT_FALSE(
      Schedule::parse("# causalmem-schedule-v1\ndeliver 3\n", &out, &err));
  EXPECT_NE(err.find("deliver"), std::string::npos) << err;
}

TEST(Schedule, ParseSkipsCommentsAndBlanks) {
  Schedule out;
  std::string err;
  const std::string text =
      "# causalmem-schedule-v1\n\n# a comment\nstep 1 p1\n";
  ASSERT_TRUE(Schedule::parse(text, &out, &err)) << err;
  ASSERT_EQ(out.steps.size(), 1u);
  EXPECT_EQ(out.steps[0].kind, ChoiceKind::kStep);
  EXPECT_EQ(out.steps[0].actor, 1u);
}

TEST(Schedule, MatchesIgnoresLabel) {
  const Choice a{ChoiceKind::kDeliver, 1, 2, 0, "READ"};
  const Choice b{ChoiceKind::kDeliver, 1, 2, 0, "WRITE"};
  const Choice c{ChoiceKind::kDeliver, 2, 1, 0, "READ"};
  EXPECT_TRUE(a.matches(b));
  EXPECT_FALSE(a.matches(c));
}

TEST(Schedule, SetMetaOverwrites) {
  Schedule s;
  s.set_meta("k", "v1");
  s.set_meta("k", "v2");
  EXPECT_EQ(s.meta.size(), 1u);
  EXPECT_EQ(s.meta_value("k"), "v2");
}

}  // namespace
}  // namespace causalmem::sim

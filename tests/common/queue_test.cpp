#include "causalmem/common/queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace causalmem {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BlockingQueue, TryPopOnEmpty) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(1);
  EXPECT_EQ(q.try_pop(), 1);
}

TEST(BlockingQueue, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::jthread popper([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
}

TEST(BlockingQueue, CloseDrainsPendingItems) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, ConcurrentProducersAllDelivered) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
      });
    }
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(seen[*v]);
    seen[*v] = true;
  }
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace causalmem

// Contract machinery tests: violations must abort with a diagnostic that
// names the kind, the expression and the message.
#include "causalmem/common/expect.hpp"

#include <gtest/gtest.h>

#include "causalmem/common/codec.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem {
namespace {

TEST(Expect, SatisfiedContractsAreSilent) {
  CM_EXPECTS(1 + 1 == 2);
  CM_ENSURES(true);
  CM_ASSERT_MSG(42 > 0, "arithmetic works");
}

TEST(ExpectDeath, PreconditionViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CM_EXPECTS(false), "precondition");
}

TEST(ExpectDeath, MessageAppearsInDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CM_EXPECTS_MSG(false, "the flux capacitor is required"),
               "flux capacitor");
}

TEST(ExpectDeath, UnreachableAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CM_UNREACHABLE("should not get here"), "unreachable");
}

TEST(ExpectDeath, CodecUnderrunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ByteWriter w;
        w.put<std::uint8_t>(1);
        ByteReader r(w.bytes());
        (void)r.get<std::uint64_t>();  // 8 bytes from a 1-byte buffer
      },
      "under-run");
}

TEST(ExpectDeath, VectorClockSizeMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        VectorClock a(2);
        VectorClock b(3);
        a.update(b);
      },
      "precondition");
}

TEST(ExpectDeath, VectorClockIndexOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        VectorClock a(2);
        a.increment(5);
      },
      "precondition");
}

}  // namespace
}  // namespace causalmem

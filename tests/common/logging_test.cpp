#include "causalmem/common/logging.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

TEST(Logging, ThresholdGatesLevels) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));

  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kWarn);  // restore the default for other tests
}

TEST(Logging, MacroEvaluatesLazily) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  CM_LOG_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 0) << "suppressed levels must not evaluate args";
  CM_LOG_ERROR("value: " << expensive());
  EXPECT_EQ(evaluations, 1);
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace causalmem

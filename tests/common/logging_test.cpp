#include "causalmem/common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace causalmem {
namespace {

TEST(Logging, ThresholdGatesLevels) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));

  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kWarn);  // restore the default for other tests
}

TEST(Logging, MacroEvaluatesLazily) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  CM_LOG_DEBUG("value: " << expensive());
  EXPECT_EQ(evaluations, 0) << "suppressed levels must not evaluate args";
  CM_LOG_ERROR("value: " << expensive());
  EXPECT_EQ(evaluations, 1);
  set_log_level(LogLevel::kWarn);
}

TEST(Logging, SinkCapturesMessagesAndRestores) {
  set_log_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });

  CM_LOG_INFO("hello " << 42);
  CM_LOG_DEBUG("below threshold");  // gated before the sink sees it
  CM_LOG_ERROR("boom");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "boom");

  // An empty sink restores the stderr default; captured stops growing.
  set_log_sink({});
  set_log_level(LogLevel::kOff);
  CM_LOG_ERROR("not captured");
  EXPECT_EQ(captured.size(), 2u);
  set_log_level(LogLevel::kWarn);  // restore the default for other tests
}

}  // namespace
}  // namespace causalmem

// Tests for the vendored open-addressing map that backs the protocol hot
// paths. The suite leans on std::unordered_map as the reference model: a
// long randomized op sequence is replayed against both and compared.
#include "causalmem/common/flat_hash_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "causalmem/common/rng.hpp"

namespace causalmem {
namespace {

TEST(FlatHashMapTest, StartsEmpty) {
  FlatHashMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<std::uint64_t, std::string> m;
  auto [it, fresh] = m.try_emplace(1, "one");
  EXPECT_TRUE(fresh);
  EXPECT_EQ(it->second, "one");
  auto [it2, fresh2] = m.try_emplace(1, "uno");
  EXPECT_FALSE(fresh2);          // existing key: value untouched
  EXPECT_EQ(it2->second, "one");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.empty());
}

TEST(FlatHashMapTest, SubscriptDefaultConstructs) {
  FlatHashMap<std::uint64_t, int> m;
  EXPECT_EQ(m[42], 0);
  m[42] = 5;
  EXPECT_EQ(m[42], 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, GrowsPastInitialCapacityAndKeepsAllEntries) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kCount = 10'000;
  for (std::uint64_t i = 0; i < kCount; ++i) m.try_emplace(i * 17, i);
  ASSERT_EQ(m.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto it = m.find(i * 17);
    ASSERT_NE(it, m.end());
    EXPECT_EQ(it->second, i);
  }
}

// Strided keys are the protocol's normal diet (addresses striped by node
// count, page ids). An identity hash under a power-of-two mask would cluster
// them into one long run; the mixer must keep probes short enough that this
// completes instantly.
TEST(FlatHashMapTest, StridedKeysDoNotDegenerate) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 4096; ++i) m.try_emplace(i * 1024, 1);
  EXPECT_EQ(m.size(), 4096u);
  for (std::uint64_t i = 0; i < 4096; ++i) EXPECT_TRUE(m.contains(i * 1024));
}

TEST(FlatHashMapTest, EraseDuringIterationVisitsEveryLiveEntry) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.try_emplace(i, i);
  // Drop the evens through the iterator-erase shape invalidate_cache uses.
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 50u);
  std::uint64_t visited = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k % 2, 1u);
    EXPECT_EQ(k, v);
    ++visited;
  }
  EXPECT_EQ(visited, 50u);
}

// Tombstone reuse: a key that hashes behind a tombstoned slot must be found,
// and re-inserting over tombstones must not grow the table unboundedly.
TEST(FlatHashMapTest, TombstoneChurnStaysBounded) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t round = 0; round < 50'000; ++round) {
    m.try_emplace(round % 7, 1);
    m.erase(round % 7);
  }
  EXPECT_TRUE(m.empty());
  for (std::uint64_t k = 0; k < 7; ++k) m.try_emplace(k, 2);
  EXPECT_EQ(m.size(), 7u);
  for (std::uint64_t k = 0; k < 7; ++k) EXPECT_TRUE(m.contains(k));
}

// erase resets the value slot to V{} immediately, so resources held by the
// value (promises, vectors) are released at erase time, not at rehash time.
TEST(FlatHashMapTest, EraseReleasesValueResources) {
  FlatHashMap<std::uint64_t, std::shared_ptr<int>> m;
  auto sp = std::make_shared<int>(9);
  std::weak_ptr<int> wp = sp;
  m.try_emplace(3, std::move(sp));
  ASSERT_FALSE(wp.expired());
  m.erase(3);
  EXPECT_TRUE(wp.expired());
}

TEST(FlatHashMapTest, MoveOnlyValues) {
  FlatHashMap<std::uint64_t, std::unique_ptr<int>> m;
  m.try_emplace(1, std::make_unique<int>(11));
  m[2] = std::make_unique<int>(22);
  ASSERT_NE(m.find(1), m.end());
  EXPECT_EQ(*m.find(1)->second, 11);
  EXPECT_EQ(*m[2], 22);
  auto it = m.find(1);
  (void)m.erase(it);
  EXPECT_FALSE(m.contains(1));
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatHashMapTest, ClearResets) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.try_emplace(i, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.begin(), m.end());
  m.try_emplace(5, 7);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(5)->second, 7);
}

// Model check: a long random insert/erase/lookup sequence must agree with
// std::unordered_map at every step and in the final contents.
TEST(FlatHashMapTest, AgreesWithUnorderedMapUnderRandomOps) {
  FlatHashMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(0xC0FFEE);
  for (int op = 0; op < 200'000; ++op) {
    const std::uint64_t key = rng.next_below(512) * 31;  // strided, colliding
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // insert-if-absent
        const std::uint64_t val = rng.next();
        flat.try_emplace(key, val);
        ref.try_emplace(key, val);
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      default: {  // lookup
        auto fit = flat.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) EXPECT_EQ(fit->second, rit->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(it->second, v);
  }
  std::size_t flat_count = 0;
  for (const auto& kv : flat) {
    EXPECT_EQ(ref.at(kv.first), kv.second);
    ++flat_count;
  }
  EXPECT_EQ(flat_count, ref.size());
}

}  // namespace
}  // namespace causalmem

#include "causalmem/common/rng.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextInIsInclusive) {
  Rng r(99);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace causalmem

#include "causalmem/common/types.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

TEST(Types, DoubleRoundTripsThroughValue) {
  const double cases[] = {0.0, -0.0, 1.5, -3.25e18, 1e-300, 42.0};
  for (const double d : cases) {
    EXPECT_EQ(double_from_value(value_from_double(d)), d);
  }
}

TEST(Types, WriteTagOrderingAndIdentity) {
  const WriteTag a{1, 5};
  const WriteTag b{1, 6};
  const WriteTag c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (WriteTag{1, 5}));
  EXPECT_NE(a, b);
}

TEST(Types, InitialTagIsDistinguished) {
  const WriteTag init{};
  EXPECT_TRUE(init.is_initial());
  EXPECT_FALSE((WriteTag{0, 1}).is_initial());
  EXPECT_EQ(to_string(init), "w(init)");
  EXPECT_EQ(to_string(WriteTag{3, 7}), "w(P3#7)");
}

TEST(Types, ReservedValuesDistinct) {
  EXPECT_NE(kLambda, kInitialValue);
}

}  // namespace
}  // namespace causalmem

#include "causalmem/common/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace causalmem {
namespace {

TEST(Codec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.put<std::uint8_t>(0xAB);
  w.put<std::int32_t>(-123456);
  w.put<std::uint64_t>(0xDEADBEEFCAFEF00DULL);
  w.put<double>(3.14159);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.get<std::int32_t>(), -123456);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, StringsRoundTrip) {
  ByteWriter w;
  w.put_string("");
  w.put_string("hello causal memory");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello causal memory");
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VectorsRoundTrip) {
  const std::vector<std::uint64_t> v{1, 2, 3, 1ULL << 40};
  ByteWriter w;
  w.put_vector(v);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<std::uint64_t>(), v);
}

TEST(Codec, EmptyVectorRoundTrips) {
  ByteWriter w;
  w.put_vector(std::vector<std::uint32_t>{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_vector<std::uint32_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, RemainingTracksPosition) {
  ByteWriter w;
  w.put<std::uint32_t>(7);
  w.put<std::uint32_t>(9);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Codec, EnumsRoundTrip) {
  enum class E : std::uint16_t { kA = 7, kB = 900 };
  ByteWriter w;
  w.put(E::kB);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<E>(), E::kB);
}

}  // namespace
}  // namespace causalmem

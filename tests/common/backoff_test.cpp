#include "causalmem/common/backoff.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace causalmem {
namespace {

TEST(Backoff, CountsPauses) {
  Backoff b;
  EXPECT_EQ(b.spin_count(), 0u);
  for (int i = 0; i < 5; ++i) b.pause();
  EXPECT_EQ(b.spin_count(), 5u);
  b.reset();
  EXPECT_EQ(b.spin_count(), 0u);
}

TEST(Backoff, EarlyPausesAreCheap) {
  Backoff b;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) b.pause();  // pause/yield territory
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(50));
}

TEST(Backoff, SleepEscalationIsCapped) {
  Backoff b(std::chrono::microseconds(100));
  // Drive deep into sleep territory; each pause must stay ~capped.
  for (int i = 0; i < 40; ++i) b.pause();
  const auto start = std::chrono::steady_clock::now();
  b.pause();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Generous bound: cap is 100us; allow scheduler slack.
  EXPECT_LT(elapsed, std::chrono::milliseconds(50));
}

}  // namespace
}  // namespace causalmem

#include "causalmem/vclock/vector_clock.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

TEST(VectorClock, ZeroClocksAreEqual) {
  VectorClock a(3), b(3);
  EXPECT_EQ(a.compare(b), ClockOrder::kEqual);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.before(b));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VectorClock, IncrementCreatesDomination) {
  VectorClock a(3), b(3);
  b.increment(1);
  EXPECT_EQ(a.compare(b), ClockOrder::kBefore);
  EXPECT_EQ(b.compare(a), ClockOrder::kAfter);
  EXPECT_TRUE(a.before(b));
  EXPECT_FALSE(b.before(a));
}

TEST(VectorClock, IndependentIncrementsAreConcurrent) {
  VectorClock a(3), b(3);
  a.increment(0);
  b.increment(2);
  EXPECT_EQ(a.compare(b), ClockOrder::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
}

TEST(VectorClock, UpdateIsComponentwiseMax) {
  VectorClock a(std::vector<std::uint64_t>{3, 0, 5});
  const VectorClock b(std::vector<std::uint64_t>{1, 4, 2});
  a.update(b);
  EXPECT_EQ(a, VectorClock(std::vector<std::uint64_t>{3, 4, 5}));
}

TEST(VectorClock, UpdateDominatesBothInputs) {
  VectorClock a(4), b(4);
  a.increment(0);
  a.increment(0);
  b.increment(3);
  VectorClock m = a;
  m.update(b);
  EXPECT_TRUE(a.compare(m) != ClockOrder::kAfter);
  EXPECT_TRUE(b.compare(m) != ClockOrder::kAfter);
  EXPECT_TRUE(b.before(m));
}

TEST(VectorClock, PaperComparisonDefinition) {
  // VT < VT' iff forall i VT[i] <= VT'[i] and exists j VT[j] < VT'[j].
  const VectorClock vt(std::vector<std::uint64_t>{1, 2, 3});
  const VectorClock eq(std::vector<std::uint64_t>{1, 2, 3});
  const VectorClock dom(std::vector<std::uint64_t>{1, 2, 4});
  const VectorClock conc(std::vector<std::uint64_t>{0, 9, 3});
  EXPECT_FALSE(vt.before(eq));
  EXPECT_TRUE(vt.before(dom));
  EXPECT_FALSE(dom.before(vt));
  EXPECT_TRUE(vt.concurrent_with(conc));
}

TEST(VectorClock, UpdateIsIdempotentAndCommutative) {
  const VectorClock a(std::vector<std::uint64_t>{5, 1, 0, 7});
  const VectorClock b(std::vector<std::uint64_t>{2, 8, 0, 3});
  VectorClock ab = a;
  ab.update(b);
  VectorClock ba = b;
  ba.update(a);
  EXPECT_EQ(ab, ba);
  VectorClock again = ab;
  again.update(b);
  EXPECT_EQ(again, ab);
}

TEST(VectorClock, CodecRoundTrip) {
  const VectorClock a(std::vector<std::uint64_t>{0, 42, 7, 1u << 20});
  ByteWriter w;
  a.encode(w);
  ByteReader r(w.bytes());
  const VectorClock back = VectorClock::decode(r);
  EXPECT_EQ(a, back);
  EXPECT_TRUE(r.exhausted());
}

TEST(VectorClock, DeltaCodecFallsBackToFullAfterBaselineLoss) {
  // A directed channel's delta chain survives its baseline being evicted or
  // reset mid-stream (node restart, channel-state recycling): the encoder
  // must fall back to a full frame, which re-establishes both baselines, and
  // the chain then resumes delta-compressing.
  ClockCodecState tx, rx;
  VectorClock clock(std::vector<std::uint64_t>{5, 1, 0, 7});
  const auto frame = [&](const VectorClock& c) {
    ByteWriter w;
    c.encode(w, tx);
    ByteReader r(w.bytes());
    const auto mode = static_cast<std::uint8_t>(w.bytes()[0]);
    VectorClock back;
    back.decode_in_place(r, &rx);
    EXPECT_EQ(back, c);
    EXPECT_TRUE(r.exhausted());
    return mode;
  };

  // First frame of the stream: no baseline yet, must go full.
  EXPECT_EQ(frame(clock), VectorClock::kWireFull);
  // One-component bumps now delta-compress.
  clock.increment(2);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);
  clock.increment(2);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);

  // Baseline loss (both ends, as a restart produces): next frame falls back
  // to full even though only one component changed...
  tx.baseline.clear();
  rx.baseline.clear();
  clock.increment(0);
  EXPECT_EQ(frame(clock), VectorClock::kWireFull);
  // ...and the full frame re-seeded the baselines: deltas resume.
  clock.increment(3);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);

  // Baseline size mismatch (channel recycled for a differently-sized
  // cluster) likewise forces full, then recovers.
  tx.baseline = {1, 2};
  rx.baseline = {1, 2};
  clock.increment(1);
  EXPECT_EQ(frame(clock), VectorClock::kWireFull);
  clock.increment(1);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);

  // An every-component change makes a delta frame larger than full; the
  // encoder must pick full (and still advance the baseline).
  for (std::uint32_t i = 0; i < 4; ++i) clock.increment(i);
  EXPECT_EQ(frame(clock), VectorClock::kWireFull);
  clock.increment(0);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);

  // Empty clocks are baseline-transparent: a stamp-less control frame in the
  // middle does not break the delta chain around it.
  const VectorClock empty;
  EXPECT_EQ(frame(empty), VectorClock::kWireFull);
  clock.increment(2);
  EXPECT_EQ(frame(clock), VectorClock::kWireDelta);
}

TEST(VectorClock, ToStringFormatsComponents) {
  const VectorClock a(std::vector<std::uint64_t>{1, 0, 3});
  EXPECT_EQ(a.to_string(), "[1,0,3]");
}

}  // namespace
}  // namespace causalmem

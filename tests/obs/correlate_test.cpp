// TraceCorrelator: cross-node flow grouping over a real 4-node causal run
// (every owner-round send must land in one connected flow with its remote
// receive/apply), flow-arrow emission in the correlated Chrome trace, and
// the lossless JSON round trip (including trace ids) that makes offline
// merging possible.
#include "causalmem/obs/correlate.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/net/message.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/obs/metrics_export.hpp"

namespace causalmem::obs {
namespace {

using CausalSystem = DsmSystem<CausalNode>;

/// A fault-free 4-node run with cross-node traffic in several directions,
/// returning the drained merged trace.
std::vector<TraceEvent> traced_causal_run() {
  SystemOptions opts;
  opts.trace.enabled = true;
  opts.exercise_codec = true;  // trace ids must survive the wire codec
  std::vector<TraceEvent> events;
  {
    CausalSystem sys(4, {}, opts);
    // Striped ownership: addr k is owned by node k % 4. Each write below
    // goes to a remote owner (one Fig. 4 WRITE/W_REPLY round), each first
    // read of a remote location is a READ/R_REPLY round.
    sys.memory(0).write(1, 10);  // owner: node 1
    sys.memory(1).write(2, 21);  // owner: node 2
    sys.memory(2).write(3, 32);  // owner: node 3
    sys.memory(3).write(0, 43);  // owner: node 0
    EXPECT_EQ(sys.memory(2).read(1), 10);
    EXPECT_EQ(sys.memory(0).read(3), 32);
    sys.shutdown();
    events = sys.trace_hub()->events();
  }
  return events;
}

bool has_kind(const TraceFlow& f, TraceEventKind k) {
  for (const TraceEvent& ev : f.events) {
    if (ev.kind == k) return true;
  }
  return false;
}

TEST(TraceCorrelator, EveryOwnerRoundIsOneConnectedCrossNodeFlow) {
  TraceCorrelator corr(traced_causal_run());

  // 4 remote writes + 2 remote read misses = 6 correlated operations.
  std::size_t write_flows = 0;
  std::size_t read_flows = 0;
  for (const TraceFlow& f : corr.flows()) {
    SCOPED_TRACE("trace_id " + std::to_string(f.trace_id));
    EXPECT_NE(f.trace_id, 0u);
    if (has_kind(f, TraceEventKind::kWriteDone)) {
      ++write_flows;
      // The write's full Fig. 4 round, stitched across both nodes: the
      // requester's send, the owner's receive + certified apply, the reply
      // send, the requester's receive and completion.
      EXPECT_TRUE(f.cross_node());
      EXPECT_TRUE(f.complete());
      EXPECT_TRUE(f.connected());
      EXPECT_TRUE(has_kind(f, TraceEventKind::kSend));
      EXPECT_TRUE(has_kind(f, TraceEventKind::kRecv));
      EXPECT_TRUE(has_kind(f, TraceEventKind::kApply));
    } else if (has_kind(f, TraceEventKind::kReadDone)) {
      ++read_flows;
      EXPECT_TRUE(f.cross_node());
      EXPECT_TRUE(f.complete());
      EXPECT_TRUE(f.connected());
    }
  }
  EXPECT_EQ(write_flows, 4u);
  EXPECT_EQ(read_flows, 2u);
  EXPECT_EQ(corr.complete_cross_node_flows().size(), 6u);
  EXPECT_EQ(corr.node_count(), 4u);

  // The owner's apply and the fan-out invalidation sweep carry the write's
  // id, so they land inside the write's flow, not as orphan events.
  for (const TraceFlow* f : corr.complete_cross_node_flows()) {
    for (const TraceEvent& ev : f->events) {
      EXPECT_EQ(ev.trace_id, f->trace_id);
    }
  }
}

TEST(TraceCorrelator, LoneSendWithoutReceiveIsNotConnected) {
  TraceEvent send;
  send.kind = TraceEventKind::kSend;
  send.node = 0;
  send.peer = 1;
  send.msg_type = static_cast<std::uint8_t>(MsgType::kWrite);
  send.trace_id = 42;
  send.ts_ns = 1;
  TraceEvent done = send;
  done.kind = TraceEventKind::kWriteDone;
  done.node = 1;  // pretend another node's buffer had something
  done.ts_ns = 2;
  TraceCorrelator corr({send, done});
  ASSERT_EQ(corr.flows().size(), 1u);
  EXPECT_TRUE(corr.flows()[0].cross_node());
  EXPECT_FALSE(corr.flows()[0].connected());
  EXPECT_TRUE(corr.complete_cross_node_flows().empty());
}

TEST(TraceCorrelator, CorrelatedChromeTraceCarriesFlowArrows) {
  TraceCorrelator corr(traced_causal_run());
  const std::string doc = corr.to_chrome_trace();

  std::string error;
  const auto parsed = parse_json(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* records = parsed->find("traceEvents");
  ASSERT_TRUE(records != nullptr && records->is_array());

  // Each cross-node flow contributes one "s" start and one "f" finish (plus
  // "t" steps), all under cat "flow" with id = the trace id.
  std::size_t starts = 0;
  std::size_t finishes = 0;
  for (const JsonValue& rec : records->array) {
    const JsonValue* ph = rec.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    if (ph->string != "s" && ph->string != "t" && ph->string != "f") continue;
    EXPECT_EQ(rec.find("cat")->string, "flow");
    ASSERT_NE(rec.find("id"), nullptr);
    EXPECT_NE(rec.find("id")->number, 0.0);
    starts += ph->string == "s" ? 1 : 0;
    finishes += ph->string == "f" ? 1 : 0;
  }
  EXPECT_EQ(starts, corr.complete_cross_node_flows().size());
  EXPECT_EQ(starts, finishes);
}

TEST(TraceCorrelator, ChromeTraceJsonRoundTripsLosslessly) {
  const std::vector<TraceEvent> original = traced_causal_run();
  ASSERT_FALSE(original.empty());
  const std::string doc = chrome_trace_json(original, 4);

  std::vector<TraceEvent> loaded;
  std::string error;
  ASSERT_TRUE(trace_events_from_json(doc, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  // Both sides are (ts, node, seq)-ordered; compare field by field — the
  // trace id round trip is what cross-file correlation depends on.
  for (std::size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(loaded[i].seq, original[i].seq);
    EXPECT_EQ(loaded[i].ts_ns, original[i].ts_ns);
    EXPECT_EQ(loaded[i].dur_ns, original[i].dur_ns);
    EXPECT_EQ(loaded[i].node, original[i].node);
    EXPECT_EQ(loaded[i].peer, original[i].peer);
    EXPECT_EQ(loaded[i].kind, original[i].kind);
    EXPECT_EQ(loaded[i].msg_type, original[i].msg_type);
    EXPECT_EQ(loaded[i].addr, original[i].addr);
    EXPECT_EQ(loaded[i].trace_id, original[i].trace_id);
    EXPECT_EQ(loaded[i].vclock, original[i].vclock);
  }

  // Merging the same file twice (e.g. overlapping per-node exports) simply
  // doubles the events; flows still group by id.
  TraceCorrelator twice;
  twice.add_events(loaded);
  twice.add_events(loaded);
  EXPECT_EQ(twice.events().size(), 2 * original.size());
}

TEST(TraceCorrelator, RejectsMalformedDocuments) {
  std::vector<TraceEvent> out;
  std::string error;
  EXPECT_FALSE(trace_events_from_json("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(trace_events_from_json("{\"foo\":1}", &out, &error));
  EXPECT_FALSE(trace_events_from_json("{\"traceEvents\":[1]}", &out, &error));
}

TEST(TraceEventKindName, UnknownKindsGetStableDistinctNames) {
  const auto k200 = static_cast<TraceEventKind>(200);
  const auto k201 = static_cast<TraceEventKind>(201);
  EXPECT_STREQ(trace_event_kind_name(k200), "kind_200");
  EXPECT_STREQ(trace_event_kind_name(k201), "kind_201");
  // Same pointer every call: callers may cache or compare identity.
  EXPECT_EQ(trace_event_kind_name(k200), trace_event_kind_name(k200));
}

}  // namespace
}  // namespace causalmem::obs

// Log-bucketed histogram: bucket-boundary math, merge, and percentile
// semantics (bucket upper bound, clamped to the exact tracked max).
#include "causalmem/obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace causalmem::obs {
namespace {

using S = HistogramSnapshot;

TEST(HistogramBuckets, IdentityBelowSubBuckets) {
  for (std::uint64_t v = 0; v < S::kSubBuckets; ++v) {
    EXPECT_EQ(S::bucket_index(v), v);
    EXPECT_EQ(S::bucket_lower(v), v);
    EXPECT_EQ(S::bucket_upper(v), v);  // exact below 16
  }
}

TEST(HistogramBuckets, BoundariesTileTheRange) {
  // Every bucket's range must start right after the previous bucket's end —
  // no gaps, no overlaps — across the whole 64-bit range.
  for (std::size_t i = 1; i < S::kBucketCount; ++i) {
    EXPECT_EQ(S::bucket_lower(i), S::bucket_upper(i - 1) + 1) << "bucket " << i;
    EXPECT_GE(S::bucket_upper(i), S::bucket_lower(i)) << "bucket " << i;
  }
  EXPECT_EQ(S::bucket_upper(S::kBucketCount - 1), UINT64_MAX);
}

TEST(HistogramBuckets, ValuesMapInsideTheirBucket) {
  const std::uint64_t probes[] = {0,   1,    15,   16,   17,        31,
                                  32,  100,  1023, 1024, 123456789, UINT64_MAX,
                                  255, 4096, (1ULL << 63) + 17};
  for (const std::uint64_t v : probes) {
    const std::size_t i = S::bucket_index(v);
    ASSERT_LT(i, S::kBucketCount) << v;
    EXPECT_GE(v, S::bucket_lower(i)) << v;
    EXPECT_LE(v, S::bucket_upper(i)) << v;
  }
}

TEST(HistogramBuckets, RelativeErrorBounded) {
  // Log-linear with 16 sub-buckets per octave: bucket width <= lower/16,
  // so reporting the upper bound overstates by at most ~1/16.
  for (const std::uint64_t v : {100ULL, 999ULL, 65536ULL, 1000000007ULL}) {
    const std::size_t i = S::bucket_index(v);
    const double lower = static_cast<double>(S::bucket_lower(i));
    const double upper = static_cast<double>(S::bucket_upper(i));
    EXPECT_LE((upper - lower) / lower, 1.0 / 16.0 + 1e-9) << v;
  }
}

TEST(Histogram, CountSumMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  const S s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 60u);
  EXPECT_EQ(s.max, 30u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
}

TEST(Histogram, PercentileExactInLinearRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);  // all below 16: exact
  const S s = h.snapshot();
  EXPECT_EQ(s.percentile(0.0), 1u);    // rank clamps to the first sample
  EXPECT_EQ(s.percentile(50.0), 5u);   // ceil(0.5 * 10) = 5th sample
  EXPECT_EQ(s.percentile(90.0), 9u);
  EXPECT_EQ(s.percentile(100.0), 10u);
}

TEST(Histogram, PercentileReturnsBucketUpperClampedToMax) {
  Histogram h;
  h.record(1000);  // bucket upper bound is > 1000
  const S s = h.snapshot();
  // Single sample: every percentile is that sample's bucket, clamped to the
  // exact max — so the reported value is exact here.
  EXPECT_EQ(s.percentile(50.0), 1000u);
  EXPECT_EQ(s.percentile(99.0), 1000u);
}

TEST(Histogram, PercentileEmptyIsZero) {
  EXPECT_EQ(S{}.percentile(50.0), 0u);
  EXPECT_DOUBLE_EQ(S{}.mean(), 0.0);
}

TEST(Histogram, MergeAddsEverything) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(100000);
  S sa = a.snapshot();
  const S sb = b.snapshot();
  sa += sb;
  EXPECT_EQ(sa.count, 200u);
  EXPECT_EQ(sa.sum, 100u * 10 + 100u * 100000);
  EXPECT_EQ(sa.max, 100000u);
  // Median sits in the low cluster, p99 in the high cluster.
  EXPECT_EQ(sa.percentile(50.0), 10u);
  EXPECT_GE(sa.percentile(99.0), 100000u - 100000u / 16);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(123);
  h.reset();
  const S s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.record(static_cast<std::uint64_t>(t * 1000 + i % 997));
        }
      });
    }
  }
  const S s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

}  // namespace
}  // namespace causalmem::obs

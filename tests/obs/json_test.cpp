// JsonWriter output forms, string escaping, and the recursive-descent parser
// (accept / reject cases plus writer→parser round-trips).
#include "causalmem/obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

namespace causalmem::obs {
namespace {

std::string write_escaped(std::string_view s) {
  std::string out;
  JsonWriter::append_escaped(out, s);
  return out;
}

TEST(JsonWriter, Scalars) {
  {
    JsonWriter w;
    w.value(std::uint64_t{18446744073709551615ULL});
    EXPECT_EQ(std::move(w).str(), "18446744073709551615");
  }
  {
    JsonWriter w;
    w.value(std::int64_t{-42});
    EXPECT_EQ(std::move(w).str(), "-42");
  }
  {
    JsonWriter w;
    w.value(1.5);
    EXPECT_EQ(std::move(w).str(), "1.5");
  }
  {
    JsonWriter w;
    w.value(true);
    EXPECT_EQ(std::move(w).str(), "true");
  }
  {
    JsonWriter w;
    w.null();
    EXPECT_EQ(std::move(w).str(), "null");
  }
  {
    // JSON has no inf/nan: non-finite doubles degrade to null.
    JsonWriter w;
    w.value(1.0 / 0.0);
    EXPECT_EQ(std::move(w).str(), "null");
  }
}

TEST(JsonWriter, CommasAndNestingAreAutomatic) {
  JsonWriter w;
  w.begin_object()
      .key("a")
      .value(1)
      .key("b")
      .begin_array()
      .value(2)
      .value(3)
      .begin_object()
      .end_object()
      .end_array()
      .key("c")
      .value("x")
      .end_object();
  EXPECT_EQ(std::move(w).str(), R"({"a":1,"b":[2,3,{}],"c":"x"})");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_array().begin_object().end_object().begin_array().end_array().end_array();
  EXPECT_EQ(std::move(w).str(), "[{},[]]");
}

TEST(JsonWriter, Escaping) {
  EXPECT_EQ(write_escaped("plain"), R"("plain")");
  EXPECT_EQ(write_escaped("a\"b"), R"("a\"b")");
  EXPECT_EQ(write_escaped("back\\slash"), R"("back\\slash")");
  EXPECT_EQ(write_escaped("tab\there"), R"("tab\there")");
  EXPECT_EQ(write_escaped("nl\n"), R"("nl\n")");
  EXPECT_EQ(write_escaped(std::string_view("\x01", 1)), R"("\u0001")");
  // UTF-8 multi-byte sequences pass through untouched.
  EXPECT_EQ(write_escaped("caf\xc3\xa9"), "\"caf\xc3\xa9\"");
}

TEST(JsonParser, AcceptsScalars) {
  auto v = parse_json("  42 ");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_number());
  EXPECT_DOUBLE_EQ(v->number, 42.0);

  v = parse_json("-1.25e2");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->number, -125.0);

  v = parse_json("\"hi\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_string());
  EXPECT_EQ(v->string, "hi");

  v = parse_json("true");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, JsonValue::Type::kBool);
  EXPECT_TRUE(v->boolean);

  v = parse_json("null");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->type, JsonValue::Type::kNull);
}

TEST(JsonParser, AcceptsNestedStructuresAndPreservesOrder) {
  const auto v = parse_json(R"({"b":[1,2,{"c":null}],"a":"x","b":3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object.size(), 3u);  // duplicate keys kept, insertion order
  EXPECT_EQ(v->object[0].first, "b");
  EXPECT_EQ(v->object[1].first, "a");
  EXPECT_EQ(v->object[2].first, "b");
  // find() returns the first match.
  const JsonValue* b = v->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_DOUBLE_EQ(b->array[1].number, 2.0);
  EXPECT_EQ(b->array[2].find("c")->type, JsonValue::Type::kNull);
  EXPECT_EQ(v->find("absent"), nullptr);
}

TEST(JsonParser, DecodesEscapes) {
  const auto v = parse_json(R"("a\"b\\c\n\t\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParser, RejectsMalformedInput) {
  const char* const bad[] = {
      "",                 // empty
      "{",                // unterminated object
      "[1,2",             // unterminated array
      "[1,]",             // trailing comma
      "{\"a\":}",         // missing member value
      "{\"a\" 1}",        // missing colon
      "{a:1}",            // unquoted key
      "\"unterminated",   // unterminated string
      "\"bad\\q\"",       // unknown escape
      "\"\\u12g4\"",      // non-hex in \u
      "tru",              // truncated literal
      "nul",              // truncated literal
      "1 2",              // trailing garbage
      "{} extra",         // trailing garbage
      "--1",              // malformed number
      "1.2.3",            // malformed number
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_json(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParser, RejectsRawControlCharInString) {
  const std::string text = std::string("\"a") + '\n' + "b\"";
  EXPECT_FALSE(parse_json(text).has_value());
}

TEST(JsonParser, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).has_value());
}

TEST(JsonRoundTrip, WriterOutputParsesBackIdentically) {
  JsonWriter w;
  w.begin_object()
      .key("name")
      .value("causal \"DSM\"\n")
      .key("n")
      .value(std::uint64_t{12345678901234567ULL})
      .key("ratio")
      .value(2.625)
      .key("ok")
      .value(true)
      .key("none");
  w.null();
  w.key("runs").begin_array().value(1).value(2).end_array().end_object();
  const std::string doc = std::move(w).str();

  std::string error;
  const auto v = parse_json(doc, &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("name")->string, "causal \"DSM\"\n");
  EXPECT_DOUBLE_EQ(v->find("n")->number, 12345678901234567.0);
  EXPECT_DOUBLE_EQ(v->find("ratio")->number, 2.625);
  EXPECT_TRUE(v->find("ok")->boolean);
  EXPECT_EQ(v->find("none")->type, JsonValue::Type::kNull);
  ASSERT_EQ(v->find("runs")->array.size(), 2u);
}

}  // namespace
}  // namespace causalmem::obs

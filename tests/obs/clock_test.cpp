// The clock seam: steady by default, swappable for a FakeClock so tracer /
// histogram / OpTiming tests are deterministic.
#include "causalmem/obs/clock.hpp"

#include <gtest/gtest.h>

#include "causalmem/dsm/observer.hpp"

namespace causalmem::obs {
namespace {

TEST(ClockTest, DefaultIsMonotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
  EXPECT_GT(b, 0u);
}

TEST(ClockTest, FakeClockControlsNow) {
  FakeClock fake(1000);
  ScopedClockSource scope(&fake);
  EXPECT_EQ(now_ns(), 1000u);
  fake.advance_ns(234);
  EXPECT_EQ(now_ns(), 1234u);
  fake.set_ns(5);
  EXPECT_EQ(now_ns(), 5u);
}

TEST(ClockTest, ScopedSourceRestoresDefault) {
  {
    FakeClock fake(42);
    ScopedClockSource scope(&fake);
    EXPECT_EQ(now_ns(), 42u);
  }
  // Back on the steady clock: values are large and advancing.
  EXPECT_GT(now_ns(), 1000000u);
}

TEST(ClockTest, OpTimingUsesTheSeam) {
  FakeClock fake(100);
  ScopedClockSource scope(&fake);
  const OpTiming t = OpTiming::begin();
  EXPECT_EQ(t.start_ns, 100u);
  fake.advance_ns(50);
  const OpTiming closed = t.close();
  EXPECT_EQ(closed.start_ns, 100u);
  EXPECT_EQ(closed.end_ns, 150u);
}

}  // namespace
}  // namespace causalmem::obs

// MetricsExporter: golden header shape, and the full document round-tripped
// through the bundled JSON parser — counters, latency histograms, trace
// summary — plus the Chrome-trace renderer's structural invariants.
#include "causalmem/obs/metrics_export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "causalmem/obs/clock.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/stats/counters.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem::obs {
namespace {

TEST(MetricsExporter, GoldenEmptyDocument) {
  MetricsExporter exporter("bench_x");
  exporter.set_meta("experiment", "E1");
  // The header layout is part of the schema contract: fixed key order,
  // compact separators, no trailing content.
  EXPECT_EQ(exporter.to_json(),
            R"({"schema":"causalmem-metrics-v1","benchmark":"bench_x",)"
            R"("meta":{"experiment":"E1"},"runs":[]})");
}

JsonValue parse_ok(const std::string& doc) {
  std::string error;
  const auto v = parse_json(doc, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return v.value_or(JsonValue{});
}

TEST(MetricsExporter, FullDocumentRoundTripsThroughParser) {
  StatsRegistry stats(2);
  stats.node(0).bump(Counter::kMsgReadRequest, 5);
  stats.node(0).bump(Counter::kReadHit, 7);
  stats.node(1).bump(Counter::kMsgReadReply, 5);
  stats.node(0).record_latency(LatencyMetric::kReadNs, 10);
  stats.node(0).record_latency(LatencyMetric::kReadNs, 20);
  stats.node(1).record_latency(LatencyMetric::kReadNs, 30);

  MetricsExporter exporter("bench_y");
  exporter.set_meta("workload", "unit \"test\"");
  RunMetrics& run = exporter.add_run("causal n=2");
  run.set_param("n", 2);
  run.set_value("elapsed_ms", 1.5);
  run.capture(stats);

  TraceHub hub(2, 8);
  hub.node(0).record(TraceEventKind::kSend);
  hub.node(1).record(TraceEventKind::kRecv);
  run.capture_trace(hub);

  const JsonValue doc = parse_ok(exporter.to_json());
  EXPECT_EQ(doc.find("schema")->string, "causalmem-metrics-v1");
  EXPECT_EQ(doc.find("benchmark")->string, "bench_y");
  EXPECT_EQ(doc.find("meta")->find("workload")->string, "unit \"test\"");

  const JsonValue* runs = doc.find("runs");
  ASSERT_TRUE(runs != nullptr && runs->is_array());
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& r = runs->array[0];
  EXPECT_EQ(r.find("label")->string, "causal n=2");
  EXPECT_DOUBLE_EQ(r.find("params")->find("n")->number, 2.0);
  EXPECT_DOUBLE_EQ(r.find("values")->find("elapsed_ms")->number, 1.5);

  // Totals aggregate both nodes; only non-zero counters are emitted.
  const JsonValue* totals = r.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_DOUBLE_EQ(totals->find("messages_sent")->number, 10.0);
  const JsonValue* counters = totals->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->object.size(), 3u);
  EXPECT_DOUBLE_EQ(
      counters->find(counter_name(Counter::kMsgReadRequest))->number, 5.0);
  EXPECT_EQ(counters->find(counter_name(Counter::kMsgInvalidate)), nullptr);

  const JsonValue* nodes = r.find("nodes");
  ASSERT_TRUE(nodes != nullptr && nodes->is_array());
  ASSERT_EQ(nodes->array.size(), 2u);
  EXPECT_DOUBLE_EQ(nodes->array[0].find("node")->number, 0.0);
  EXPECT_DOUBLE_EQ(nodes->array[0].find("messages_sent")->number, 5.0);
  EXPECT_DOUBLE_EQ(
      nodes->array[1].find("counters")->find(
          counter_name(Counter::kMsgReadReply))->number, 5.0);

  // Latency: only metrics with samples appear; the histogram is merged over
  // nodes and its bucket triples [lower, upper, count] cover every sample.
  const JsonValue* latency = r.find("latency");
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->object.size(), 1u);
  const JsonValue* read_ns =
      latency->find(latency_metric_name(LatencyMetric::kReadNs));
  ASSERT_NE(read_ns, nullptr);
  EXPECT_DOUBLE_EQ(read_ns->find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(read_ns->find("sum")->number, 60.0);
  EXPECT_DOUBLE_EQ(read_ns->find("max")->number, 30.0);
  EXPECT_DOUBLE_EQ(read_ns->find("mean")->number, 20.0);
  EXPECT_DOUBLE_EQ(read_ns->find("p50")->number, 20.0);
  double bucket_samples = 0;
  for (const JsonValue& triple : read_ns->find("buckets")->array) {
    ASSERT_EQ(triple.array.size(), 3u);
    EXPECT_LE(triple.array[0].number, triple.array[1].number);
    bucket_samples += triple.array[2].number;
  }
  EXPECT_DOUBLE_EQ(bucket_samples, 3.0);

  const JsonValue* trace = r.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_DOUBLE_EQ(trace->find("retained")->number, 2.0);
  EXPECT_DOUBLE_EQ(trace->find("attempted")->number, 2.0);
  EXPECT_DOUBLE_EQ(trace->find("dropped")->number, 0.0);
}

TEST(MetricsExporter, OmitsTraceSectionWhenNotCaptured) {
  MetricsExporter exporter("bench_z");
  exporter.add_run("r");
  const JsonValue doc = parse_ok(exporter.to_json());
  EXPECT_EQ(doc.find("runs")->array[0].find("trace"), nullptr);
}

TEST(MetricsExporter, AddRunReferencesStayValid) {
  MetricsExporter exporter("bench_z");
  RunMetrics& first = exporter.add_run("first");
  for (int i = 0; i < 50; ++i) exporter.add_run("other");
  first.set_value("v", 9);  // must not have been invalidated by growth
  EXPECT_EQ(exporter.run_count(), 51u);
  EXPECT_EQ(exporter.run(0).label, "first");
  ASSERT_EQ(exporter.run(0).values.size(), 1u);
  EXPECT_DOUBLE_EQ(exporter.run(0).values[0].second, 9.0);
}

TEST(MetricsExporter, WriteProducesParseableFile) {
  MetricsExporter exporter("bench_file");
  const std::string path = testing::TempDir() + "/causalmem_metrics_test.json";
  ASSERT_TRUE(exporter.write(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_TRUE(parse_json(text).has_value());
  std::remove(path.c_str());
}

TEST(ChromeTrace, StructureMatchesTheTraceFormat) {
  FakeClock fake(1000);
  ScopedClockSource scope(&fake);
  TraceHub hub(2, 16);
  VectorClock vt(2);
  vt.increment(0);
  hub.node(0).record(TraceEventKind::kSend, 0, /*peer=*/1, /*addr=*/7, &vt);
  fake.advance_ns(500);
  hub.node(1).record(TraceEventKind::kReadDone, 0, kNoNode, 7, nullptr,
                     /*ts_ns=*/1200, /*dur_ns=*/300);

  const JsonValue doc = parse_ok(chrome_trace_json(hub.events(), 2));
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ns");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  // Two process_name metadata records, then the two events.
  ASSERT_EQ(events->array.size(), 4u);
  EXPECT_EQ(events->array[0].find("ph")->string, "M");
  EXPECT_EQ(events->array[1].find("args")->find("name")->string, "node 1");

  const JsonValue& instant = events->array[2];
  EXPECT_EQ(instant.find("name")->string, "send");
  EXPECT_EQ(instant.find("ph")->string, "i");
  EXPECT_EQ(instant.find("s")->string, "t");
  EXPECT_DOUBLE_EQ(instant.find("pid")->number, 0.0);
  EXPECT_DOUBLE_EQ(instant.find("ts")->number, 1.0);  // 1000 ns = 1 µs
  EXPECT_DOUBLE_EQ(instant.find("args")->find("peer")->number, 1.0);
  EXPECT_DOUBLE_EQ(instant.find("args")->find("addr")->number, 7.0);
  ASSERT_NE(instant.find("args")->find("vt"), nullptr);
  EXPECT_DOUBLE_EQ(instant.find("args")->find("vt")->array[0].number, 1.0);

  const JsonValue& span = events->array[3];
  EXPECT_EQ(span.find("name")->string, "read");
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(span.find("pid")->number, 1.0);
  EXPECT_DOUBLE_EQ(span.find("ts")->number, 1.2);
  EXPECT_DOUBLE_EQ(span.find("dur")->number, 0.3);
  // Point event carries no peer: the arg is omitted, not kNoNode.
  EXPECT_EQ(span.find("args")->find("peer"), nullptr);
}

}  // namespace
}  // namespace causalmem::obs

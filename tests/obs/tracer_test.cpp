// Ring-buffer tracer: capacity rounding, drop-oldest wraparound, event
// payload fidelity, and lock-free recording from many concurrent writers
// (exercised under TSan in the sanitizer CI job).
#include "causalmem/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "causalmem/obs/clock.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem::obs {
namespace {

TEST(Tracer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Tracer(0, 1).capacity(), 2u);
  EXPECT_EQ(Tracer(0, 2).capacity(), 2u);
  EXPECT_EQ(Tracer(0, 3).capacity(), 4u);
  EXPECT_EQ(Tracer(0, 1000).capacity(), 1024u);
}

TEST(Tracer, RecordsPayloadVerbatim) {
  FakeClock fake(777);
  ScopedClockSource scope(&fake);
  Tracer t(3, 16);
  VectorClock vt(4);
  vt.increment(1);
  vt.increment(1);
  t.record(TraceEventKind::kSend, 2, /*peer=*/1, /*addr=*/42, &vt);
  t.record(TraceEventKind::kReadDone, 0, kNoNode, 7, nullptr,
           /*ts_ns=*/500, /*dur_ns=*/250);

  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kSend);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].peer, 1u);
  EXPECT_EQ(events[0].addr, 42u);
  EXPECT_EQ(events[0].msg_type, 2u);
  EXPECT_EQ(events[0].ts_ns, 777u);  // "now" from the fake clock
  EXPECT_EQ(events[0].vclock, (std::vector<std::uint64_t>{0, 2, 0, 0}));
  EXPECT_EQ(events[1].ts_ns, 500u);  // explicit start stamp
  EXPECT_EQ(events[1].dur_ns, 250u);
  EXPECT_TRUE(events[1].vclock.empty());
}

TEST(Tracer, WraparoundKeepsNewest) {
  Tracer t(0, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.record(TraceEventKind::kSend, 0, kNoNode, /*addr=*/i);
  }
  const auto events = t.events();
  ASSERT_EQ(events.size(), 8u);
  // Drop-oldest: the retained window is exactly the last 8 records, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].addr, 12 + i);
  }
  EXPECT_EQ(t.attempted(), 20u);
  EXPECT_EQ(t.dropped(), 0u);  // single writer never collides
}

TEST(Tracer, ResetEmptiesTheWindow) {
  Tracer t(0, 8);
  t.record(TraceEventKind::kSend);
  t.reset();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.attempted(), 0u);
}

TEST(Tracer, ConcurrentWritersNeverBlockOrCorrupt) {
  // Small ring + many writers forces constant wraparound and slot collisions.
  // The invariants: every retained event is internally consistent (its addr
  // encodes writer/index), kept + dropped == attempted, and seq values are
  // unique — torn slots would violate the first, lost tickets the second.
  Tracer t(0, 64);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  {
    std::vector<std::jthread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&t, w] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          t.record(TraceEventKind::kSend, static_cast<std::uint8_t>(w + 1),
                   static_cast<NodeId>(w),
                   /*addr=*/static_cast<Addr>(w) * kPerThread + i);
        }
      });
    }
  }
  // Writers joined: the window is quiescent and safe to drain.
  const auto events = t.events();
  EXPECT_LE(events.size(), t.capacity());
  EXPECT_EQ(t.attempted(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> seqs;
  for (const TraceEvent& ev : events) {
    const auto w = static_cast<std::uint64_t>(ev.msg_type) - 1;
    EXPECT_LT(w, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(ev.peer, w);                       // peer and msg_type agree
    EXPECT_EQ(ev.addr / kPerThread, w);          // addr written by same writer
    EXPECT_TRUE(seqs.insert(ev.seq).second);     // unique tickets
    EXPECT_LT(ev.seq, t.attempted());
  }
  // Slot collisions may drop events, but never lose accounting.
  EXPECT_LE(t.dropped(), t.attempted() - events.size());
}

TEST(TraceHub, MergesAndOrdersAcrossNodes) {
  FakeClock fake(0);
  ScopedClockSource scope(&fake);
  TraceHub hub(3, 16);
  fake.set_ns(30);
  hub.node(2).record(TraceEventKind::kSend, 0, kNoNode, 1);
  fake.set_ns(10);
  hub.node(0).record(TraceEventKind::kSend, 0, kNoNode, 2);
  fake.set_ns(20);
  hub.node(1).record(TraceEventKind::kSend, 0, kNoNode, 3);

  const auto events = hub.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].node, 0u);
  EXPECT_EQ(events[1].node, 1u);
  EXPECT_EQ(events[2].node, 2u);
  EXPECT_EQ(hub.attempted(), 3u);
  EXPECT_EQ(hub.dropped(), 0u);
}

}  // namespace
}  // namespace causalmem::obs

// FlightRecorder: the anomaly-triggered dump must be one-shot, produce a
// self-describing artifact directory (manifest last, so its presence marks a
// complete dump), and capture enough state — correlated trace, counters,
// vector clocks, recent ops — to debug the run post-mortem.
#include "causalmem/obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/obs/correlate.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem::obs {
namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

JsonValue parse_file(const std::filesystem::path& p) {
  std::string error;
  auto v = parse_json(slurp(p), &error);
  EXPECT_TRUE(v.has_value()) << p << ": " << error;
  return v ? *v : JsonValue{};
}

std::string temp_base(const char* leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

TEST(FlightRecorder, ManualDumpWritesCompleteArtifact) {
  StatsRegistry stats(2);
  TraceHub hub(2, 64);
  stats.node(0).set_tracer(&hub.node(0));
  stats.node(1).set_tracer(&hub.node(1));
  stats.node(0).bump(Counter::kReadHit);
  hub.node(0).record(TraceEventKind::kWriteDone, 0, kNoNode, 7);
  hub.node(1).record(TraceEventKind::kRecv, 3, 0, 7);

  FlightRecorderOptions opts;
  opts.artifact_dir = temp_base("fr_manual");
  opts.run_label = "unit";
  opts.recent_ops = 4;
  FlightRecorder fr(opts);
  fr.attach(&stats, &hub);
  fr.set_vclock_probe([] {
    return std::vector<std::vector<std::uint64_t>>{{1, 0}, {1, 2}};
  });
  RecentOp op;
  op.is_write = true;
  op.addr = 7;
  op.value = 99;
  fr.note_op(1, op);

  ASSERT_TRUE(fr.dump("unit test"));
  EXPECT_TRUE(fr.fired());
  const std::filesystem::path dir = fr.artifact_path();
  ASSERT_FALSE(dir.empty());
  ASSERT_TRUE(std::filesystem::is_directory(dir));

  const JsonValue manifest = parse_file(dir / "manifest.json");
  EXPECT_EQ(manifest.find("schema")->string, "causalmem-flightrec-v1");
  EXPECT_EQ(manifest.find("run_label")->string, "unit");
  const JsonValue* trig = manifest.find("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->find("kind")->string, "manual");
  EXPECT_EQ(trig->find("detail")->string, "unit test");
  ASSERT_TRUE(manifest.find("files")->is_array());
  EXPECT_EQ(manifest.find("files")->array.size(), 3u);

  const JsonValue metrics = parse_file(dir / "metrics.json");
  EXPECT_EQ(metrics.find("schema")->string, "causalmem-metrics-v1");

  // trace.json is a correlated Chrome trace that loads back losslessly.
  std::vector<TraceEvent> loaded;
  std::string error;
  ASSERT_TRUE(trace_events_from_json(slurp(dir / "trace.json"), &loaded,
                                     &error))
      << error;
  EXPECT_EQ(loaded.size(), 2u);

  const JsonValue state = parse_file(dir / "state.json");
  EXPECT_EQ(state.find("schema")->string, "causalmem-flightrec-state-v1");
  const JsonValue* vclocks = state.find("vclocks");
  ASSERT_TRUE(vclocks != nullptr && vclocks->is_array());
  ASSERT_EQ(vclocks->array.size(), 2u);
  EXPECT_EQ(vclocks->array[1].array[1].number, 2.0);
  const JsonValue* recent = state.find("recent_ops");
  ASSERT_TRUE(recent != nullptr && recent->is_array());
  ASSERT_EQ(recent->array.size(), 2u);
  EXPECT_TRUE(recent->array[0].find("ops")->array.empty());
  const JsonValue* node1_ops = recent->array[1].find("ops");
  ASSERT_EQ(node1_ops->array.size(), 1u);
  EXPECT_EQ(node1_ops->array[0].find("value")->number, 99.0);
}

TEST(FlightRecorder, LatchIsOneShotButTriggersKeepCounting) {
  FlightRecorderOptions opts;
  opts.artifact_dir = temp_base("fr_latch");
  FlightRecorder fr(opts);
  StatsRegistry stats(1);
  fr.attach(&stats, nullptr);

  EXPECT_TRUE(fr.dump("first"));
  EXPECT_FALSE(fr.dump("second"));  // latched
  fr.on_violation("late violation");
  EXPECT_EQ(fr.trigger_count(), 3u);
  EXPECT_EQ(fr.last_trigger().detail, "first");
}

TEST(FlightRecorder, CounterPredicateFiresOnPoll) {
  StatsRegistry stats(1);
  FlightRecorderOptions opts;
  opts.artifact_dir = temp_base("fr_counter");
  FlightRecorder fr(opts);
  fr.attach(&stats, nullptr);
  fr.add_counter_trigger("too_many_retransmits", [](const StatsRegistry& s) {
    return s.total()[Counter::kNetRetransmit] > 2;
  });

  fr.poll();
  EXPECT_FALSE(fr.fired());
  for (int i = 0; i < 3; ++i) stats.node(0).bump(Counter::kNetRetransmit);
  fr.poll();
  EXPECT_TRUE(fr.fired());
  EXPECT_EQ(fr.last_trigger().kind, "counter");
  EXPECT_EQ(fr.last_trigger().detail, "too_many_retransmits");
  ASSERT_FALSE(fr.artifact_path().empty());
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(fr.artifact_path()) / "manifest.json"));
}

TEST(FlightRecorder, DisarmedRecorderRecordsTriggerWithoutArtifact) {
  FlightRecorderOptions opts;
  opts.artifact_dir = temp_base("fr_disarmed");
  opts.armed = false;
  FlightRecorder fr(opts);
  StatsRegistry stats(1);
  fr.attach(&stats, nullptr);

  fr.on_unreachable(0, 1, 2, 42);
  EXPECT_TRUE(fr.fired());
  EXPECT_EQ(fr.last_trigger().kind, "unreachable");
  EXPECT_EQ(fr.last_trigger().node, 0u);
  EXPECT_EQ(fr.last_trigger().peer, 1u);
  EXPECT_TRUE(fr.artifact_path().empty());
  EXPECT_FALSE(std::filesystem::exists(opts.artifact_dir));
}

TEST(FlightRecorder, RecentOpRingIsBoundedOldestFirst) {
  StatsRegistry stats(1);
  FlightRecorderOptions opts;
  opts.artifact_dir = temp_base("fr_ring");
  opts.recent_ops = 3;
  FlightRecorder fr(opts);
  fr.attach(&stats, nullptr);
  for (int i = 0; i < 5; ++i) {
    RecentOp op;
    op.addr = static_cast<Addr>(i);
    op.value = i;
    fr.note_op(0, op);
  }
  ASSERT_TRUE(fr.dump("ring"));
  const JsonValue state =
      parse_file(std::filesystem::path(fr.artifact_path()) / "state.json");
  const JsonValue& node0 = state.find("recent_ops")->array[0];
  EXPECT_EQ(node0.find("total")->number, 5.0);  // all 5 ops counted...
  const JsonValue& ops = *node0.find("ops");
  ASSERT_EQ(ops.array.size(), 3u);  // ...but bounded to the last 3
  EXPECT_EQ(ops.array[0].find("value")->number, 2.0);  // oldest surviving
  EXPECT_EQ(ops.array[2].find("value")->number, 4.0);  // newest
}

// End to end: a causal violation injected via the ungated broadcast
// self-test path is covered in tests/sim/flight_dump_test.cpp; here we check
// the DsmSystem wiring — enabling flight forces tracing on, chains the
// recent-ops observer, and exposes the recorder.
TEST(FlightRecorder, DsmSystemWiringCapturesLiveRun) {
  SystemOptions opts;
  opts.flight.enabled = true;
  opts.flight.recorder.artifact_dir = temp_base("fr_system");
  opts.flight.recorder.run_label = "system";
  DsmSystem<CausalNode> sys(2, {}, opts);
  sys.memory(0).write(1, 5);  // remote write: owner node 1
  EXPECT_EQ(sys.memory(1).read(1), 5);

  FlightRecorder* fr = sys.flight_recorder();
  ASSERT_NE(fr, nullptr);
  ASSERT_TRUE(fr->dump("snapshot"));
  const std::filesystem::path dir = fr->artifact_path();

  // force_trace turned tracing on: the trace has the write's wire round.
  std::vector<TraceEvent> loaded;
  std::string error;
  ASSERT_TRUE(trace_events_from_json(slurp(dir / "trace.json"), &loaded,
                                     &error))
      << error;
  EXPECT_FALSE(loaded.empty());
  TraceCorrelator corr(std::move(loaded));
  EXPECT_FALSE(corr.complete_cross_node_flows().empty());

  // The observer chain recorded the ops; the vclock probe saw real clocks.
  const JsonValue state = parse_file(dir / "state.json");
  ASSERT_EQ(state.find("recent_ops")->array.size(), 2u);
  EXPECT_FALSE(state.find("recent_ops")->array[0].find("ops")->array.empty());
  ASSERT_EQ(state.find("vclocks")->array.size(), 2u);
  EXPECT_EQ(state.find("vclocks")->array[0].array.size(), 2u);
  sys.shutdown();
}

}  // namespace
}  // namespace causalmem::obs

#include "causalmem/stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace causalmem {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"n", "causal", "atomic"});
  t.add_row({"2", "10", "11"});
  t.add_row({"16", "38", "53"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| causal |"), std::string::npos);
  EXPECT_NE(out.find("|  2 |"), std::string::npos);
  EXPECT_NE(out.find("| 16 |"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace causalmem

#include "causalmem/stats/counters.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace causalmem {
namespace {

TEST(Counters, BumpAndSnapshot) {
  NodeStats s;
  s.bump(Counter::kMsgReadRequest);
  s.bump(Counter::kMsgReadRequest);
  s.bump(Counter::kReadHit, 5);
  const StatsSnapshot snap = s.snapshot();
  EXPECT_EQ(snap[Counter::kMsgReadRequest], 2u);
  EXPECT_EQ(snap[Counter::kReadHit], 5u);
  EXPECT_EQ(snap[Counter::kMsgWriteRequest], 0u);
}

TEST(Counters, MessagesSentCountsOnlyWireCounters) {
  NodeStats s;
  s.bump(Counter::kMsgReadRequest);
  s.bump(Counter::kMsgWriteReply, 3);
  s.bump(Counter::kReadHit, 100);   // not a message
  s.bump(Counter::kDiscard, 100);   // not a message
  EXPECT_EQ(s.snapshot().messages_sent(), 4u);
}

TEST(Counters, SnapshotArithmetic) {
  NodeStats s;
  s.bump(Counter::kMsgInvalidate, 7);
  const StatsSnapshot a = s.snapshot();
  s.bump(Counter::kMsgInvalidate, 3);
  const StatsSnapshot b = s.snapshot();
  EXPECT_EQ((b - a)[Counter::kMsgInvalidate], 3u);
  StatsSnapshot sum = a;
  sum += b;
  EXPECT_EQ(sum[Counter::kMsgInvalidate], 17u);
}

TEST(Counters, RegistryTotalsAcrossNodes) {
  StatsRegistry reg(3);
  reg.node(0).bump(Counter::kMsgBroadcast, 2);
  reg.node(1).bump(Counter::kMsgBroadcast, 5);
  reg.node(2).bump(Counter::kReadMiss);
  const StatsSnapshot total = reg.total();
  EXPECT_EQ(total[Counter::kMsgBroadcast], 7u);
  EXPECT_EQ(total[Counter::kReadMiss], 1u);
  reg.reset();
  EXPECT_EQ(reg.total().messages_sent(), 0u);
}

TEST(Counters, ConcurrentBumpsAreNotLost) {
  NodeStats s;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    std::vector<std::jthread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) s.bump(Counter::kReadHit);
      });
    }
  }
  EXPECT_EQ(s.get(Counter::kReadHit), 1ull * kThreads * kPerThread);
}

TEST(Counters, EveryCounterHasAName) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_STRNE(counter_name(static_cast<Counter>(i)), "unknown");
  }
}

}  // namespace
}  // namespace causalmem

// E7: the Section 4.2 distributed dictionary on causal memory with
// owner-wins conflict resolution.
#include "causalmem/apps/dict/dictionary.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

constexpr std::size_t kSlots = 8;

CausalConfig dict_config() {
  CausalConfig cfg;
  cfg.conflict = ConflictPolicy::kOwnerWins;
  return cfg;
}

struct DictSystem {
  explicit DictSystem(std::size_t n, OpObserver* obs = nullptr)
      : sys(n, dict_config(), {}, Dictionary::make_ownership(n, kSlots), obs) {
    for (NodeId i = 0; i < n; ++i) {
      dicts.push_back(std::make_unique<Dictionary>(sys.memory(i), n, kSlots));
    }
  }
  Dictionary& operator[](NodeId i) { return *dicts[i]; }

  DsmSystem<CausalNode> sys;
  std::vector<std::unique_ptr<Dictionary>> dicts;
};

TEST(Dictionary, InsertThenLocalLookup) {
  DictSystem d(2);
  EXPECT_TRUE(d[0].insert(100));
  EXPECT_TRUE(d[0].lookup(100));
  EXPECT_FALSE(d[0].lookup(200));
}

TEST(Dictionary, LookupSeesRemoteInsert) {
  DictSystem d(3);
  EXPECT_TRUE(d[1].insert(42));
  EXPECT_TRUE(d[0].lookup(42)) << "scan must fetch row 1 from its owner";
}

TEST(Dictionary, DeleteRemovesItemEverywhereEventually) {
  DictSystem d(2);
  EXPECT_TRUE(d[0].insert(7));
  EXPECT_TRUE(d[1].lookup(7));
  EXPECT_TRUE(d[1].remove(7));  // deletes from P0's row, remotely
  d[0].refresh();
  d[1].refresh();
  EXPECT_FALSE(d[1].lookup(7));
  EXPECT_FALSE(d[0].lookup(7));
}

TEST(Dictionary, RowFillsUpAndInsertFails) {
  DictSystem d(1);
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_TRUE(d[0].insert(static_cast<Value>(100 + i)));
  }
  EXPECT_FALSE(d[0].insert(999));
}

TEST(Dictionary, SlotsAreReusedAfterDelete) {
  DictSystem d(1);
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_TRUE(d[0].insert(static_cast<Value>(100 + i)));
  }
  EXPECT_TRUE(d[0].remove(103));
  EXPECT_TRUE(d[0].insert(999)) << "lambda slot must be reusable";
  EXPECT_TRUE(d[0].lookup(999));
  EXPECT_FALSE(d[0].lookup(103));
}

TEST(Dictionary, KnowledgeMonotonicity) {
  // "After each communication, receiving processes know everything about
  // the dictionary known by the writing process at the write operation."
  // P0 inserts a then b; when P1 sees b (inserted later into the same row),
  // it must also see a on the same fresh scan.
  DictSystem d(2);
  EXPECT_TRUE(d[0].insert(11));
  EXPECT_TRUE(d[0].insert(22));
  d[1].refresh();
  if (d[1].lookup(22)) {
    EXPECT_TRUE(d[1].lookup(11));
  }
}

TEST(Dictionary, ConcurrentDeleteLosesToOwnersNewerInsert) {
  // The paper's owner-wins scenario: P0 deletes x and reuses the slot for y;
  // P1, still seeing x, issues a concurrent delete of x. The delete's lambda
  // is concurrent with P0's newer insert and must lose — y survives.
  DictSystem d(2);
  EXPECT_TRUE(d[0].insert(500));
  EXPECT_TRUE(d[1].lookup(500));  // P1 now caches row 0 containing 500

  // P0: delete x=500 and insert y=600 into (necessarily) the same slot.
  EXPECT_TRUE(d[0].remove(500));
  EXPECT_TRUE(d[0].insert(600));

  // P1 still sees the stale 500 in its cache and deletes it "concurrently".
  EXPECT_TRUE(d[1].remove(500));

  // Owner-wins: P0's 600 must survive P1's lambda.
  EXPECT_TRUE(d[0].lookup(600)) << "owner's newer insert must be favored";
  d[1].refresh();
  EXPECT_TRUE(d[1].lookup(600));
  EXPECT_FALSE(d[1].lookup(500));
}

TEST(Dictionary, ViewsConvergeAfterQuiescence) {
  constexpr std::size_t kProcs = 3;
  DictSystem d(kProcs);
  {
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kProcs; ++p) {
      threads.emplace_back([&d, p] {
        Rng rng(40 + p);
        for (int i = 0; i < 6; ++i) {
          const Value v = static_cast<Value>(1000 * (p + 1) + i);
          ASSERT_TRUE(d[p].insert(v));
          if (rng.chance(0.3)) {
            (void)d[p].remove(v);
          }
        }
      });
    }
  }
  // Liveness: in the absence of further operations, refreshed views agree.
  std::vector<std::vector<Value>> views(kProcs);
  for (NodeId p = 0; p < kProcs; ++p) {
    d[p].refresh();
    auto snap = d[p].snapshot();
    std::sort(snap.begin(), snap.end());
    views[p] = std::move(snap);
  }
  EXPECT_EQ(views[0], views[1]);
  EXPECT_EQ(views[1], views[2]);
}

TEST(Dictionary, RandomWorkloadHistoryIsCausallyConsistent) {
  constexpr std::size_t kProcs = 3;
  Recorder recorder(kProcs);
  {
    DictSystem d(kProcs, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kProcs; ++p) {
      threads.emplace_back([&d, p] {
        Rng rng(900 + p);
        std::vector<Value> mine;
        for (int i = 0; i < 7; ++i) {
          const Value v = static_cast<Value>(10000 * (p + 1) + i);
          if (d[p].insert(v)) mine.push_back(v);
          (void)d[p].lookup(static_cast<Value>(
              10000 * (rng.next_below(kProcs) + 1) + rng.next_below(7)));
          if (!mine.empty() && rng.chance(0.4)) {
            (void)d[p].remove(mine.back());
            mine.pop_back();
          }
        }
      });
    }
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(Dictionary, LambdaAndZeroAreNotInsertable) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DictSystem d(1);
        d[0].insert(kLambda);
      },
      "reserved");
}

}  // namespace
}  // namespace causalmem

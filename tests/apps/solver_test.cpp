// E6: the Figure 6 solver runs unmodified on all three memories; on the
// synchronous path it reproduces the sequential Jacobi reference
// bit-for-bit (the paper's Section 4.1 claim that every read returns
// exactly the previous phase's value).
#include "causalmem/apps/solver/solver.hpp"

#include <gtest/gtest.h>

#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

template <typename NodeT>
SolverRun run_sync_on(const SolverProblem& p, std::size_t iters,
                      typename NodeT::Config cfg = {},
                      OpObserver* observer = nullptr,
                      StatsSnapshot* stats_out = nullptr) {
  const SolverLayout layout(p.n);
  DsmSystem<NodeT> sys(layout.node_count(), cfg, {}, layout.make_ownership(),
                       observer);
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) mems.push_back(&sys.memory(i));
  SolverOptions opts;
  opts.iterations = iters;
  const SolverRun run = run_sync_solver(p, layout, mems, opts);
  if (stats_out != nullptr) *stats_out = sys.stats().total();
  return run;
}

TEST(SolverProblem, GeneratedSystemsAreDiagonallyDominant) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const SolverProblem p = SolverProblem::random(6, seed);
    for (std::size_t i = 0; i < p.n; ++i) {
      double off = 0;
      for (std::size_t j = 0; j < p.n; ++j) {
        if (i != j) off += std::abs(p.a_at(i, j));
      }
      EXPECT_GT(std::abs(p.a_at(i, i)), off);
    }
  }
}

TEST(SolverProblem, JacobiReferenceConvergesToExactSolution) {
  const SolverProblem p = SolverProblem::random(8, 42);
  const auto exact = p.exact_solution();
  EXPECT_LT(p.residual(exact), 1e-9);
  const auto jac = p.jacobi_reference(60);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_NEAR(jac[i], exact[i], 1e-8);
  }
}

TEST(SyncSolver, OnCausalMemoryMatchesReferenceBitForBit) {
  const SolverProblem p = SolverProblem::random(5, 7);
  const auto ref = p.jacobi_reference(12);
  const SolverRun run = run_sync_on<CausalNode>(p, 12);
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i << " must be identical";
  }
}

TEST(SyncSolver, OnAtomicMemoryMatchesReferenceBitForBit) {
  const SolverProblem p = SolverProblem::random(5, 7);
  const auto ref = p.jacobi_reference(12);
  const SolverRun run = run_sync_on<AtomicNode>(p, 12);
  for (std::size_t i = 0; i < p.n; ++i) EXPECT_EQ(run.x[i], ref[i]);
}

TEST(SyncSolver, OnBroadcastMemoryConverges) {
  // Broadcast memory is weaker than causal; the synchronous handshake still
  // orders phases through the flags, but we only assert convergence.
  const SolverProblem p = SolverProblem::random(4, 9);
  const SolverRun run = run_sync_on<BroadcastNode>(p, 40);
  EXPECT_LT(p.residual(run.x), 1e-6);
}

TEST(SyncSolver, CausalRunWithoutConstantProtectionStillCorrect) {
  const SolverProblem p = SolverProblem::random(4, 11);
  const auto ref = p.jacobi_reference(10);
  const SolverLayout layout(p.n);
  DsmSystem<CausalNode> sys(layout.node_count(), {}, {},
                            layout.make_ownership());
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) mems.push_back(&sys.memory(i));
  SolverOptions opts;
  opts.iterations = 10;
  opts.protect_constants = false;
  const SolverRun run = run_sync_solver(p, layout, mems, opts);
  for (std::size_t i = 0; i < p.n; ++i) EXPECT_EQ(run.x[i], ref[i]);
}

TEST(SyncSolver, ReadOnlyProtectionSavesMessages) {
  const SolverProblem p = SolverProblem::random(6, 13);
  const SolverLayout layout(p.n);
  StatsSnapshot with_protection{}, without_protection{};
  for (const bool protect : {true, false}) {
    DsmSystem<CausalNode> sys(layout.node_count(), {}, {},
                              layout.make_ownership());
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 10;
    opts.protect_constants = protect;
    (void)run_sync_solver(p, layout, mems, opts);
    (protect ? with_protection : without_protection) = sys.stats().total();
  }
  EXPECT_LT(with_protection.messages_sent(),
            without_protection.messages_sent())
      << "footnote-2 enhancement must reduce traffic";
}

TEST(SyncSolver, CausalExecutionHistoryPassesChecker) {
  const SolverProblem p = SolverProblem::random(4, 21);
  const SolverLayout layout(p.n);
  Recorder recorder(layout.node_count());
  (void)run_sync_on<CausalNode>(p, 6, {}, &recorder);
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

template <typename NodeT>
SolverRun run_async_on(const SolverProblem& p,
                       typename NodeT::Config cfg = {}) {
  const SolverLayout layout(p.n);
  DsmSystem<NodeT> sys(layout.node_count(), cfg, {}, layout.make_ownership());
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  opts.iterations = 200000;  // safety valve; convergence stops the run
  opts.tolerance = 1e-8;
  return run_async_solver(p, layout, mems, opts);
}

TEST(AsyncSolver, ConvergesOnCausalMemory) {
  const SolverProblem p = SolverProblem::random(6, 33);
  const SolverRun run = run_async_on<CausalNode>(p);
  EXPECT_TRUE(run.converged);
  EXPECT_LT(p.residual(run.x), 1e-6) << "chaotic relaxation must converge";
}

TEST(AsyncSolver, ConvergesOnAtomicMemory) {
  const SolverProblem p = SolverProblem::random(5, 34);
  const SolverRun run = run_async_on<AtomicNode>(p);
  EXPECT_TRUE(run.converged);
  EXPECT_LT(p.residual(run.x), 1e-6);
}

// (No broadcast-memory async test: unsynchronized sweeps flood a
// full-replication memory with n-1 messages per write, so delivery lag — not
// the algorithm — dominates. The paper claims the asynchronous solver for
// causal memory, where writes are owned-local.)

TEST(AsyncSolver, NonBlockingWritesAlsoConverge) {
  const SolverProblem p = SolverProblem::random(5, 35);
  CausalConfig cfg;
  cfg.write_mode = WriteMode::kAsync;
  const SolverRun run = run_async_on<CausalNode>(p, cfg);
  EXPECT_TRUE(run.converged);
  EXPECT_LT(p.residual(run.x), 1e-6);
}

TEST(BlockSolver, FewerWorkersThanElementsStillBitExact) {
  // The paper: "the code is easily modified so that each process computes a
  // set of elements."
  const SolverProblem p = SolverProblem::random(7, 71);
  const auto ref = p.jacobi_reference(10);
  for (const std::size_t workers : {1u, 2u, 3u, 7u}) {
    const SolverLayout layout(p.n, workers);
    DsmSystem<CausalNode> sys(layout.node_count(), {}, {},
                              layout.make_ownership());
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 10;
    const SolverRun run = run_sync_solver(p, layout, mems, opts);
    for (std::size_t i = 0; i < p.n; ++i) {
      EXPECT_EQ(run.x[i], ref[i]) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(BlockSolver, BlocksPartitionAllElements) {
  const SolverLayout layout(10, 3);
  std::vector<int> counts(3, 0);
  for (std::size_t i = 0; i < 10; ++i) {
    const NodeId w = layout.worker_of(i);
    ASSERT_LT(w, 3u);
    ++counts[w];
    if (i > 0) {
      EXPECT_GE(layout.worker_of(i), layout.worker_of(i - 1))
          << "blocks must be contiguous";
    }
  }
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(BlockSolver, AsyncBlockedConverges) {
  const SolverProblem p = SolverProblem::random(8, 72);
  const SolverLayout layout(p.n, 3);
  DsmSystem<CausalNode> sys(layout.node_count(), {}, {},
                            layout.make_ownership());
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  opts.iterations = 200000;
  opts.tolerance = 1e-8;
  const SolverRun run = run_async_solver(p, layout, mems, opts);
  EXPECT_TRUE(run.converged);
  EXPECT_LT(p.residual(run.x), 1e-6);
}

template <typename NodeT>
void decentralized_matches_reference() {
  const SolverProblem p = SolverProblem::random(6, 73);
  const auto ref = p.jacobi_reference(8);
  const DecentralizedSolverLayout layout(p.n, 3);
  DsmSystem<NodeT> sys(layout.node_count(), {}, {}, layout.make_ownership());
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  opts.iterations = 8;
  const SolverRun run = run_decentralized_solver(p, layout, mems, opts);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
}

TEST(DecentralizedSolver, BarrierVersionBitExactOnCausal) {
  decentralized_matches_reference<CausalNode>();
}

TEST(DecentralizedSolver, BarrierVersionBitExactOnAtomic) {
  decentralized_matches_reference<AtomicNode>();
}

TEST(MessageCounts, CausalBeatsAtomicPerIteration) {
  // The paper's analytical claim, measured: causal ~ 2n+6, atomic >= 3n+5
  // effective messages per worker per iteration (spin refetches excluded).
  const std::size_t n = 6;
  const std::size_t iters = 20;
  const SolverProblem p = SolverProblem::random(n, 55);

  StatsSnapshot causal{}, atomic{};
  (void)run_sync_on<CausalNode>(p, iters, {}, nullptr, &causal);
  (void)run_sync_on<AtomicNode>(p, iters, {}, nullptr, &atomic);

  const auto effective = [&](const StatsSnapshot& s) {
    return static_cast<double>(s.messages_sent() -
                               2 * s[Counter::kSpinRefetch]) /
           static_cast<double>(n * iters);
  };
  const double causal_per = effective(causal);
  const double atomic_per = effective(atomic);
  EXPECT_LT(causal_per, atomic_per)
      << "causal memory must need fewer messages than atomic";
  // Shape: causal close to 2n+6, atomic at least 3n+5 minus slack for
  // startup effects (amortized over iterations).
  EXPECT_LT(causal_per, 2.0 * n + 6 + 4.0);
  EXPECT_GT(atomic_per, 3.0 * n - 2.0);
}

}  // namespace
}  // namespace causalmem

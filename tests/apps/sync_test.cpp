// Tests for the causal synchronization variables (apps/sync): flags, event
// counts and the coordinator-free barrier, on causal AND atomic memory (the
// same code must work on both — the paper's programmability claim).
#include "causalmem/apps/sync/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

namespace causalmem {
namespace {

TEST(Flag, SignalAcrossNodes) {
  DsmSystem<CausalNode> sys(2);
  Flag set_by_1(sys.memory(1), 1);  // addr 1 owned by node 1
  Flag seen_by_0(sys.memory(0), 1);
  std::jthread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    set_by_1.set();
  });
  seen_by_0.wait_set();
  EXPECT_TRUE(seen_by_0.test());
}

TEST(Flag, ClearAndRewait) {
  DsmSystem<CausalNode> sys(2);
  Flag owner(sys.memory(1), 1);
  Flag other(sys.memory(0), 1);
  owner.set();
  other.wait_set();
  owner.clear();
  other.wait_clear();
  EXPECT_FALSE(other.test());
}

TEST(EventCount, TransfersCausality) {
  // Everything the owner wrote before advance() must be visible (and stale
  // copies dead) at an awaiter after await() returns.
  DsmSystem<CausalNode> sys(2);
  constexpr Addr kData = 3;  // owned by node 1
  constexpr Addr kEc = 1;    // owned by node 1
  EXPECT_EQ(sys.memory(0).read(kData), 0);  // node 0 caches stale data
  EventCount owner(sys.memory(1), kEc);
  EventCount waiter(sys.memory(0), kEc);
  std::jthread producer([&] {
    sys.memory(1).write(kData, 42);
    (void)owner.advance();
  });
  waiter.await(1);
  EXPECT_EQ(sys.memory(0).read(kData), 42)
      << "await() must causally order the data write before this read";
}

TEST(EventCount, MonotonicityIsEnforced) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem<CausalNode> sys(1);
        EventCount ec(sys.memory(0), 0);
        ec.advance_to(5);
        ec.advance_to(3);
      },
      "monotone");
}

TEST(EventCount, OnlyOwnerAdvances) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem<CausalNode> sys(2);
        EventCount ec(sys.memory(0), 1);  // addr 1 owned by node 1
        (void)ec.advance();
      },
      "owner");
}

TEST(EventCount, MultipleAwaiters) {
  DsmSystem<CausalNode> sys(3);
  EventCount owner(sys.memory(1), 1);
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> waiters;
    for (NodeId p : {NodeId{0}, NodeId{2}}) {
      waiters.emplace_back([&sys, &released, p] {
        EventCount ec(sys.memory(p), 1);
        ec.await(3);
        released.fetch_add(1);
      });
    }
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      (void)owner.advance();
    }
  }
  EXPECT_EQ(released.load(), 2);
}

template <typename NodeT>
void barrier_phases_stay_aligned() {
  constexpr std::size_t kParties = 3;
  constexpr int kPhases = 25;
  DsmSystem<NodeT> sys(kParties);
  std::atomic<int> in_phase[kPhases + 1] = {};
  std::atomic<bool> violation{false};
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kParties; ++p) {
      threads.emplace_back([&, p] {
        CausalBarrier barrier(sys.memory(static_cast<NodeId>(p)), 0, kParties,
                              p);
        for (int k = 1; k <= kPhases; ++k) {
          in_phase[k].fetch_add(1);
          const auto phase = barrier.arrive_and_wait();
          // After the barrier, EVERY party must have entered phase k.
          if (static_cast<int>(phase) != k ||
              in_phase[k].load() != static_cast<int>(kParties)) {
            violation.store(true);
          }
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
}

TEST(CausalBarrier, PhasesStayAlignedOnCausalMemory) {
  barrier_phases_stay_aligned<CausalNode>();
}

TEST(CausalBarrier, PhasesStayAlignedOnAtomicMemory) {
  barrier_phases_stay_aligned<AtomicNode>();
}

TEST(CausalBarrier, TransfersAllPartiesWrites) {
  // After a barrier, every participant sees every other participant's
  // pre-barrier writes (not stale cached copies).
  constexpr std::size_t kParties = 3;
  DsmSystem<CausalNode> sys(kParties);
  // Data locations: party p owns addr kParties + p (striped: (3+p)%3 == p).
  std::atomic<bool> wrong{false};
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kParties; ++p) {
      threads.emplace_back([&, p] {
        SharedMemory& mem = sys.memory(static_cast<NodeId>(p));
        CausalBarrier barrier(mem, 0, kParties, p);
        for (Value round = 1; round <= 10; ++round) {
          // Warm stale copies of everyone's data, then publish our own.
          for (std::size_t q = 0; q < kParties; ++q) {
            (void)mem.read(kParties + q);
          }
          mem.write(kParties + p, round);
          barrier.arrive_and_wait();
          for (std::size_t q = 0; q < kParties; ++q) {
            if (mem.read(kParties + q) < round) wrong.store(true);
          }
          barrier.arrive_and_wait();  // don't race ahead into round+1 writes
        }
      });
    }
  }
  EXPECT_FALSE(wrong.load());
}

TEST(CausalBarrier, RequiresOwnedCounter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem<CausalNode> sys(2);
        CausalBarrier b(sys.memory(0), 0, 2, 1);  // addr 1 owned by node 1
      },
      "own");
}

}  // namespace
}  // namespace causalmem

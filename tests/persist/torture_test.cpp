// Crash-consistency torture for the durable store: every prefix of the WAL
// must recover cleanly (torn tails detected and cut, never trusted), every
// single-bit flip must be caught by a CRC before any field is believed, and
// a corrupt checkpoint must be rejected as a whole — no partial state, no
// abort-on-startup. Mirrors the adversarial style of
// tests/net/codec_adversarial_test.cpp, but with SafeReader semantics: disk
// bytes report failure instead of dying.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "causalmem/persist/checkpoint.hpp"
#include "causalmem/persist/store.hpp"
#include "causalmem/persist/vfs.hpp"
#include "causalmem/persist/wal.hpp"

namespace causalmem::persist {
namespace {

constexpr std::size_t kNodes = 3;

VectorClock vc(std::vector<std::uint64_t> comps) {
  return VectorClock(std::move(comps));
}

DurableCell cell(Addr a, Value v, std::uint64_t seq,
                 std::vector<std::uint64_t> comps) {
  return DurableCell{a, v, WriteTag{0, seq}, vc(std::move(comps))};
}

PersistConfig mem_config(Vfs* vfs) {
  PersistConfig cfg;
  cfg.enabled = true;
  cfg.dir = "torture";
  cfg.checkpoint_every = 0;  // only explicit checkpoints
  cfg.sync_every_append = true;
  cfg.vfs = vfs;
  return cfg;
}

/// A workload of appends whose per-record file boundaries are captured, so
/// prefix/flip sweeps know exactly which cut produces which valid prefix.
struct Workload {
  std::vector<WalRecord> records;
  std::vector<std::uint64_t> boundaries;  ///< file size after header, rec 1..
  std::vector<std::byte> bytes;           ///< final WAL image
  std::string wal_path;
};

Workload build_workload(MemVfs& vfs) {
  Workload w;
  Store store(mem_config(&vfs), 0, kNodes);
  w.wal_path = store.wal_path();
  const std::vector<WalRecord> recs = {
      {cell(1, 10, 1, {1, 0, 0}), 1}, {cell(2, 20, 2, {2, 0, 0}), 2},
      {cell(1, 11, 3, {3, 0, 0}), 3}, {cell(5, 50, 4, {4, 1, 0}), 4},
      {cell(2, 21, 5, {5, 1, 2}), 5}, {cell(9, 90, 6, {6, 1, 2}), 6},
  };
  for (const WalRecord& r : recs) {
    EXPECT_TRUE(store.append(r.cell, r.write_seq));
    w.records.push_back(r);
    w.boundaries.push_back(vfs.file_size(w.wal_path));
  }
  EXPECT_TRUE(vfs.read_file(w.wal_path, w.bytes));
  return w;
}

/// Records the workload would leave behind when only the first `count`
/// survive, merged newest-per-address in append order.
std::vector<DurableCell> expect_cells(const Workload& w, std::size_t count) {
  std::vector<DurableCell> out;
  for (std::size_t i = 0; i < count; ++i) {
    const DurableCell& c = w.records[i].cell;
    bool replaced = false;
    for (DurableCell& e : out) {
      if (e.addr == c.addr) {
        e = c;
        replaced = true;
        break;
      }
    }
    if (!replaced) out.push_back(c);
  }
  return out;
}

void expect_same_cells(const std::vector<DurableCell>& got,
                       const std::vector<DurableCell>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].addr, want[i].addr) << "cell " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "cell " << i;
    EXPECT_EQ(got[i].tag.seq, want[i].tag.seq) << "cell " << i;
    EXPECT_EQ(got[i].stamp.compare(want[i].stamp), ClockOrder::kEqual)
        << "cell " << i;
  }
}

TEST(WalTorture, RecoverMergesNewestPerAddress) {
  MemVfs vfs;
  const Workload w = build_workload(vfs);
  Store reborn(mem_config(&vfs), 0, kNodes);
  const RecoveredState r = reborn.recover();
  EXPECT_FALSE(r.checkpoint_loaded);
  EXPECT_EQ(r.wal_records, w.records.size());
  EXPECT_EQ(r.wal_truncated_bytes, 0u);
  EXPECT_EQ(r.write_seq, 6u);
  expect_same_cells(r.cells, expect_cells(w, w.records.size()));
  // The merged clock dominates every record's stamp.
  EXPECT_EQ(r.vt.compare(vc({6, 1, 2})), ClockOrder::kEqual);
}

TEST(WalTorture, EveryPrefixRecoversCleanlyAndRepairsTheFile) {
  MemVfs base;
  const Workload w = build_workload(base);
  const std::uint64_t header_size = wal_header(0, kNodes).size();

  for (std::size_t cut = 0; cut <= w.bytes.size(); ++cut) {
    MemVfs vfs;
    ASSERT_TRUE(vfs.write_file_atomic(
        w.wal_path, std::span<const std::byte>{w.bytes.data(), cut}));
    Store reborn(mem_config(&vfs), 0, kNodes);
    const RecoveredState r = reborn.recover();

    // The survivable prefix is exactly the records whose frames end at or
    // before the cut; everything past the last whole record is a torn tail.
    std::size_t survivors = 0;
    std::uint64_t valid = header_size;
    while (survivors < w.boundaries.size() &&
           w.boundaries[survivors] <= cut) {
      valid = w.boundaries[survivors];
      ++survivors;
    }
    if (cut < header_size) {
      // Header itself torn: the whole file is untrusted and removed.
      EXPECT_EQ(r.wal_records, 0u) << "cut " << cut;
      EXPECT_EQ(r.wal_truncated_bytes, cut) << "cut " << cut;
      EXPECT_FALSE(vfs.exists(w.wal_path)) << "cut " << cut;
    } else {
      EXPECT_EQ(r.wal_records, survivors) << "cut " << cut;
      EXPECT_EQ(r.wal_truncated_bytes, cut - valid) << "cut " << cut;
      expect_same_cells(r.cells, expect_cells(w, survivors));
      // recover() cut the torn tail in place: the file is now fully valid.
      EXPECT_EQ(vfs.file_size(w.wal_path), valid) << "cut " << cut;
    }

    // The repaired file accepts new appends, and a second recovery sees the
    // surviving prefix plus the new record — the new epoch never buries
    // garbage mid-file.
    EXPECT_TRUE(reborn.append(cell(7, 70, 100, {7, 1, 2}), 100));
    Store again(mem_config(&vfs), 0, kNodes);
    const RecoveredState r2 = again.recover();
    EXPECT_EQ(r2.wal_records, survivors + 1) << "cut " << cut;
    EXPECT_EQ(r2.wal_truncated_bytes, 0u) << "cut " << cut;
    EXPECT_EQ(r2.write_seq, 100u) << "cut " << cut;
  }
}

TEST(WalTorture, EveryBitFlipIsDetectedNeverTrusted) {
  MemVfs base;
  const Workload w = build_workload(base);

  for (std::size_t offset = 0; offset < w.bytes.size(); ++offset) {
    for (const std::uint8_t bit : {0, 7}) {
      MemVfs vfs;
      ASSERT_TRUE(vfs.write_file_atomic(w.wal_path, w.bytes));
      ASSERT_TRUE(vfs.corrupt(w.wal_path, offset, bit));
      Store reborn(mem_config(&vfs), 0, kNodes);
      const RecoveredState r = reborn.recover();
      // A flip anywhere invalidates its frame (or the header): recovery
      // keeps exactly the records before the damaged frame and reports the
      // rest as a corrupt tail. Nothing ever parses as a different value.
      EXPECT_GT(w.records.size(), r.wal_records)
          << "offset " << offset << " bit " << int(bit);
      expect_same_cells(r.cells, expect_cells(w, r.wal_records));
    }
  }
}

TEST(WalTorture, UnsyncedTailDiesWithTheProcessSyncedTailSurvives) {
  // The durability contract: with sync_every_append every acknowledged
  // append survives a crash; without it the unsynced tail is lost — torn
  // off by the crash, cleanly absent at recovery (never garbage).
  for (const bool sync_each : {true, false}) {
    MemVfs vfs;
    PersistConfig cfg = mem_config(&vfs);
    cfg.sync_every_append = sync_each;
    Store store(cfg, 0, kNodes);
    EXPECT_TRUE(store.append(cell(1, 10, 1, {1, 0, 0}), 1));
    EXPECT_TRUE(store.append(cell(2, 20, 2, {2, 0, 0}), 2));
    store.simulate_crash();
    Store reborn(mem_config(&vfs), 0, kNodes);
    const RecoveredState r = reborn.recover();
    EXPECT_EQ(r.wal_records, sync_each ? 2u : 0u);
    EXPECT_EQ(r.wal_truncated_bytes, 0u);  // a lost tail is not a torn tail
  }
}

TEST(WalTorture, ForeignHeaderIsRejectedWhole) {
  // A WAL written by node 1 (or for a different cluster size) must
  // contribute nothing to node 0's recovery: identity is part of the
  // CRC-guarded header.
  MemVfs vfs;
  {
    Store other(mem_config(&vfs), 1, kNodes);
    EXPECT_TRUE(other.append(cell(1, 10, 1, {0, 1, 0}), 1));
  }
  std::vector<std::byte> bytes;
  const std::string other_path = "torture/node1.wal";
  ASSERT_TRUE(vfs.read_file(other_path, bytes));
  ASSERT_TRUE(vfs.write_file_atomic("torture/node0.wal", bytes));
  Store reborn(mem_config(&vfs), 0, kNodes);
  const RecoveredState r = reborn.recover();
  EXPECT_EQ(r.wal_records, 0u);
  EXPECT_GT(r.wal_truncated_bytes, 0u);
  EXPECT_FALSE(vfs.exists("torture/node0.wal"));
}

TEST(CheckpointTorture, EveryBitFlipRejectsTheWholeFile) {
  MemVfs vfs;
  Store store(mem_config(&vfs), 0, kNodes);
  const std::vector<DurableCell> cells = {cell(1, 10, 1, {1, 0, 0}),
                                          cell(2, 20, 2, {2, 0, 0})};
  ASSERT_TRUE(store.checkpoint(cells, vc({2, 0, 0}), 2));
  std::vector<std::byte> bytes;
  ASSERT_TRUE(vfs.read_file(store.ckpt_path(), bytes));

  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    MemVfs broken;
    ASSERT_TRUE(broken.write_file_atomic(store.ckpt_path(), bytes));
    ASSERT_TRUE(broken.corrupt(store.ckpt_path(), offset, 4));
    Store reborn(mem_config(&broken), 0, kNodes);
    const RecoveredState r = reborn.recover();
    // All-or-nothing: a damaged checkpoint contributes zero cells and is
    // removed so the rejection surfaces once, not on every restart.
    EXPECT_FALSE(r.checkpoint_loaded) << "offset " << offset;
    EXPECT_TRUE(r.checkpoint_rejected) << "offset " << offset;
    EXPECT_TRUE(r.cells.empty()) << "offset " << offset;
    EXPECT_FALSE(broken.exists(store.ckpt_path())) << "offset " << offset;
  }
}

TEST(CheckpointTorture, EveryTruncationIsRejected) {
  MemVfs vfs;
  Store store(mem_config(&vfs), 0, kNodes);
  const std::vector<DurableCell> cells = {cell(3, 30, 1, {1, 0, 0})};
  ASSERT_TRUE(store.checkpoint(cells, vc({1, 0, 0}), 1));
  std::vector<std::byte> bytes;
  ASSERT_TRUE(vfs.read_file(store.ckpt_path(), bytes));
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    MemVfs broken;
    ASSERT_TRUE(broken.write_file_atomic(
        store.ckpt_path(), std::span<const std::byte>{bytes.data(), keep}));
    Store reborn(mem_config(&broken), 0, kNodes);
    const RecoveredState r = reborn.recover();
    EXPECT_FALSE(r.checkpoint_loaded) << "keep " << keep;
    EXPECT_TRUE(r.checkpoint_rejected) << "keep " << keep;
    EXPECT_TRUE(r.cells.empty()) << "keep " << keep;
  }
}

TEST(CheckpointTorture, CrashBetweenCheckpointAndWalResetIsIdempotent) {
  // Store::checkpoint() writes the checkpoint durably BEFORE resetting the
  // WAL. Model the crash in that window: both the checkpoint and the WAL it
  // covers are on disk. Replay must converge to the same state (newest per
  // address wins), not double-apply or prefer the stale snapshot.
  MemVfs vfs;
  const std::string ckpt = "torture/node0.ckpt";
  CheckpointData data;
  data.node = 0;
  data.write_seq = 2;
  data.vt = vc({2, 0, 0});
  data.cells = {cell(1, 10, 1, {1, 0, 0}), cell(2, 20, 2, {2, 0, 0})};
  ASSERT_TRUE(save_checkpoint(vfs, ckpt, data, kNodes));
  {
    WalWriter wal(vfs, "torture/node0.wal", 0, kNodes, true);
    // Records 1..2 are exactly the ones the checkpoint covers; record 3 is
    // newer than the checkpointed cell for address 1.
    ASSERT_TRUE(wal.append({cell(1, 10, 1, {1, 0, 0}), 1}));
    ASSERT_TRUE(wal.append({cell(2, 20, 2, {2, 0, 0}), 2}));
    ASSERT_TRUE(wal.append({cell(1, 11, 3, {3, 0, 0}), 3}));
  }
  Store reborn(mem_config(&vfs), 0, kNodes);
  const RecoveredState r = reborn.recover();
  EXPECT_TRUE(r.checkpoint_loaded);
  EXPECT_EQ(r.wal_records, 3u);
  EXPECT_EQ(r.write_seq, 3u);
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_EQ(r.cells[0].addr, 1u);
  EXPECT_EQ(r.cells[0].value, 11);  // WAL record over checkpointed cell
  EXPECT_EQ(r.cells[1].addr, 2u);
  EXPECT_EQ(r.cells[1].value, 20);
}

TEST(StoreTorture, CheckpointResetsWalAndLoseDiskForgetsEverything) {
  MemVfs vfs;
  PersistConfig cfg = mem_config(&vfs);
  cfg.checkpoint_every = 2;
  Store store(cfg, 0, kNodes);
  EXPECT_TRUE(store.append(cell(1, 10, 1, {1, 0, 0}), 1));
  EXPECT_FALSE(store.checkpoint_due());
  EXPECT_TRUE(store.append(cell(2, 20, 2, {2, 0, 0}), 2));
  EXPECT_TRUE(store.checkpoint_due());
  const std::vector<DurableCell> snapshot = {cell(1, 10, 1, {1, 0, 0}),
                                             cell(2, 20, 2, {2, 0, 0})};
  ASSERT_TRUE(store.checkpoint(snapshot, vc({2, 0, 0}), 2));
  EXPECT_EQ(store.appends_since_checkpoint(), 0u);
  EXPECT_EQ(store.checkpoints_written(), 1u);
  // The WAL is back to a bare header; the checkpoint carries the state.
  {
    Store reborn(mem_config(&vfs), 0, kNodes);
    const RecoveredState r = reborn.recover();
    EXPECT_TRUE(r.checkpoint_loaded);
    EXPECT_EQ(r.wal_records, 0u);
    EXPECT_EQ(r.cells.size(), 2u);
  }
  store.lose_disk();
  Store gone(mem_config(&vfs), 0, kNodes);
  const RecoveredState r = gone.recover();
  EXPECT_FALSE(r.any());
  EXPECT_TRUE(r.cells.empty());
}

}  // namespace
}  // namespace causalmem::persist

// System-level durable recovery: a restarted node restores its owned cells
// from checkpoint + WAL (zero elections, zero full-page fetches for pages it
// covers locally), a node whose durable copy seeds the election runs the
// writestamp-bounded catch-up instead of the full RECOVER poll, a node that
// lost its disk serves nothing before winning an election (no initial-value
// rollback), and failover prefers durable successors. Histories stay causal
// through all of it.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/failover.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/persist/vfs.hpp"

namespace causalmem {
namespace {

/// Polls until `pred` holds or ~2s elapse; returns the final predicate value.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

CausalConfig deadline_config() {
  CausalConfig cfg;
  cfg.request_timeout = std::chrono::milliseconds(80);
  cfg.request_retries = 2;
  return cfg;
}

SystemOptions persist_options(persist::Vfs* vfs) {
  SystemOptions options;
  options.fault_layer = true;
  options.failover.enabled = true;
  options.reliable = true;
  options.reliable_config.initial_rto = std::chrono::milliseconds(2);
  options.reliable_config.max_retransmits = 5;
  options.persist.enabled = true;
  options.persist.dir = "sys";
  options.persist.vfs = vfs;
  return options;
}

TEST(DurableRecovery, RestartRestoresOwnedCellsWithZeroElections) {
  persist::MemVfs vfs;
  SystemOptions options = persist_options(&vfs);
  options.persist.checkpoint_every = 3;
  Recorder recorder(2);
  DsmSystem<CausalNode> sys(2, deadline_config(), options, nullptr, &recorder);

  // 8 owner applies over 4 distinct striped-to-node-0 addresses: two
  // checkpoints fire (after appends 3 and 6), the last 2 applies stay in
  // the WAL — recovery must merge both sources.
  for (const Value round : {0, 10}) {
    for (const Addr a : {0u, 2u, 4u, 6u}) {
      ASSERT_EQ(sys.node(0).try_write(a, static_cast<Value>(a) + round),
                OpStatus::kOk);
    }
  }
  ASSERT_NE(sys.store(0), nullptr);
  EXPECT_EQ(sys.store(0)->checkpoints_written(), 2u);

  sys.faulty_transport()->crash_node(0);
  ASSERT_TRUE(sys.restart_node(0));

  // Every owned cell is back — served straight from the restored state.
  for (const Addr a : {0u, 2u, 4u, 6u}) {
    const ReadResult r = sys.node(0).try_read(a);
    ASSERT_TRUE(r.ok()) << "addr " << a;
    EXPECT_EQ(r.value, static_cast<Value>(a) + 10) << "addr " << a;
  }
  // A peer sees the same values through the normal owner protocol.
  const ReadResult remote = sys.node(1).try_read(4);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote.value, 14);

  const StatsSnapshot stats = sys.stats().total();
  EXPECT_EQ(stats[Counter::kPersistWalAppend], 8u);
  EXPECT_EQ(stats[Counter::kPersistCheckpoint], 2u);
  EXPECT_EQ(stats[Counter::kPersistWalReplayed], 2u);
  EXPECT_EQ(stats[Counter::kPersistRestoredCells], 4u);
  // The acceptance criterion: locally-covered pages cost zero elections and
  // zero full-page fetches on restart.
  EXPECT_EQ(stats[Counter::kFoRecoverRequest], 0u);
  EXPECT_EQ(stats[Counter::kPersistCatchupRequest], 0u);
  EXPECT_EQ(stats[Counter::kPersistCkptRejected], 0u);
  EXPECT_EQ(stats[Counter::kPersistWalTruncated], 0u);

  // The restarted incarnation keeps writing with fresh tags.
  ASSERT_EQ(sys.node(0).try_write(0, 77), OpStatus::kOk);
  EXPECT_EQ(sys.node(0).try_read(0).value, 77);

  sys.shutdown();
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(DurableRecovery, BoundedCatchupElectsDurableSeedAcrossTwoCrashes) {
  persist::MemVfs vfs;
  Recorder recorder(3);
  DsmSystem<CausalNode> sys(3, deadline_config(), persist_options(&vfs),
                            nullptr, &recorder);

  // Kill the base owner of address 2. Node 1's write then times out,
  // suspicion migrates the page to node 0 (ring successor), the election
  // finds no copy anywhere, and the write applies — durably — at node 0.
  sys.faulty_transport()->crash_node(2);
  ASSERT_TRUE(eventually(
      [&] { return sys.node(1).try_write(2, 11) == OpStatus::kOk; }));
  ASSERT_TRUE(eventually([&] {
    const ReadResult r = sys.node(1).try_read(2);
    return r.ok() && r.value == 11;
  }));
  EXPECT_EQ(sys.failover_directory()->owner(2), 0u);
  EXPECT_GT(sys.stats().node(0).get(Counter::kPersistWalAppend), 0u);

  // Bring node 2 back (ownership stays migrated), then kill node 0 too: the
  // original owner AND its successor have now both crashed.
  ASSERT_TRUE(sys.restart_node(2));
  sys.faulty_transport()->crash_node(0);
  // Node 1 still holds a cached copy of address 2 from its earlier round
  // trips; drop it so the read below genuinely misses and drives the
  // failover + election instead of being answered from cache. The recovery
  // journal is untouched by a discard — the bound still comes from it.
  ASSERT_TRUE(sys.node(1).discard(2));

  // Node 1's read times out, the page migrates to node 1, and its election
  // runs as a writestamp-bounded catch-up: node 1's own observation of 11
  // (from its write round trip) seeds the bound, the only live peer (node 2)
  // holds nothing fresher, and the durable seed wins. The write survives
  // both crashes without any full-copy transfer.
  ReadResult final_read;
  ASSERT_TRUE(eventually([&] {
    final_read = sys.node(1).try_read(2);
    return final_read.ok() && final_read.value == 11;
  }));
  EXPECT_EQ(sys.failover_directory()->owner(2), 1u);

  const StatsSnapshot stats = sys.stats().total();
  EXPECT_GE(stats[Counter::kPersistCatchupRequest], 1u);
  EXPECT_GE(stats[Counter::kPersistCatchupReply], 1u);
  // No peer ever held a copy beating the durable bound: every catch-up
  // reply was payload-free.
  EXPECT_EQ(stats[Counter::kPersistCatchupFresher], 0u);

  sys.shutdown();
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(DurableRecovery, LostDiskEpochReElectsInsteadOfRollingBack) {
  persist::MemVfs vfs;
  Recorder recorder(2);
  DsmSystem<CausalNode> sys(2, deadline_config(), persist_options(&vfs),
                            nullptr, &recorder);

  ASSERT_EQ(sys.node(0).try_write(0, 9), OpStatus::kOk);
  // Node 1 reads 9 — it may never observe an older value for address 0
  // again, whatever happens to node 0.
  ASSERT_TRUE(eventually([&] {
    const ReadResult r = sys.node(1).try_read(0);
    return r.ok() && r.value == 9;
  }));

  // Crash node 0 AND lose its disk. The restarted incarnation finds nothing
  // durable: it must not serve its base-owned pages from conjured initial
  // cells (that would roll address 0 back to 0 for node 1) but first win an
  // election — which node 1's observation journal decides in favour of 9.
  sys.faulty_transport()->crash_node(0);
  sys.store(0)->lose_disk();
  ASSERT_TRUE(sys.restart_node(0));

  ReadResult after;
  ASSERT_TRUE(eventually([&] {
    after = sys.node(1).try_read(0);
    return after.ok();
  }));
  EXPECT_EQ(after.value, 9);
  EXPECT_EQ(sys.node(0).try_read(0).value, 9);

  const StatsSnapshot stats = sys.stats().total();
  EXPECT_EQ(stats[Counter::kPersistRestoredCells], 0u);
  // Nothing durable to bound the election with: the legacy RECOVER poll ran.
  EXPECT_GE(stats[Counter::kFoRecoverRequest], 1u);

  sys.shutdown();
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(DurableFailover, SuspectPrefersDurableSuccessor) {
  // A durable candidate two steps down the ring beats the volatile direct
  // successor: its checkpoint + WAL survive a later crash of the successor
  // itself.
  FailoverDirectory dir(std::make_unique<StripedOwnership>(4), 4, nullptr);
  dir.set_durable(2, true);
  EXPECT_TRUE(dir.suspect(0, kNoNode));
  EXPECT_EQ(dir.owner(0), 2u);

  // No durable node anywhere: the legacy next-live rule stands, so
  // persistence-free deployments see identical failover decisions.
  FailoverDirectory plain(std::make_unique<StripedOwnership>(4), 4, nullptr);
  EXPECT_TRUE(plain.suspect(0, kNoNode));
  EXPECT_EQ(plain.owner(0), 1u);

  // A durable-but-down node is never chosen; the scan falls back to the
  // next live volatile node.
  FailoverDirectory mixed(std::make_unique<StripedOwnership>(4), 4, nullptr);
  mixed.set_durable(1, true);
  ASSERT_TRUE(mixed.suspect(1, kNoNode));
  EXPECT_TRUE(mixed.suspect(0, kNoNode));
  EXPECT_EQ(mixed.owner(0), 2u);
}

TEST(DurableRecovery, FlightArtifactCarriesPersistSummary) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "causalmem_persist_flight";
  std::filesystem::remove_all(dir);
  persist::MemVfs vfs;
  SystemOptions options = persist_options(&vfs);
  options.flight.enabled = true;
  options.flight.recorder.artifact_dir = dir.string();
  options.flight.recorder.run_label = "persist_test";
  std::string artifact;
  {
    DsmSystem<CausalNode> sys(2, deadline_config(), options);
    ASSERT_EQ(sys.node(0).try_write(0, 5), OpStatus::kOk);
    ASSERT_TRUE(sys.flight_recorder()->dump("test"));
    artifact = sys.flight_recorder()->artifact_path();
  }
  ASSERT_FALSE(artifact.empty());
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(artifact) / "persist.json"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace causalmem

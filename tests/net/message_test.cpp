#include "causalmem/net/message.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

Message sample_message() {
  Message m;
  m.type = MsgType::kWrite;
  m.from = 2;
  m.to = 5;
  m.request_id = 77;
  m.addr = 1234;
  m.value = -42;
  m.tag = WriteTag{2, 9};
  m.stamp = VectorClock(std::vector<std::uint64_t>{1, 0, 9, 4});
  m.accepted = false;
  m.cells.push_back(CellUpdate{1234, -42, WriteTag{2, 9}});
  m.cells.push_back(CellUpdate{1235, 7, WriteTag{0, 3}});
  return m;
}

TEST(Message, CodecRoundTripPreservesAllFields) {
  const Message m = sample_message();
  const Message back = Message::decode(m.encode());
  EXPECT_EQ(back.type, m.type);
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.to, m.to);
  EXPECT_EQ(back.request_id, m.request_id);
  EXPECT_EQ(back.addr, m.addr);
  EXPECT_EQ(back.value, m.value);
  EXPECT_EQ(back.tag, m.tag);
  EXPECT_EQ(back.stamp, m.stamp);
  EXPECT_EQ(back.accepted, m.accepted);
  ASSERT_EQ(back.cells.size(), 2u);
  EXPECT_EQ(back.cells[0].addr, 1234u);
  EXPECT_EQ(back.cells[0].value, -42);
  EXPECT_EQ(back.cells[1].tag, (WriteTag{0, 3}));
}

TEST(Message, MinimalMessageRoundTrips) {
  Message m;
  m.type = MsgType::kRead;
  m.from = 0;
  m.to = 1;
  m.addr = 9;
  m.stamp = VectorClock(2);
  const Message back = Message::decode(m.encode());
  EXPECT_EQ(back.type, MsgType::kRead);
  EXPECT_EQ(back.addr, 9u);
  EXPECT_TRUE(back.accepted);
  EXPECT_TRUE(back.cells.empty());
}

TEST(Message, TypeNamesAreDistinct) {
  EXPECT_STREQ(msg_type_name(MsgType::kRead), "READ");
  EXPECT_STREQ(msg_type_name(MsgType::kWriteReply), "W_REPLY");
  EXPECT_STREQ(msg_type_name(MsgType::kInvalidate), "INV");
  EXPECT_STREQ(msg_type_name(MsgType::kBroadcastUpdate), "BCAST");
}

TEST(Message, ToStringMentionsRejection) {
  const Message m = sample_message();
  EXPECT_NE(m.to_string().find("REJECTED"), std::string::npos);
}

}  // namespace
}  // namespace causalmem

#include "causalmem/net/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "causalmem/net/fault_injection.hpp"
#include "causalmem/net/inmem_transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {
namespace {

Message make_msg(NodeId from, NodeId to, std::uint64_t seq) {
  Message m;
  m.type = MsgType::kBroadcastUpdate;
  m.from = from;
  m.to = to;
  m.request_id = seq;
  m.stamp = VectorClock(2);
  return m;
}

/// Polls until `pred` holds or ~10s elapse (lossy channels recover via RTO,
/// so allow generous wall time); returns the final predicate value.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Records the request_id sequence one node observes.
struct SequenceSink {
  std::mutex mu;
  std::vector<std::uint64_t> order;
  std::atomic<int> count{0};

  Transport::Handler handler() {
    return [this](const Message& m) {
      {
        std::scoped_lock lock(mu);
        order.push_back(m.request_id);
      }
      count.fetch_add(1);
    };
  }

  /// True iff exactly 0..n-1 arrived, in order, each exactly once.
  [[nodiscard]] bool is_exactly_once_fifo(std::uint64_t n) {
    std::scoped_lock lock(mu);
    if (order.size() != n) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (order[i] != i) return false;
    }
    return true;
  }
};

TEST(ReliableChannel, ExactlyOnceFifoOverLossyChannel) {
  FaultModel faults;
  faults.drop_rate = 0.2;
  faults.dup_rate = 0.1;
  faults.delay_rate = 0.1;
  faults.delay_base = std::chrono::microseconds(200);
  faults.delay_jitter = std::chrono::microseconds(800);
  auto faulty = std::make_unique<FaultyTransport>(
      std::make_unique<InMemTransport>(2), faults);
  ReliableChannel t(std::move(faulty));

  SequenceSink sink;
  t.register_node(0, [](const Message&) {});
  t.register_node(1, sink.handler());
  t.start();

  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));

  ASSERT_TRUE(eventually([&] { return sink.count.load() >= int(kCount); }))
      << "delivered " << sink.count.load() << "/" << kCount;
  EXPECT_TRUE(sink.is_exactly_once_fifo(kCount))
      << "reliable layer must restore exactly-once FIFO";
  // With a 20% drop rate something must have been retransmitted, and the
  // injected duplicates must have been caught on receive.
  EXPECT_GT(t.retransmit_count(), 0u);
  EXPECT_GT(t.dup_dropped_count(), 0u);
  t.shutdown();
}

TEST(ReliableChannel, NoFaultsMeansNoRecoveryTraffic) {
  ReliableConfig config;
  config.initial_rto = std::chrono::milliseconds(50);  // generous vs loopback
  ReliableChannel t(std::make_unique<InMemTransport>(2), config);

  SequenceSink sink;
  t.register_node(0, [](const Message&) {});
  t.register_node(1, sink.handler());
  t.start();

  constexpr std::uint64_t kCount = 100;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));

  ASSERT_TRUE(eventually([&] { return sink.count.load() >= int(kCount); }));
  EXPECT_TRUE(sink.is_exactly_once_fifo(kCount));
  EXPECT_EQ(t.retransmit_count(), 0u)
      << "a clean channel must never retransmit";
  EXPECT_EQ(t.dup_dropped_count(), 0u);
  t.shutdown();
}

TEST(ReliableChannel, BoundedRetransmissionsGiveUpOnDeadPeer) {
  auto faulty_owned = std::make_unique<FaultyTransport>(
      std::make_unique<InMemTransport>(2), FaultModel{});
  FaultyTransport* faulty = faulty_owned.get();
  ReliableConfig config;
  config.initial_rto = std::chrono::microseconds(500);
  config.max_rto = std::chrono::microseconds(1000);
  config.max_retransmits = 3;
  ReliableChannel t(std::move(faulty_owned), config);

  SequenceSink sink;
  StatsRegistry stats(2);
  t.attach_stats(&stats);
  t.register_node(0, [](const Message&) {});
  t.register_node(1, sink.handler());
  t.start();

  faulty->crash_node(1);
  constexpr std::uint64_t kCount = 5;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  // Each message is retransmitted max_retransmits times and then abandoned
  // (the layer above owns the failure) — the retransmitter must not spin on
  // a dead peer forever.
  ASSERT_TRUE(eventually([&] { return t.peer_unreachable_count() == kCount; }));
  EXPECT_EQ(t.retransmit_count(), kCount * config.max_retransmits);
  EXPECT_EQ(stats.node(0).get(Counter::kNetPeerUnreachable), kCount);
  EXPECT_EQ(sink.count.load(), 0);

  // A node restart pairs FaultyTransport::restart_node with reset_peer:
  // both directions restart at sequence 1 and traffic flows again. Without
  // the reset, the receiver would hold the fresh sends in its reorder
  // buffer forever, waiting on the abandoned sequence numbers.
  t.reset_peer(1);
  faulty->restart_node(1);
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  ASSERT_TRUE(eventually([&] { return sink.count.load() == int(kCount); }));
  EXPECT_TRUE(sink.is_exactly_once_fifo(kCount));
  t.shutdown();
}

TEST(ReliableChannel, BidirectionalTrafficAcksPiggyback) {
  FaultModel faults;
  faults.drop_rate = 0.15;
  auto faulty = std::make_unique<FaultyTransport>(
      std::make_unique<InMemTransport>(2), faults);
  ReliableChannel t(std::move(faulty));

  SequenceSink sink0, sink1;
  t.register_node(0, sink0.handler());
  t.register_node(1, sink1.handler());
  t.start();

  constexpr std::uint64_t kCount = 100;
  std::jthread a([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  });
  std::jthread b([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(1, 0, i));
  });
  a.join();
  b.join();

  ASSERT_TRUE(eventually([&] {
    return sink0.count.load() >= int(kCount) &&
           sink1.count.load() >= int(kCount);
  }));
  EXPECT_TRUE(sink0.is_exactly_once_fifo(kCount));
  EXPECT_TRUE(sink1.is_exactly_once_fifo(kCount));
  t.shutdown();
}

TEST(ReliableChannel, MultiNodeAllPairs) {
  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kPerChannel = 40;
  FaultModel faults;
  faults.drop_rate = 0.1;
  faults.dup_rate = 0.05;
  auto faulty = std::make_unique<FaultyTransport>(
      std::make_unique<InMemTransport>(kNodes), faults);
  ReliableChannel t(std::move(faulty));

  // per_channel[from][to] = request_ids node `to` saw from node `from`.
  std::mutex mu;
  std::vector<std::vector<std::vector<std::uint64_t>>> per_channel(
      kNodes, std::vector<std::vector<std::uint64_t>>(kNodes));
  std::atomic<int> total{0};
  for (NodeId i = 0; i < kNodes; ++i) {
    t.register_node(i, [&, i](const Message& m) {
      {
        std::scoped_lock lock(mu);
        per_channel[m.from][i].push_back(m.request_id);
      }
      total.fetch_add(1);
    });
  }
  t.start();

  std::vector<std::jthread> senders;
  for (NodeId i = 0; i < kNodes; ++i) {
    senders.emplace_back([&, i] {
      for (std::uint64_t s = 0; s < kPerChannel; ++s) {
        for (NodeId j = 0; j < kNodes; ++j) {
          if (j != i) t.send(make_msg(i, j, s));
        }
      }
    });
  }
  senders.clear();  // join

  constexpr int kExpected = int(kNodes * (kNodes - 1) * kPerChannel);
  ASSERT_TRUE(eventually([&] { return total.load() >= kExpected; }))
      << "delivered " << total.load() << "/" << kExpected;
  std::scoped_lock lock(mu);
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      const auto& got = per_channel[i][j];
      ASSERT_EQ(got.size(), kPerChannel) << "channel " << i << "->" << j;
      for (std::uint64_t s = 0; s < kPerChannel; ++s) {
        ASSERT_EQ(got[s], s) << "channel " << i << "->" << j
                             << " out of order at " << s;
      }
    }
  }
  t.shutdown();
}

TEST(ReliableChannel, SelfSendBypassesSequencing) {
  ReliableChannel t(std::make_unique<InMemTransport>(2));
  std::atomic<int> got{0};
  t.register_node(0, [&](const Message& m) {
    EXPECT_EQ(m.rel_seq, 0u) << "self-sends are not sequenced";
    got.fetch_add(1);
  });
  t.register_node(1, [](const Message&) {});
  t.start();
  t.send(make_msg(0, 0, 7));
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  EXPECT_EQ(t.acks_sent_count(), 0u);
  t.shutdown();
}

TEST(ReliableChannel, CountersLandInAttachedStats) {
  FaultModel faults;
  faults.drop_rate = 0.25;
  auto faulty = std::make_unique<FaultyTransport>(
      std::make_unique<InMemTransport>(2), faults);
  ReliableChannel t(std::move(faulty));
  StatsRegistry stats(2);
  t.attach_stats(&stats);

  SequenceSink sink;
  t.register_node(0, [](const Message&) {});
  t.register_node(1, sink.handler());
  t.start();

  constexpr std::uint64_t kCount = 120;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  ASSERT_TRUE(eventually([&] { return sink.count.load() >= int(kCount); }));
  t.shutdown();

  const StatsSnapshot total = stats.total();
  EXPECT_EQ(total[Counter::kNetRetransmit], t.retransmit_count());
  EXPECT_EQ(total[Counter::kNetDupDropped], t.dup_dropped_count());
  EXPECT_EQ(total[Counter::kNetAckSent], t.acks_sent_count());
  EXPECT_GT(total[Counter::kNetFaultDrop], 0u);
  EXPECT_EQ(total.messages_sent(), 0u)
      << "recovery counters must not pollute protocol message accounting";
  // Retransmits happen on the sending node; dup-drops on the receiver.
  EXPECT_EQ(stats.node_snapshot(1)[Counter::kNetRetransmit], 0u);
  EXPECT_EQ(stats.node_snapshot(0)[Counter::kNetDupDropped], 0u);
}

}  // namespace
}  // namespace causalmem

#include "causalmem/net/fault_injection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "causalmem/net/inmem_transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {
namespace {

Message make_msg(NodeId from, NodeId to, std::uint64_t seq) {
  Message m;
  m.type = MsgType::kBroadcastUpdate;
  m.from = from;
  m.to = to;
  m.request_id = seq;
  m.stamp = VectorClock(2);
  return m;
}

/// Polls until `pred` holds or ~2s elapse; returns the final predicate value.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

FaultyTransport make_faulty(std::size_t n, FaultModel model) {
  return FaultyTransport(std::make_unique<InMemTransport>(n), model);
}

TEST(FaultyTransport, DropRateOneDropsEverything) {
  FaultModel model;
  model.drop_rate = 1.0;
  FaultyTransport t = make_faulty(2, model);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got.fetch_add(1); });
  t.start();
  for (int i = 0; i < 50; ++i) t.send(make_msg(0, 1, i));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
  EXPECT_EQ(t.drops_injected(), 50u);
  t.shutdown();
}

TEST(FaultyTransport, ZeroModelIsTransparent) {
  FaultyTransport t = make_faulty(2, {});
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got.fetch_add(1); });
  t.start();
  for (int i = 0; i < 100; ++i) t.send(make_msg(0, 1, i));
  EXPECT_TRUE(eventually([&] { return got.load() == 100; }));
  EXPECT_EQ(t.drops_injected(), 0u);
  EXPECT_EQ(t.dups_injected(), 0u);
  EXPECT_EQ(t.delays_injected(), 0u);
  t.shutdown();
}

TEST(FaultyTransport, SeededDropsAreDeterministic) {
  const auto run = [] {
    FaultModel model;
    model.drop_rate = 0.3;
    model.seed = 42;
    FaultyTransport t = make_faulty(2, model);
    t.register_node(0, [](const Message&) {});
    t.register_node(1, [](const Message&) {});
    t.start();
    for (int i = 0; i < 200; ++i) t.send(make_msg(0, 1, i));
    const std::uint64_t drops = t.drops_injected();
    t.shutdown();
    return drops;
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_GT(a, 20u);  // ~60 expected
  EXPECT_LT(a, 120u);
  EXPECT_EQ(a, b) << "same seed, same send sequence => same fault sequence";
}

TEST(FaultyTransport, DuplicationDeliversExtraCopies) {
  FaultModel model;
  model.dup_rate = 1.0;
  model.delay_base = std::chrono::microseconds(100);
  model.delay_jitter = std::chrono::microseconds(100);
  FaultyTransport t = make_faulty(2, model);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got.fetch_add(1); });
  t.start();
  for (int i = 0; i < 30; ++i) t.send(make_msg(0, 1, i));
  EXPECT_TRUE(eventually([&] { return got.load() == 60; }))
      << "every message must arrive twice, got " << got.load();
  EXPECT_EQ(t.dups_injected(), 30u);
  t.shutdown();
}

TEST(FaultyTransport, DelayHoldsMessagesBack) {
  FaultModel model;
  model.delay_rate = 1.0;
  model.delay_base = std::chrono::milliseconds(30);
  model.delay_jitter = std::chrono::microseconds(0);
  FaultyTransport t = make_faulty(2, model);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got.fetch_add(1); });
  t.start();
  const auto start = std::chrono::steady_clock::now();
  t.send(make_msg(0, 1, 0));
  EXPECT_TRUE(eventually([&] { return got.load() == 1; }));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(29));
  EXPECT_EQ(t.delays_injected(), 1u);
  t.shutdown();
}

TEST(FaultyTransport, DelayBreaksChannelFifo) {
  // A delayed message must be overtaken by later undelayed sends — this is
  // precisely the reordering the ReliableChannel adapter exists to repair.
  FaultModel model;
  model.delay_rate = 0.5;  // seeded: some messages delayed, some not
  model.delay_base = std::chrono::milliseconds(20);
  model.delay_jitter = std::chrono::milliseconds(10);
  FaultyTransport t = make_faulty(2, model);
  std::vector<std::uint64_t> order;
  std::mutex mu;
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    {
      std::scoped_lock lock(mu);
      order.push_back(m.request_id);
    }
    got.fetch_add(1);
  });
  t.start();
  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  ASSERT_TRUE(eventually([&] { return got.load() == kCount; }));
  t.shutdown();
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered) << "a 50% delay rate must reorder some pairs";
}

TEST(FaultyTransport, CrashedNodeIsSilenced) {
  FaultyTransport t = make_faulty(3, {});
  std::atomic<int> got_1{0}, got_2{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got_1.fetch_add(1); });
  t.register_node(2, [&](const Message&) { got_2.fetch_add(1); });
  t.start();
  t.crash_node(1);
  t.send(make_msg(0, 1, 0));  // to the crashed node: dropped
  t.send(make_msg(1, 2, 0));  // from the crashed node: dropped
  t.send(make_msg(0, 2, 0));  // bystander channel: unaffected
  EXPECT_TRUE(eventually([&] { return got_2.load() == 1; }));
  EXPECT_EQ(got_1.load(), 0);
  EXPECT_EQ(t.drops_injected(), 2u);
  t.shutdown();
}

TEST(FaultyTransport, RestartNodeRestoresDeliveryBothWays) {
  FaultyTransport t = make_faulty(2, {});
  std::atomic<int> got_0{0}, got_1{0};
  t.register_node(0, [&](const Message&) { got_0.fetch_add(1); });
  t.register_node(1, [&](const Message&) { got_1.fetch_add(1); });
  t.start();
  EXPECT_FALSE(t.is_crashed(1));
  t.crash_node(1);
  EXPECT_TRUE(t.is_crashed(1));
  t.send(make_msg(0, 1, 0));  // into the crash: dropped
  t.send(make_msg(1, 0, 0));  // out of the crash: dropped
  EXPECT_TRUE(eventually([&] { return t.drops_injected() == 2u; }));

  t.restart_node(1);
  EXPECT_FALSE(t.is_crashed(1));
  t.send(make_msg(0, 1, 1));
  t.send(make_msg(1, 0, 1));
  EXPECT_TRUE(eventually([&] { return got_0.load() == 1 && got_1.load() == 1; }));
  EXPECT_EQ(t.drops_injected(), 2u);  // nothing dropped after the restart
  t.shutdown();
}

TEST(FaultyTransport, PartitionTogglesOneDirection) {
  FaultyTransport t = make_faulty(2, {});
  std::atomic<int> got_0{0}, got_1{0};
  t.register_node(0, [&](const Message&) { got_0.fetch_add(1); });
  t.register_node(1, [&](const Message&) { got_1.fetch_add(1); });
  t.start();
  t.set_partition(0, 1, true);
  t.send(make_msg(0, 1, 0));  // blocked direction
  t.send(make_msg(1, 0, 0));  // reverse direction stays open
  EXPECT_TRUE(eventually([&] { return got_0.load() == 1; }));
  EXPECT_EQ(got_1.load(), 0);
  t.set_partition(0, 1, false);  // heal
  t.send(make_msg(0, 1, 1));
  EXPECT_TRUE(eventually([&] { return got_1.load() == 1; }));
  t.shutdown();
}

TEST(FaultyTransport, CountersLandInAttachedStats) {
  FaultModel model;
  model.drop_rate = 1.0;
  FaultyTransport t = make_faulty(2, model);
  StatsRegistry stats(2);
  t.attach_stats(&stats);
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [](const Message&) {});
  t.start();
  for (int i = 0; i < 10; ++i) t.send(make_msg(0, 1, i));
  EXPECT_EQ(stats.node(0).get(Counter::kNetFaultDrop), 10u);
  EXPECT_EQ(stats.total().messages_sent(), 0u)
      << "fault counters must not pollute protocol message accounting";
  t.shutdown();
}

}  // namespace
}  // namespace causalmem

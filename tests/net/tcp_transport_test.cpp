#include "causalmem/net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "causalmem/stats/counters.hpp"

namespace causalmem {
namespace {

Message make_msg(NodeId from, NodeId to, std::uint64_t seq) {
  Message m;
  m.type = MsgType::kBroadcastUpdate;
  m.from = from;
  m.to = to;
  m.request_id = seq;
  m.stamp = VectorClock(std::vector<std::uint64_t>{seq, seq + 1});
  return m;
}

TEST(TcpTransport, DeliversOverLoopback) {
  TcpTransport t(2);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    EXPECT_EQ(m.request_id, 7u);
    EXPECT_EQ(m.stamp[0], 7u);
    got.fetch_add(1);
  });
  t.start();
  t.send(make_msg(0, 1, 7));
  while (got.load() < 1) std::this_thread::yield();
  t.shutdown();
}

TEST(TcpTransport, FifoPerChannel) {
  TcpTransport t(2);
  std::vector<std::uint64_t> order;
  std::mutex mu;
  std::atomic<std::uint64_t> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    {
      std::scoped_lock lock(mu);
      order.push_back(m.request_id);
    }
    got.fetch_add(1);
  });
  t.start();
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  while (got.load() < kCount) std::this_thread::yield();
  t.shutdown();
  ASSERT_EQ(order.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST(TcpTransport, FullMeshBidirectional) {
  constexpr std::size_t kNodes = 4;
  TcpTransport t(kNodes);
  std::atomic<std::uint64_t> got{0};
  for (NodeId i = 0; i < kNodes; ++i) {
    t.register_node(i, [&](const Message&) { got.fetch_add(1); });
  }
  t.start();
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      if (i != j) t.send(make_msg(i, j, 1));
    }
  }
  const std::uint64_t expected = kNodes * (kNodes - 1);
  while (got.load() < expected) std::this_thread::yield();
  EXPECT_EQ(got.load(), expected);
  t.shutdown();
}

TEST(TcpTransport, ShutdownIsIdempotent) {
  TcpTransport t(3);
  for (NodeId i = 0; i < 3; ++i) t.register_node(i, [](const Message&) {});
  t.start();
  t.shutdown();
  t.shutdown();  // second call must be a no-op
}

/// A raw frame whose 4-byte length prefix claims `claimed` payload bytes,
/// carrying `actual` bytes of zeros behind it.
std::vector<std::byte> raw_frame(std::uint32_t claimed, std::size_t actual) {
  std::vector<std::byte> bytes(sizeof(std::uint32_t) + actual);
  std::memcpy(bytes.data(), &claimed, sizeof(claimed));
  return bytes;
}

TEST(TcpTransport, OversizedFrameTearsConnectionDownNotProcess) {
  TcpTransport t(3);
  StatsRegistry stats(3);
  t.attach_stats(&stats);
  std::atomic<int> got_1{0}, got_2{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got_1.fetch_add(1); });
  t.register_node(2, [&](const Message&) { got_2.fetch_add(1); });
  t.start();

  // A length prefix past the cap must not drive a giant allocation or an
  // assert; node 1's reader tears the 0<->1 connection down.
  t.send_raw(0, 1, raw_frame(TcpTransport::kMaxFrameBytes + 1, 0));
  for (int i = 0; i < 2000 && stats.node(1).get(Counter::kNetFrameError) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stats.node(1).get(Counter::kNetFrameError), 1u);

  // The torn-down pair makes later 0->1 sends fail (fast once the write
  // error is seen) instead of blocking; the counter makes the loss visible.
  for (int i = 0; i < 2000 && stats.node(0).get(Counter::kNetSendFailed) == 0;
       ++i) {
    t.send(make_msg(0, 1, i));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(stats.node(0).get(Counter::kNetSendFailed), 0u);

  // Bystander channels are unaffected: the process and the rest of the mesh
  // stay up.
  t.send(make_msg(0, 2, 0));
  t.send(make_msg(2, 1, 0));
  while (got_2.load() < 1 || got_1.load() < 1) std::this_thread::yield();
  t.shutdown();
}

TEST(TcpTransport, ZeroLengthFrameIsRejected) {
  TcpTransport t(2);
  StatsRegistry stats(2);
  t.attach_stats(&stats);
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [](const Message&) {});
  t.start();
  t.send_raw(0, 1, raw_frame(0, 0));
  for (int i = 0; i < 2000 && stats.node(1).get(Counter::kNetFrameError) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stats.node(1).get(Counter::kNetFrameError), 1u);
  t.shutdown();
}

TEST(TcpTransport, TruncatedFrameDoesNotHangShutdown) {
  TcpTransport t(2);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message&) { got.fetch_add(1); });
  t.start();
  t.send(make_msg(0, 1, 1));  // a good frame first
  while (got.load() < 1) std::this_thread::yield();
  // Claim 64 payload bytes but deliver only 8: node 1's reader blocks
  // mid-frame. shutdown() must still wake it and join cleanly (no hang —
  // the test finishing is the assertion).
  t.send_raw(0, 1, raw_frame(64, 8));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.shutdown();
  EXPECT_EQ(got.load(), 1);
}

}  // namespace
}  // namespace causalmem

#include "causalmem/net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace causalmem {
namespace {

Message make_msg(NodeId from, NodeId to, std::uint64_t seq) {
  Message m;
  m.type = MsgType::kBroadcastUpdate;
  m.from = from;
  m.to = to;
  m.request_id = seq;
  m.stamp = VectorClock(std::vector<std::uint64_t>{seq, seq + 1});
  return m;
}

TEST(TcpTransport, DeliversOverLoopback) {
  TcpTransport t(2);
  std::atomic<int> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    EXPECT_EQ(m.request_id, 7u);
    EXPECT_EQ(m.stamp[0], 7u);
    got.fetch_add(1);
  });
  t.start();
  t.send(make_msg(0, 1, 7));
  while (got.load() < 1) std::this_thread::yield();
  t.shutdown();
}

TEST(TcpTransport, FifoPerChannel) {
  TcpTransport t(2);
  std::vector<std::uint64_t> order;
  std::mutex mu;
  std::atomic<std::uint64_t> got{0};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    {
      std::scoped_lock lock(mu);
      order.push_back(m.request_id);
    }
    got.fetch_add(1);
  });
  t.start();
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  while (got.load() < kCount) std::this_thread::yield();
  t.shutdown();
  ASSERT_EQ(order.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST(TcpTransport, FullMeshBidirectional) {
  constexpr std::size_t kNodes = 4;
  TcpTransport t(kNodes);
  std::atomic<std::uint64_t> got{0};
  for (NodeId i = 0; i < kNodes; ++i) {
    t.register_node(i, [&](const Message&) { got.fetch_add(1); });
  }
  t.start();
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      if (i != j) t.send(make_msg(i, j, 1));
    }
  }
  const std::uint64_t expected = kNodes * (kNodes - 1);
  while (got.load() < expected) std::this_thread::yield();
  EXPECT_EQ(got.load(), expected);
  t.shutdown();
}

TEST(TcpTransport, ShutdownIsIdempotent) {
  TcpTransport t(3);
  for (NodeId i = 0; i < 3; ++i) t.register_node(i, [](const Message&) {});
  t.start();
  t.shutdown();
  t.shutdown();  // second call must be a no-op
}

}  // namespace
}  // namespace causalmem

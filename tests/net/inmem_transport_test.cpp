#include "causalmem/net/inmem_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

namespace causalmem {
namespace {

Message make_msg(NodeId from, NodeId to, std::uint64_t seq) {
  Message m;
  m.type = MsgType::kBroadcastUpdate;
  m.from = from;
  m.to = to;
  m.request_id = seq;
  m.stamp = VectorClock(2);
  return m;
}

TEST(InMemTransport, DeliversToRegisteredHandler) {
  InMemTransport t(2);
  std::atomic<int> got{0};
  t.register_node(0, [&](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    EXPECT_EQ(m.to, 1u);
    got.fetch_add(1);
  });
  t.start();
  t.send(make_msg(0, 1, 1));
  while (t.delivered_count() < 1) std::this_thread::yield();
  EXPECT_EQ(got.load(), 1);
  t.shutdown();
}

TEST(InMemTransport, PerChannelFifoWithoutLatency) {
  InMemTransport t(2);
  std::vector<std::uint64_t> order;
  std::mutex mu;
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    std::scoped_lock lock(mu);
    order.push_back(m.request_id);
  });
  t.start();
  constexpr std::uint64_t kCount = 2000;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  while (t.delivered_count() < kCount) std::this_thread::yield();
  t.shutdown();
  ASSERT_EQ(order.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST(InMemTransport, PerChannelFifoSurvivesJitter) {
  LatencyModel lat;
  lat.base = std::chrono::microseconds(50);
  lat.jitter = std::chrono::microseconds(200);
  InMemTransport t(2, lat);
  std::vector<std::uint64_t> order;
  std::mutex mu;
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    std::scoped_lock lock(mu);
    order.push_back(m.request_id);
  });
  t.start();
  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) t.send(make_msg(0, 1, i));
  while (t.delivered_count() < kCount) std::this_thread::yield();
  t.shutdown();
  ASSERT_EQ(order.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST(InMemTransport, BaseLatencyDelaysDelivery) {
  LatencyModel lat;
  lat.base = std::chrono::microseconds(20000);  // 20 ms
  InMemTransport t(2, lat);
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [](const Message&) {});
  t.start();
  const auto start = std::chrono::steady_clock::now();
  t.send(make_msg(0, 1, 0));
  while (t.delivered_count() < 1) std::this_thread::yield();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(19));
  t.shutdown();
}

TEST(InMemTransport, ChannelLatencyOverrideIsPerDirection) {
  LatencyModel slow;
  slow.base = std::chrono::microseconds(30000);
  InMemTransport t(2);
  t.set_channel_latency(0, 1, slow);
  std::atomic<int> got_at_1{0}, got_at_0{0};
  t.register_node(0, [&](const Message&) { got_at_0.fetch_add(1); });
  t.register_node(1, [&](const Message&) { got_at_1.fetch_add(1); });
  t.start();
  t.send(make_msg(0, 1, 0));  // slow direction
  t.send(make_msg(1, 0, 0));  // fast direction
  while (got_at_0.load() < 1) std::this_thread::yield();
  EXPECT_EQ(got_at_1.load(), 0);  // slow message still in flight
  while (got_at_1.load() < 1) std::this_thread::yield();
  t.shutdown();
}

TEST(InMemTransport, CodecExerciseRoundTripsMessages) {
  InMemTransport t(2, {}, /*exercise_codec=*/true);
  std::atomic<bool> ok{false};
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [&](const Message& m) {
    ok.store(m.request_id == 42 && m.value == -7 &&
             m.tag == WriteTag{0, 3});
  });
  t.start();
  Message m = make_msg(0, 1, 42);
  m.value = -7;
  m.tag = WriteTag{0, 3};
  t.send(std::move(m));
  while (t.delivered_count() < 1) std::this_thread::yield();
  EXPECT_TRUE(ok.load());
  t.shutdown();
}

TEST(InMemTransport, SendAfterShutdownIsDropped) {
  InMemTransport t(2);
  t.register_node(0, [](const Message&) {});
  t.register_node(1, [](const Message&) {});
  t.start();
  t.shutdown();
  t.send(make_msg(0, 1, 0));  // must not crash or deliver
  EXPECT_EQ(t.delivered_count(), 0u);
}

TEST(InMemTransport, ManyToOneAllDelivered) {
  constexpr std::size_t kNodes = 5;
  InMemTransport t(kNodes);
  std::atomic<std::uint64_t> got{0};
  for (NodeId i = 0; i < kNodes; ++i) {
    t.register_node(i, [&](const Message&) { got.fetch_add(1); });
  }
  t.start();
  constexpr std::uint64_t kPer = 300;
  {
    std::vector<std::jthread> senders;
    for (NodeId i = 1; i < kNodes; ++i) {
      senders.emplace_back([&t, i] {
        for (std::uint64_t s = 0; s < kPer; ++s) t.send(make_msg(i, 0, s));
      });
    }
  }
  while (got.load() < kPer * (kNodes - 1)) std::this_thread::yield();
  EXPECT_EQ(got.load(), kPer * (kNodes - 1));
  t.shutdown();
}

}  // namespace
}  // namespace causalmem

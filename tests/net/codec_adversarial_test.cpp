// Adversarial codec and reorder-buffer tests: corrupt counts, truncated
// frames, wire-version skew, delta-clock edge cases, and frames landing
// outside the reliable channel's bounded reorder window. Contract
// violations abort (CM_EXPECTS), so the negative cases are death tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "causalmem/common/arena.hpp"
#include "causalmem/common/codec.hpp"
#include "causalmem/net/inmem_transport.hpp"
#include "causalmem/net/message.hpp"
#include "causalmem/net/reliable_channel.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem {
namespace {

Message sample_message() {
  Message m;
  m.type = MsgType::kWriteReply;
  m.from = 1;
  m.to = 0;
  m.request_id = 42;
  m.addr = 7;
  m.value = 99;
  m.tag = WriteTag{1, 3};
  m.stamp = VectorClock(std::vector<std::uint64_t>{4, 17, 0, 2});
  m.cells.push_back(CellUpdate{7, 99, WriteTag{1, 3}});
  return m;
}

TEST(CodecAdversarialDeathTest, PutCountRejectsCountsBeyondU32) {
  ByteWriter w;
  EXPECT_DEATH(w.put_count(std::size_t{1} << 33),
               "codec count overflows u32 wire field");
}

TEST(CodecAdversarialDeathTest, TruncatedFramesAbortInsteadOfMisparsing) {
  const std::vector<std::byte> wire = sample_message().encode();
  // Every proper prefix is a corrupt frame: either a field under-runs or
  // the trailing-bytes postcondition fires. None may parse silently.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1},
                                 wire.size() / 2, wire.size() - 1}) {
    EXPECT_DEATH((void)Message::decode({wire.data(), keep}), "codec|exhaust");
  }
}

TEST(CodecAdversarialDeathTest, WireVersionMismatchIsRejected) {
  std::vector<std::byte> wire = sample_message().encode();
  wire[0] = static_cast<std::byte>(kWireVersion + 1);
  EXPECT_DEATH((void)Message::decode(wire), "unsupported wire version");
}

TEST(CodecAdversarialDeathTest, OverflowingCellCountIsCaughtBeforeAlloc) {
  std::vector<std::byte> wire = sample_message().encode();
  // The cell count sits 56 bytes from the end: u32 count, one 28-byte cell,
  // rel_seq + rel_ack (16 bytes), then the v3 trailing trace_id (8 bytes).
  // Forge it to claim 2^31 cells.
  const std::size_t count_at = wire.size() - 8 - 16 - 28 - 4;
  wire[count_at + 3] = static_cast<std::byte>(0x80);
  EXPECT_DEATH((void)Message::decode(wire), "codec under-run \\(cell count\\)");
}

TEST(CodecAdversarialDeathTest, DeltaFrameNeedsChannelState) {
  ClockCodecState tx;
  Message m = sample_message();
  FrameArena::release(m.encode(tx));  // full frame establishes the baseline
  m.stamp.increment(0);
  const std::vector<std::byte> delta_wire = m.encode(tx);
  EXPECT_DEATH((void)Message::decode(delta_wire),
               "delta clock frame without channel state");
}

TEST(CodecAdversarial, DeltaRoundTripAndFullFallback) {
  ClockCodecState tx;
  ClockCodecState rx;
  Message m = sample_message();

  // First frame: no baseline yet, goes out full.
  const std::vector<std::byte> first = m.encode(tx);
  Message out;
  Message::decode_into(first, out, &rx);
  EXPECT_EQ(out.stamp, m.stamp);

  // Second frame: one changed component — delta-compressed, and strictly
  // smaller than the stateless encoding of the same message.
  m.stamp.increment(2);
  const std::vector<std::byte> delta = m.encode(tx);
  EXPECT_LT(delta.size(), m.encode().size());
  Message::decode_into(delta, out, &rx);
  EXPECT_EQ(out.stamp, m.stamp);

  // Third frame: clock size changes (baseline mismatch) — falls back to a
  // full frame and re-establishes the baseline on both ends.
  m.stamp = VectorClock(std::vector<std::uint64_t>{1, 2});
  const std::vector<std::byte> fallback = m.encode(tx);
  Message::decode_into(fallback, out, &rx);
  EXPECT_EQ(out.stamp, m.stamp);

  // Fourth frame: delta-compresses against the re-established baseline.
  m.stamp.increment(1);
  Message::decode_into(m.encode(tx), out, &rx);
  EXPECT_EQ(out.stamp, m.stamp);
}

TEST(CodecAdversarial, EmptyClocksAreTransparentToTheDeltaBaseline) {
  ClockCodecState tx;
  ClockCodecState rx;
  Message m = sample_message();
  Message out;
  Message::decode_into(m.encode(tx), out, &rx);  // establish the baseline

  // A stamp-less control message (READ request, ack, heartbeat) must not
  // disturb the baseline...
  Message control;
  control.type = MsgType::kRead;
  control.from = 0;
  control.to = 1;
  control.addr = 7;
  Message::decode_into(control.encode(tx), out, &rx);
  EXPECT_EQ(out.stamp.size(), 0u);

  // ...so the next stamped message still delta-compresses.
  m.stamp.increment(3);
  const std::vector<std::byte> delta = m.encode(tx);
  EXPECT_LT(delta.size(), m.encode().size());
  Message::decode_into(delta, out, &rx);
  EXPECT_EQ(out.stamp, m.stamp);
}

TEST(CodecAdversarial, FrameArenaRecyclesCapacity) {
  std::vector<std::byte> buf = FrameArena::acquire();
  buf.resize(256);
  const std::size_t pooled_before = FrameArena::pooled_count();
  FrameArena::release(std::move(buf));
  EXPECT_EQ(FrameArena::pooled_count(), pooled_before + 1);
  std::vector<std::byte> again = FrameArena::acquire();
  EXPECT_EQ(FrameArena::pooled_count(), pooled_before);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 256u);
}

TEST(CodecAdversarial, OutOfWindowFrameIsDroppedAndCounted) {
  ReliableConfig cfg;
  cfg.reorder_window = 4;
  cfg.max_retransmits = 1;
  ReliableChannel rel(std::make_unique<InMemTransport>(2), cfg);
  std::atomic<int> delivered{0};
  rel.register_node(0, [&](const Message&) { delivered.fetch_add(1); });
  rel.register_node(1, [&](const Message&) {});
  rel.start();

  // Inject a frame far beyond the receive window directly into the inner
  // transport, bypassing the sender half (which would never produce it).
  Message rogue;
  rogue.type = MsgType::kBroadcastUpdate;
  rogue.from = 1;
  rogue.to = 0;
  rogue.rel_seq = 100;  // next_deliver_seq is 1, window is 4
  rel.inner().send(rogue);

  for (int i = 0; i < 2000 && rel.out_of_window_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rel.out_of_window_count(), 1u);
  EXPECT_EQ(delivered.load(), 0);

  // An in-window frame still sails through: the drop is surgical.
  Message ok;
  ok.type = MsgType::kBroadcastUpdate;
  ok.from = 1;
  ok.to = 0;
  ok.rel_seq = 1;
  rel.inner().send(ok);
  for (int i = 0; i < 2000 && delivered.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), 1);
  rel.shutdown();
}

}  // namespace
}  // namespace causalmem

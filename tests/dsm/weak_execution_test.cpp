// E5: Figure 5 — "A Weakly Consistent Execution".
//
//   P1: r(y)0  w(x)1  r(y)0
//   P2: r(x)0  w(y)1  r(x)0
//
// The paper: this execution is allowed by causal memory correctness *and* by
// the Figure 4 implementation when P1 owns x and P2 owns y — but no strongly
// consistent memory admits it. We drive the implementation to produce it
// deterministically, validate it with the causal checker, and show the SC
// checker rejects it.
#include <gtest/gtest.h>

#include <barrier>
#include <thread>

#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {
namespace {

TEST(WeakExecution, Figure5ProducedByImplementationAndAcceptedByChecker) {
  constexpr Addr kX = 0;  // owned by node 0 (striped)
  constexpr Addr kY = 1;  // owned by node 1

  Recorder recorder(2);
  std::vector<Value> first_reads(2), last_reads(2);
  {
    DsmSystem<CausalNode> sys(2, {}, {}, nullptr, &recorder);
    std::barrier sync(2);
    auto run = [&](NodeId me, Addr mine, Addr other) {
      SharedMemory& mem = sys.memory(me);
      first_reads[me] = mem.read(other);  // caches the other location
      sync.arrive_and_wait();             // both initial reads done
      mem.write(mine, 1);                 // owned write: no messages
      last_reads[me] = mem.read(other);   // cached stale copy survives
      sync.arrive_and_wait();
    };
    std::jthread t1(run, NodeId{0}, kX, kY);
    std::jthread t2(run, NodeId{1}, kY, kX);
  }

  // The exact Figure 5 outcome.
  EXPECT_EQ(first_reads[0], 0);
  EXPECT_EQ(first_reads[1], 0);
  EXPECT_EQ(last_reads[0], 0) << "P1's second r(y) must still see 0";
  EXPECT_EQ(last_reads[1], 0) << "P2's second r(x) must still see 0";

  const History h = recorder.history();
  EXPECT_FALSE(CausalChecker(h).check().has_value()) << h.to_string();
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent)
      << "Figure 5 must not be explainable by any interleaving\n"
      << h.to_string();
}

TEST(WeakExecution, HandWrittenFigure5History) {
  // The same execution written down directly (independent of the
  // implementation run above).
  const History h = HistoryBuilder(2)
                        .read(0, 1, 0)
                        .write(0, 0, 1)
                        .read(0, 1, 0)
                        .read(1, 0, 0)
                        .write(1, 1, 1)
                        .read(1, 0, 0)
                        .build();
  EXPECT_FALSE(CausalChecker(h).check().has_value());
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent);
}

TEST(WeakExecution, AtomicMemoryForbidsFigure5) {
  // On the atomic baseline the same program cannot produce Figure 5: at
  // least one of the second reads must observe the other's write, because
  // writes invalidate cached copies system-wide.
  constexpr Addr kX = 0;
  constexpr Addr kY = 1;
  std::vector<Value> last_reads(2);
  {
    DsmSystem<AtomicNode> sys(2);
    std::barrier sync(2);
    auto run = [&](NodeId me, Addr mine, Addr other) {
      SharedMemory& mem = sys.memory(me);
      (void)mem.read(other);
      sync.arrive_and_wait();
      mem.write(mine, 1);
      sync.arrive_and_wait();  // both writes complete before the re-reads
      last_reads[me] = mem.read(other);
    };
    std::jthread t1(run, NodeId{0}, kX, kY);
    std::jthread t2(run, NodeId{1}, kY, kX);
  }
  EXPECT_EQ(last_reads[0], 1);
  EXPECT_EQ(last_reads[1], 1);
}

}  // namespace
}  // namespace causalmem

// E11: Section 3.2's "scaling the unit of sharing to a page". With
// page_size > 1 a read miss fetches the whole page, neighbouring reads hit,
// and invalidation works at page granularity (including false sharing).
#include <gtest/gtest.h>

#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

CausalConfig page_config(Addr page_size) {
  CausalConfig cfg;
  cfg.page_size = page_size;
  return cfg;
}

TEST(PageMode, PageFetchServesNeighbouringReads) {
  // 2 nodes, pages of 4: node 0 owns page 0 (addrs 0..3), node 1 page 1.
  DsmSystem<CausalNode> sys(2, page_config(4));
  sys.memory(1).write(4, 40);
  sys.memory(1).write(5, 50);
  sys.memory(1).write(6, 60);
  EXPECT_EQ(sys.memory(0).read(4), 40);  // one miss fetches the page
  EXPECT_EQ(sys.memory(0).read(5), 50);  // hits
  EXPECT_EQ(sys.memory(0).read(6), 60);
  EXPECT_EQ(sys.memory(0).read(7), 0);   // untouched cell of the same page
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 1u);
}

TEST(PageMode, OwnershipIsPerPage) {
  DsmSystem<CausalNode> sys(2, page_config(4));
  EXPECT_TRUE(sys.memory(0).owns(0));
  EXPECT_TRUE(sys.memory(0).owns(3));
  EXPECT_FALSE(sys.memory(0).owns(4));
  EXPECT_TRUE(sys.memory(1).owns(7));
}

TEST(PageMode, RemoteWriteUpdatesCachedPageCell) {
  DsmSystem<CausalNode> sys(2, page_config(4));
  EXPECT_EQ(sys.memory(0).read(4), 0);  // cache page 1
  sys.memory(0).write(5, 55);           // remote write into the cached page
  EXPECT_EQ(sys.memory(0).read(5), 55) << "writer must see its own write";
  EXPECT_EQ(sys.memory(1).read(5), 55);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 1u)
      << "the cached page absorbed the local re-read";
}

TEST(PageMode, FalseSharingInvalidatesWholePage) {
  // Node 0 caches page 1 (addrs 4..7); node 1 then writes addr 4 and a
  // causally later marker on another page; fetching the marker invalidates
  // the whole cached page even though only one cell changed.
  DsmSystem<CausalNode> sys(3, page_config(4));
  EXPECT_EQ(sys.memory(0).read(4), 0);
  EXPECT_TRUE(sys.node(0).is_cached(4));
  sys.memory(1).write(4, 44);
  sys.memory(1).write(8, 1);  // page 2, owned by node 2 — causally after
  EXPECT_EQ(sys.memory(0).read(8), 1);
  EXPECT_FALSE(sys.node(0).is_cached(4))
      << "page stamp is older than the introduced stamp";
  EXPECT_EQ(sys.memory(0).read(7), 0);  // refetch brings fresh page
  EXPECT_EQ(sys.memory(0).read(4), 44);
}

TEST(PageMode, RandomWorkloadIsCausallyConsistent) {
  for (const Addr page_size : {2u, 4u, 8u}) {
    Recorder recorder(3);
    {
      DsmSystem<CausalNode> sys(3, page_config(page_size), {}, nullptr,
                                &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p] {
          Rng rng(7000 + p);
          for (int i = 0; i < 150; ++i) {
            const Addr a = rng.next_below(24);
            if (rng.chance(0.4)) {
              sys.memory(p).write(a, static_cast<Value>(rng.next()));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
        });
      }
    }
    const auto violation = CausalChecker(recorder.history()).check();
    EXPECT_FALSE(violation.has_value())
        << "page_size " << page_size << ": " << violation->reason;
  }
}

TEST(PageMode, PageSizeOneMatchesPaperProtocol) {
  // Degenerate page = the exact Figure 4 algorithm; writer caches its
  // certified remote write.
  DsmSystem<CausalNode> sys(2, page_config(1));
  sys.memory(0).write(1, 7);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  EXPECT_EQ(sys.memory(0).read(1), 7);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 0u);
}

}  // namespace
}  // namespace causalmem

// Crash tolerance for the owner protocol: request deadlines surface
// Unreachable instead of blocking forever, suspected owners' locations
// migrate to a deterministic ring successor that reconstructs state by a
// writestamp-max election, and a transport-restarted node rejoins with a
// resynced clock. Histories must stay causal through all of it.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "causalmem/apps/solver/solver.hpp"
#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/failover.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/obs/clock.hpp"

namespace causalmem {
namespace {

/// Polls until `pred` holds or ~2s elapse; returns the final predicate value.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

VectorClock vc(std::vector<std::uint64_t> comps) {
  return VectorClock(std::move(comps));
}

TEST(FresherStamp, OrdersDeterministically) {
  // Strictly after wins; before/equal lose.
  EXPECT_TRUE(fresher_stamp(vc({2, 1}), vc({1, 1})));
  EXPECT_FALSE(fresher_stamp(vc({1, 1}), vc({2, 1})));
  EXPECT_FALSE(fresher_stamp(vc({1, 1}), vc({1, 1})));
  // Concurrent: larger component sum wins...
  EXPECT_TRUE(fresher_stamp(vc({3, 0}), vc({0, 2})));
  EXPECT_FALSE(fresher_stamp(vc({0, 2}), vc({3, 0})));
  // ...equal sums fall back to lexicographic order — and exactly one of the
  // two directions wins, so independent elections agree.
  const bool ab = fresher_stamp(vc({2, 0}), vc({0, 2}));
  const bool ba = fresher_stamp(vc({0, 2}), vc({2, 0}));
  EXPECT_NE(ab, ba);
}

TEST(FailoverDirectory, MigratesToRingSuccessorAndNeverReverts) {
  FailoverDirectory dir(std::make_unique<StripedOwnership>(4), 4, nullptr);
  EXPECT_EQ(dir.owner(1), 1u);
  EXPECT_EQ(dir.epoch(), 0u);

  // First suspicion migrates to the next live node in ring order.
  EXPECT_TRUE(dir.suspect(1, 0));
  EXPECT_TRUE(dir.is_down(1));
  EXPECT_EQ(dir.owner(1), 2u);
  EXPECT_EQ(dir.base_owner(1), 1u);
  EXPECT_EQ(dir.epoch(), 1u);
  // Repeat reports are idempotent.
  EXPECT_FALSE(dir.suspect(1, 3));
  EXPECT_EQ(dir.owner(1), 2u);

  // A restart re-admits the node but ownership stays migrated.
  dir.mark_restarted(1);
  EXPECT_FALSE(dir.is_down(1));
  EXPECT_EQ(dir.owner(1), 2u);

  // The successor itself failing chains the reroute: 1 -> 2 -> 3.
  EXPECT_TRUE(dir.suspect(2, kNoNode));
  EXPECT_EQ(dir.owner(1), 3u);
  EXPECT_EQ(dir.owner(2), 3u);

  const std::vector<NodeId> live = dir.live_peers(0);
  EXPECT_EQ(live, (std::vector<NodeId>{1, 3}));
}

TEST(FailoverDirectory, SuccessorSkipsDownNodes) {
  FailoverDirectory dir(std::make_unique<StripedOwnership>(4), 4, nullptr);
  ASSERT_TRUE(dir.suspect(2, kNoNode));
  // 3 is down when 1 fails: the successor scan must skip it and pick 0
  // (wrapping the ring), not park locations on a corpse.
  ASSERT_TRUE(dir.suspect(3, kNoNode));
  ASSERT_TRUE(dir.suspect(1, kNoNode));
  EXPECT_EQ(dir.owner(1), 0u);
  // With everyone else down there is no successor left.
  EXPECT_FALSE(dir.suspect(0, kNoNode));
  EXPECT_FALSE(dir.is_down(0));
}

TEST(RequestDeadline, EveryRequestReturnsUnreachableWithinDeadline) {
  // Deterministic (FakeClock) version of the acceptance scenario: one node
  // crashed, NO failover — every owner request must surface Unreachable
  // once the virtual clock passes retries+1 deadlines, never block forever.
  obs::FakeClock clock;
  obs::ScopedClockSource scoped(&clock);

  CausalConfig cfg;
  cfg.request_timeout = std::chrono::milliseconds(50);
  cfg.request_retries = 2;
  SystemOptions options;
  options.fault_layer = true;
  DsmSystem<CausalNode> sys(2, cfg, options);
  ASSERT_NE(sys.faulty_transport(), nullptr);
  sys.faulty_transport()->crash_node(0);  // owner of addr 0 (striped)

  ReadResult read_result;
  OpStatus write_status = OpStatus::kOk;
  std::jthread worker([&] {
    read_result = sys.node(1).try_read(0);
    write_status = sys.node(1).try_write(0, 42);
  });
  // Drive virtual time forward until both operations give up. Each op runs
  // 3 rounds of 50ms; 10ms virtual steps paced by real sleeps let the
  // 200us deadline poll observe every expiry.
  std::jthread advancer([&clock](const std::stop_token& st) {
    while (!st.stop_requested()) {
      clock.advance_ns(10'000'000);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  worker.join();
  advancer.request_stop();
  advancer.join();

  EXPECT_EQ(read_result.status, OpStatus::kUnreachable);
  EXPECT_FALSE(read_result.ok());
  EXPECT_EQ(write_status, OpStatus::kUnreachable);
  const NodeStats& stats = sys.stats().node(1);
  // Exactly (retries + 1) expired rounds per operation, one terminal
  // Unreachable each.
  EXPECT_EQ(stats.get(Counter::kFoRequestTimeout), 6u);
  EXPECT_EQ(stats.get(Counter::kFoUnreachable), 2u);
  // No failover directory attached: nothing migrated, nothing recovered.
  EXPECT_EQ(sys.failover_directory(), nullptr);
}

SystemOptions failover_options() {
  SystemOptions options;
  options.fault_layer = true;
  options.failover.enabled = true;
  options.reliable = true;
  // Fast give-up: requests to a crashed peer stop retransmitting quickly
  // instead of backing off for ~1s (the DSM deadline owns recovery).
  options.reliable_config.initial_rto = std::chrono::milliseconds(2);
  options.reliable_config.max_retransmits = 5;
  return options;
}

CausalConfig deadline_config() {
  CausalConfig cfg;
  // Wide enough that sanitizer slowdown cannot falsely suspect a live
  // owner (suspicion accuracy is a protocol assumption — see PROTOCOL.md),
  // short enough that crash detection keeps the chaos tests fast.
  cfg.request_timeout = std::chrono::milliseconds(80);
  cfg.request_retries = 2;
  return cfg;
}

TEST(OwnerFailover, SolverSurvivesOwnerCrashMidRun) {
  // The acceptance chaos test: the node owning A and b (a non-coordinator,
  // running no solver code) crashes between phases 2 and 3 of a 6-phase
  // run. Reads of the constants fail over to the ring successor (worker 0),
  // which reconstructs them by election from the live nodes' journals; the
  // run must still be bit-exact vs the sequential reference and the full
  // history causally consistent.
  const SolverProblem p = SolverProblem::random(4, 21);
  const auto ref = p.jacobi_reference(6);
  const SolverLayout layout(p.n);
  const NodeId storage = static_cast<NodeId>(layout.node_count());
  const std::size_t n = layout.node_count() + 1;
  Recorder recorder(n);
  SolverRun run;
  StatsSnapshot stats{};
  {
    DsmSystem<CausalNode> sys(n, deadline_config(), failover_options(),
                              layout.make_ownership_constants_at(storage),
                              &recorder);
    ASSERT_NE(sys.failover_directory(), nullptr);
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 6;
    opts.protect_constants = false;  // cached constants must die and re-fetch
    opts.on_phase = [&sys, storage](std::size_t k) {
      if (k == 2) sys.faulty_transport()->crash_node(storage);
    };
    run = run_sync_solver(p, layout, mems, opts);
    stats = sys.stats().total();
    EXPECT_TRUE(sys.failover_directory()->is_down(storage));
    EXPECT_EQ(sys.failover_directory()->owner(layout.a(0, 0)), 0u);
  }
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
  // The failover machinery must actually have fired.
  EXPECT_GE(stats[Counter::kFoSuspect], 1u);
  EXPECT_EQ(stats[Counter::kFoFailover], 1u);
  EXPECT_GT(stats[Counter::kFoRecoverRequest], 0u);
  EXPECT_GT(stats[Counter::kFoRequestTimeout], 0u);
}

TEST(OwnerFailover, RestartedNodeRejoinsMidRun) {
  // Crash the storage owner early, restart it mid-run: the restarted node
  // rejoins as a peer (its locations stay with the successor) with a clock
  // resynced from the live nodes, and the run stays bit-exact and causal.
  const SolverProblem p = SolverProblem::random(4, 33);
  const auto ref = p.jacobi_reference(8);
  const SolverLayout layout(p.n);
  const NodeId storage = static_cast<NodeId>(layout.node_count());
  const std::size_t n = layout.node_count() + 1;
  Recorder recorder(n);
  SolverRun run;
  bool rejoined = false;
  VectorClock storage_vt;
  {
    DsmSystem<CausalNode> sys(n, deadline_config(), failover_options(),
                              layout.make_ownership_constants_at(storage),
                              &recorder);
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 8;
    opts.protect_constants = false;
    opts.on_phase = [&](std::size_t k) {
      if (k == 2) sys.faulty_transport()->crash_node(storage);
      if (k == 5) rejoined = sys.restart_node(storage);
    };
    run = run_sync_solver(p, layout, mems, opts);
    EXPECT_FALSE(sys.failover_directory()->is_down(storage));
    // Ownership never reverts: the successor keeps serving the constants.
    EXPECT_EQ(sys.failover_directory()->owner(layout.a(0, 0)), 0u);
    storage_vt = sys.node(storage).vector_time();
  }
  EXPECT_TRUE(rejoined);
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
  // The rejoin resynced the restarted node's clock from live peers: it has
  // witnessed other nodes' writes again.
  std::uint64_t learned = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (i != storage) learned += storage_vt[i];
  }
  EXPECT_GT(learned, 0u);
}

TEST(OwnerFailover, RandomWorkloadStaysCausalAcrossOwnerCrash) {
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kAddrs = 6;
  Recorder recorder(kNodes);
  {
    DsmSystem<CausalNode> sys(kNodes, deadline_config(), failover_options(),
                              nullptr, &recorder);
    std::atomic<bool> crashed{false};
    std::jthread killer([&sys, &crashed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      sys.faulty_transport()->crash_node(2);
      crashed.store(true);
    });
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 2; ++p) {  // node 2 is the crash victim
      threads.emplace_back([&sys, &crashed, p] {
        Rng rng(4242 + p);
        SharedMemory& mem = sys.memory(p);
        for (int i = 0; i < 80; ++i) {
          // The second half of the workload runs strictly after the crash so
          // the dead owner's addresses are guaranteed to be exercised.
          while (i == 40 && !crashed.load()) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
          const Addr a = rng.next_below(kAddrs);
          if (rng.chance(0.5)) {
            mem.write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)mem.read(a);
          }
        }
        (void)mem.read(2);  // owned by the crashed node: forces a timeout
        mem.flush();
      });
    }
    threads.clear();
    killer.join();
    EXPECT_TRUE(sys.failover_directory()->is_down(2));
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(OwnerFailover, HeartbeatDetectsIdleCrash) {
  // No application traffic at all: only the active prober can notice the
  // crash. The survivor must then serve the dead node's locations.
  SystemOptions options = failover_options();
  options.failover.heartbeat = true;
  options.failover.heartbeat_config.interval = std::chrono::milliseconds(1);
  options.failover.heartbeat_config.suspect_after =
      std::chrono::milliseconds(20);
  DsmSystem<CausalNode> sys(3, deadline_config(), options);
  // Let a few probe rounds establish liveness, then kill node 2 silently.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sys.faulty_transport()->crash_node(2);
  ASSERT_TRUE(eventually(
      [&] { return sys.failover_directory()->is_down(2); }));
  EXPECT_EQ(sys.failover_directory()->owner(2), 0u);  // ring: 2 -> 0
  // The migrated location is servable: an election with no journaled copy
  // anywhere yields the initial value.
  EXPECT_EQ(sys.memory(0).read(2), kInitialValue);
  EXPECT_EQ(sys.memory(1).read(2), kInitialValue);
  const StatsSnapshot stats = sys.stats().total();
  EXPECT_GT(stats[Counter::kNetHeartbeat], 0u);
  EXPECT_EQ(stats[Counter::kFoFailover], 1u);
}

TEST(OwnerFailover, FaultFreeRunKeepsEveryRecoveryCounterZero) {
  // Failover enabled but nothing crashes: the machinery must be pure
  // bookkeeping — zero recovery counters, zero recovery messages — so the
  // paper's fault-free message accounting (2n+6) is untouched.
  const SolverProblem p = SolverProblem::random(4, 17);
  const auto ref = p.jacobi_reference(4);
  const SolverLayout layout(p.n);
  SystemOptions options;
  options.fault_layer = true;
  options.failover.enabled = true;
  CausalConfig cfg;
  cfg.request_timeout = std::chrono::seconds(5);  // never expires in practice
  cfg.request_retries = 2;
  StatsSnapshot stats{};
  SolverRun run;
  {
    DsmSystem<CausalNode> sys(layout.node_count(), cfg, options,
                              layout.make_ownership());
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 4;
    run = run_sync_solver(p, layout, mems, opts);
    stats = sys.stats().total();
  }
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
  for (const Counter c :
       {Counter::kNetHeartbeat, Counter::kNetPeerUnreachable,
        Counter::kFoSuspect, Counter::kFoFailover, Counter::kFoRecoverRequest,
        Counter::kFoRecoverReply, Counter::kFoSyncRequest,
        Counter::kFoSyncReply, Counter::kFoRequestTimeout,
        Counter::kFoUnreachable}) {
    EXPECT_EQ(stats[c], 0u) << counter_name(c);
  }
}

}  // namespace
}  // namespace causalmem

#include "causalmem/dsm/atomic/node.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {
namespace {

using AtomicSystem = DsmSystem<AtomicNode>;

TEST(AtomicNode, OwnedAccessIsLocal) {
  AtomicSystem sys(2);
  sys.memory(0).write(0, 5);
  EXPECT_EQ(sys.memory(0).read(0), 5);
  EXPECT_EQ(sys.stats().total().messages_sent(), 0u);
}

TEST(AtomicNode, ReadMissFetchesAndCaches) {
  AtomicSystem sys(2);
  sys.memory(1).write(1, 9);
  EXPECT_EQ(sys.memory(0).read(1), 9);
  EXPECT_EQ(sys.memory(0).read(1), 9);  // hit
  const auto total = sys.stats().total();
  EXPECT_EQ(total[Counter::kMsgReadRequest], 1u);
  EXPECT_EQ(total[Counter::kMsgReadReply], 1u);
}

TEST(AtomicNode, OwnerWriteInvalidatesAllCachedCopies) {
  AtomicSystem sys(3);
  sys.memory(1).write(1, 1);
  EXPECT_EQ(sys.memory(0).read(1), 1);  // 0 joins the copyset
  EXPECT_EQ(sys.memory(2).read(1), 1);  // 2 joins the copyset
  sys.memory(1).write(1, 2);            // must invalidate 0 and 2
  const auto total = sys.stats().total();
  EXPECT_EQ(total[Counter::kMsgInvalidate], 2u);
  EXPECT_EQ(total[Counter::kMsgInvalidateAck], 2u);
  // Fresh copies observed everywhere.
  EXPECT_EQ(sys.memory(0).read(1), 2);
  EXPECT_EQ(sys.memory(2).read(1), 2);
}

TEST(AtomicNode, RemoteWriteInvalidatesOtherReaders) {
  AtomicSystem sys(3);
  EXPECT_EQ(sys.memory(0).read(1), 0);
  EXPECT_EQ(sys.memory(2).read(1), 0);
  sys.memory(0).write(1, 42);  // owner is node 1; node 2's copy must die
  EXPECT_EQ(sys.stats().total()[Counter::kMsgInvalidate], 1u);
  EXPECT_EQ(sys.memory(2).read(1), 42);
  EXPECT_EQ(sys.memory(0).read(1), 42);  // writer's own copy is fresh
}

TEST(AtomicNode, NoStaleReadAfterWriteCompletes) {
  // Once any write completes, *no* processor may read the old value — the
  // strong guarantee causal memory deliberately relaxes.
  AtomicSystem sys(4);
  for (NodeId p = 0; p < 4; ++p) EXPECT_EQ(sys.memory(p).read(1), 0);
  sys.memory(3).write(1, 7);
  for (NodeId p = 0; p < 4; ++p) EXPECT_EQ(sys.memory(p).read(1), 7);
}

TEST(AtomicNode, DiscardIsNoOp) {
  AtomicSystem sys(2);
  EXPECT_EQ(sys.memory(0).read(1), 0);
  EXPECT_FALSE(sys.memory(0).discard(1));
  EXPECT_EQ(sys.memory(0).read(1), 0);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 1u);
}

TEST(AtomicNode, SpinUntilSeesPushedInvalidation) {
  AtomicSystem sys(2);
  EXPECT_EQ(sys.memory(0).read(1), 0);  // cache the flag
  std::jthread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sys.memory(1).write(1, 1);
  });
  EXPECT_EQ(spin_until_equals(sys.memory(0), 1, 1), 1);
  // No discard-based refetches were needed.
  EXPECT_EQ(sys.stats().node_snapshot(0)[Counter::kSpinRefetch], 0u);
}

TEST(AtomicNode, ConcurrentWritersSerializeAtOwner) {
  AtomicSystem sys(3);
  constexpr int kWritesEach = 100;
  {
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        for (int i = 0; i < kWritesEach; ++i) {
          sys.memory(p).write(1, static_cast<Value>(p * 1000 + i));
        }
      });
    }
  }
  // The final value is one of the last writes; all replicas agree.
  const Value v0 = sys.memory(0).read(1);
  EXPECT_EQ(sys.memory(1).read(1), v0);
  EXPECT_EQ(sys.memory(2).read(1), v0);
}

TEST(AtomicNode, RandomWorkloadIsSequentiallyConsistent) {
  Recorder recorder(3);
  {
    AtomicSystem sys(3, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(500 + p);
        for (int i = 0; i < 12; ++i) {  // small: the SC check is exponential
          const Addr a = rng.next_below(2);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, static_cast<Value>(p * 100 + i + 1));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  const History h = recorder.history();
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kConsistent)
      << h.to_string();
  // Sequential consistency implies causal consistency.
  EXPECT_FALSE(CausalChecker(h).check().has_value());
}

TEST(AtomicNode, WorksOverTcpTransport) {
  SystemOptions opts;
  opts.use_tcp = true;
  AtomicSystem sys(3, {}, opts);
  sys.memory(0).write(2, 5);
  EXPECT_EQ(sys.memory(1).read(2), 5);
  sys.memory(2).write(2, 6);
  EXPECT_EQ(sys.memory(1).read(2), 6);
}

}  // namespace
}  // namespace causalmem

// The paper assumes "reliable, ordered message passing between any two
// processors". These tests drop that assumption at the transport and restore
// it with the ReliableChannel adapter: the Figure 6 solver and the Section
// 4.2 dictionary must produce the same checker-accepted causal executions
// over channels that drop, duplicate and delay 10-20% of their messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "causalmem/apps/dict/dictionary.hpp"
#include "causalmem/apps/solver/solver.hpp"
#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

/// Drop/dup/delay at the rates the acceptance bar asks for; short delays so
/// the tests stay fast while still breaking FIFO.
SystemOptions lossy_options(double drop_rate = 0.15) {
  SystemOptions options;
  options.faults.drop_rate = drop_rate;
  options.faults.dup_rate = 0.05;
  options.faults.delay_rate = 0.05;
  options.faults.delay_base = std::chrono::microseconds(200);
  options.faults.delay_jitter = std::chrono::microseconds(500);
  options.reliable = true;
  return options;
}

TEST(FaultRecovery, SyncSolverBitExactOverLossyChannels) {
  const SolverProblem p = SolverProblem::random(4, 17);
  const auto ref = p.jacobi_reference(6);
  const SolverLayout layout(p.n);
  Recorder recorder(layout.node_count());
  StatsSnapshot stats{};
  std::uint64_t retransmits = 0;
  SolverRun run;
  {
    DsmSystem<CausalNode> sys(layout.node_count(), {}, lossy_options(),
                              layout.make_ownership(), &recorder);
    ASSERT_NE(sys.faulty_transport(), nullptr);
    ASSERT_NE(sys.reliable_channel(), nullptr);
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 6;
    run = run_sync_solver(p, layout, mems, opts);
    stats = sys.stats().total();
    retransmits = sys.reliable_channel()->retransmit_count();
  }

  // The reliable layer must make the lossy run indistinguishable from a
  // clean one: bit-for-bit the sequential Jacobi reference.
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
  // The faults must actually have bitten (otherwise this test proves
  // nothing) and their repair must be visible in the stats.
  EXPECT_GT(stats[Counter::kNetFaultDrop], 0u);
  EXPECT_GT(retransmits, 0u);
  EXPECT_EQ(stats[Counter::kNetRetransmit], retransmits);
}

TEST(FaultRecovery, DictionaryConvergesOverLossyChannels) {
  constexpr std::size_t kProcs = 3;
  constexpr std::size_t kSlots = 8;
  CausalConfig cfg;
  cfg.conflict = ConflictPolicy::kOwnerWins;
  Recorder recorder(kProcs);
  std::vector<std::vector<Value>> views(kProcs);
  std::uint64_t retransmits = 0;
  {
    DsmSystem<CausalNode> sys(kProcs, cfg, lossy_options(0.2),
                              Dictionary::make_ownership(kProcs, kSlots),
                              &recorder);
    std::vector<std::unique_ptr<Dictionary>> dicts;
    for (NodeId i = 0; i < kProcs; ++i) {
      dicts.push_back(
          std::make_unique<Dictionary>(sys.memory(i), kProcs, kSlots));
    }
    {
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < kProcs; ++p) {
        threads.emplace_back([&dicts, p] {
          Rng rng(600 + p);
          for (int i = 0; i < 6; ++i) {
            const Value v = static_cast<Value>(1000 * (p + 1) + i);
            ASSERT_TRUE(dicts[p]->insert(v));
            (void)dicts[p]->lookup(static_cast<Value>(
                1000 * (rng.next_below(kProcs) + 1) + rng.next_below(6)));
            if (rng.chance(0.3)) (void)dicts[p]->remove(v);
          }
        });
      }
    }
    for (NodeId p = 0; p < kProcs; ++p) {
      dicts[p]->refresh();
      auto snap = dicts[p]->snapshot();
      std::sort(snap.begin(), snap.end());
      views[p] = std::move(snap);
    }
    retransmits = sys.reliable_channel()->retransmit_count();
  }
  EXPECT_EQ(views[0], views[1]);
  EXPECT_EQ(views[1], views[2]);
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
  EXPECT_GT(retransmits, 0u) << "a 20% drop rate must force retransmissions";
}

TEST(FaultRecovery, RandomWorkloadIsCausallyConsistentOverLossyChannels) {
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kAddrs = 6;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    Recorder recorder(kNodes);
    {
      DsmSystem<CausalNode> sys(kNodes, {}, lossy_options(), nullptr,
                                &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < kNodes; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 7919 + p * 104729);
          SharedMemory& mem = sys.memory(p);
          for (int i = 0; i < 60; ++i) {
            const Addr a = rng.next_below(kAddrs);
            if (rng.chance(0.5)) {
              mem.write(a, static_cast<Value>(rng.next() >> 8));
            } else {
              (void)mem.read(a);
            }
          }
          mem.flush();
        });
      }
    }
    const auto violation = CausalChecker(recorder.history()).check();
    ASSERT_FALSE(violation.has_value()) << "seed=" << seed << ": "
                                        << violation->reason;
  }
}

TEST(FaultRecovery, SolverSurvivesPartitionThatHeals) {
  // A transient partition (not a crash): the coordinator <-> worker 0 link
  // is severed in both directions mid-run, then healed. The reliable
  // layer's retransmissions bridge the outage — no deadline, no failover —
  // and the run must be bit-exact and causally consistent.
  const SolverProblem p = SolverProblem::random(4, 29);
  const auto ref = p.jacobi_reference(6);
  const SolverLayout layout(p.n);
  Recorder recorder(layout.node_count());
  std::uint64_t retransmits = 0;
  std::uint64_t gave_up = 0;
  SolverRun run;
  {
    SystemOptions options;
    options.fault_layer = true;  // partition handles, no random faults
    options.reliable = true;
    options.reliable_config.initial_rto = std::chrono::milliseconds(1);
    DsmSystem<CausalNode> sys(layout.node_count(), {}, options,
                              layout.make_ownership(), &recorder);
    const NodeId coord = layout.coordinator();
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 6;
    // Partition from inside the run (the phase hook fires on the coordinator
    // thread) so the outage is guaranteed to land while traffic is flowing;
    // a detached timer heals it 60ms later.
    std::jthread healer;
    opts.on_phase = [&](std::size_t k) {
      if (k != 2) return;
      sys.faulty_transport()->set_partition(coord, 0, true);
      sys.faulty_transport()->set_partition(0, coord, true);
      healer = std::jthread([&sys, coord] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        sys.faulty_transport()->set_partition(coord, 0, false);
        sys.faulty_transport()->set_partition(0, coord, false);
      });
    };
    run = run_sync_solver(p, layout, mems, opts);
    if (healer.joinable()) healer.join();
    retransmits = sys.reliable_channel()->retransmit_count();
    gave_up = sys.reliable_channel()->peer_unreachable_count();
  }
  ASSERT_EQ(run.x.size(), p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(run.x[i], ref[i]) << "component " << i;
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
  // The partition must have bitten (retransmissions bridged it) but never
  // escalated to a give-up: the default retransmission budget outlasts a
  // 60ms outage by an order of magnitude.
  EXPECT_GT(retransmits, 0u);
  EXPECT_EQ(gave_up, 0u);
}

TEST(FaultRecovery, CleanChannelsLeaveRecoveryCountersAtZero) {
  // drop rate 0: the reliable layer is pure bookkeeping and every recovery
  // counter must stay zero (the acceptance bar for the bench output too).
  const SolverProblem p = SolverProblem::random(4, 17);
  const SolverLayout layout(p.n);
  SystemOptions options;
  options.reliable = true;
  // Generous vs the in-memory transport so a scheduling hiccup cannot fire
  // a spurious retransmission.
  options.reliable_config.initial_rto = std::chrono::milliseconds(100);
  options.reliable_config.max_rto = std::chrono::milliseconds(200);
  StatsSnapshot stats{};
  {
    DsmSystem<CausalNode> sys(layout.node_count(), {}, options,
                              layout.make_ownership());
    EXPECT_EQ(sys.faulty_transport(), nullptr);
    ASSERT_NE(sys.reliable_channel(), nullptr);
    std::vector<SharedMemory*> mems;
    for (NodeId i = 0; i < layout.node_count(); ++i) {
      mems.push_back(&sys.memory(i));
    }
    SolverOptions opts;
    opts.iterations = 4;
    (void)run_sync_solver(p, layout, mems, opts);
    stats = sys.stats().total();
  }
  EXPECT_EQ(stats[Counter::kNetRetransmit], 0u);
  EXPECT_EQ(stats[Counter::kNetDupDropped], 0u);
  EXPECT_EQ(stats[Counter::kNetFaultDrop], 0u);
  EXPECT_EQ(stats[Counter::kNetFaultDup], 0u);
  EXPECT_EQ(stats[Counter::kNetFaultDelay], 0u);
}

}  // namespace
}  // namespace causalmem

// Edge cases of the atomic baseline's invalidation state machine: deferred
// requests during rounds, stale copyset invalidations, reads racing write
// rounds, and churn on one hot location.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/lin_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

TEST(AtomicEdge, InvToNodeWithoutCopyIsAckedHarmlessly) {
  // Node 2 joins the copyset, then its copy is invalidated by one write;
  // a second write must not deadlock even though node 2's cache is empty
  // when (stale-copyset) INVs arrive.
  DsmSystem<AtomicNode> sys(3);
  EXPECT_EQ(sys.memory(2).read(1), 0);  // join copyset
  sys.memory(1).write(1, 1);            // INV round clears node 2's copy
  sys.memory(1).write(1, 2);            // copyset now {} — applies inline
  EXPECT_EQ(sys.memory(2).read(1), 2);
}

TEST(AtomicEdge, WriterReJoinsCopysetThroughItsReply) {
  DsmSystem<AtomicNode> sys(2);
  sys.memory(0).write(1, 7);            // writer caches via W_REPLY
  sys.memory(1).write(1, 8);            // owner must invalidate the writer
  EXPECT_EQ(sys.stats().total()[Counter::kMsgInvalidate], 1u);
  EXPECT_EQ(sys.memory(0).read(1), 8);
}

TEST(AtomicEdge, HotLocationChurnStaysLinearizable) {
  Recorder recorder(3);
  {
    DsmSystem<AtomicNode> sys(3, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(11 + p);
        for (int i = 0; i < 9; ++i) {  // single hot addr 1
          if (rng.chance(0.6)) {
            sys.memory(p).write(1, static_cast<Value>(p * 100 + i + 1));
          } else {
            (void)sys.memory(p).read(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(check_linearizability(recorder.history()), ScResult::kConsistent);
}

TEST(AtomicEdge, ReadersDuringWriteRoundsNeverSeeTornState) {
  // A writer hammers the location while readers poll: every observed value
  // must be one that was actually written (monotone per writer here).
  DsmSystem<AtomicNode> sys(3);
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::jthread writer([&] {
    for (Value v = 1; v <= 300; ++v) sys.memory(1).write(1, v);
    stop.store(true);
  });
  std::vector<std::jthread> readers;
  for (NodeId p : {NodeId{0}, NodeId{2}}) {
    readers.emplace_back([&sys, &stop, &bad, p] {
      Value last = 0;
      while (!stop.load()) {
        const Value v = sys.memory(p).read(1);
        if (v < last) bad.store(true);  // atomic memory: no regression
        last = v;
      }
    });
  }
  writer.join();
  stop.store(true);
  readers.clear();
  EXPECT_FALSE(bad.load());
}

TEST(AtomicEdge, OwnerLocalReadWaitsOutInFlightRound) {
  // The owner's own read during a round must return the post-round value,
  // never the half-applied one. Driven by a remote write racing local reads.
  DsmSystem<AtomicNode> sys(2);
  EXPECT_EQ(sys.memory(0).read(1), 0);  // node 0 caches; copyset non-empty
  std::jthread remote_writer([&] {
    for (Value v = 1; v <= 100; ++v) sys.memory(0).write(1, v);
  });
  Value last = 0;
  for (int i = 0; i < 200; ++i) {
    const Value v = sys.memory(1).read(1);  // owner-local read
    EXPECT_GE(v, last);
    last = v;
  }
}

}  // namespace
}  // namespace causalmem

// E4: Figure 3 — "Causal Broadcasting is Not Causal Memory".
//
//   P1: w(x)5  w(y)3
//   P2: w(x)2  r(y)3  r(x)5  w(z)4
//   P3: r(z)4  r(x)2
//
// We drive the broadcast-memory model to produce exactly this execution
// (shaping two channel latencies so the concurrent x-writes commit in
// opposite orders at P2 and P3), then show the causal checker rejects it:
// 2 is not in alpha(r(x)2). The same program on the causal DSM always yields
// a checker-accepted history.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

constexpr Addr kX = 0;
constexpr Addr kY = 1;
constexpr Addr kZ = 2;

TEST(BroadcastCounterexample, HandWrittenFigure3IsRejected) {
  const History h = HistoryBuilder(3)
                        .write(0, kX, 5)
                        .write(0, kY, 3)
                        .write(1, kX, 2)
                        .read(1, kY, 3)
                        .read(1, kX, 5)
                        .write(1, kZ, 4)
                        .read(2, kZ, 4)
                        .read(2, kX, 2)
                        .build();
  const auto violation = CausalChecker(h).check();
  ASSERT_TRUE(violation.has_value());
  // The offending read is P3's r(x)2 (paper: "2 is not in alpha(r(x)2)").
  EXPECT_EQ(violation->read.proc, 2u);
  EXPECT_EQ(violation->read.index, 1u);
}

TEST(BroadcastCounterexample, BroadcastMemoryProducesFigure3) {
  Recorder recorder(3);
  Value p2_reads_x = -1, p3_reads_x = -1;
  {
    // P1 -> P2 slow enough that P2's w(x)2 is issued first; P2 -> P3 slower
    // still so P1's messages beat P2's at P3. Overrides go through
    // SystemOptions so they land before the transport starts.
    LatencyModel to_p2;
    to_p2.base = std::chrono::milliseconds(40);
    LatencyModel to_p3;
    to_p3.base = std::chrono::milliseconds(120);
    SystemOptions options;
    options.channel_latencies = {{0, 1, to_p2}, {1, 2, to_p3}};
    DsmSystem<BroadcastNode> sys(3, {}, options, nullptr, &recorder);

    std::jthread p1([&] {
      sys.memory(0).write(kX, 5);
      sys.memory(0).write(kY, 3);
    });
    std::jthread p2([&] {
      sys.memory(1).write(kX, 2);
      (void)spin_until_equals(sys.memory(1), kY, 3);
      p2_reads_x = sys.memory(1).read(kX);
      sys.memory(1).write(kZ, 4);
    });
    std::jthread p3([&] {
      (void)spin_until_equals(sys.memory(2), kZ, 4);
      p3_reads_x = sys.memory(2).read(kX);
    });
    p1.join();
    p2.join();
    p3.join();
    wait_broadcast_quiescent(sys);
  }

  // The shaped schedule must reproduce the figure's values.
  ASSERT_EQ(p2_reads_x, 5) << "x-writes should commit 2-then-5 at P2";
  ASSERT_EQ(p3_reads_x, 2) << "x-writes should commit 5-then-2 at P3";

  const History h = recorder.history();
  const auto violation = CausalChecker(h).check();
  EXPECT_TRUE(violation.has_value())
      << "causal broadcast delivery still violated causal memory\n"
      << h.to_string();
}

TEST(BroadcastCounterexample, SameProgramOnCausalDsmIsAlwaysCorrect) {
  // owner(x)=P0, owner(y)=P1, owner(z)=P2 via striping; every interleaving
  // of this program on the causal DSM must pass the checker.
  for (int round = 0; round < 5; ++round) {
    Recorder recorder(3);
    {
      DsmSystem<CausalNode> sys(3, {}, {}, nullptr, &recorder);
      std::jthread p1([&] {
        sys.memory(0).write(kX, 5);
        sys.memory(0).write(kY, 3);
      });
      std::jthread p2([&] {
        sys.memory(1).write(kX, 2);
        (void)spin_until_equals(sys.memory(1), kY, 3);
        (void)sys.memory(1).read(kX);
        sys.memory(1).write(kZ, 4);
      });
      std::jthread p3([&] {
        (void)spin_until_equals(sys.memory(2), kZ, 4);
        (void)sys.memory(2).read(kX);
      });
    }
    const History h = recorder.history();
    const auto violation = CausalChecker(h).check();
    EXPECT_FALSE(violation.has_value())
        << violation->reason << "\n" << h.to_string();
  }
}

}  // namespace
}  // namespace causalmem

#include "causalmem/dsm/causal/node.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

using CausalSystem = DsmSystem<CausalNode>;

TEST(CausalNode, OwnedReadAndWriteAreLocal) {
  CausalSystem sys(2);
  // Node 0 owns even addresses (striped).
  sys.memory(0).write(0, 42);
  EXPECT_EQ(sys.memory(0).read(0), 42);
  EXPECT_EQ(sys.stats().total().messages_sent(), 0u);
}

TEST(CausalNode, RemoteReadFetchesFromOwner) {
  CausalSystem sys(2);
  sys.memory(1).write(1, 7);  // node 1 owns addr 1
  EXPECT_EQ(sys.memory(0).read(1), 7);
  const auto total = sys.stats().total();
  EXPECT_EQ(total[Counter::kMsgReadRequest], 1u);
  EXPECT_EQ(total[Counter::kMsgReadReply], 1u);
}

TEST(CausalNode, RemoteReadIsCachedAfterMiss) {
  CausalSystem sys(2);
  sys.memory(1).write(1, 7);
  EXPECT_EQ(sys.memory(0).read(1), 7);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  EXPECT_EQ(sys.memory(0).read(1), 7);  // hit
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 1u);
}

TEST(CausalNode, RemoteWriteIsCertifiedByOwner) {
  CausalSystem sys(2);
  sys.memory(0).write(1, 99);  // owner is node 1
  const auto total = sys.stats().total();
  EXPECT_EQ(total[Counter::kMsgWriteRequest], 1u);
  EXPECT_EQ(total[Counter::kMsgWriteReply], 1u);
  // The owner stores the value; the writer caches it.
  EXPECT_EQ(sys.memory(1).read(1), 99);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  EXPECT_EQ(sys.memory(0).read(1), 99);
}

TEST(CausalNode, UnwrittenLocationReadsInitialValue) {
  CausalSystem sys(3);
  EXPECT_EQ(sys.memory(0).read(5), kInitialValue);
  EXPECT_EQ(sys.memory(2).read(4), kInitialValue);
}

TEST(CausalNode, WriteIncrementsOwnClockComponent) {
  CausalSystem sys(2);
  sys.memory(0).write(0, 1);
  sys.memory(0).write(0, 2);
  const VectorClock vt = sys.node(0).vector_time();
  EXPECT_EQ(vt[0], 2u);
  EXPECT_EQ(vt[1], 0u);
}

TEST(CausalNode, RemoteWriteMergesOwnerClockIntoWriter) {
  CausalSystem sys(2);
  sys.memory(1).write(1, 5);  // owner's clock: [0,1]
  sys.memory(0).write(1, 6);  // writer gets owner's clock in the W_REPLY
  const VectorClock vt0 = sys.node(0).vector_time();
  EXPECT_GE(vt0[0], 1u);
  EXPECT_GE(vt0[1], 1u);
}

TEST(CausalNode, ReadMissInvalidatesStrictlyOlderCachedValues) {
  // Node 0 caches y written by node 1; then node 1 writes y' and x (causally
  // after y). When node 0 fetches x it must invalidate its stale y.
  CausalSystem sys(2);
  sys.memory(1).write(1, 10);       // y := 10
  EXPECT_EQ(sys.memory(0).read(1), 10);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  sys.memory(1).write(1, 11);       // y := 11 (overwrites 10)
  sys.memory(1).write(3, 30);       // x := 30, causally after y=11
  EXPECT_EQ(sys.memory(0).read(3), 30);
  EXPECT_FALSE(sys.node(0).is_cached(1))
      << "cached y=10 is older than x=30's writestamp and must be dropped";
}

TEST(CausalNode, ConcurrentCachedValuesSurviveInvalidation) {
  // Values written concurrently by different owners are not ordered by their
  // writestamps, so introducing one must not invalidate the other.
  CausalSystem sys(3);
  sys.memory(1).write(1, 100);  // owner 1, independent
  sys.memory(2).write(2, 200);  // owner 2, independent (concurrent)
  EXPECT_EQ(sys.memory(0).read(1), 100);
  EXPECT_EQ(sys.memory(0).read(2), 200);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  EXPECT_TRUE(sys.node(0).is_cached(2));
}

TEST(CausalNode, OwnedLocationsAreNeverInvalidated) {
  CausalSystem sys(2);
  sys.memory(0).write(0, 1);        // owned by 0
  sys.memory(1).write(1, 2);
  sys.memory(1).write(3, 3);
  EXPECT_EQ(sys.memory(0).read(1), 2);
  EXPECT_EQ(sys.memory(0).read(3), 3);
  EXPECT_EQ(sys.memory(0).read(0), 1);  // still there, still local
  EXPECT_EQ(sys.stats().node_snapshot(0)[Counter::kMsgReadRequest], 2u);
}

TEST(CausalNode, DiscardDropsCachedCopy) {
  CausalSystem sys(2);
  sys.memory(1).write(1, 5);
  EXPECT_EQ(sys.memory(0).read(1), 5);
  EXPECT_TRUE(sys.node(0).is_cached(1));
  EXPECT_TRUE(sys.memory(0).discard(1));
  EXPECT_FALSE(sys.node(0).is_cached(1));
  // Next read refetches.
  EXPECT_EQ(sys.memory(0).read(1), 5);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 2u);
}

TEST(CausalNode, DiscardOfOwnedLocationIsRefused) {
  CausalSystem sys(2);
  sys.memory(0).write(0, 9);
  EXPECT_FALSE(sys.memory(0).discard(0));
  EXPECT_EQ(sys.memory(0).read(0), 9);
}

TEST(CausalNode, SpinUntilSeesOwnerUpdateViaDiscard) {
  CausalSystem sys(2);
  // Node 0 caches flag=0; node 1 (owner) later writes 1. Without discard the
  // cached copy would never change — spin_until must converge anyway.
  EXPECT_EQ(sys.memory(0).read(1), 0);
  std::jthread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sys.memory(1).write(1, 1);
  });
  EXPECT_EQ(spin_until_equals(sys.memory(0), 1, 1), 1);
  EXPECT_GE(sys.stats().node_snapshot(0)[Counter::kSpinTransition], 1u);
}

TEST(CausalNode, LruCapacityEvictsColdestPage) {
  CausalConfig cfg;
  cfg.cache_capacity_pages = 2;
  // Three independent owners write concurrently: the fetched stamps are
  // pairwise concurrent so nothing is invalidated — only LRU eviction can
  // shrink the cache.
  CausalSystem sys(4, cfg);
  sys.memory(1).write(1, 1);
  sys.memory(2).write(2, 2);
  sys.memory(3).write(3, 3);
  EXPECT_EQ(sys.memory(0).read(1), 1);
  EXPECT_EQ(sys.memory(0).read(2), 2);
  EXPECT_EQ(sys.memory(0).read(3), 3);  // evicts addr 1 (coldest)
  EXPECT_FALSE(sys.node(0).is_cached(1));
  EXPECT_TRUE(sys.node(0).is_cached(2));
  EXPECT_TRUE(sys.node(0).is_cached(3));
  EXPECT_GE(sys.stats().node_snapshot(0)[Counter::kDiscard], 1u);
}

TEST(CausalNode, FlushAllStrategyDropsWholeCache) {
  CausalConfig cfg;
  cfg.invalidation = InvalidationStrategy::kFlushAll;
  CausalSystem sys(3, cfg);
  sys.memory(1).write(1, 1);
  sys.memory(2).write(2, 2);
  EXPECT_EQ(sys.memory(0).read(1), 1);
  EXPECT_EQ(sys.memory(0).read(2), 2);  // flush-all drops cached addr 1
  EXPECT_FALSE(sys.node(0).is_cached(1));
  EXPECT_TRUE(sys.node(0).is_cached(2));
}

TEST(CausalNode, ReadOnlyPagesSurviveInvalidationSweeps) {
  CausalConfig cfg;
  cfg.invalidation = InvalidationStrategy::kFlushAll;  // harshest sweep
  CausalSystem sys(2, cfg);
  sys.memory(1).write(1, 123);  // the "constant"
  sys.memory(0).mark_read_only(1, 2);
  EXPECT_EQ(sys.memory(0).read(1), 123);
  sys.memory(1).write(3, 1);
  EXPECT_EQ(sys.memory(0).read(3), 1);  // sweep happens here
  EXPECT_TRUE(sys.node(0).is_cached(1)) << "read-only page must survive";
}

TEST(CausalNode, OwnerWinsRejectsConcurrentRemoteWrite) {
  CausalConfig cfg;
  cfg.conflict = ConflictPolicy::kOwnerWins;
  CausalSystem sys(2, cfg);
  // Owner writes its own location; node 0 writes the same location without
  // having seen the owner's value -> concurrent -> rejected.
  sys.memory(1).write(1, 10);
  sys.memory(0).write(1, 20);
  EXPECT_EQ(sys.memory(1).read(1), 10) << "owner's value must be favored";
  // The loser must not keep its rejected value cached.
  EXPECT_EQ(sys.memory(0).read(1), 10);
}

TEST(CausalNode, OwnerWinsAcceptsCausallyLaterWrite) {
  CausalConfig cfg;
  cfg.conflict = ConflictPolicy::kOwnerWins;
  CausalSystem sys(2, cfg);
  sys.memory(1).write(1, 10);
  EXPECT_EQ(sys.memory(0).read(1), 10);  // node 0 now causally after w(10)
  sys.memory(0).write(1, 20);            // dominates: legitimate overwrite
  EXPECT_EQ(sys.memory(1).read(1), 20);
}

TEST(CausalNode, WriteToReadOnlyLocationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        CausalSystem sys(2);
        sys.memory(0).mark_read_only(0, 1);
        sys.memory(0).write(0, 1);
      },
      "read-only");
}

TEST(CausalNode, ConcurrentWorkloadIsCausallyConsistent) {
  Recorder recorder(3);
  {
    CausalSystem sys(3, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(1000 + p);
        for (int i = 0; i < 200; ++i) {
          const Addr a = rng.next_below(6);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, static_cast<Value>(rng.next_below(1000)));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
    threads.clear();  // join
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value())
      << violation->reason << "\n" << recorder.history().to_string();
}

TEST(CausalNode, WorksOverTcpTransport) {
  SystemOptions opts;
  opts.use_tcp = true;
  CausalSystem sys(3, {}, opts);
  sys.memory(0).write(0, 11);
  sys.memory(1).write(1, 22);
  EXPECT_EQ(sys.memory(2).read(0), 11);
  EXPECT_EQ(sys.memory(2).read(1), 22);
  sys.memory(2).write(0, 33);
  EXPECT_EQ(sys.memory(0).read(0), 33);
}

TEST(CausalNode, CodecExerciseModePreservesProtocol) {
  SystemOptions opts;
  opts.exercise_codec = true;
  CausalSystem sys(2, {}, opts);
  sys.memory(1).write(1, 77);
  EXPECT_EQ(sys.memory(0).read(1), 77);
  sys.memory(0).write(1, 88);
  EXPECT_EQ(sys.memory(1).read(1), 88);
}

}  // namespace
}  // namespace causalmem

#include "causalmem/dsm/broadcast/node.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "causalmem/dsm/system.hpp"

namespace causalmem {
namespace {

using BroadcastSystem = DsmSystem<BroadcastNode>;

TEST(BroadcastNode, WritePropagatesToAllReplicas) {
  BroadcastSystem sys(3);
  sys.node(0).write(5, 42);
  wait_broadcast_quiescent(sys);
  for (NodeId p = 0; p < 3; ++p) EXPECT_EQ(sys.memory(p).read(5), 42);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgBroadcast], 2u);
}

TEST(BroadcastNode, ReadsAreAlwaysLocal) {
  BroadcastSystem sys(2);
  for (int i = 0; i < 10; ++i) (void)sys.memory(0).read(3);
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 0u);
}

TEST(BroadcastNode, CausalDeliveryOrdersDependentWrites) {
  // P0 writes x then y; with causal delivery no replica may apply y's write
  // while x's is still missing. We delay channel 0->2 heavily relative to
  // nothing else — but both writes share that channel (FIFO), so delivery
  // order is preserved regardless.
  BroadcastSystem sys(3);
  sys.node(0).write(1, 10);
  sys.node(0).write(2, 20);
  wait_broadcast_quiescent(sys);
  EXPECT_EQ(sys.memory(2).read(1), 10);
  EXPECT_EQ(sys.memory(2).read(2), 20);
}

TEST(BroadcastNode, TransitiveCausalityAcrossReplicas) {
  // P0 writes x; P1 sees it, then writes y. P2 must never apply y before x
  // even if P0's channel to P2 is slow: y's stamp forces the hold-back.
  SystemOptions opts;
  BroadcastSystem sys(3, {}, opts);
  auto* tr = sys.inmem_transport();
  ASSERT_NE(tr, nullptr);
  // (Latency overrides must be set before start, which DsmSystem already
  // did; so instead rely on the hold-back rule itself: issue P1's dependent
  // write only after it observed P0's.)
  sys.node(0).write(1, 10);
  wait_broadcast_quiescent(sys);
  EXPECT_EQ(sys.memory(1).read(1), 10);
  sys.node(1).write(2, 20);  // causally after P0's write at P1
  wait_broadcast_quiescent(sys);
  EXPECT_EQ(sys.memory(2).read(2), 20);
  EXPECT_EQ(sys.memory(2).read(1), 10);
}

TEST(BroadcastNode, ConcurrentWritesConvergeToSomeOrder) {
  BroadcastSystem sys(2);
  sys.node(0).write(7, 100);
  sys.node(1).write(7, 200);
  wait_broadcast_quiescent(sys);
  // Replicas may disagree (that is the Figure 3 point) but each holds one of
  // the two values.
  const Value v0 = sys.memory(0).read(7);
  const Value v1 = sys.memory(1).read(7);
  EXPECT_TRUE(v0 == 100 || v0 == 200);
  EXPECT_TRUE(v1 == 100 || v1 == 200);
}

TEST(BroadcastNode, QuiescenceCountsAllWrites) {
  BroadcastSystem sys(3);
  for (int i = 0; i < 5; ++i) sys.node(0).write(i, i);
  for (int i = 0; i < 3; ++i) sys.node(1).write(10 + i, i);
  wait_broadcast_quiescent(sys);
  for (NodeId p = 0; p < 3; ++p) {
    EXPECT_EQ(sys.node(p).applied_count(), 8u);
  }
}

}  // namespace
}  // namespace causalmem

// E12: Section 3.2's "reducing the blocking of processors" — non-blocking
// remote writes. The writer installs its value locally with its own stamp,
// the owner certifies in the background, and flush() fences. Causal
// correctness must be preserved (property-checked below).
#include <gtest/gtest.h>

#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

CausalConfig async_config() {
  CausalConfig cfg;
  cfg.write_mode = WriteMode::kAsync;
  return cfg;
}

TEST(AsyncWrite, WriterSeesItsOwnWriteImmediately) {
  DsmSystem<CausalNode> sys(2, async_config());
  sys.memory(0).write(1, 42);  // remote, non-blocking
  EXPECT_EQ(sys.memory(0).read(1), 42) << "program order must hold locally";
  sys.memory(0).flush();
  EXPECT_EQ(sys.memory(1).read(1), 42);
}

TEST(AsyncWrite, FlushFencesAllOutstandingWrites) {
  DsmSystem<CausalNode> sys(3, async_config());
  for (int i = 0; i < 50; ++i) {
    sys.memory(0).write(1, i);       // owner: node 1
    sys.memory(0).write(2, 100 + i); // owner: node 2
  }
  sys.memory(0).flush();
  EXPECT_EQ(sys.memory(1).read(1), 49);
  EXPECT_EQ(sys.memory(2).read(2), 149);
}

TEST(AsyncWrite, SameOwnerWritesApplyInProgramOrder) {
  // FIFO channels mean the owner sees a writer's writes in order; the last
  // one must stick.
  DsmSystem<CausalNode> sys(2, async_config());
  for (int i = 0; i <= 200; ++i) sys.memory(0).write(1, i);
  sys.memory(0).flush();
  EXPECT_EQ(sys.memory(1).read(1), 200);
}

TEST(AsyncWrite, AsyncPlusOwnerWinsIsRejectedAtConstruction) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CausalConfig cfg;
  cfg.write_mode = WriteMode::kAsync;
  cfg.conflict = ConflictPolicy::kOwnerWins;
  EXPECT_DEATH({ DsmSystem<CausalNode> sys(2, cfg); },
               "last-arrival-wins");
}

TEST(AsyncWrite, RandomWorkloadRemainsCausallyConsistent) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Recorder recorder(3);
    {
      DsmSystem<CausalNode> sys(3, async_config(), {}, nullptr, &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 97 + p);
          for (int i = 0; i < 150; ++i) {
            const Addr a = rng.next_below(6);
            if (rng.chance(0.5)) {
              sys.memory(p).write(a, static_cast<Value>(rng.next()));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
          sys.memory(p).flush();
        });
      }
    }
    const auto violation = CausalChecker(recorder.history()).check();
    EXPECT_FALSE(violation.has_value())
        << "seed " << seed << ": " << violation->reason;
  }
}

TEST(AsyncWrite, FlushIsNoOpWithoutOutstandingWrites) {
  DsmSystem<CausalNode> sys(2, async_config());
  sys.memory(0).flush();  // must not hang
  sys.memory(0).write(0, 1);  // owned: applies synchronously
  sys.memory(0).flush();
  EXPECT_EQ(sys.memory(0).read(0), 1);
}

}  // namespace
}  // namespace causalmem

// Property tests: for every configuration of the causal DSM, every recorded
// random concurrent execution must satisfy Definition 2 (checked by the
// Definition-1 oracle). This is the main falsification harness for the
// protocol implementation — invalidation strategies, conflict policies,
// write modes, page sizes, latency/jitter, cache pressure and the TCP
// transport are all swept.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include <cstdlib>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/consistency.hpp"
#include "causalmem/history/streaming_checker.hpp"
#include "causalmem/obs/flight_recorder.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/sim/scenarios.hpp"

namespace causalmem {
namespace {

struct PropertyCase {
  std::string name;
  std::size_t nodes{3};
  std::size_t addrs{8};
  int ops_per_node{150};
  int threads_per_node{1};
  double write_ratio{0.5};
  double discard_ratio{0.0};
  CausalConfig config{};
  SystemOptions options{};
  std::uint64_t seeds{3};
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << c.name;
}

class CausalPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CausalPropertyTest, RandomExecutionIsCausallyConsistent) {
  const PropertyCase& pc = GetParam();
  for (std::uint64_t seed = 1; seed <= pc.seeds; ++seed) {
    Recorder recorder(pc.nodes);
    std::string flight_artifact;
    // The checker runs while the system is still alive: configs that arm
    // the flight recorder dump the full observability state (correlated
    // trace, counters, clocks, recent ops) on a violation, before teardown
    // discards it. CI uploads the artifact directory on failure.
    std::optional<CausalViolation> violation;
    {
      DsmSystem<CausalNode> sys(pc.nodes, pc.config, pc.options, nullptr,
                                &recorder);
      {
        std::vector<std::jthread> threads;
        for (NodeId p = 0; p < pc.nodes; ++p) {
          for (int t = 0; t < pc.threads_per_node; ++t) {
            threads.emplace_back([&sys, &pc, p, t, seed] {
              Rng rng(seed * 7919 + p * 104729 + t * 7547);
              SharedMemory& mem = sys.memory(p);
              for (int i = 0; i < pc.ops_per_node; ++i) {
                const Addr a = rng.next_below(pc.addrs);
                const double roll = rng.next_double();
                if (roll < pc.write_ratio) {
                  mem.write(a, static_cast<Value>(rng.next() >> 8));
                } else if (roll < pc.write_ratio + pc.discard_ratio) {
                  (void)mem.discard(a);
                } else {
                  (void)mem.read(a);
                }
              }
              mem.flush();
            });
          }
        }
      }
      const History h = recorder.history();
      violation = CausalChecker(h).check();
      if (violation.has_value()) {
        if (obs::FlightRecorder* fr = sys.flight_recorder()) {
          fr->on_violation(violation->reason);
          flight_artifact = fr->artifact_path();
        }
      }
      // Differential cross-validation on real protocol histories: the
      // streaming checker must agree with the brute Definition-1 oracle on
      // every configuration of the sweep (its small-scope half; the
      // BigHistory suite below covers the 10^5..10^6-op scale brute force
      // cannot reach).
      const auto stream = StreamingCausalChecker::check(h);
      ASSERT_EQ(stream.causal, !violation.has_value())
          << pc.name << " seed=" << seed
          << ": streaming/brute verdict disagreement"
          << (violation.has_value() ? " (brute: " + violation->reason + ")"
                                    : "");
    }
    ASSERT_FALSE(violation.has_value())
        << pc.name << " seed=" << seed << ": " << violation->reason
        << (flight_artifact.empty()
                ? ""
                : "\nflight-recorder dump: " + flight_artifact);
  }
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;

  PropertyCase base;
  base.name = "figure4_default";
  cases.push_back(base);

  PropertyCase two = base;
  two.name = "two_nodes_hot_location";
  two.nodes = 2;
  two.addrs = 2;
  two.ops_per_node = 250;
  cases.push_back(two);

  PropertyCase five = base;
  five.name = "five_nodes";
  five.nodes = 5;
  five.ops_per_node = 80;
  cases.push_back(five);

  PropertyCase writes = base;
  writes.name = "write_heavy";
  writes.write_ratio = 0.8;
  cases.push_back(writes);

  PropertyCase reads = base;
  reads.name = "read_heavy_with_discards";
  reads.write_ratio = 0.2;
  reads.discard_ratio = 0.2;
  cases.push_back(reads);

  PropertyCase flush = base;
  flush.name = "flush_all_invalidation";
  flush.config.invalidation = InvalidationStrategy::kFlushAll;
  cases.push_back(flush);

  PropertyCase owner_wins = base;
  owner_wins.name = "owner_wins_conflicts";
  owner_wins.config.conflict = ConflictPolicy::kOwnerWins;
  owner_wins.write_ratio = 0.7;
  owner_wins.addrs = 3;
  cases.push_back(owner_wins);

  // The two stress configs most likely to shake out an ordering bug arm the
  // flight recorder: a checker violation leaves a post-mortem artifact under
  // flightrec/ (relative to the test working directory) for CI to upload.
  const auto arm_flight = [](PropertyCase* c) {
    c->options.flight.enabled = true;
    c->options.flight.recorder.artifact_dir = "flightrec";
    c->options.flight.recorder.run_label = "property_" + c->name;
  };

  PropertyCase async = base;
  async.name = "async_writes";
  async.config.write_mode = WriteMode::kAsync;
  arm_flight(&async);
  cases.push_back(async);

  PropertyCase paged = base;
  paged.name = "page_size_4";
  paged.config.page_size = 4;
  paged.addrs = 16;
  cases.push_back(paged);

  PropertyCase tiny_cache = base;
  tiny_cache.name = "cache_pressure";
  tiny_cache.config.cache_capacity_pages = 2;
  cases.push_back(tiny_cache);

  PropertyCase jitter = base;
  jitter.name = "latency_jitter";
  jitter.options.latency.base = std::chrono::microseconds(20);
  jitter.options.latency.jitter = std::chrono::microseconds(80);
  jitter.ops_per_node = 60;
  jitter.seeds = 2;
  cases.push_back(jitter);

  PropertyCase codec = base;
  codec.name = "codec_exercised";
  codec.options.exercise_codec = true;
  codec.seeds = 2;
  cases.push_back(codec);

  PropertyCase tcp = base;
  tcp.name = "tcp_transport";
  tcp.options.use_tcp = true;
  tcp.ops_per_node = 60;
  tcp.seeds = 2;
  cases.push_back(tcp);

  PropertyCase faulty = base;
  faulty.name = "faulty_reliable_drop15";
  faulty.options.faults.drop_rate = 0.15;
  faulty.options.faults.dup_rate = 0.05;
  faulty.options.faults.delay_rate = 0.05;
  faulty.options.faults.delay_base = std::chrono::microseconds(200);
  faulty.options.faults.delay_jitter = std::chrono::microseconds(500);
  faulty.options.reliable = true;
  faulty.ops_per_node = 60;
  faulty.seeds = 2;
  cases.push_back(faulty);

  PropertyCase faulty_paged = faulty;
  faulty_paged.name = "faulty_reliable_pages";
  faulty_paged.config.page_size = 4;
  faulty_paged.addrs = 16;
  arm_flight(&faulty_paged);
  cases.push_back(faulty_paged);

  PropertyCase async_paged = base;
  async_paged.name = "async_plus_pages";
  async_paged.config.write_mode = WriteMode::kAsync;
  async_paged.config.page_size = 4;
  async_paged.addrs = 16;
  cases.push_back(async_paged);

  PropertyCase read_through = base;
  read_through.name = "read_through_atomic_mode";
  read_through.config.read_through = true;
  read_through.ops_per_node = 80;
  cases.push_back(read_through);

  // NOTE deliberately absent: a "threads_per_node > 1, check the per-NODE
  // history" case. A node shared by several application threads is NOT one
  // causal process: two concurrent in-flight reads can complete out of
  // knowledge order, so the interleaved per-node sequence can violate
  // Definition 1 even though each *thread's* own sequence is causal (see
  // tests/dsm/scale_test.cpp and DESIGN.md §6 rule 5).

  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CausalPropertyTest, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

// --- big-history property run --------------------------------------------
//
// The sweep above keeps histories small enough for the brute oracle; this
// suite drives the real protocol at the scale only the streaming checker can
// reach. The online checker rides the observer chain during the run, so a
// violation is caught at the op that commits it (and, were the flight
// recorder armed, dumped with live state). Default is ~10^5 total ops;
// CI's big-history job sets CAUSALMEM_BIG_HISTORY_OPS=333334 per node for
// the 10^6-op acceptance run.
TEST(BigHistory, OnlineCheckedThreadedRunAtScale) {
  const int ops_per_node = [] {
    if (const char* env = std::getenv("CAUSALMEM_BIG_HISTORY_OPS")) {
      return static_cast<int>(std::strtol(env, nullptr, 10));
    }
    return 33'334;
  }();
  constexpr std::size_t kNodes = 3;
  constexpr std::size_t kAddrs = 64;
  const std::uint64_t total =
      static_cast<std::uint64_t>(ops_per_node) * kNodes;

  // Post-hoc cross-validation needs the whole history in memory; keep the
  // recorder (and the second checking pass) for the default size and rely
  // on the online verdict alone at the 10^6 scale.
  const bool record = total <= 200'000;
  Recorder recorder(kNodes);

  SystemOptions options;
  options.online_check.enabled = true;
  DsmSystem<CausalNode> sys(kNodes, {}, options, nullptr,
                            record ? &recorder : nullptr);
  {
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kNodes; ++p) {
      threads.emplace_back([&sys, p, ops_per_node] {
        Rng rng(0xB16'41570ULL + p * 104729);
        SharedMemory& mem = sys.memory(p);
        for (int i = 0; i < ops_per_node; ++i) {
          const Addr a = rng.next_below(kAddrs);
          if (rng.next_double() < 0.4) {
            mem.write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)mem.read(a);
          }
        }
        mem.flush();
      });
    }
  }

  OnlineChecker* oc = sys.online_checker();
  ASSERT_NE(oc, nullptr);
  oc->finish();
  ASSERT_TRUE(oc->ok())
      << "online causal violation in a " << total << "-op run: "
      << (oc->violation().has_value() ? oc->violation()->detail : "<none>");
  const StreamingStats st = oc->stats();
  EXPECT_EQ(st.ops_seen, total);
  EXPECT_EQ(st.ops_processed, total);
  EXPECT_EQ(st.pending_ops, 0u);
  // The point of streaming: state must stay a small fraction of the
  // history. The bound is deliberately loose — it exists to catch a GC
  // regression (unbounded growth), not to pin the constant.
  EXPECT_LT(st.peak_approx_bytes, 64u << 20)
      << "streaming checker state grew past 64 MiB on " << total << " ops";

  if (record) {
    const History h = recorder.history();
    const ConsistencyReport cons = check_consistency_hierarchy_auto(h);
    EXPECT_TRUE(cons.causal) << cons.reason;
    EXPECT_EQ(cons.causal, oc->ok())
        << "online and post-hoc verdicts disagree on the same run";
  }
}

// --- deterministic-simulation seed matrix --------------------------------
//
// The thread-based sweep above explores whatever interleavings the OS
// scheduler happens to produce; this matrix drives the same protocol under
// sim::SimScheduler random walks, where every interleaving decision is a
// recorded choice. A failing seed is therefore a complete reproduction
// recipe (rerun the seed), not a flake.

/// Per-seed random scenario: 3 nodes, 4 locations, 6 scripted ops per node.
/// With `chaos`, a seed-chosen victim crashes at a seed-chosen virtual time
/// and restarts later; bounded requests + failover keep clients live.
sim::CausalScenarioConfig sim_property_case(std::uint64_t seed, bool chaos) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  sim::CausalScenarioConfig cfg;
  cfg.nodes = 3;
  cfg.scripts.resize(cfg.nodes);
  for (auto& script : cfg.scripts) {
    for (int i = 0; i < 6; ++i) {
      const Addr a = static_cast<Addr>(rng.next_below(4));
      if (rng.next_double() < 0.5) {
        script.push_back(
            sim::ScriptOp::write(a, static_cast<Value>(rng.next() >> 8)));
      } else {
        script.push_back(sim::ScriptOp::read(a));
      }
    }
  }
  if (chaos) {
    cfg.failover = true;
    cfg.heartbeat = true;
    cfg.heartbeat_interval = std::chrono::microseconds(100);
    cfg.heartbeat_suspect_after = std::chrono::microseconds(400);
    cfg.config.request_timeout = std::chrono::microseconds(200);
    cfg.config.request_retries = 2;
    const NodeId victim = static_cast<NodeId>(rng.next_below(cfg.nodes));
    const std::uint64_t crash_at = 10'000 + rng.next_below(90'000);
    cfg.chaos = {sim::ChaosEvent::crash(crash_at, victim),
                 sim::ChaosEvent::restart(crash_at + 400'000, victim)};
  }
  return cfg;
}

TEST(CausalSimProperty, RandomWalkSeedMatrixCheckerClean) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const sim::CausalScenarioConfig cfg = sim_property_case(seed, false);
    sim::RandomWalkStrategy walk(seed);
    const sim::ExecutionResult res = sim::run_causal_scenario(cfg, walk);
    ASSERT_TRUE(res.report.ok())
        << "seed " << seed << ": " << res.report.error;
    ASSERT_TRUE(res.consistent) << "seed " << seed << ": " << res.violation
                                << "\nschedule:\n"
                                << res.report.schedule.to_text();
  }
}

/// Deep sim matrix: much longer scripts than the 6-op cases above, with the
/// online streaming checker running during the schedule in addition to the
/// post-hoc hierarchy (finish_run fails loudly if the two verdicts ever
/// disagree). Script length scales with CAUSALMEM_BIG_SIM_OPS for the CI
/// big-history job.
TEST(CausalSimProperty, DeepRandomWalkOnlineCheckedSeedMatrix) {
  const std::size_t ops_per_node = [] {
    if (const char* env = std::getenv("CAUSALMEM_BIG_SIM_OPS")) {
      return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
    // The brute hierarchy is super-linear in this size range; large env
    // overrides cross the auto-dispatch threshold into the streaming
    // hierarchy, so CI-scale runs are cheap again.
    return static_cast<std::size_t>(30);
  }();
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 0xD1B54A32D192ED03ULL + 7);
    sim::CausalScenarioConfig cfg;
    cfg.nodes = 3;
    cfg.online_check = true;
    cfg.scripts.resize(cfg.nodes);
    for (auto& script : cfg.scripts) {
      for (std::size_t i = 0; i < ops_per_node; ++i) {
        const Addr a = static_cast<Addr>(rng.next_below(6));
        if (rng.next_double() < 0.45) {
          script.push_back(
              sim::ScriptOp::write(a, static_cast<Value>(rng.next() >> 8)));
        } else {
          script.push_back(sim::ScriptOp::read(a));
        }
      }
    }
    sim::RandomWalkStrategy walk(seed);
    const sim::ExecutionResult res = sim::run_causal_scenario(cfg, walk);
    ASSERT_TRUE(res.report.ok())
        << "seed " << seed << ": " << res.report.error;
    ASSERT_TRUE(res.consistent) << "seed " << seed << ": " << res.violation;
  }
}

/// Same shape over the broadcast memory with vector-clock delivery gating.
/// Gated broadcast delivers causally, but concurrent writes are applied
/// last-delivery-wins without arbitration, so longer schedules can (and do)
/// produce genuine read-kill violations — a replica overwrites its own newer
/// value with a concurrent remote write and later reads resurrect it. This
/// matrix is therefore a *differential* test, not a cleanliness test: the
/// online streaming checker and the post-hoc hierarchy must agree on every
/// verdict (finish_run appends a "disagreement" marker when they split), and
/// the deterministic scheduler must reproduce at least one violating seed.
TEST(CausalSimProperty, DeepBroadcastRandomWalkCheckersAgree) {
  std::size_t violating = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 0xA24BAED4963EE407ULL + 3);
    sim::BroadcastScenarioConfig cfg = sim::small_scope_broadcast(true);
    cfg.online_check = true;
    cfg.scripts.assign(cfg.nodes, {});
    for (auto& script : cfg.scripts) {
      for (int i = 0; i < 40; ++i) {
        const Addr a = static_cast<Addr>(rng.next_below(4));
        if (rng.next_double() < 0.45) {
          script.push_back(
              sim::ScriptOp::write(a, static_cast<Value>(rng.next() >> 8)));
        } else {
          script.push_back(sim::ScriptOp::read(a));
        }
      }
    }
    sim::RandomWalkStrategy walk(seed);
    const sim::ExecutionResult res = sim::run_broadcast_scenario(cfg, walk);
    ASSERT_TRUE(res.report.ok())
        << "seed " << seed << ": " << res.report.error;
    if (!res.consistent) {
      ASSERT_EQ(res.violation.find("disagreement"), std::string::npos)
          << "seed " << seed
          << ": online and post-hoc checkers split: " << res.violation;
      ++violating;
    }
  }
  EXPECT_GE(violating, 1u)
      << "expected the deterministic matrix to reproduce at least one "
         "concurrent-write inversion in the unarbitrated broadcast memory";
  EXPECT_LT(violating, 24u) << "every seed violating suggests a checker bug";
}

TEST(CausalSimProperty, ChaosCrashRestartSeedMatrixCheckerClean) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const sim::CausalScenarioConfig cfg = sim_property_case(seed, true);
    sim::RandomWalkStrategy walk(seed);
    const sim::ExecutionResult res = sim::run_causal_scenario(cfg, walk);
    ASSERT_TRUE(res.report.ok())
        << "seed " << seed << ": " << res.report.error;
    ASSERT_TRUE(res.consistent) << "seed " << seed << ": " << res.violation
                                << "\nschedule:\n"
                                << res.report.schedule.to_text();
  }
}

}  // namespace
}  // namespace causalmem

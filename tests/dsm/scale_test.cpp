// Scale and concurrency-shape tests: more nodes, multiple application
// threads per node, TCP at moderate scale. All recorded executions must
// stay causally consistent.
#include <gtest/gtest.h>

#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

TEST(Scale, SixteenNodesRandomWorkload) {
  constexpr std::size_t kNodes = 16;
  Recorder recorder(kNodes);
  {
    DsmSystem<CausalNode> sys(kNodes, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kNodes; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(9000 + p);
        for (int i = 0; i < 40; ++i) {
          const Addr a = rng.next_below(32);
          if (rng.chance(0.4)) {
            sys.memory(p).write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(Scale, SixNodesOverTcp) {
  constexpr std::size_t kNodes = 6;
  Recorder recorder(kNodes);
  {
    SystemOptions opts;
    opts.use_tcp = true;
    DsmSystem<CausalNode> sys(kNodes, {}, opts, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kNodes; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(700 + p);
        for (int i = 0; i < 50; ++i) {
          const Addr a = rng.next_below(12);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

TEST(Scale, SingleThreadedNodeStaysCausalDespiteMultithreadedNeighbour) {
  // A node shared by several application threads is NOT one causal process:
  // two concurrent in-flight reads can complete out of knowledge order, so
  // the *interleaved per-node* sequence may violate Definition 1 (each
  // individual thread's sequence is still causal — one op in flight at a
  // time — but operations cannot be attributed to threads in the recorded
  // history; see DESIGN.md §6 rule 5). What we can check faithfully:
  //   (a) a single-threaded node's recorded sequence stays causal while a
  //       multithreaded neighbour hammers the shared locations, as long as
  //       the neighbour's own interleaved sequence is excluded from the
  //       causality graph — which is exactly the case when the neighbour
  //       only READS (reads never create outgoing causality);
  //   (b) the whole system stays safe: no deadlocks, no lost own writes.
  constexpr std::size_t kNodes = 2;
  Recorder recorder(kNodes);
  std::atomic<bool> stop{false};
  {
    DsmSystem<CausalNode> sys(kNodes, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> sibling_readers;
    for (int t = 0; t < 3; ++t) {
      // Three reader threads sharing node 1: concurrent in-flight reads,
      // discards, cache churn — but no writes, so node 1's interleaved
      // sequence cannot inject causality into anyone else's reads.
      sibling_readers.emplace_back([&sys, &stop, t] {
        Rng rng(500 + t);
        while (!stop.load()) {
          const Addr a = rng.next_below(4);
          if (rng.chance(0.2)) {
            (void)sys.memory(1).discard(a);
          } else {
            (void)sys.memory(1).read(a);
          }
        }
      });
    }
    {
      std::jthread writer_on_node0([&sys] {
        Rng rng(99);
        for (int i = 0; i < 200; ++i) {
          const Addr a = rng.next_below(4);
          if (rng.chance(0.6)) {
            sys.memory(0).write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)sys.memory(0).read(a);
          }
        }
      });
    }
    stop.store(true);
  }
  // Node 0's sequence must be causal. Node 1's reads are checked too: a
  // read-only process's violations would mean the protocol served it a
  // value overwritten within its own observation order.
  const History h = recorder.history();
  const auto violation = CausalChecker(h).check();
  if (violation && violation->read.proc == 0) {
    FAIL() << violation->reason;
  }
  // For node 1 (interleaved threads) only report, never fail, on the
  // cross-thread completion-order artifact — but a violation on a
  // *node-0* read is a real protocol bug.
}

TEST(Scale, HighJitterLongRun) {
  constexpr std::size_t kNodes = 4;
  Recorder recorder(kNodes);
  {
    SystemOptions opts;
    opts.latency.base = std::chrono::microseconds(5);
    opts.latency.jitter = std::chrono::microseconds(300);
    DsmSystem<CausalNode> sys(kNodes, {}, opts, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < kNodes; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(4200 + p);
        for (int i = 0; i < 60; ++i) {
          const Addr a = rng.next_below(6);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, static_cast<Value>(rng.next() >> 8));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  const auto violation = CausalChecker(recorder.history()).check();
  EXPECT_FALSE(violation.has_value()) << violation->reason;
}

}  // namespace
}  // namespace causalmem

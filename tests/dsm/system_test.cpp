#include "causalmem/dsm/system.hpp"

#include <gtest/gtest.h>

#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

TEST(DsmSystem, BasicsAndAccessors) {
  DsmSystem<CausalNode> sys(3);
  EXPECT_EQ(sys.node_count(), 3u);
  EXPECT_EQ(sys.memory(1).node_id(), 1u);
  EXPECT_NE(sys.inmem_transport(), nullptr);
  EXPECT_EQ(sys.stats().node_count(), 3u);
}

TEST(DsmSystem, TcpSystemHasNoInmemTransport) {
  SystemOptions opts;
  opts.use_tcp = true;
  DsmSystem<CausalNode> sys(2, {}, opts);
  EXPECT_EQ(sys.inmem_transport(), nullptr);
  sys.memory(0).write(1, 5);
  EXPECT_EQ(sys.memory(1).read(1), 5);
}

TEST(DsmSystem, ShutdownIsIdempotent) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(0).write(1, 1);
  sys.shutdown();
  sys.shutdown();
}

TEST(DsmSystem, DefaultOwnershipStripesByPageSize) {
  CausalConfig cfg;
  cfg.page_size = 4;
  DsmSystem<CausalNode> sys(2, cfg);
  // Pages of 4 striped over 2 nodes.
  EXPECT_EQ(sys.ownership().owner(0), 0u);
  EXPECT_EQ(sys.ownership().owner(3), 0u);
  EXPECT_EQ(sys.ownership().owner(4), 1u);
  EXPECT_EQ(sys.ownership().owner(7), 1u);
}

TEST(DsmSystem, ObserverReceivesAllOperations) {
  Recorder rec(2);
  {
    DsmSystem<CausalNode> sys(2, {}, {}, nullptr, &rec);
    sys.memory(0).write(0, 1);
    (void)sys.memory(1).read(0);
    sys.memory(1).write(1, 2);
  }
  EXPECT_EQ(rec.op_count(), 3u);
}

TEST(DsmSystem, WorksForAllThreeMemoryKinds) {
  {
    DsmSystem<CausalNode> sys(2);
    sys.memory(0).write(0, 1);
    EXPECT_EQ(sys.memory(1).read(0), 1);
  }
  {
    DsmSystem<AtomicNode> sys(2);
    sys.memory(0).write(0, 1);
    EXPECT_EQ(sys.memory(1).read(0), 1);
  }
  {
    DsmSystem<BroadcastNode> sys(2);
    sys.node(0).write(0, 1);
    wait_broadcast_quiescent(sys);
    EXPECT_EQ(sys.memory(1).read(0), 1);
  }
}

TEST(SpinUntil, ReturnsImmediatelyWhenPredicateHolds) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(0).write(0, 7);
  EXPECT_EQ(spin_until_equals(sys.memory(0), 0, 7), 7);
  EXPECT_EQ(sys.stats().node_snapshot(0)[Counter::kSpinRefetch], 0u);
  EXPECT_EQ(sys.stats().node_snapshot(0)[Counter::kSpinTransition], 1u);
}

TEST(SpinUntil, GenericPredicate) {
  DsmSystem<CausalNode> sys(2);
  sys.memory(1).write(1, 10);
  const Value got =
      spin_until(sys.memory(0), 1, [](Value v) { return v >= 10; });
  EXPECT_EQ(got, 10);
}

}  // namespace
}  // namespace causalmem

// Section 3.2's remark, as an executable feature: "a simple strategy to
// maintain correctness is to force a request to the owner on every read.
// This strategy results in a memory that satisfies atomic correctness, not
// just causal correctness, but we lose all the benefits of caching."
#include <gtest/gtest.h>

#include <barrier>
#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {
namespace {

CausalConfig read_through_config() {
  CausalConfig cfg;
  cfg.read_through = true;
  return cfg;
}

TEST(ReadThrough, EveryNonOwnedReadGoesRemote) {
  DsmSystem<CausalNode> sys(2, read_through_config());
  sys.memory(1).write(1, 5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sys.memory(0).read(1), 5);
  }
  EXPECT_EQ(sys.stats().total()[Counter::kMsgReadRequest], 4u)
      << "we lose all the benefits of caching";
  EXPECT_FALSE(sys.node(0).is_cached(1));
}

TEST(ReadThrough, OwnedReadsStayLocal) {
  DsmSystem<CausalNode> sys(2, read_through_config());
  sys.memory(0).write(0, 9);
  EXPECT_EQ(sys.memory(0).read(0), 9);
  EXPECT_EQ(sys.stats().total().messages_sent(), 0u);
}

TEST(ReadThrough, WriterStillSeesItsOwnWrite) {
  DsmSystem<CausalNode> sys(2, read_through_config());
  sys.memory(0).write(1, 42);  // remote, nothing cached
  EXPECT_EQ(sys.memory(0).read(1), 42) << "FIFO puts the READ behind";
}

TEST(ReadThrough, StaleReadsAreImpossible) {
  // The Figure 5 program: with read-through, both second reads must see the
  // other's write (given both writes complete before the re-reads) — the
  // weakly consistent outcome is gone.
  DsmSystem<CausalNode> sys(2, read_through_config());
  std::barrier sync(2);
  std::vector<Value> last_reads(2);
  auto run = [&](NodeId me, Addr mine, Addr other) {
    SharedMemory& mem = sys.memory(me);
    (void)mem.read(other);
    sync.arrive_and_wait();
    mem.write(mine, 1);
    sync.arrive_and_wait();  // both writes certified
    last_reads[me] = mem.read(other);
  };
  {
    std::jthread t1(run, NodeId{0}, Addr{0}, Addr{1});
    std::jthread t2(run, NodeId{1}, Addr{1}, Addr{0});
  }
  EXPECT_EQ(last_reads[0], 1);
  EXPECT_EQ(last_reads[1], 1);
}

TEST(ReadThrough, RandomExecutionsAreSequentiallyConsistent) {
  // The paper claims atomic correctness; we verify the (implied) sequential
  // consistency of recorded executions exhaustively on small runs.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Recorder recorder(3);
    {
      DsmSystem<CausalNode> sys(3, read_through_config(), {}, nullptr,
                                &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 131 + p);
          for (int i = 0; i < 10; ++i) {
            const Addr a = rng.next_below(2);
            if (rng.chance(0.5)) {
              sys.memory(p).write(a, static_cast<Value>(
                                         seed * 100000 + p * 1000 + i + 1));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
        });
      }
    }
    const History h = recorder.history();
    EXPECT_EQ(check_sequential_consistency(h), ScResult::kConsistent)
        << "seed " << seed << "\n" << h.to_string();
    EXPECT_FALSE(CausalChecker(h).check().has_value());
  }
}

TEST(ReadThrough, RequiresBlockingWrites) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        CausalConfig cfg;
        cfg.read_through = true;
        cfg.write_mode = WriteMode::kAsync;
        DsmSystem<CausalNode> sys(2, cfg);
      },
      "blocking");
}

}  // namespace
}  // namespace causalmem

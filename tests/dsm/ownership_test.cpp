#include "causalmem/dsm/ownership.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

TEST(StripedOwnership, RoundRobinWithUnitBlock) {
  StripedOwnership own(3);
  EXPECT_EQ(own.owner(0), 0u);
  EXPECT_EQ(own.owner(1), 1u);
  EXPECT_EQ(own.owner(2), 2u);
  EXPECT_EQ(own.owner(3), 0u);
  EXPECT_EQ(own.owner(100), 100u % 3);
}

TEST(StripedOwnership, BlocksKeepNeighboursTogether) {
  StripedOwnership own(2, 4);
  for (Addr a = 0; a < 4; ++a) EXPECT_EQ(own.owner(a), 0u);
  for (Addr a = 4; a < 8; ++a) EXPECT_EQ(own.owner(a), 1u);
  for (Addr a = 8; a < 12; ++a) EXPECT_EQ(own.owner(a), 0u);
}

TEST(ExplicitOwnership, AssignmentsOverrideFallback) {
  ExplicitOwnership own(4);
  own.assign(0, 3);
  own.assign(7, 1);
  EXPECT_EQ(own.owner(0), 3u);
  EXPECT_EQ(own.owner(7), 1u);
  // Unassigned addresses fall back to striping over 4 nodes.
  EXPECT_EQ(own.owner(5), 1u);
  EXPECT_EQ(own.owner(6), 2u);
}

TEST(ExplicitOwnership, ReassignmentTakesLastValue) {
  ExplicitOwnership own(2);
  own.assign(9, 0);
  own.assign(9, 1);
  EXPECT_EQ(own.owner(9), 1u);
}

}  // namespace
}  // namespace causalmem

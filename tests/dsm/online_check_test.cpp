// Online streaming causal checking wired through DsmSystem: the
// OnlineChecker observer feeds every operation through a
// StreamingCausalChecker while the system runs, and a violation files with
// the flight recorder from the shutdown path (deferred — observer callbacks
// run under node locks; see online_checker.hpp).
#include "causalmem/history/online_checker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

TEST(OnlineCheck, CleanRunStaysClean) {
  SystemOptions opts;
  opts.online_check.enabled = true;
  DsmSystem<CausalNode> sys(2, {}, opts);
  ASSERT_NE(sys.online_checker(), nullptr);
  sys.memory(0).write(0, 1);
  (void)sys.memory(1).read(0);
  sys.memory(1).write(1, 2);
  (void)sys.memory(0).read(1);
  sys.shutdown();  // finishes the stream
  OnlineChecker* oc = sys.online_checker();
  EXPECT_TRUE(oc->ok());
  EXPECT_FALSE(oc->violation().has_value());
  EXPECT_EQ(oc->stats().ops_seen, 4u);
  EXPECT_EQ(oc->stats().ops_processed, 4u);
}

TEST(OnlineCheck, ComposesWithDownstreamObserver) {
  Recorder rec(2);
  SystemOptions opts;
  opts.online_check.enabled = true;
  {
    DsmSystem<CausalNode> sys(2, {}, opts, nullptr, &rec);
    sys.memory(0).write(0, 1);
    (void)sys.memory(1).read(0);
    sys.shutdown();
    EXPECT_EQ(sys.online_checker()->stats().ops_seen, rec.op_count());
    EXPECT_TRUE(sys.online_checker()->ok());
  }
  EXPECT_EQ(rec.op_count(), 2u);
}

TEST(OnlineCheck, ThreadedRunUnderOnlineChecker) {
  SystemOptions opts;
  opts.online_check.enabled = true;
  DsmSystem<CausalNode> sys(3, {}, opts);
  std::vector<std::thread> threads;
  constexpr int kOps = 400;
  for (NodeId p = 0; p < 3; ++p) {
    threads.emplace_back([&sys, p] {
      for (int i = 0; i < kOps; ++i) {
        const Addr a = static_cast<Addr>(i % 8);
        if (i % 3 == 0) {
          sys.memory(p).write(a, static_cast<Value>(1 + p * kOps + i));
        } else {
          (void)sys.memory(p).read(a);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  sys.shutdown();
  OnlineChecker* oc = sys.online_checker();
  ASSERT_TRUE(oc->ok()) << "online violation: "
                        << (oc->violation().has_value()
                                ? oc->violation()->detail
                                : std::string{});
  EXPECT_EQ(oc->stats().ops_seen, 3u * kOps);
  EXPECT_EQ(oc->stats().pending_ops, 0u);
}

TEST(OnlineCheck, ViolationFilesWithFlightRecorderDeferred) {
  // Drive the observer directly with a violating stream: w(x,1) w(x,2) at
  // p0, then p1 reads 2 then the overwritten 1.
  obs::FlightRecorderOptions fo;
  fo.armed = false;  // record the trigger without writing an artifact
  obs::FlightRecorder fr(fo);
  OnlineChecker oc(2);
  oc.set_flight_recorder(&fr);

  const OpTiming t{};
  oc.on_write(0, 0, 1, WriteTag{0, 1}, true, t);
  oc.on_write(0, 0, 2, WriteTag{0, 2}, true, t);
  oc.on_read(1, 0, 2, WriteTag{0, 2}, t);
  oc.on_read(1, 0, 1, WriteTag{0, 1}, t);

  // The violation is latched but NOT filed yet (deferred firing contract).
  EXPECT_FALSE(oc.ok());
  EXPECT_EQ(fr.trigger_count(), 0u);

  oc.finish();
  EXPECT_TRUE(fr.fired());
  EXPECT_EQ(fr.trigger_count(), 1u);
  EXPECT_EQ(fr.last_trigger().kind, "violation");
  ASSERT_TRUE(oc.violation().has_value());
  EXPECT_EQ(oc.violation()->pattern, BadPattern::kWriteCORead);

  oc.finish();  // idempotent: no double fire
  EXPECT_EQ(fr.trigger_count(), 1u);
}

TEST(OnlineCheck, PollFlightFiresMidRun) {
  obs::FlightRecorderOptions fo;
  fo.armed = false;
  obs::FlightRecorder fr(fo);
  OnlineChecker oc(1);
  oc.set_flight_recorder(&fr);

  const OpTiming t{};
  oc.on_write(0, 0, 1, WriteTag{0, 1}, true, t);
  oc.on_read(0, 0, 0, WriteTag{}, t);  // init read after own write: stale
  EXPECT_FALSE(oc.ok());
  EXPECT_EQ(fr.trigger_count(), 0u);

  oc.poll_flight();  // mid-run filing, stream still open
  EXPECT_EQ(fr.trigger_count(), 1u);
  ASSERT_TRUE(oc.violation().has_value());
  EXPECT_EQ(oc.violation()->pattern, BadPattern::kWriteCOInitRead);

  oc.finish();  // no re-fire
  EXPECT_EQ(fr.trigger_count(), 1u);
}

TEST(OnlineCheck, SystemWiringArmsFlightRecorder) {
  SystemOptions opts;
  opts.online_check.enabled = true;
  opts.flight.enabled = true;
  opts.flight.recorder.armed = false;  // wiring-only: no artifact I/O
  DsmSystem<CausalNode> sys(2, {}, opts);
  sys.memory(0).write(0, 7);
  (void)sys.memory(1).read(0);
  sys.shutdown();
  // Clean run: checker finished, recorder untouched.
  EXPECT_TRUE(sys.online_checker()->ok());
  EXPECT_EQ(sys.flight_recorder()->trigger_count(), 0u);
}

}  // namespace
}  // namespace causalmem

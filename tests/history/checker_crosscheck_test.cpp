// Cross-validation of CausalChecker against a deliberately naive,
// independent implementation of the paper's Definition 1: adjacency-matrix
// transitive closure (Floyd–Warshall), rebuilt from scratch for every read
// with that read's own reads-from edge removed. Random small histories —
// both plausible and adversarial — must get identical verdicts and live
// sets from both implementations.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "causalmem/common/rng.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/history.hpp"

namespace causalmem {
namespace {

// --------------------------------------------------------------------------
// The naive reference implementation.
// --------------------------------------------------------------------------

struct RefNode {
  Operation op;
  bool is_initial{false};
  OpRef ref{};
  int rf_source{-1};  // reads: node index of the write read from
};

struct RefGraph {
  std::vector<RefNode> nodes;
  // adj[i][j]: direct edge i -> j; rf edges are tracked separately per read
  // so they can be excluded one at a time.
  std::vector<std::vector<bool>> adj;

  static RefGraph build(const History& h) {
    RefGraph g;
    // Initial writes, one per distinct address.
    std::vector<Addr> addrs;
    for (const auto& seq : h.per_process) {
      for (const auto& op : seq) {
        bool seen = false;
        for (const Addr a : addrs) seen = seen || a == op.addr;
        if (!seen) addrs.push_back(op.addr);
      }
    }
    for (const Addr a : addrs) {
      RefNode n;
      n.op = Operation{OpKind::kWrite, kNoNode, a, kInitialValue, WriteTag{},
                       true};
      n.is_initial = true;
      g.nodes.push_back(n);
    }
    const std::size_t inits = g.nodes.size();
    for (NodeId p = 0; p < h.per_process.size(); ++p) {
      for (std::size_t i = 0; i < h.per_process[p].size(); ++i) {
        RefNode n;
        n.op = h.per_process[p][i];
        n.ref = OpRef{p, i};
        g.nodes.push_back(n);
      }
    }
    const std::size_t total = g.nodes.size();
    g.adj.assign(total, std::vector<bool>(total, false));
    // Program order + init edges.
    std::size_t idx = inits;
    for (NodeId p = 0; p < h.per_process.size(); ++p) {
      for (std::size_t i = 0; i < h.per_process[p].size(); ++i, ++idx) {
        if (i == 0) {
          for (std::size_t k = 0; k < inits; ++k) g.adj[k][idx] = true;
        } else {
          g.adj[idx - 1][idx] = true;
        }
      }
    }
    // Reads-from sources (edges added per query so they can be excluded).
    for (std::size_t r = inits; r < total; ++r) {
      if (g.nodes[r].op.kind != OpKind::kRead) continue;
      for (std::size_t w = 0; w < total; ++w) {
        const RefNode& wn = g.nodes[w];
        if (wn.op.kind != OpKind::kWrite || wn.op.addr != g.nodes[r].op.addr) {
          continue;
        }
        if (wn.op.tag == g.nodes[r].op.tag) {
          g.nodes[r].rf_source = static_cast<int>(w);
        }
      }
    }
    return g;
  }

  /// Full closure including all rf edges except `excluded_read`'s own.
  [[nodiscard]] std::vector<std::vector<bool>> closure(
      int excluded_read) const {
    auto c = adj;
    for (std::size_t r = 0; r < nodes.size(); ++r) {
      if (nodes[r].op.kind != OpKind::kRead || nodes[r].rf_source < 0) continue;
      if (static_cast<int>(r) == excluded_read) continue;
      c[static_cast<std::size_t>(nodes[r].rf_source)][r] = true;
    }
    const std::size_t n = nodes.size();
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!c[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (c[k][j]) c[i][j] = true;
        }
      }
    }
    return c;
  }

  /// Definition 1, verbatim, for the read at node index r.
  [[nodiscard]] std::set<Value> live_set(std::size_t r) const {
    const auto c = closure(static_cast<int>(r));
    std::set<Value> live;
    for (std::size_t w = 0; w < nodes.size(); ++w) {
      const RefNode& wn = nodes[w];
      if (wn.op.kind != OpKind::kWrite || wn.op.addr != nodes[r].op.addr) {
        continue;
      }
      if (c[r][w]) continue;  // causally follows the read
      if (!c[w][r]) {
        live.insert(wn.op.value);  // concurrent
        continue;
      }
      bool overwritten = false;
      for (std::size_t m = 0; m < nodes.size(); ++m) {
        if (m == w || m == r) continue;
        if (nodes[m].op.addr != nodes[r].op.addr) continue;
        if (nodes[m].op.tag == wn.op.tag) continue;
        if (c[w][m] && c[m][r]) overwritten = true;
      }
      if (!overwritten) live.insert(wn.op.value);
    }
    return live;
  }

  [[nodiscard]] bool check() const {
    for (std::size_t r = 0; r < nodes.size(); ++r) {
      if (nodes[r].op.kind != OpKind::kRead) continue;
      if (nodes[r].rf_source < 0) return false;  // dangling read
      if (!live_set(r).contains(nodes[r].op.value)) return false;
    }
    return true;
  }
};

// --------------------------------------------------------------------------
// Random history generation: reads pick either a plausible value (a write to
// the same address or the initial 0), biased but unconstrained, so both
// correct and violating histories appear.
// --------------------------------------------------------------------------

History random_history(Rng& rng, std::size_t procs, std::size_t addrs,
                       std::size_t ops) {
  HistoryBuilder hb(procs);
  Value next_value = 1;
  std::vector<std::vector<Value>> values_of_addr(addrs);
  for (std::size_t i = 0; i < ops; ++i) {
    const NodeId p = static_cast<NodeId>(rng.next_below(procs));
    const Addr a = rng.next_below(addrs);
    if (rng.chance(0.5)) {
      hb.write(p, a, next_value);
      values_of_addr[a].push_back(next_value);
      ++next_value;
    } else {
      const auto& vals = values_of_addr[a];
      if (vals.empty() || rng.chance(0.2)) {
        hb.read(p, a, 0);
      } else {
        hb.read(p, a, vals[rng.next_below(vals.size())]);
      }
    }
  }
  return hb.build();
}

TEST(CheckerCrossCheck, VerdictsMatchBruteForceOnRandomHistories) {
  Rng rng(20260705);
  int correct = 0, violating = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const History h =
        random_history(rng, 2 + rng.next_below(2), 2, 6 + rng.next_below(7));
    const RefGraph ref = RefGraph::build(h);
    const bool ref_ok = ref.check();
    const bool chk_ok = !CausalChecker(h).check().has_value();
    ASSERT_EQ(chk_ok, ref_ok) << "verdict mismatch on:\n" << h.to_string();
    (ref_ok ? correct : violating) += 1;
  }
  // The generator must exercise both outcomes for this test to mean much.
  EXPECT_GT(correct, 20);
  EXPECT_GT(violating, 20);
}

TEST(CheckerCrossCheck, LiveSetsMatchBruteForce) {
  Rng rng(424242);
  int reads_checked = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const History h = random_history(rng, 3, 2, 8);
    const RefGraph ref = RefGraph::build(h);
    const CausalChecker chk(h);
    for (std::size_t node = 0; node < ref.nodes.size(); ++node) {
      if (ref.nodes[node].op.kind != OpKind::kRead) continue;
      ASSERT_EQ(chk.live_set(ref.nodes[node].ref), ref.live_set(node))
          << "live-set mismatch for " << ref.nodes[node].op.to_string()
          << " in:\n"
          << h.to_string();
      ++reads_checked;
    }
  }
  EXPECT_GT(reads_checked, 100);
}

}  // namespace
}  // namespace causalmem

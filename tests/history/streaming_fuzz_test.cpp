// Differential fuzzing of StreamingCausalChecker against the brute-force
// Definition-1 oracle (CausalChecker): thousands of seeded random small
// histories, synthetic guaranteed-causal workloads, and mutants that inject
// each bad-pattern class into otherwise-plausible histories. The contract:
//
//   * verdict equality — streaming causal_ok() iff CausalChecker finds no
//     violation;
//   * when violating, the streaming checker's first flagged read must be one
//     of the brute oracle's violating reads (processing order is
//     co-topological, not proc-major, so WHICH violation surfaces first may
//     differ — but it must be a real one), and its ViolationClass must match
//     the class inferred from the brute reason string for that same read;
//   * the streaming consistency hierarchy agrees with the brute hierarchy
//     field-for-field on histories small enough to run both.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "causalmem/common/rng.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/consistency.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/history/streaming_checker.hpp"
#include "causalmem/history/synthetic.hpp"

namespace causalmem {
namespace {

// Same shape as checker_crosscheck_test.cpp's generator: reads pick either a
// plausible already-written value or the initial 0, biased but
// unconstrained, so both correct and violating histories appear. Values are
// globally unique so build()'s reads-from resolution is never ambiguous.
History random_history(Rng& rng, std::size_t procs, std::size_t addrs,
                       std::size_t ops, Value first_value = 1) {
  HistoryBuilder hb(procs);
  Value next_value = first_value;
  std::vector<std::vector<Value>> values_of_addr(addrs);
  for (std::size_t i = 0; i < ops; ++i) {
    const NodeId p = static_cast<NodeId>(rng.next_below(procs));
    const Addr a = rng.next_below(addrs);
    if (rng.chance(0.5)) {
      hb.write(p, a, next_value);
      values_of_addr[a].push_back(next_value);
      ++next_value;
    } else {
      const auto& vals = values_of_addr[a];
      if (vals.empty() || rng.chance(0.2)) {
        hb.read(p, a, 0);
      } else {
        hb.read(p, a, vals[rng.next_below(vals.size())]);
      }
    }
  }
  return hb.build();
}

/// Runs both checkers and enforces the differential contract. Returns true
/// when the history violates (for corpus-mix assertions).
bool expect_agreement(const History& h, const char* what) {
  const CausalChecker brute(h);
  const auto brute_first = brute.check();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_EQ(res.causal, !brute_first.has_value())
      << what << ": verdict mismatch on:\n"
      << h.to_string();
  if (!brute_first.has_value()) return false;

  if (!res.first.has_value()) {
    ADD_FAILURE() << what
                  << ": violating history with no streaming violation:\n"
                  << h.to_string();
    return true;
  }
  const auto all = brute.check_all();
  const StreamingViolation& sv = *res.first;
  std::optional<std::string> brute_reason;
  for (const CausalViolation& v : all) {
    if (v.read == sv.op) brute_reason = v.reason;
  }
  if (!brute_reason.has_value()) {
    ADD_FAILURE() << what << ": streaming flagged p" << sv.op.proc << "["
                  << sv.op.index << "] (" << bad_pattern_name(sv.pattern)
                  << ") which the oracle considers correct, in:\n"
                  << h.to_string();
    return true;
  }
  EXPECT_EQ(violation_class_of(sv.pattern),
            classify_causal_reason(*brute_reason))
      << what << ": diagnosis class mismatch for p" << sv.op.proc << "["
      << sv.op.index << "]: streaming=" << bad_pattern_name(sv.pattern)
      << " oracle reason=\"" << *brute_reason << "\" in:\n"
      << h.to_string();
  return true;
}

TEST(StreamingFuzz, RandomSmallHistories) {
  Rng rng(20260809);
  int violating = 0;
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const History h = random_history(rng, 2 + rng.next_below(3),
                                     1 + rng.next_below(3),
                                     4 + rng.next_below(11));
    violating += expect_agreement(h, "random");
  }
  // The corpus must exercise both outcomes heavily to mean anything.
  EXPECT_GT(violating, kTrials / 10);
  EXPECT_LT(violating, kTrials * 9 / 10);
}

TEST(StreamingFuzz, SyntheticCausalHistoriesAreCleanForBoth) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    SyntheticWorkload w;
    w.procs = 2 + rng.next_below(3);
    w.addrs = 1 + rng.next_below(4);
    w.ops = 30 + rng.next_below(120);
    w.deliver_ratio = 0.3 + 0.01 * static_cast<double>(rng.next_below(60));
    const History h = make_synthetic_causal_history(w, rng.next());
    EXPECT_FALSE(expect_agreement(h, "synthetic"))
        << "synthetic generator produced a violating history";
  }
}

// ---------------------------------------------------------------------------
// Mutants: take a random plausible base and inject one specific bad pattern.
// Injected values start at 10^6 so they never collide with base values
// (which would make build()'s by-value reads-from resolution ambiguous).
// ---------------------------------------------------------------------------

constexpr Value kMutantValue = 1'000'000;

History random_base(Rng& rng) {
  return random_history(rng, 2 + rng.next_below(2), 1 + rng.next_below(2),
                        4 + rng.next_below(7));
}

TEST(StreamingFuzz, ThinAirMutants) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    History h = random_base(rng);
    // Append a read whose tag no write in the execution carries.
    Operation o;
    o.kind = OpKind::kRead;
    o.proc = static_cast<NodeId>(rng.next_below(h.process_count()));
    o.addr = rng.next_below(2);
    o.value = kMutantValue;
    o.tag = WriteTag{static_cast<NodeId>(200 + rng.next_below(5)),
                     1 + rng.next()% 1000};
    h.per_process[o.proc].push_back(o);
    ASSERT_TRUE(expect_agreement(h, "thin-air"));
    const auto res = StreamingCausalChecker::check(h);
    EXPECT_GT(res.stats.ops_seen, res.stats.ops_processed);
    EXPECT_GE(
        StreamingCausalChecker::check(h).stats.ops_seen - 1,
        res.stats.ops_processed);
  }
}

TEST(StreamingFuzz, StaleReadMutants) {
  Rng rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    HistoryBuilder hb(3);
    History base = random_base(rng);
    // Rebuild the base through a builder copy so we can append: overwrite a
    // location twice in program order, then read the overwritten value.
    const NodeId p = static_cast<NodeId>(rng.next_below(base.process_count()));
    const Addr a = rng.next_below(2);
    HistoryBuilder mut(base.process_count());
    for (NodeId q = 0; q < base.process_count(); ++q) {
      for (const Operation& o : base.per_process[q]) {
        if (o.kind == OpKind::kWrite) {
          mut.write(q, o.addr, o.value);
        } else {
          mut.read(q, o.addr, o.value);
        }
      }
    }
    mut.write(p, a, kMutantValue);
    mut.write(p, a, kMutantValue + 1);
    mut.read(p, a, kMutantValue);
    ASSERT_TRUE(expect_agreement(mut.build(), "stale"));
  }
}

TEST(StreamingFuzz, FutureReadMutants) {
  Rng rng(303);
  for (int trial = 0; trial < 500; ++trial) {
    History base = random_base(rng);
    const NodeId p = static_cast<NodeId>(rng.next_below(base.process_count()));
    const Addr a = rng.next_below(2);
    HistoryBuilder mut(base.process_count());
    for (NodeId q = 0; q < base.process_count(); ++q) {
      for (const Operation& o : base.per_process[q]) {
        if (o.kind == OpKind::kWrite) {
          mut.write(q, o.addr, o.value);
        } else {
          mut.read(q, o.addr, o.value);
        }
      }
    }
    // Read a value this same process only writes LATER: r *-> w via program
    // order, a po ∪ rf cycle.
    mut.read(p, a, kMutantValue);
    mut.write(p, a, kMutantValue);
    ASSERT_TRUE(expect_agreement(mut.build(), "future"));
  }
}

TEST(StreamingFuzz, InitAfterWriteMutants) {
  Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    History base = random_base(rng);
    const NodeId p = static_cast<NodeId>(rng.next_below(base.process_count()));
    const Addr a = rng.next_below(2);
    HistoryBuilder mut(base.process_count());
    for (NodeId q = 0; q < base.process_count(); ++q) {
      for (const Operation& o : base.per_process[q]) {
        if (o.kind == OpKind::kWrite) {
          mut.write(q, o.addr, o.value);
        } else {
          mut.read(q, o.addr, o.value);
        }
      }
    }
    // Write x, then read the initial 0: the write intervenes on the
    // init *-> read path (WriteCOInitRead).
    mut.write(p, a, kMutantValue);
    mut.read(p, a, 0);
    ASSERT_TRUE(expect_agreement(mut.build(), "init-after-write"));
  }
}

TEST(StreamingFuzz, ReadIntervenerMutants) {
  // The CM-only template grafted onto random prefixes: two concurrent
  // writes, a relay process that reads old-then-new and publishes a flag,
  // and a reader that joins the flag and then reads the OLD write — killed
  // only by the relay's read.
  Rng rng(505);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t procs = 4;
    HistoryBuilder mut(procs);
    // Random harmless prefix on each process (writes only, distinct addrs
    // high enough not to collide with the template's).
    const Addr base_addr = 10;
    for (NodeId q = 0; q < procs; ++q) {
      const std::size_t k = rng.next_below(3);
      for (std::size_t i = 0; i < k; ++i) {
        mut.write(q, base_addr + q, kMutantValue + 100 * q + i);
      }
    }
    const Addr x = 0, y = 1;
    mut.write(0, x, 1);
    mut.write(3, x, 2);
    mut.read(1, x, 1);
    mut.read(1, x, 2);
    mut.write(1, y, 5);
    mut.read(2, y, 5);
    mut.read(2, x, 1);
    const History h = mut.build();
    ASSERT_TRUE(expect_agreement(h, "read-intervener"));
    const auto res = StreamingCausalChecker::check(h);
    EXPECT_TRUE(res.cc) << h.to_string();   // invisible to CC…
    EXPECT_FALSE(res.causal);               // …but not to CM
  }
}

TEST(StreamingFuzz, HierarchyAgreesWithBruteHierarchy) {
  Rng rng(606);
  for (int trial = 0; trial < 300; ++trial) {
    const History h = random_history(rng, 2 + rng.next_below(2), 2,
                                     4 + rng.next_below(9));
    const ConsistencyReport brute = check_consistency_hierarchy(h);
    const ConsistencyReport stream = check_consistency_hierarchy_streaming(h);
    ASSERT_EQ(stream.causal, brute.causal) << h.to_string();
    ASSERT_EQ(stream.pram, brute.pram) << h.to_string();
    ASSERT_EQ(stream.slow, brute.slow) << h.to_string();
    ASSERT_EQ(stream.pram_decided, brute.pram_decided) << h.to_string();
    ASSERT_EQ(stream.ok(), brute.ok()) << h.to_string();
  }
}

TEST(StreamingFuzz, AutoDispatchMatchesBothSides) {
  Rng rng(707);
  const History small = random_history(rng, 3, 2, 10);
  const auto via_auto = check_consistency_hierarchy_auto(small);
  const auto via_brute = check_consistency_hierarchy(small);
  // Below the threshold the auto report is the brute report, reason string
  // included (the sim determinism suite relies on byte-identical diagnoses).
  EXPECT_EQ(via_auto.causal, via_brute.causal);
  EXPECT_EQ(via_auto.reason, via_brute.reason);

  SyntheticWorkload w;
  w.procs = 4;
  w.addrs = 8;
  w.ops = 6000;  // >= default streaming_from
  const History big = make_synthetic_causal_history(w, 99);
  const auto big_auto = check_consistency_hierarchy_auto(big);
  EXPECT_TRUE(big_auto.causal);
  EXPECT_TRUE(big_auto.ok());
}

TEST(StreamingFuzz, GcInvarianceOnRandomCorpus) {
  // Aggressive GC must never change a verdict relative to GC disabled.
  Rng rng(808);
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng, 2 + rng.next_below(3), 2,
                                     6 + rng.next_below(20));
    StreamingOptions aggressive;
    aggressive.gc_interval = 4;
    StreamingOptions off;
    off.gc_interval = 0;
    const auto a = StreamingCausalChecker::check(h, aggressive);
    const auto b = StreamingCausalChecker::check(h, off);
    ASSERT_EQ(a.causal, b.causal) << h.to_string();
    ASSERT_EQ(a.cc, b.cc) << h.to_string();
  }
}

}  // namespace
}  // namespace causalmem

#include "causalmem/history/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "causalmem/history/causal_checker.hpp"

namespace causalmem {
namespace {

TEST(Trace, FormatThenParseRoundTrips) {
  const History h = HistoryBuilder(2)
                        .write(0, 3, 10)
                        .read(1, 3, 10)
                        .write(1, 4, 20)
                        .read(0, 4, 0)
                        .build();
  std::istringstream in(format_trace(h));
  const auto parsed = parse_trace(in);
  ASSERT_TRUE(std::holds_alternative<History>(parsed));
  const History& back = std::get<History>(parsed);
  ASSERT_EQ(back.process_count(), 2u);
  ASSERT_EQ(back.total_ops(), 4u);
  EXPECT_EQ(back.op({1, 0}).tag, back.op({0, 0}).tag);  // rf resolved
  EXPECT_TRUE(back.op({0, 1}).tag.is_initial());
}

TEST(Trace, CommentsAndBlanksIgnored) {
  std::istringstream in("# header\n\nw 0 1 5\n  # indented? no: comments "
                        "start the line\nr 0 1 5\n");
  const auto parsed = parse_trace(in);
  ASSERT_TRUE(std::holds_alternative<History>(parsed)) << "parse failed";
  EXPECT_EQ(std::get<History>(parsed).total_ops(), 2u);
}

TEST(Trace, MalformedLineReported) {
  std::istringstream in("w 0 1 5\nx 0 1\n");
  const auto parsed = parse_trace(in);
  const auto* err = std::get_if<TraceParseError>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 2u);
}

TEST(Trace, DanglingReadReported) {
  std::istringstream in("r 0 1 99\n");
  const auto parsed = parse_trace(in);
  const auto* err = std::get_if<TraceParseError>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("no write"), std::string::npos);
}

TEST(Trace, AmbiguousValueReported) {
  std::istringstream in("w 0 1 5\nw 1 1 5\nr 0 1 5\n");
  const auto parsed = parse_trace(in);
  const auto* err = std::get_if<TraceParseError>(&parsed);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("ambiguous"), std::string::npos);
}

TEST(Trace, EmptyTraceReported) {
  std::istringstream in("# nothing\n");
  const auto parsed = parse_trace(in);
  EXPECT_NE(std::get_if<TraceParseError>(&parsed), nullptr);
}

TEST(Trace, ParsedFigure3IsStillRejectedByChecker) {
  std::istringstream in(
      "w 0 0 5\nw 0 1 3\nw 1 0 2\nr 1 1 3\nr 1 0 5\nw 1 2 4\nr 2 2 4\n"
      "r 2 0 2\n");
  const auto parsed = parse_trace(in);
  ASSERT_TRUE(std::holds_alternative<History>(parsed));
  EXPECT_FALSE(is_causally_consistent(std::get<History>(parsed)));
}

TEST(CheckAll, ReportsEveryViolatingRead) {
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .write(0, 0, 2)
                        .read(1, 0, 2)
                        .read(1, 0, 1)   // violation 1
                        .read(1, 0, 1)   // violation 2
                        .build();
  const auto all = CausalChecker(h).check_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].read, (OpRef{1, 1}));
  EXPECT_EQ(all[1].read, (OpRef{1, 2}));
}

}  // namespace
}  // namespace causalmem

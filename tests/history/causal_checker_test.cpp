#include "causalmem/history/causal_checker.hpp"

#include <gtest/gtest.h>

namespace causalmem {
namespace {

constexpr Addr kX = 0;
constexpr Addr kY = 1;

TEST(CausalChecker, EmptyHistoryIsCorrect) {
  EXPECT_TRUE(is_causally_consistent(History{{{}, {}}}));
}

TEST(CausalChecker, SingleProcessSequentialIsCorrect) {
  const History h = HistoryBuilder(1)
                        .write(0, kX, 1)
                        .read(0, kX, 1)
                        .write(0, kX, 2)
                        .read(0, kX, 2)
                        .build();
  EXPECT_TRUE(is_causally_consistent(h));
}

TEST(CausalChecker, ProgramOrderStaleReadIsViolation) {
  // A process may never read its own overwritten value.
  const History h = HistoryBuilder(1)
                        .write(0, kX, 1)
                        .write(0, kX, 2)
                        .read(0, kX, 1)
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{0, 2}));
}

TEST(CausalChecker, ReadOfInitialAfterOwnWriteIsViolation) {
  const History h =
      HistoryBuilder(1).write(0, kX, 1).read(0, kX, 0).build();
  EXPECT_FALSE(is_causally_consistent(h));
}

TEST(CausalChecker, ConcurrentWriteRemainsLiveAcrossProcesses) {
  // P0 writes x; P1 never communicates with P0 and may read the initial 0.
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(1, kX, 0)
                        .build();
  EXPECT_TRUE(is_causally_consistent(h));
}

TEST(CausalChecker, ReadEstablishesCausalityForLaterReads) {
  // Once P1 reads x=1 (causally after w(x)1), it may not go back to 0.
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .read(1, kX, 0)
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{1, 1}));
}

TEST(CausalChecker, TransitivityThroughThirdProcess) {
  // w0(x)1 -> r1(x)1 -> w1(y)2 -> r2(y)2; then P2 reading x=0 is stale.
  const History h = HistoryBuilder(3)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .write(1, kY, 2)
                        .read(2, kY, 2)
                        .read(2, kX, 0)
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{2, 1}));
}

TEST(CausalChecker, SameChainWithFreshValueIsCorrect) {
  const History h = HistoryBuilder(3)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .write(1, kY, 2)
                        .read(2, kY, 2)
                        .read(2, kX, 1)
                        .build();
  EXPECT_TRUE(is_causally_consistent(h));
}

TEST(CausalChecker, InterveningReadServesNotice) {
  // P1 reads v' (newer) then reads v (older) — the intervening read of v'
  // killed v even though v' and v were written by different processes.
  const History h = HistoryBuilder(3)
                        .write(0, kX, 1)   // older (read by P2 first... )
                        .read(2, kX, 1)
                        .write(2, kX, 5)   // causally after w(x)1
                        .read(1, kX, 5)    // P1 sees the newer value
                        .read(1, kX, 1)    // ...then regresses: violation
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{1, 1}));
}

TEST(CausalChecker, ReadsOfConcurrentWritesMayDisagree) {
  // "Subsequent readers may disagree on the relative ordering of these
  // concurrent writes" — P2 and P3 order them oppositely; both correct.
  const History h = HistoryBuilder(4)
                        .write(0, kX, 1)
                        .write(1, kX, 2)
                        .read(2, kX, 1)
                        .read(2, kX, 2)
                        .read(3, kX, 2)
                        .read(3, kX, 1)
                        .build();
  EXPECT_TRUE(is_causally_consistent(h));
}

TEST(CausalChecker, NoRegressionBetweenConcurrentValuesOnceChosen) {
  // Although w(x)1 and w(x)2 are concurrent, once P2 has read 1 and then 2,
  // its own read of 2 *intervenes* between w(x)1 and any later read — so
  // going back to 1 violates Definition 1 (the intervening-operation clause
  // is structural; it does not require the writes themselves to be ordered).
  const History h = HistoryBuilder(3)
                        .write(0, kX, 1)
                        .write(1, kX, 2)
                        .read(2, kX, 1)
                        .read(2, kX, 2)
                        .read(2, kX, 1)
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{2, 2}));
}

TEST(CausalChecker, ReadFromCausalFutureIsViolation) {
  // P0 reads y=1 before (in causal order) the write of y=1 exists: the write
  // is causally after the read via P1's read of x.
  const History h = HistoryBuilder(2)
                        .read(0, kY, 1)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .write(1, kY, 1)
                        .build();
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{0, 0}));
  EXPECT_NE(v->reason.find("future"), std::string::npos);
}

TEST(CausalChecker, DanglingReadIsViolation) {
  History h;
  h.per_process.resize(1);
  h.per_process[0].push_back(
      Operation{OpKind::kRead, 0, kX, 7, WriteTag{5, 1}, true});
  const auto v = CausalChecker(h).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("no write"), std::string::npos);
}

TEST(CausalChecker, OwnWriteThenReadOfConcurrentValueIsCorrect) {
  // P0 writes x=1; P1 writes x=2 concurrently; P0 may then read 2 (it is
  // concurrent with P0's read) — and afterwards may NOT go back to 1,
  // because its own read of 2 intervenes.
  const History ok = HistoryBuilder(2)
                         .write(0, kX, 1)
                         .write(1, kX, 2)
                         .read(0, kX, 2)
                         .build();
  EXPECT_TRUE(is_causally_consistent(ok));

  const History bad = HistoryBuilder(2)
                          .write(0, kX, 1)
                          .write(1, kX, 2)
                          .read(0, kX, 2)
                          .read(0, kX, 1)
                          .build();
  const auto v = CausalChecker(bad).check();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{0, 2}));
}

TEST(CausalChecker, LiveSetOfFreshReadIncludesInitialValue) {
  const History h = HistoryBuilder(2).write(0, kX, 1).read(1, kX, 0).build();
  const CausalChecker chk(h);
  EXPECT_EQ(chk.live_set(OpRef{1, 0}), (std::set<Value>{0, 1}));
}

TEST(CausalChecker, PrecedesIsIrreflexiveAndRespectsProgramOrder) {
  const History h =
      HistoryBuilder(1).write(0, kX, 1).write(0, kX, 2).build();
  const CausalChecker chk(h);
  EXPECT_TRUE(chk.precedes(OpRef{0, 0}, OpRef{0, 1}));
  EXPECT_FALSE(chk.precedes(OpRef{0, 1}, OpRef{0, 0}));
  EXPECT_FALSE(chk.precedes(OpRef{0, 0}, OpRef{0, 0}));
}

}  // namespace
}  // namespace causalmem

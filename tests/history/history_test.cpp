#include "causalmem/history/history.hpp"

#include <gtest/gtest.h>

#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

TEST(HistoryBuilder, WritesGetSequentialTags) {
  const History h =
      HistoryBuilder(2).write(0, 1, 10).write(0, 1, 20).write(1, 2, 30).build();
  EXPECT_EQ(h.op({0, 0}).tag, (WriteTag{0, 1}));
  EXPECT_EQ(h.op({0, 1}).tag, (WriteTag{0, 2}));
  EXPECT_EQ(h.op({1, 0}).tag, (WriteTag{1, 1}));
}

TEST(HistoryBuilder, ReadsResolveToMatchingWrite) {
  const History h =
      HistoryBuilder(2).write(0, 5, 77).read(1, 5, 77).build();
  EXPECT_EQ(h.op({1, 0}).tag, h.op({0, 0}).tag);
}

TEST(HistoryBuilder, ReadOfZeroResolvesToInitialWrite) {
  const History h = HistoryBuilder(1).read(0, 9, 0).build();
  EXPECT_TRUE(h.op({0, 0}).tag.is_initial());
}

TEST(HistoryBuilder, CrossProcessResolution) {
  const History h = HistoryBuilder(3)
                        .write(2, 1, 42)
                        .read(0, 1, 42)
                        .read(1, 1, 42)
                        .build();
  EXPECT_EQ(h.op({0, 0}).tag, (WriteTag{2, 1}));
  EXPECT_EQ(h.op({1, 0}).tag, (WriteTag{2, 1}));
}

TEST(History, TotalOpsAndToString) {
  const History h =
      HistoryBuilder(2).write(0, 0, 1).read(1, 0, 1).read(1, 0, 1).build();
  EXPECT_EQ(h.total_ops(), 3u);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("P0: w0(x0)1"), std::string::npos);
  EXPECT_NE(s.find("P1: r1(x0)1 r1(x0)1"), std::string::npos);
}

TEST(Recorder, CapturesProgramOrder) {
  Recorder rec(2);
  rec.on_write(0, 3, 7, WriteTag{0, 1}, true, OpTiming{});
  rec.on_read(1, 3, 7, WriteTag{0, 1}, OpTiming{});
  rec.on_read(0, 3, 7, WriteTag{0, 1}, OpTiming{});
  const History h = rec.history();
  ASSERT_EQ(h.per_process[0].size(), 2u);
  ASSERT_EQ(h.per_process[1].size(), 1u);
  EXPECT_EQ(h.per_process[0][0].kind, OpKind::kWrite);
  EXPECT_EQ(h.per_process[0][1].kind, OpKind::kRead);
  EXPECT_EQ(rec.op_count(), 3u);
}

TEST(Recorder, TracksRejectedWrites) {
  Recorder rec(1);
  rec.on_write(0, 3, 7, WriteTag{0, 1}, false, OpTiming{});
  const History h = rec.history();
  EXPECT_FALSE(h.per_process[0][0].applied);
  EXPECT_NE(h.per_process[0][0].to_string().find("rejected"),
            std::string::npos);
}

}  // namespace
}  // namespace causalmem

// End-to-end tooling loop: record a live causal-DSM execution, export it in
// trace format, re-parse it, and get identical checker verdicts — the
// workflow a downstream user follows when filing a consistency bug report.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/history/trace.hpp"

namespace causalmem {
namespace {

TEST(RecordedTrace, ExportParseRecheckRoundTrip) {
  Recorder recorder(3);
  {
    DsmSystem<CausalNode> sys(3, {}, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(808 + p);
        // Globally unique write values so trace reads-from resolution by
        // value is unambiguous.
        Value next = static_cast<Value>(p + 1) * 1000000;
        for (int i = 0; i < 40; ++i) {
          const Addr a = rng.next_below(5);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, ++next);
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  const History original = recorder.history();
  ASSERT_FALSE(CausalChecker(original).check().has_value());

  std::istringstream in(format_trace(original));
  const auto parsed = parse_trace(in);
  ASSERT_TRUE(std::holds_alternative<History>(parsed));
  const History& back = std::get<History>(parsed);

  ASSERT_EQ(back.process_count(), original.process_count());
  ASSERT_EQ(back.total_ops(), original.total_ops());
  // Reads-from must resolve to the same tags the recorder captured.
  for (NodeId p = 0; p < original.process_count(); ++p) {
    for (std::size_t i = 0; i < original.per_process[p].size(); ++i) {
      const Operation& a = original.per_process[p][i];
      const Operation& b = back.per_process[p][i];
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.addr, b.addr);
      EXPECT_EQ(a.value, b.value);
      if (a.kind == OpKind::kRead) {
        EXPECT_EQ(a.tag, b.tag) << "reads-from resolution diverged";
      }
    }
  }
  EXPECT_FALSE(CausalChecker(back).check().has_value());
}

TEST(RecordedTrace, ViolatingHistoryStaysViolatingThroughTrace) {
  const History fig3 = HistoryBuilder(3)
                           .write(0, 0, 5)
                           .write(0, 1, 3)
                           .write(1, 0, 2)
                           .read(1, 1, 3)
                           .read(1, 0, 5)
                           .write(1, 2, 4)
                           .read(2, 2, 4)
                           .read(2, 0, 2)
                           .build();
  std::istringstream in(format_trace(fig3));
  const auto parsed = parse_trace(in);
  ASSERT_TRUE(std::holds_alternative<History>(parsed));
  const auto violation = CausalChecker(std::get<History>(parsed)).check();
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->read, (OpRef{2, 1}));
}

}  // namespace
}  // namespace causalmem

#include "causalmem/history/sc_checker.hpp"

#include <gtest/gtest.h>

#include "causalmem/history/causal_checker.hpp"

namespace causalmem {
namespace {

constexpr Addr kX = 0;
constexpr Addr kY = 1;

TEST(ScChecker, EmptyAndSingleOpAreConsistent) {
  EXPECT_TRUE(is_sequentially_consistent(History{{{}}}));
  EXPECT_TRUE(is_sequentially_consistent(
      HistoryBuilder(1).write(0, kX, 1).build()));
}

TEST(ScChecker, SimpleInterleavingFound) {
  // P0: w(x)1; P1: r(x)1 r(x)0 would be inconsistent; r(x)0 r(x)1 is fine.
  const History ok =
      HistoryBuilder(2).write(0, kX, 1).read(1, kX, 0).read(1, kX, 1).build();
  EXPECT_TRUE(is_sequentially_consistent(ok));

  const History bad =
      HistoryBuilder(2).write(0, kX, 1).read(1, kX, 1).read(1, kX, 0).build();
  EXPECT_EQ(check_sequential_consistency(bad), ScResult::kInconsistent);
}

TEST(ScChecker, DekkerStyleBothReadZeroIsInconsistent) {
  // The classic SC litmus (= Figure 5's core).
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(0, kY, 0)
                        .write(1, kY, 1)
                        .read(1, kX, 0)
                        .build();
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent);
}

TEST(ScChecker, DekkerOneSideReadingOneIsConsistent) {
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(0, kY, 0)
                        .write(1, kY, 1)
                        .read(1, kX, 1)
                        .build();
  EXPECT_TRUE(is_sequentially_consistent(h));
}

TEST(ScChecker, WriteOrderMustBeConsistentAcrossReaders) {
  // IRIW: both readers see the two concurrent writes in opposite orders —
  // causally fine, sequentially impossible.
  const History h = HistoryBuilder(4)
                        .write(0, kX, 1)
                        .write(1, kY, 1)
                        .read(2, kX, 1)
                        .read(2, kY, 0)
                        .read(3, kY, 1)
                        .read(3, kX, 0)
                        .build();
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent);
  EXPECT_TRUE(is_causally_consistent(h));
}

TEST(ScChecker, SequentialConsistencyImpliesCausal) {
  // Spot-check on a handful of SC histories: the causal checker must agree.
  const History histories[] = {
      HistoryBuilder(2).write(0, kX, 1).read(1, kX, 1).write(1, kX, 2)
          .read(0, kX, 2).build(),
      HistoryBuilder(3).write(0, kX, 1).read(1, kX, 1).write(1, kY, 2)
          .read(2, kY, 2).read(2, kX, 1).build(),
  };
  for (const History& h : histories) {
    ASSERT_TRUE(is_sequentially_consistent(h)) << h.to_string();
    EXPECT_TRUE(is_causally_consistent(h)) << h.to_string();
  }
}

TEST(ScChecker, BudgetExhaustionReportsUndecided) {
  // A moderately sized consistent history with a 1-state budget.
  const History h =
      HistoryBuilder(2).write(0, kX, 1).read(1, kX, 1).build();
  EXPECT_EQ(check_sequential_consistency(h, /*max_states=*/1),
            ScResult::kUndecided);
}

TEST(ScChecker, StaleRegressionWithinOneProcess) {
  const History h = HistoryBuilder(1)
                        .write(0, kX, 1)
                        .write(0, kX, 2)
                        .read(0, kX, 1)
                        .build();
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent);
}

}  // namespace
}  // namespace causalmem

// Unit tests for StreamingCausalChecker: the paper's figure histories, one
// precise example per bad-pattern class, deferral (reads fed before their
// writes), garbage collection, CCv conflicts, and feeding-order invariance.
// The differential contract against CausalChecker over thousands of random
// histories lives in streaming_fuzz_test.cpp.
#include "causalmem/history/streaming_checker.hpp"

#include <gtest/gtest.h>

#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/history/synthetic.hpp"

namespace causalmem {
namespace {

using Result = StreamingCausalChecker::Result;

TEST(StreamingChecker, EmptyHistoryIsClean) {
  const auto res = StreamingCausalChecker::check(History{});
  EXPECT_TRUE(res.cc);
  EXPECT_TRUE(res.causal);
  EXPECT_TRUE(res.ccv);
}

TEST(StreamingChecker, Figure1ConcurrentWritesAreCausal) {
  // The paper's Fig. 1: both orders of two concurrent writes observable.
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .read(0, 0, 2)
                        .write(1, 0, 2)
                        .read(1, 0, 1)
                        .build();
  ASSERT_FALSE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
  EXPECT_TRUE(res.cc);
}

TEST(StreamingChecker, Figure2StaleReadViolates) {
  // w(x,1) -> w(x,2) in program order; a reader that sees 2 then 1 reads a
  // write overwritten inside its own causal past.
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .write(0, 0, 2)
                        .read(1, 0, 2)
                        .read(1, 0, 1)
                        .build();
  ASSERT_TRUE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.causal);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteCORead);
  EXPECT_EQ(res.first->op, (OpRef{1, 1}));
}

TEST(StreamingChecker, ProgramOrderStaleRead) {
  // Same process: w(x,1) w(x,2) r(x)1 — stale via pure program order.
  const History h = HistoryBuilder(1)
                        .write(0, 0, 1)
                        .write(0, 0, 2)
                        .read(0, 0, 1)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.causal);
  EXPECT_FALSE(res.cc);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteCORead);
}

TEST(StreamingChecker, RereadingSameValueConfirmsNotKills) {
  // Reading w twice in a row is fine: the same value confirms, not kills.
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .read(1, 0, 1)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
}

TEST(StreamingChecker, WriteCOInitRead) {
  // A write of x precedes (po) a read of the initial value of x.
  const History h = HistoryBuilder(1)
                        .write(0, 0, 1)
                        .read(0, 0, 0)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.cc);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteCOInitRead);
  EXPECT_EQ(violation_class_of(res.first->pattern), ViolationClass::kStale);
}

TEST(StreamingChecker, ConcurrentInitReadIsFine) {
  // The initial value stays live for processes that never saw the write.
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .read(1, 0, 0)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
}

TEST(StreamingChecker, WriteHBReadIsCmOnlyViolation) {
  // The read-intervener pattern: w(x,1) at p0 and w(x,2) at p3 are
  // concurrent; p1 reads 1 then 2 (fine), then writes y; p2 observes y and
  // then reads x=1 — stale, but the only intervener on the w1 *-> r path is
  // p1's READ of 2, so this is a CM violation that CC alone cannot see.
  const History h = HistoryBuilder(4)
                        .write(0, 0, 1)
                        .write(3, 0, 2)
                        .read(1, 0, 1)
                        .read(1, 0, 2)
                        .write(1, 1, 5)
                        .read(2, 1, 5)
                        .read(2, 0, 1)
                        .build();
  ASSERT_TRUE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.cc);  // no write intervenes on the co path
  EXPECT_FALSE(res.causal);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteHBRead);
  EXPECT_EQ(res.first->op, (OpRef{2, 1}));
}

TEST(StreamingChecker, WriteHBInitRead) {
  // p0 writes x then y; p1 observes y, reads x=1 (fine), then reads the
  // INITIAL x — killed only by p1's own earlier read of 1.
  // (p0's write of x is concurrent with nothing here: it precedes via po,
  // so to isolate the hb-init case the writer must stay concurrent.)
  const History h = HistoryBuilder(3)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .read(1, 0, 0)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.causal);
  ASSERT_TRUE(res.first.has_value());
  // p1's pre-clock at the init read contains its own read of 1 (a read
  // intervener) but ALSO p0's write via the merged rf edge — the write
  // intervener wins, so this is WriteCOInitRead.
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteCOInitRead);
}

TEST(StreamingChecker, WriteHBInitReadPure) {
  // Isolated hb-only init violation: p1 reads w(x,1) — merging w into its
  // clock — then p2 observes p1's writeback of y and reads initial x. The
  // co path to p2's init read contains p1's READ of x=1 but w itself too…
  // keeping w out of the past requires the read intervener to be an
  // initial-value read of another location's… in practice the CO variant
  // dominates; assert the checker flags SOME stale init pattern here.
  const History h = HistoryBuilder(3)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .write(1, 1, 7)
                        .read(2, 1, 7)
                        .read(2, 0, 0)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.causal);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(violation_class_of(res.first->pattern), ViolationClass::kStale);
  EXPECT_TRUE(CausalChecker(h).check().has_value());
}

TEST(StreamingChecker, ThinAirRead) {
  HistoryBuilder b(2);
  b.write(0, 0, 1).read(1, 0, 1);
  History h = b.build();
  // Point the read at a tag no write carries.
  h.per_process[1][0].value = 42;
  h.per_process[1][0].tag = WriteTag{7, 99};
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.cc);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kThinAirRead);
  EXPECT_EQ(violation_class_of(res.first->pattern), ViolationClass::kThinAir);
}

TEST(StreamingChecker, ReadFromOwnFutureIsCyclicCO) {
  // p0: r(x)1 then w(x,1) — the read's source is later in its own program
  // order: a po ∪ rf cycle.
  const History h = HistoryBuilder(1)
                        .read(0, 0, 1)
                        .write(0, 0, 1)
                        .build();
  ASSERT_TRUE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.cc);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kCyclicCO);
  EXPECT_EQ(violation_class_of(res.first->pattern), ViolationClass::kFuture);
}

TEST(StreamingChecker, CrossProcessCycleIsCyclicCO) {
  // p0: r(y)2 w(x,1); p1: r(x)1 w(y,2) — each read needs the other
  // process's later write: a 2-process causal cycle.
  const History h = HistoryBuilder(2)
                        .read(0, 1, 2)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .write(1, 1, 2)
                        .build();
  ASSERT_TRUE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_FALSE(res.cc);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kCyclicCO);
  // Both parked reads are diagnosed.
  EXPECT_EQ(res.stats.ops_processed, 0u);
  EXPECT_EQ(res.stats.ops_seen, 4u);
}

TEST(StreamingChecker, DeferralHandlesForwardReferences) {
  // Feed ALL of p1 (whose read forward-references p0's write) before p0 —
  // the trace-file feeding order. Verdict must match the in-order feed.
  StreamingCausalChecker c(2);
  c.on_read(1, 0, 1, WriteTag{0, 1});
  c.on_read(1, 0, 0, WriteTag{});  // initial read AFTER seeing 1: stale
  c.on_write(0, 0, 1, WriteTag{0, 1});
  c.finish();
  EXPECT_FALSE(c.causal_ok());
  ASSERT_TRUE(c.first_violation().has_value());
  EXPECT_EQ(c.first_violation()->pattern, BadPattern::kWriteCOInitRead);
  EXPECT_EQ(c.first_violation()->op, (OpRef{1, 1}));
  EXPECT_EQ(c.stats().ops_processed, 3u);
  EXPECT_GE(c.stats().peak_pending, 2u);
}

TEST(StreamingChecker, FeedingOrderInvariance) {
  const History h = HistoryBuilder(3)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .write(1, 1, 2)
                        .read(2, 1, 2)
                        .read(2, 0, 1)
                        .write(2, 0, 3)
                        .read(0, 0, 3)
                        .build();
  // Process-major feed.
  const auto a = StreamingCausalChecker::check(h);
  // Round-robin feed.
  StreamingCausalChecker c(3);
  std::size_t remaining = h.total_ops();
  std::vector<std::size_t> next(3, 0);
  while (remaining > 0) {
    for (NodeId p = 0; p < 3; ++p) {
      if (next[p] < h.per_process[p].size()) {
        c.on_op(h.per_process[p][next[p]++]);
        --remaining;
      }
    }
  }
  c.finish();
  EXPECT_EQ(a.causal, c.causal_ok());
  EXPECT_EQ(a.cc, c.cc_ok());
  EXPECT_TRUE(c.causal_ok());
}

TEST(StreamingChecker, CcvOppositeObservationOrders) {
  // The classic convergence violation: two concurrent writes of x observed
  // in opposite orders by two readers. CM accepts this (each second read's
  // source is concurrent with the first's); CCv must not.
  const History h = HistoryBuilder(4)
                        .write(0, 0, 1)
                        .write(1, 0, 2)
                        .read(2, 0, 1)
                        .read(2, 0, 2)
                        .read(3, 0, 2)
                        .read(3, 0, 1)
                        .build();
  ASSERT_FALSE(CausalChecker(h).check().has_value());
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
  EXPECT_TRUE(res.ccv_decided);
  EXPECT_FALSE(res.ccv);
}

TEST(StreamingChecker, CcvAgreeingOrdersStayClean) {
  const History h = HistoryBuilder(4)
                        .write(0, 0, 1)
                        .write(1, 0, 2)
                        .read(2, 0, 1)
                        .read(2, 0, 2)
                        .read(3, 0, 1)
                        .read(3, 0, 2)
                        .build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
  EXPECT_TRUE(res.ccv);
}

TEST(StreamingChecker, GcKeepsVerdictAndBoundsLiveWrites) {
  // A gossiping synthetic workload: every write is eventually dominated and
  // overwritten, so GC must both fire and keep the verdict clean.
  // Plenty of addresses: with very few, a process's own frequent rewrites
  // of each location always win the generator's Lamport arbitration, the
  // processes stop reading each other, and the checker's min-frontier (and
  // with it GC) cannot advance.
  SyntheticWorkload w;
  w.procs = 3;
  w.addrs = 32;
  w.ops = 6000;
  w.deliver_ratio = 0.8;
  const History h = make_synthetic_causal_history(w, /*seed=*/17);
  StreamingOptions opts;
  opts.gc_interval = 32;
  const auto res = StreamingCausalChecker::check(h, opts);
  EXPECT_TRUE(res.causal);
  EXPECT_GT(res.stats.gc_clock_drops, 0u);
  EXPECT_GT(res.stats.gc_tombstoned, 0u);
  // Live writes stay bounded far below the total write count.
  EXPECT_LT(res.stats.peak_live_writes, w.ops / 4);

  // And GC must not change the verdict: same history, GC off.
  StreamingOptions no_gc;
  no_gc.gc_interval = 0;
  const auto ref = StreamingCausalChecker::check(h, no_gc);
  EXPECT_EQ(ref.causal, res.causal);
  EXPECT_EQ(ref.cc, res.cc);
}

TEST(StreamingChecker, ReadOfTombstonedWriteIsStale) {
  // Build a chain where w(x,1) is overwritten and fully dominated, then a
  // late read returns it: the tombstone path must classify it as stale.
  HistoryBuilder b(2);
  b.write(0, 0, 1).write(0, 0, 2);
  // Gossip rounds so every process's clock dominates both writes.
  b.read(1, 0, 2).write(1, 1, 10).read(0, 1, 10);
  // Churn to trigger GC sweeps.
  for (int i = 0; i < 200; ++i) {
    b.write(0, 2, 100 + i).read(1, 2, 100 + i);
  }
  b.read(1, 0, 1);  // stale: w(x,1) long tombstoned
  const History h = b.build();
  StreamingOptions opts;
  opts.gc_interval = 8;
  const auto res = StreamingCausalChecker::check(h, opts);
  EXPECT_FALSE(res.causal);
  ASSERT_TRUE(res.first.has_value());
  EXPECT_EQ(res.first->pattern, BadPattern::kWriteCORead);
  EXPECT_EQ(violation_class_of(res.first->pattern), ViolationClass::kStale);
  EXPECT_TRUE(CausalChecker(h).check().has_value());
}

TEST(StreamingChecker, SyntheticGeneratorIsCausallyConsistent) {
  // The generator's contract (synthetic.hpp): gated broadcast is causal.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticWorkload w;
    w.procs = 4;
    w.addrs = 8;
    w.ops = 300;
    const History h = make_synthetic_causal_history(w, seed);
    EXPECT_FALSE(CausalChecker(h).check().has_value()) << "seed " << seed;
    const auto res = StreamingCausalChecker::check(h);
    EXPECT_TRUE(res.causal) << "seed " << seed;
  }
}

TEST(StreamingChecker, OpenProcessSetNeverCollectsAndStaysSound) {
  // Regression: GC's "dominated by / overwritten in every process's past"
  // judgments are unsound while the process set is still open. With the
  // default nprocs_hint=0, a process-major feed of >gc_interval p0 ops used
  // to tombstone w(x,1) against procs={p0} alone; p1 — admitted later with
  // an empty causal past — then legally read it and was reported stale.
  HistoryBuilder b(2);
  b.write(0, 0, 1).write(0, 0, 2);
  for (int i = 0; i < 130; ++i) b.write(0, 1, 100 + i);
  b.read(1, 0, 1);  // legal: p1 never observed w(x,2)
  const History h = b.build();
  ASSERT_FALSE(CausalChecker(h).check().has_value());

  StreamingCausalChecker c;  // open process set, default GC interval
  for (NodeId p = 0; p < h.process_count(); ++p) {
    for (const Operation& o : h.per_process[p]) c.on_op(o);
  }
  c.finish();
  EXPECT_TRUE(c.causal_ok()) << c.first_violation()->detail;
  EXPECT_EQ(c.stats().gc_clock_drops, 0u);
  EXPECT_EQ(c.stats().gc_tombstoned, 0u);
}

TEST(StreamingChecker, LateAdmissionBeforeAnyDropDisablesGc) {
  // A process beyond the declared set, admitted before GC dropped anything,
  // demotes the checker to the open-set regime: later sweeps collect
  // nothing, and the late process's stale-looking-but-legal read stays
  // clean despite many crossed GC intervals.
  StreamingOptions opts;
  opts.gc_interval = 4;
  StreamingCausalChecker c(1, opts);
  c.on_write(0, 0, 1, WriteTag{0, 1});
  c.on_write(0, 0, 2, WriteTag{0, 2});
  c.on_read(1, 0, 1, WriteTag{0, 1});  // late admission; legal read of w1
  for (std::uint64_t i = 0; i < 40; ++i) {
    c.on_write(0, 1, static_cast<Value>(100 + i), WriteTag{0, 3 + i});
  }
  c.finish();
  EXPECT_TRUE(c.causal_ok());
  EXPECT_EQ(c.stats().gc_clock_drops, 0u);
  EXPECT_EQ(c.stats().gc_tombstoned, 0u);
}

TEST(StreamingChecker, DeclaredProcessSetStillCollects) {
  // The same shape with the process count declared up front: GC fires, and
  // the verdict is unchanged (w(x,1) cannot be tombstoned because p1's
  // clock never dominates w(x,2)).
  HistoryBuilder b(2);
  b.write(0, 0, 1).write(0, 0, 2);
  for (int i = 0; i < 130; ++i) b.write(0, 1, 100 + i);
  b.read(1, 0, 1);
  const History h = b.build();
  const auto res = StreamingCausalChecker::check(h);
  EXPECT_TRUE(res.causal);
}

TEST(StreamingChecker, ReadBehindThinAirChainIsNotCyclic) {
  // Regression: p1 parks on a thin-air read with a valid write queued
  // behind it; p2's read of that write is collateral of the thin air, not a
  // causal cycle. finish() used to diagnose it as CyclicCO ("read from the
  // causal future") even though the read's write exists and the read is
  // valid.
  StreamingCausalChecker c(3);
  c.on_read(1, 0, 42, WriteTag{9, 9});  // no such write anywhere
  c.on_write(1, 1, 5, WriteTag{1, 1});  // valid, but queued behind it
  c.on_read(2, 1, 5, WriteTag{1, 1});   // waits on the queued write
  c.finish();
  EXPECT_FALSE(c.cc_ok());
  EXPECT_EQ(c.violation_count(BadPattern::kThinAirRead), 1u);
  EXPECT_EQ(c.violation_count(BadPattern::kCyclicCO), 0u);
  ASSERT_TRUE(c.first_violation().has_value());
  EXPECT_EQ(c.first_violation()->pattern, BadPattern::kThinAirRead);
  EXPECT_EQ(c.first_violation()->op, (OpRef{1, 0}));
}

TEST(StreamingChecker, ReadBehindGenuineCycleIsDiagnosed) {
  // p0 and p1 form the 2-process po ∪ rf cycle; p2 reads p0's parked write.
  // The direct merge into a genuine cycle IS diagnosed (the write it reads
  // is stuck behind the cycle), unlike the thin-air collateral above.
  StreamingCausalChecker c(3);
  c.on_read(0, 1, 2, WriteTag{1, 1});
  c.on_write(0, 0, 1, WriteTag{0, 1});
  c.on_read(1, 0, 1, WriteTag{0, 1});
  c.on_write(1, 1, 2, WriteTag{1, 1});
  c.on_read(2, 0, 1, WriteTag{0, 1});
  c.finish();
  EXPECT_FALSE(c.cc_ok());
  EXPECT_EQ(c.violation_count(BadPattern::kCyclicCO), 2u);
  EXPECT_EQ(c.violation_count(BadPattern::kThinAirRead), 0u);
}

TEST(StreamingChecker, ClassifierMapsBruteReasons) {
  EXPECT_EQ(classify_causal_reason(
                "read returned a value no write in the execution produced"),
            ViolationClass::kThinAir);
  EXPECT_EQ(classify_causal_reason("read from the causal future: r0(x0)1 "
                                   "causally precedes the write it read from"),
            ViolationClass::kFuture);
  EXPECT_EQ(classify_causal_reason(
                "stale read r1(x0)1: its write was overwritten"),
            ViolationClass::kStale);
}

TEST(StreamingChecker, StatsTrackMemoryAndCounts) {
  const History h = HistoryBuilder(2)
                        .write(0, 0, 1)
                        .read(1, 0, 1)
                        .build();
  StreamingCausalChecker c(2);
  c.feed(h);
  c.finish();
  EXPECT_EQ(c.stats().ops_seen, 2u);
  EXPECT_EQ(c.stats().ops_processed, 2u);
  EXPECT_EQ(c.stats().pending_ops, 0u);
  EXPECT_GT(c.stats().approx_bytes, 0u);
}

}  // namespace
}  // namespace causalmem

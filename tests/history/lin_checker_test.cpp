// Tests for the linearizability checker: hand-timed litmus histories plus
// certification of the atomic DSM baseline (and the causal DSM's genuine
// non-linearizability).
#include "causalmem/history/lin_checker.hpp"

#include <gtest/gtest.h>

#include <barrier>
#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/recorder.hpp"

namespace causalmem {
namespace {

constexpr Addr kX = 0;

Operation timed_op(OpKind kind, NodeId p, Addr a, Value v, WriteTag tag,
                   std::uint64_t start, std::uint64_t end) {
  return Operation{kind, p, a, v, tag, true, start, end};
}

TEST(LinChecker, UntimedHistoryDegeneratesToSc) {
  const History sc = HistoryBuilder(2)
                         .write(0, kX, 1)
                         .read(1, kX, 0)
                         .read(1, kX, 1)
                         .build();
  EXPECT_TRUE(is_linearizable(sc));

  const History not_sc = HistoryBuilder(2)
                             .write(0, kX, 1)
                             .read(1, kX, 1)
                             .read(1, kX, 0)
                             .build();
  EXPECT_EQ(check_linearizability(not_sc), ScResult::kInconsistent);
}

TEST(LinChecker, RealTimeOrderForcesFreshRead) {
  // w(x)1 completes at t=10; a read spanning [20, 30] must not return 0 —
  // sequentially fine, linearizably not.
  History h;
  h.per_process.resize(2);
  h.per_process[0].push_back(
      timed_op(OpKind::kWrite, 0, kX, 1, WriteTag{0, 1}, 1, 10));
  h.per_process[1].push_back(
      timed_op(OpKind::kRead, 1, kX, 0, WriteTag{}, 20, 30));
  EXPECT_EQ(check_linearizability(h), ScResult::kInconsistent);
  // The same history untimed is fine (the read can serialize first).
  for (auto& seq : h.per_process) {
    for (auto& op : seq) op.start_ns = op.end_ns = 0;
  }
  EXPECT_TRUE(is_linearizable(h));
}

TEST(LinChecker, OverlappingOpsMaySerializeEitherWay) {
  // Write [10, 30] overlaps read [20, 40]: the read may return old or new.
  for (const Value read_value : {0, 1}) {
    History h;
    h.per_process.resize(2);
    h.per_process[0].push_back(
        timed_op(OpKind::kWrite, 0, kX, 1, WriteTag{0, 1}, 10, 30));
    h.per_process[1].push_back(timed_op(
        OpKind::kRead, 1, kX, read_value,
        read_value == 0 ? WriteTag{} : WriteTag{0, 1}, 20, 40));
    EXPECT_TRUE(is_linearizable(h)) << "read_value=" << read_value;
  }
}

TEST(LinChecker, NewOldInversionRejected) {
  // Reader A sees the new value and completes before reader B starts, yet B
  // sees the old value: the classic new/old inversion linearizability
  // forbids (but sequential consistency allows).
  History h;
  h.per_process.resize(3);
  h.per_process[0].push_back(
      timed_op(OpKind::kWrite, 0, kX, 1, WriteTag{0, 1}, 10, 50));
  h.per_process[1].push_back(
      timed_op(OpKind::kRead, 1, kX, 1, WriteTag{0, 1}, 15, 20));
  h.per_process[2].push_back(
      timed_op(OpKind::kRead, 2, kX, 0, WriteTag{}, 30, 40));
  EXPECT_EQ(check_linearizability(h), ScResult::kInconsistent);
  // Untimed, some interleaving explains it.
  for (auto& seq : h.per_process) {
    for (auto& op : seq) op.start_ns = op.end_ns = 0;
  }
  EXPECT_TRUE(is_linearizable(h));
}

TEST(LinChecker, AtomicDsmExecutionsAreLinearizable) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Recorder recorder(3);
    {
      DsmSystem<AtomicNode> sys(3, {}, {}, nullptr, &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 53 + p);
          for (int i = 0; i < 10; ++i) {
            const Addr a = rng.next_below(2);
            if (rng.chance(0.5)) {
              sys.memory(p).write(
                  a, static_cast<Value>(seed * 10000 + p * 100 + i + 1));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
        });
      }
    }
    const History h = recorder.history();
    EXPECT_EQ(check_linearizability(h), ScResult::kConsistent)
        << "seed " << seed << "\n" << h.to_string();
  }
}

TEST(LinChecker, ReadThroughCausalModeIsLinearizable) {
  // The Section 3.2 claim, fully: forcing every read to the owner gives
  // atomic correctness.
  CausalConfig cfg;
  cfg.read_through = true;
  Recorder recorder(3);
  {
    DsmSystem<CausalNode> sys(3, cfg, {}, nullptr, &recorder);
    std::vector<std::jthread> threads;
    for (NodeId p = 0; p < 3; ++p) {
      threads.emplace_back([&sys, p] {
        Rng rng(1234 + p);
        for (int i = 0; i < 10; ++i) {
          const Addr a = rng.next_below(2);
          if (rng.chance(0.5)) {
            sys.memory(p).write(a, static_cast<Value>(p * 100 + i + 1));
          } else {
            (void)sys.memory(p).read(a);
          }
        }
      });
    }
  }
  EXPECT_EQ(check_linearizability(recorder.history()), ScResult::kConsistent);
}

TEST(LinChecker, CausalWeakExecutionIsNotLinearizable) {
  // Drive the Figure 5 pattern on the causal DSM and certify with real
  // timestamps that no linearization exists.
  Recorder recorder(2);
  {
    DsmSystem<CausalNode> sys(2, {}, {}, nullptr, &recorder);
    std::barrier sync(2);
    auto run = [&](NodeId me, Addr mine, Addr other) {
      SharedMemory& mem = sys.memory(me);
      (void)mem.read(other);
      sync.arrive_and_wait();
      mem.write(mine, 1);
      (void)mem.read(other);  // stale cached 0
      sync.arrive_and_wait();
    };
    std::jthread t1(run, NodeId{0}, Addr{0}, Addr{1});
    std::jthread t2(run, NodeId{1}, Addr{1}, Addr{0});
  }
  const History h = recorder.history();
  EXPECT_EQ(check_linearizability(h), ScResult::kInconsistent)
      << h.to_string();
}

}  // namespace
}  // namespace causalmem

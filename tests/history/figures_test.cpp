// E2/E3/E4/E5: the paper's worked examples, checked verbatim.
#include <gtest/gtest.h>

#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {
namespace {

constexpr Addr kX = 0;
constexpr Addr kY = 1;
constexpr Addr kZ = 2;

// Figure 1:
//   P1: w(x)1 w(y)2 r(y)2 r(x)1
//   P2: w(z)1 r(y)2 r(x)1
History figure1() {
  return HistoryBuilder(2)
      .write(0, kX, 1)
      .write(0, kY, 2)
      .read(0, kY, 2)
      .read(0, kX, 1)
      .write(1, kZ, 1)
      .read(1, kY, 2)
      .read(1, kX, 1)
      .build();
}

TEST(Figure1, IsACorrectCausalExecution) {
  EXPECT_TRUE(is_causally_consistent(figure1()));
}

TEST(Figure1, WritesOfXAndZAreConcurrent) {
  const History h = figure1();
  const CausalChecker chk(h);
  const OpRef wx{0, 0};  // w(x)1
  const OpRef wz{1, 0};  // w(z)1
  EXPECT_TRUE(chk.concurrent(wx, wz));
  EXPECT_FALSE(chk.precedes(wx, wz));
  EXPECT_FALSE(chk.precedes(wz, wx));
}

TEST(Figure1, TransitivePrecedenceThroughReads) {
  // The paper: w(x)1 *-> r1(y)2 — and, via P2's read of y, w(y)2 *-> r2(x)1.
  const CausalChecker chk(figure1());
  EXPECT_TRUE(chk.precedes(OpRef{0, 0}, OpRef{0, 2}));  // w(x)1 *-> r1(y)2
  EXPECT_TRUE(chk.precedes(OpRef{0, 1}, OpRef{1, 1}));  // w(y)2 *-> r2(y)2
  EXPECT_TRUE(chk.precedes(OpRef{0, 0}, OpRef{1, 2}));  // w(x)1 *-> r2(x)1
}

TEST(Figure1, EstablishVersusConfirm) {
  // r2(y)2 *establishes* causality between otherwise-concurrent ops;
  // r1(x)1 merely *confirms* program order.
  const CausalChecker chk(figure1());
  // Before P2's read, w(y)2 and w(z)1 are concurrent.
  EXPECT_TRUE(chk.concurrent(OpRef{0, 1}, OpRef{1, 0}));
  // After it, w(y)2 precedes P2's subsequent operations.
  EXPECT_TRUE(chk.precedes(OpRef{0, 1}, OpRef{1, 2}));
}

// Figure 2:
//   P1: w(x)2 w(y)2 w(y)3 r(z)5 w(x)4
//   P2: w(x)1 r(y)3 w(x)7 w(z)5 r(x)4 r(x)9
//   P3: r(z)5 w(x)9
History figure2() {
  HistoryBuilder hb(3);
  hb.write(0, kX, 2).write(0, kY, 2).write(0, kY, 3);
  hb.write(1, kX, 1).read(1, kY, 3).write(1, kX, 7).write(1, kZ, 5);
  hb.read(0, kZ, 5).write(0, kX, 4);
  hb.read(2, kZ, 5).write(2, kX, 9);
  hb.read(1, kX, 4).read(1, kX, 9);
  return hb.build();
}

TEST(Figure2, IsACorrectCausalExecution) {
  const History h = figure2();
  const auto violation = CausalChecker(h).check();
  EXPECT_FALSE(violation.has_value())
      << violation->reason << "\n" << h.to_string();
}

TEST(Figure2, LiveSetOfR1Z5MatchesPaper) {
  // alpha(r1(z)5) = {0, 5}
  const CausalChecker chk(figure2());
  EXPECT_EQ(chk.live_set(OpRef{0, 3}), (std::set<Value>{0, 5}));
}

TEST(Figure2, LiveSetOfR3Z5MatchesPaper) {
  // r3(z)5 is correct by the same argument: alpha = {0, 5}
  const CausalChecker chk(figure2());
  EXPECT_EQ(chk.live_set(OpRef{2, 0}), (std::set<Value>{0, 5}));
}

TEST(Figure2, LiveSetOfR2Y3MatchesPaper) {
  // alpha(r2(y)3) = {0, 2, 3}
  const CausalChecker chk(figure2());
  EXPECT_EQ(chk.live_set(OpRef{1, 1}), (std::set<Value>{0, 2, 3}));
}

TEST(Figure2, LiveSetOfR2X4MatchesPaper) {
  // alpha(r2(x)4) = {4, 7, 9}: 1, 2 and the initial 0 are overwritten by
  // P2's write of 7; 4 and 9 remain concurrent.
  const CausalChecker chk(figure2());
  EXPECT_EQ(chk.live_set(OpRef{1, 4}), (std::set<Value>{4, 7, 9}));
}

TEST(Figure2, SecondReadOfXMayOnlyReturn4Or9) {
  // "P2's second read of x may correctly return only 4 or 9."
  const CausalChecker chk(figure2());
  EXPECT_EQ(chk.live_set(OpRef{1, 5}), (std::set<Value>{4, 9}));
}

// Figure 3 (not causal memory):
//   P1: w(x)5 w(y)3
//   P2: w(x)2 r(y)3 r(x)5 w(z)4
//   P3: r(z)4 r(x)2
TEST(Figure3, IsRejectedByTheCausalChecker) {
  const History h = HistoryBuilder(3)
                        .write(0, kX, 5)
                        .write(0, kY, 3)
                        .write(1, kX, 2)
                        .read(1, kY, 3)
                        .read(1, kX, 5)
                        .write(1, kZ, 4)
                        .read(2, kZ, 4)
                        .read(2, kX, 2)
                        .build();
  const auto violation = CausalChecker(h).check();
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->read, (OpRef{2, 1}));  // r3(x)2
}

TEST(Figure3, TwoIsNotInAlphaOfTheFinalRead) {
  const History h = HistoryBuilder(3)
                        .write(0, kX, 5)
                        .write(0, kY, 3)
                        .write(1, kX, 2)
                        .read(1, kY, 3)
                        .read(1, kX, 5)
                        .write(1, kZ, 4)
                        .read(2, kZ, 4)
                        .read(2, kX, 2)
                        .build();
  const CausalChecker chk(h);
  const std::set<Value> alpha = chk.live_set(OpRef{2, 1});
  EXPECT_FALSE(alpha.contains(2)) << "the paper: 2 is not in alpha(r(x)2)";
  EXPECT_TRUE(alpha.contains(5));
}

// Figure 5 is covered end-to-end in tests/dsm/weak_execution_test.cpp; here
// we pin just the checker verdicts.
TEST(Figure5, CausalYesSequentialNo) {
  const History h = HistoryBuilder(2)
                        .read(0, kY, 0)
                        .write(0, kX, 1)
                        .read(0, kY, 0)
                        .read(1, kX, 0)
                        .write(1, kY, 1)
                        .read(1, kX, 0)
                        .build();
  EXPECT_TRUE(is_causally_consistent(h));
  EXPECT_EQ(check_sequential_consistency(h), ScResult::kInconsistent);
}

}  // namespace
}  // namespace causalmem

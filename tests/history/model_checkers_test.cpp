// Tests for the PRAM and slow-memory checkers and the consistency hierarchy
//   sequential => causal => PRAM => slow
// on both hand-written litmus histories and real DSM executions.
#include "causalmem/history/model_checkers.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "causalmem/common/rng.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {
namespace {

constexpr Addr kX = 0;
constexpr Addr kY = 1;

TEST(PramChecker, SequentialHistoryIsPram) {
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .write(1, kX, 2)
                        .read(0, kX, 2)
                        .build();
  EXPECT_TRUE(is_pram_consistent(h));
}

TEST(PramChecker, PerWriterOrderViolationDetected) {
  // P0 writes x=1 then x=2; P1 sees 2 then 1 — not PRAM.
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .write(0, kX, 2)
                        .read(1, kX, 2)
                        .read(1, kX, 1)
                        .build();
  EXPECT_EQ(check_pram_consistency(h), ScResult::kInconsistent);
}

TEST(PramChecker, PipelinedCrossLocationOrderEnforced) {
  // P0: w(x)1 w(y)1; P1: r(y)1 r(x)0 — sees y=1 but misses the earlier
  // x=1 from the same writer: not PRAM (but slow, below).
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .write(0, kY, 1)
                        .read(1, kY, 1)
                        .read(1, kX, 0)
                        .build();
  EXPECT_EQ(check_pram_consistency(h), ScResult::kInconsistent);
  EXPECT_TRUE(is_slow_consistent(h));
  EXPECT_FALSE(is_causally_consistent(h));
}

TEST(PramChecker, Figure3IsPramButNotCausal) {
  // The broadcast counterexample: per-sender delivery order holds, so PRAM
  // accepts what causal memory rejects.
  const History h = HistoryBuilder(3)
                        .write(0, kX, 5)
                        .write(0, kY, 3)
                        .write(1, kX, 2)
                        .read(1, kY, 3)
                        .read(1, kX, 5)
                        .write(1, kX /*z*/ + 2, 4)
                        .read(2, kX + 2, 4)
                        .read(2, kX, 2)
                        .build();
  EXPECT_TRUE(is_pram_consistent(h)) << h.to_string();
  EXPECT_FALSE(is_causally_consistent(h));
}

TEST(PramChecker, Figure5IsPram) {
  const History h = HistoryBuilder(2)
                        .read(0, kY, 0)
                        .write(0, kX, 1)
                        .read(0, kY, 0)
                        .read(1, kX, 0)
                        .write(1, kY, 1)
                        .read(1, kX, 0)
                        .build();
  EXPECT_TRUE(is_pram_consistent(h));
  EXPECT_TRUE(is_causally_consistent(h));
  EXPECT_FALSE(is_sequentially_consistent(h));
}

TEST(SlowChecker, PerWriterPerLocationRegressionDetected) {
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .write(0, kX, 2)
                        .read(1, kX, 2)
                        .read(1, kX, 1)
                        .build();
  const auto v = check_slow_consistency(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->read, (OpRef{1, 1}));
}

TEST(SlowChecker, RegressionToInitialDetected) {
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .read(1, kX, 1)
                        .read(1, kX, 0)
                        .build();
  const auto v = check_slow_consistency(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->reason.find("initial"), std::string::npos);
}

TEST(SlowChecker, DifferentWritersMayInterleaveFreely) {
  // Concurrent writers: a reader may flip between their values at will.
  const History h = HistoryBuilder(3)
                        .write(0, kX, 1)
                        .write(1, kX, 2)
                        .read(2, kX, 1)
                        .read(2, kX, 2)
                        .read(2, kX, 1)
                        .read(2, kX, 2)
                        .build();
  EXPECT_TRUE(is_slow_consistent(h));
  // ...which causal memory does NOT allow (the read of 2 intervenes).
  EXPECT_FALSE(is_causally_consistent(h));
}

TEST(SlowChecker, OwnWritesAreImmediatelyVisible) {
  const History h = HistoryBuilder(1)
                        .write(0, kX, 1)
                        .write(0, kX, 2)
                        .read(0, kX, 1)  // own regression
                        .build();
  EXPECT_FALSE(is_slow_consistent(h));
}

TEST(SlowChecker, CrossLocationReorderingAllowed) {
  const History h = HistoryBuilder(2)
                        .write(0, kX, 1)
                        .write(0, kY, 2)
                        .read(1, kY, 2)
                        .read(1, kX, 0)
                        .build();
  EXPECT_TRUE(is_slow_consistent(h));
}

// --- hierarchy on real executions --------------------------------------

TEST(Hierarchy, CausalDsmExecutionsSatisfyPramAndSlow) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Recorder recorder(3);
    {
      DsmSystem<CausalNode> sys(3, {}, {}, nullptr, &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 31 + p);
          for (int i = 0; i < 10; ++i) {  // small: PRAM search is exponential
            const Addr a = rng.next_below(2);
            if (rng.chance(0.5)) {
              sys.memory(p).write(a, static_cast<Value>(p * 1000 + i + 1));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
        });
      }
    }
    const History h = recorder.history();
    EXPECT_FALSE(CausalChecker(h).check().has_value()) << h.to_string();
    EXPECT_TRUE(is_pram_consistent(h)) << h.to_string();
    EXPECT_TRUE(is_slow_consistent(h)) << h.to_string();
  }
}

TEST(Hierarchy, BroadcastMemoryExecutionsArePramAndSlow) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Recorder recorder(3);
    {
      DsmSystem<BroadcastNode> sys(3, {}, {}, nullptr, &recorder);
      std::vector<std::jthread> threads;
      for (NodeId p = 0; p < 3; ++p) {
        threads.emplace_back([&sys, p, seed] {
          Rng rng(seed * 77 + p);
          for (int i = 0; i < 10; ++i) {
            const Addr a = rng.next_below(2);
            if (rng.chance(0.5)) {
              sys.memory(p).write(a, static_cast<Value>(p * 1000 + i + 1));
            } else {
              (void)sys.memory(p).read(a);
            }
          }
        });
      }
      wait_broadcast_quiescent(sys);
    }
    const History h = recorder.history();
    EXPECT_TRUE(is_pram_consistent(h)) << h.to_string();
    EXPECT_TRUE(is_slow_consistent(h)) << h.to_string();
  }
}

}  // namespace
}  // namespace causalmem

// Reproduces the paper's Figure 3 discussion: causal *broadcasting* is not
// causal *memory*. Two concurrent writes to x commit in different orders at
// different replicas of a causal-broadcast memory, producing an execution
// the causal memory checker rejects; the owner-protocol causal DSM running
// the same program always passes the checker.
//
//   $ ./causal_vs_broadcast
#include <chrono>
#include <cstdio>
#include <thread>

#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/recorder.hpp"

using namespace causalmem;

namespace {

constexpr Addr kX = 0, kY = 1, kZ = 2;

template <typename SystemT>
void run_program(SystemT& sys) {
  std::jthread p1([&] {
    sys.memory(0).write(kX, 5);
    sys.memory(0).write(kY, 3);
  });
  std::jthread p2([&] {
    sys.memory(1).write(kX, 2);
    (void)spin_until_equals(sys.memory(1), kY, 3);
    (void)sys.memory(1).read(kX);
    sys.memory(1).write(kZ, 4);
  });
  std::jthread p3([&] {
    (void)spin_until_equals(sys.memory(2), kZ, 4);
    (void)sys.memory(2).read(kX);
  });
}

/// Drops the busy-wait noise (repeated reads of the same stale value) so the
/// printed history looks like the paper's figure.
History condensed(const History& h) {
  History out;
  out.per_process.resize(h.per_process.size());
  for (std::size_t p = 0; p < h.per_process.size(); ++p) {
    const Operation* prev = nullptr;
    for (const Operation& op : h.per_process[p]) {
      const bool duplicate_poll = prev != nullptr &&
                                  op.kind == OpKind::kRead &&
                                  prev->kind == OpKind::kRead &&
                                  prev->addr == op.addr && prev->tag == op.tag;
      if (!duplicate_poll) out.per_process[p].push_back(op);
      prev = &op;
    }
  }
  return out;
}

void report(const char* label, const History& h) {
  const auto violation = CausalChecker(h).check();
  std::printf("%s\n%s", label, condensed(h).to_string().c_str());
  if (violation) {
    std::printf("=> VIOLATES causal memory: %s\n\n", violation->reason.c_str());
  } else {
    std::printf("=> correct on causal memory\n\n");
  }
}

}  // namespace

int main() {
  {
    Recorder rec(3);
    // Shape delivery so the concurrent x-writes commit 2-then-5 at P2 but
    // 5-then-2 at P3 (both orders are legal causal broadcast deliveries).
    LatencyModel to_p2, to_p3;
    to_p2.base = std::chrono::milliseconds(40);
    to_p3.base = std::chrono::milliseconds(120);
    SystemOptions options;
    options.channel_latencies = {{0, 1, to_p2}, {1, 2, to_p3}};
    DsmSystem<BroadcastNode> sys(3, {}, options, nullptr, &rec);
    run_program(sys);
    wait_broadcast_quiescent(sys);
    report("== Figure 3 program on causal-broadcast memory ==", rec.history());
  }
  {
    Recorder rec(3);
    DsmSystem<CausalNode> sys(3, {}, {}, nullptr, &rec);
    run_program(sys);
    report("== same program on the owner-protocol causal DSM ==",
           rec.history());
  }
  return 0;
}

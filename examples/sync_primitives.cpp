// Synchronization variables on causal memory (Section 4.1 mentions "special
// synchronization variables such as semaphores or event counts"): flags,
// event counts with causality transfer, and a coordinator-free barrier.
//
//   $ ./sync_primitives
#include <cstdio>
#include <thread>

#include "causalmem/apps/sync/sync.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

using namespace causalmem;

int main() {
  constexpr std::size_t kNodes = 3;
  DsmSystem<CausalNode> sys(kNodes);

  std::printf("-- event count: causality transfer --\n");
  {
    constexpr Addr kData = 4;  // owned by node 1 (striped: 4 %% 3 == 1)
    constexpr Addr kEc = 1;    // owned by node 1
    (void)sys.memory(0).read(kData);  // node 0 caches the stale 0
    EventCount producer(sys.memory(1), kEc);
    EventCount consumer(sys.memory(0), kEc);
    std::jthread t([&] {
      sys.memory(1).write(kData, 42);  // ...then publish
      (void)producer.advance();
    });
    consumer.await(1);
    std::printf("consumer awaited the event count; data = %lld "
                "(the producer's write is causally ordered before us)\n",
                static_cast<long long>(sys.memory(0).read(kData)));
  }

  std::printf("\n-- coordinator-free barrier over 3 nodes --\n");
  {
    constexpr Addr kBase = 6;  // counters 6,7,8 owned by nodes 0,1,2
    std::jthread a([&] {
      CausalBarrier b(sys.memory(0), kBase, kNodes, 0);
      for (int k = 0; k < 3; ++k) {
        std::printf("node 0 entering phase %d\n", k + 1);
        b.arrive_and_wait();
      }
    });
    std::jthread bthread([&] {
      CausalBarrier b(sys.memory(1), kBase, kNodes, 1);
      for (int k = 0; k < 3; ++k) b.arrive_and_wait();
    });
    std::jthread c([&] {
      CausalBarrier b(sys.memory(2), kBase, kNodes, 2);
      for (int k = 0; k < 3; ++k) {
        const auto phase = b.arrive_and_wait();
        std::printf("node 2 passed barrier phase %llu\n",
                    static_cast<unsigned long long>(phase));
      }
    });
  }

  std::printf("\n-- flag handoff --\n");
  {
    constexpr Addr kFlag = 2;  // owned by node 2
    Flag setter(sys.memory(2), kFlag);
    Flag waiter(sys.memory(0), kFlag);
    std::jthread t([&] { setter.set(); });
    waiter.wait_set();
    std::printf("flag observed set by node 0\n");
  }

  const auto total = sys.stats().total();
  std::printf("\ntotal protocol messages: %llu (spin refetches: %llu)\n",
              static_cast<unsigned long long>(total.messages_sent()),
              static_cast<unsigned long long>(total[Counter::kSpinRefetch]));
  return 0;
}

// The paper's Section 4.1 workload: a synchronous iterative linear solver
// (Figure 6) running unchanged on causal, atomic and broadcast DSMs, plus
// the asynchronous (chaotic relaxation) variant on causal memory.
//
//   $ ./linear_solver [n] [iterations]
#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <string>

#include "causalmem/apps/solver/solver.hpp"
#include "causalmem/dsm/atomic/node.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

using namespace causalmem;

namespace {

template <typename NodeT>
void run_one(const char* label, const SolverProblem& p, std::size_t iters,
             bool async) {
  const SolverLayout layout(p.n);
  DsmSystem<NodeT> sys(layout.node_count(), {}, {}, layout.make_ownership());
  std::vector<SharedMemory*> mems;
  for (NodeId i = 0; i < layout.node_count(); ++i) {
    mems.push_back(&sys.memory(i));
  }
  SolverOptions opts;
  if (async) {
    opts.iterations = 200000;  // sweep budget; convergence stops the run
    opts.tolerance = 1e-8;
  } else {
    opts.iterations = iters;
  }
  const SolverRun run = async ? run_async_solver(p, layout, mems, opts)
                              : run_sync_solver(p, layout, mems, opts);
  const StatsSnapshot s = sys.stats().total();
  const double per_worker_iter =
      static_cast<double>(s.messages_sent() - 2 * s[Counter::kSpinRefetch]) /
      static_cast<double>(p.n * std::max<std::size_t>(run.iterations, 1));
  std::printf(
      "%-22s residual=%.3e  messages=%8llu  effective msgs/worker/iter=%.1f\n",
      label, p.residual(run.x),
      static_cast<unsigned long long>(s.messages_sent()), per_worker_iter);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t iters = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30;

  const SolverProblem p = SolverProblem::random(n, 2026);
  std::printf("solving a %zux%zu diagonally dominant system, %zu iterations\n"
              "(paper Section 4.1: causal needs ~2n+6=%zu msgs/worker/iter, "
              "atomic >= 3n+5=%zu)\n\n",
              n, n, iters, 2 * n + 6, 3 * n + 5);

  run_one<CausalNode>("causal (Fig. 6)", p, iters, /*async=*/false);
  run_one<AtomicNode>("atomic baseline", p, iters, /*async=*/false);
  run_one<BroadcastNode>("causal broadcast", p, iters, /*async=*/false);
  run_one<CausalNode>("causal async", p, iters, /*async=*/true);

  const auto ref = p.jacobi_reference(iters);
  std::printf("\nsequential Jacobi reference residual: %.3e\n",
              p.residual(ref));
  return 0;
}

// The paper's Section 4.2 workload: the distributed dictionary with
// owner-wins conflict resolution, including the concurrent delete/insert
// race the paper analyses.
//
//   $ ./dictionary
#include <cstdio>

#include "causalmem/apps/dict/dictionary.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

using namespace causalmem;

int main() {
  constexpr std::size_t kProcs = 3;
  constexpr std::size_t kSlots = 8;

  CausalConfig cfg;
  cfg.conflict = ConflictPolicy::kOwnerWins;  // Section 4.2's policy
  DsmSystem<CausalNode> sys(kProcs, cfg, {},
                            Dictionary::make_ownership(kProcs, kSlots));

  Dictionary d0(sys.memory(0), kProcs, kSlots);
  Dictionary d1(sys.memory(1), kProcs, kSlots);
  Dictionary d2(sys.memory(2), kProcs, kSlots);

  std::printf("-- basic insert / lookup / delete --\n");
  d0.insert(101);
  d1.insert(202);
  std::printf("P2 lookup(101)=%d lookup(202)=%d lookup(303)=%d\n",
              d2.lookup(101), d2.lookup(202), d2.lookup(303));
  d2.remove(101);  // deletes from P0's row, remotely
  d0.refresh();
  std::printf("after P2 deletes 101: P0 lookup(101)=%d\n", d0.lookup(101));

  std::printf("\n-- the paper's concurrent delete vs. owner insert race --\n");
  d0.insert(500);
  (void)d1.lookup(500);  // P1 caches row 0 with 500 in it
  d0.remove(500);        // P0 deletes...
  d0.insert(600);        // ...and reuses the slot for a new item
  const bool issued = d1.remove(500);  // concurrent delete from stale view
  std::printf("P1 issued a stale delete of 500: %s\n", issued ? "yes" : "no");
  d1.refresh();
  std::printf("owner-wins kept the newer item: P0 lookup(600)=%d, "
              "P1 lookup(600)=%d, P1 lookup(500)=%d\n",
              d0.lookup(600), d1.lookup(600), d1.lookup(500));

  std::printf("\n-- converged views --\n");
  d0.refresh();
  d2.refresh();
  for (Dictionary* d : {&d0, &d1, &d2}) {
    const auto snap = d->snapshot();
    std::printf("view: {");
    for (std::size_t i = 0; i < snap.size(); ++i) {
      std::printf("%s%lld", i ? ", " : "", static_cast<long long>(snap[i]));
    }
    std::printf("}\n");
  }
  return 0;
}

// Quickstart: build a 3-processor causal DSM, read and write shared
// locations, watch writestamps and invalidation at work.
//
//   $ ./quickstart
#include <cstdio>

#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"

using namespace causalmem;

int main() {
  // Three processors connected by reliable FIFO channels. Locations are
  // striped: processor i owns addresses a with a % 3 == i.
  DsmSystem<CausalNode> sys(3);

  SharedMemory& p0 = sys.memory(0);
  SharedMemory& p1 = sys.memory(1);
  SharedMemory& p2 = sys.memory(2);

  // Owned writes are purely local.
  p0.write(0, 100);
  std::printf("P0 wrote 100 to location 0 (it owns it: %s)\n",
              p0.owns(0) ? "yes" : "no");

  // A remote read fetches from the owner and caches the copy.
  std::printf("P1 reads location 0 -> %lld (read miss, 2 messages)\n",
              static_cast<long long>(p1.read(0)));
  std::printf("P1 reads location 0 -> %lld (cache hit, 0 messages)\n",
              static_cast<long long>(p1.read(0)));

  // A remote write is certified by the owner.
  p2.write(0, 200);
  std::printf("P2 wrote 200 to location 0 (certified by owner P0)\n");

  // P1 still holds its cached 100 — and that is CORRECT on causal memory:
  // the two values are concurrent from P1's point of view.
  std::printf("P1 reads location 0 -> %lld (stale but live: causal!)\n",
              static_cast<long long>(p1.read(0)));

  // Once P1 reads something causally newer, the stale copy is invalidated.
  p2.write(2, 1);  // written after P2's write of 200: carries that knowledge
  (void)p1.read(2);
  std::printf("P1 reads location 0 -> %lld (invalidated, re-fetched)\n",
              static_cast<long long>(p1.read(0)));

  const StatsSnapshot total = sys.stats().total();
  std::printf("\nprotocol traffic: %llu messages (%s)\n",
              static_cast<unsigned long long>(total.messages_sent()),
              total.to_string().c_str());
  return 0;
}

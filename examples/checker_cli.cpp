// checker_cli — check a hand-written execution against the consistency
// hierarchy (sequential, causal, PRAM, slow memory), and print the causal
// live set (the paper's alpha) for every read.
//
// Modes:
//
//   checker_cli [trace-file]
//       Brute-force hierarchy over a complete trace (stdin when no file).
//       Exact diagnoses and per-read live sets; fine up to ~10^3 ops.
//
//   checker_cli --streaming [--procs N] [trace-file]
//       Incremental mode: each line is fed to the StreamingCausalChecker as
//       it is read, so the verdict engine's state stays bounded (GC'd write
//       table + vector clocks) no matter how long the trace is. Prints the
//       CC / CM / CCv verdicts, the first violation, and the checker's
//       memory statistics. The (addr, value) -> write-tag resolver map is
//       the CLI's own memory floor — the checker underneath stays bounded.
//       The checker's GC is only sound over a COMPLETE process set, so the
//       process count is pre-scanned from a trace file (or declared with
//       --procs for stdin); streaming from stdin without --procs is still
//       exact, but runs with GC disabled.
//
//   checker_cli --schedule <scenario> <schedule-file>
//       Replays a `# causalmem-schedule-v1` artifact (written by
//       sim_explore / failing sim tests) with the online streaming checker
//       riding the run; the post-hoc hierarchy cross-checks it.
//       Scenarios: causal | broadcast | broadcast-ungated.
//
// Trace input: one operation per line (see include/causalmem/history/trace.hpp):
//
//     w <proc> <addr> <value>      a write
//     r <proc> <addr> <value>      a read returning <value>
//     # comment / blank lines ignored
//
// Reads resolve their reads-from write by (addr, value); write values must
// therefore be unique per location (value 0 means the initial value).
//
// Example (the paper's Figure 3):
//     w 0 0 5
//     w 0 1 3
//     w 1 0 2
//     r 1 1 3
//     r 1 0 5
//     w 1 2 4
//     r 2 2 4
//     r 2 0 2
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/history/model_checkers.hpp"
#include "causalmem/history/sc_checker.hpp"
#include "causalmem/history/streaming_checker.hpp"
#include "causalmem/history/trace.hpp"
#include "causalmem/sim/explorer.hpp"
#include "causalmem/sim/scenarios.hpp"

using namespace causalmem;

namespace {

const char* verdict(bool ok) { return ok ? "YES" : "no"; }

const char* verdict(ScResult r) {
  switch (r) {
    case ScResult::kConsistent: return "YES";
    case ScResult::kInconsistent: return "no";
    case ScResult::kUndecided: return "undecided (state budget)";
  }
  return "?";
}

int usage() {
  std::fprintf(stderr,
               "usage: checker_cli [trace-file]\n"
               "       checker_cli --streaming [--procs N] [trace-file]\n"
               "       checker_cli --schedule <scenario> <schedule-file>\n"
               "scenarios: causal | broadcast | broadcast-ungated\n");
  return 2;
}

// --- streaming trace mode --------------------------------------------------

/// Synthesizes write tags on the fly so reads can be fed before their write
/// arrives (the trace format legally forward-references: any interleaving
/// consistent with per-process order is valid, and the checker parks such
/// reads until the write shows up). Because write values are unique per
/// location, (addr, value) IS the write's identity — the tag is assigned on
/// first mention, whether that mention is the write itself or a read of it.
/// Tags use a per-address synthetic writer id with a dense per-address seq,
/// which keeps the checker's tombstone watermarks compact.
class TagResolver {
 public:
  WriteTag resolve(Addr a, Value v) {
    if (v == kInitialValue) return WriteTag{};  // the distinguished initial
    const auto [it, fresh] = tags_.try_emplace(Key{a, v});
    if (fresh) {
      const auto [w, _] = writer_of_.try_emplace(
          a, static_cast<NodeId>(writer_of_.size()));
      it->second = WriteTag{w->second, ++next_seq_[w->second]};
    }
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return tags_.size(); }

 private:
  struct Key {
    Addr addr;
    Value value;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<Addr>{}(k.addr) * 1000003 +
             std::hash<Value>{}(static_cast<std::uint64_t>(k.value));
    }
  };
  std::unordered_map<Key, WriteTag, KeyHash> tags_;
  std::unordered_map<Addr, NodeId> writer_of_;
  std::unordered_map<NodeId, std::uint64_t> next_seq_;
};

void print_violation(const StreamingViolation& v) {
  std::printf("  -> p%u[%zu] %s: %s\n", static_cast<unsigned>(v.op.proc),
              v.op.index, bad_pattern_name(v.pattern), v.detail.c_str());
}

/// Counts the processes a trace mentions, so the streaming checker can be
/// constructed with the complete process set — the declaration its GC needs
/// ("collectable" quantifies over every process, which is unknowable while
/// new processes may still appear).
std::size_t scan_process_count(std::istream& in) {
  std::size_t procs = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    char kind = 0;
    if (!(ls >> kind) || kind == '#') continue;
    unsigned long proc = 0;
    if ((kind == 'w' || kind == 'r') && (ls >> proc)) {
      procs = std::max(procs, static_cast<std::size_t>(proc) + 1);
    }
  }
  return procs;
}

int run_streaming(std::istream& in, std::size_t nprocs) {
  StreamingCausalChecker checker(nprocs);
  TagResolver tags;
  std::uint64_t reads = 0, writes = 0;
  std::size_t lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    char kind = 0;
    if (!(ls >> kind)) continue;  // blank
    if (kind == '#') continue;
    unsigned long proc = 0;
    unsigned long long addr = 0;
    long long value = 0;
    if ((kind != 'w' && kind != 'r') || !(ls >> proc >> addr >> value)) {
      std::fprintf(stderr, "line %zu: cannot parse '%s'\n", lineno,
                   line.c_str());
      return 2;
    }
    if (nprocs > 0 && proc >= nprocs) {
      std::fprintf(stderr,
                   "line %zu: process %lu outside the declared set of %zu "
                   "(--procs too small?)\n",
                   lineno, proc, nprocs);
      return 2;
    }
    const auto p = static_cast<NodeId>(proc);
    const auto a = static_cast<Addr>(addr);
    const auto v = static_cast<Value>(value);
    const WriteTag tag = tags.resolve(a, v);
    if (kind == 'w') {
      if (tag.is_initial()) {
        std::fprintf(stderr, "line %zu: cannot write the initial value 0\n",
                     lineno);
        return 2;
      }
      checker.on_write(p, a, v, tag);
      ++writes;
    } else {
      checker.on_read(p, a, v, tag);
      ++reads;
    }
  }
  checker.finish();

  const StreamingStats& st = checker.stats();
  std::printf("streamed %llu ops (%llu writes, %llu reads, %zu distinct "
              "written values)\n",
              static_cast<unsigned long long>(st.ops_seen),
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(reads), tags.size());
  std::printf("CC  (weak causal consistency): %s\n", verdict(checker.cc_ok()));
  std::printf("CM  (causal memory, Def. 1/2): %s\n",
              verdict(checker.causal_ok()));
  std::printf("CCv (causal convergence):      %s%s\n",
              verdict(checker.ccv_ok()),
              checker.ccv_decided() ? "" : " (undecided: state budget)");
  if (checker.first_violation().has_value()) {
    print_violation(*checker.first_violation());
  }
  if (st.duplicate_tags > 0) {
    std::printf("warning: %llu duplicate write values per location — input "
                "is not differentiated, verdicts cover the first write of "
                "each value only\n",
                static_cast<unsigned long long>(st.duplicate_tags));
  }
  std::printf(
      "checker state: peak %llu pending, peak %llu live writes, "
      "%llu tombstoned, ~%llu bytes peak\n",
      static_cast<unsigned long long>(st.peak_pending),
      static_cast<unsigned long long>(st.peak_live_writes),
      static_cast<unsigned long long>(st.tombstones),
      static_cast<unsigned long long>(st.peak_approx_bytes));
  if (nprocs == 0) {
    std::printf("note: process count undeclared (stdin input): checker GC "
                "was off; pass --procs N to bound live state\n");
  }
  return checker.causal_ok() ? 0 : 1;
}

// --- schedule replay mode --------------------------------------------------

int run_schedule(const std::string& scenario, const char* path) {
  sim::RunFn run;
  if (scenario == "causal") {
    sim::CausalScenarioConfig cfg = sim::small_scope_causal();
    cfg.online_check = true;
    run = sim::make_causal_run(std::move(cfg));
  } else if (scenario == "broadcast" || scenario == "broadcast-ungated") {
    sim::BroadcastScenarioConfig cfg =
        sim::small_scope_broadcast(scenario == "broadcast");
    cfg.online_check = true;
    run = sim::make_broadcast_run(std::move(cfg));
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return usage();
  }

  std::string err;
  const auto sched = sim::Schedule::load(path, &err);
  if (!sched) {
    std::fprintf(stderr, "cannot load schedule: %s\n", err.c_str());
    return 2;
  }
  const sim::ExecutionResult res = sim::replay(run, *sched);
  if (res.failed()) {
    std::printf("schedule violates:\n  %s\n", res.failure().c_str());
    return 1;
  }
  std::printf("schedule is checker-clean (online streaming checker agrees "
              "with the post-hoc hierarchy)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool streaming = false;
  std::size_t procs = 0;
  const char* input = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      if (i + 1 >= argc) return usage();
      procs = std::strtoul(argv[++i], nullptr, 10);
      if (procs == 0) return usage();
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      if (i + 2 >= argc) return usage();
      return run_schedule(argv[i + 1], argv[i + 2]);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (input == nullptr) {
      input = argv[i];
    } else {
      return usage();
    }
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (input != nullptr) {
    file.open(input);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", input);
      return 2;
    }
    in = &file;
  }

  if (streaming) {
    if (procs == 0 && input != nullptr) {
      // A file can be pre-scanned for the complete process set, which keeps
      // the checker's GC active (sound only over a closed set of processes).
      procs = scan_process_count(file);
      file.clear();
      file.seekg(0);
    }
    return run_streaming(*in, procs);
  }

  const auto parsed = parse_trace(*in);
  if (const auto* err = std::get_if<TraceParseError>(&parsed)) {
    std::fprintf(stderr, "line %zu: %s\n", err->line, err->message.c_str());
    return 2;
  }
  const History& h = std::get<History>(parsed);
  std::printf("execution:\n%s\n", h.to_string().c_str());

  const CausalChecker causal(h);
  const auto causal_violation = causal.check();

  std::printf("sequentially consistent: %s\n",
              verdict(check_sequential_consistency(h)));
  std::printf("causally consistent:     %s\n",
              verdict(!causal_violation.has_value()));
  if (causal_violation) {
    std::printf("  -> %s\n", causal_violation->reason.c_str());
  }
  std::printf("PRAM consistent:         %s\n",
              verdict(check_pram_consistency(h)));
  const auto slow_violation = check_slow_consistency(h);
  std::printf("slow-memory consistent:  %s\n",
              verdict(!slow_violation.has_value()));
  if (slow_violation) {
    std::printf("  -> %s\n", slow_violation->reason.c_str());
  }

  std::printf("\nlive sets (the paper's alpha(o)):\n");
  for (NodeId p = 0; p < h.process_count(); ++p) {
    for (std::size_t i = 0; i < h.per_process[p].size(); ++i) {
      const Operation& op = h.op(OpRef{p, i});
      if (op.kind != OpKind::kRead) continue;
      const auto live = causal.live_set(OpRef{p, i});
      std::printf("  %-12s alpha = {", op.to_string().c_str());
      bool first = true;
      for (const Value v : live) {
        std::printf("%s%lld", first ? "" : ", ", static_cast<long long>(v));
        first = false;
      }
      std::printf("}%s\n", live.contains(op.value) ? "" : "   <-- VIOLATION");
    }
  }
  return causal_violation.has_value() ? 1 : 0;
}

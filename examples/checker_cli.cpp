// checker_cli — check a hand-written execution against the consistency
// hierarchy (sequential, causal, PRAM, slow memory), and print the causal
// live set (the paper's alpha) for every read.
//
// Input: one operation per line on stdin (or a file given as argv[1]):
//
//     w <proc> <addr> <value>      a write
//     r <proc> <addr> <value>      a read returning <value>
//     # comment / blank lines ignored
//
// Reads resolve their reads-from write by (addr, value); write values must
// therefore be unique per location (value 0 means the initial value).
//
// Example (the paper's Figure 3):
//     w 0 0 5
//     w 0 1 3
//     w 1 0 2
//     r 1 1 3
//     r 1 0 5
//     w 1 2 4
//     r 2 2 4
//     r 2 0 2
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/history/model_checkers.hpp"
#include "causalmem/history/sc_checker.hpp"
#include "causalmem/history/trace.hpp"

using namespace causalmem;

namespace {

const char* verdict(bool ok) { return ok ? "YES" : "no"; }

const char* verdict(ScResult r) {
  switch (r) {
    case ScResult::kConsistent: return "YES";
    case ScResult::kInconsistent: return "no";
    case ScResult::kUndecided: return "undecided (state budget)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    in = &file;
  }

  const auto parsed = parse_trace(*in);
  if (const auto* err = std::get_if<TraceParseError>(&parsed)) {
    std::fprintf(stderr, "line %zu: %s\n", err->line, err->message.c_str());
    return 2;
  }
  const History& h = std::get<History>(parsed);
  std::printf("execution:\n%s\n", h.to_string().c_str());

  const CausalChecker causal(h);
  const auto causal_violation = causal.check();

  std::printf("sequentially consistent: %s\n",
              verdict(check_sequential_consistency(h)));
  std::printf("causally consistent:     %s\n",
              verdict(!causal_violation.has_value()));
  if (causal_violation) {
    std::printf("  -> %s\n", causal_violation->reason.c_str());
  }
  std::printf("PRAM consistent:         %s\n",
              verdict(check_pram_consistency(h)));
  const auto slow_violation = check_slow_consistency(h);
  std::printf("slow-memory consistent:  %s\n",
              verdict(!slow_violation.has_value()));
  if (slow_violation) {
    std::printf("  -> %s\n", slow_violation->reason.c_str());
  }

  std::printf("\nlive sets (the paper's alpha(o)):\n");
  for (NodeId p = 0; p < h.process_count(); ++p) {
    for (std::size_t i = 0; i < h.per_process[p].size(); ++i) {
      const Operation& op = h.op(OpRef{p, i});
      if (op.kind != OpKind::kRead) continue;
      const auto live = causal.live_set(OpRef{p, i});
      std::printf("  %-12s alpha = {", op.to_string().c_str());
      bool first = true;
      for (const Value v : live) {
        std::printf("%s%lld", first ? "" : ", ", static_cast<long long>(v));
        first = false;
      }
      std::printf("}%s\n", live.contains(op.value) ? "" : "   <-- VIOLATION");
    }
  }
  return causal_violation.has_value() ? 1 : 0;
}

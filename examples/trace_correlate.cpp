// trace_correlate — merge per-run (or per-node) Chrome-trace JSON files
// written by the tracer (bench_solver --trace, write_chrome_trace, a flight
// recorder's trace.json) into ONE correlated trace: events grouped by the
// wire-propagated trace id, with flow arrows following each remote operation
// across nodes. The merged file loads in ui.perfetto.dev.
//
// Usage:
//   trace_correlate [-o OUT.json] [--require-flows N] <trace.json>...
//
// Prints a summary (events, flows, complete cross-node flows) and exits 0.
// With --require-flows N the exit code is 1 unless at least N flows are
// complete AND cross-node AND connected (every send matched by a receive) —
// the CI smoke test uses this to assert end-to-end trace-id propagation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "causalmem/obs/correlate.hpp"

using namespace causalmem;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_correlate [-o OUT.json] [--require-flows N]"
               " <trace.json>...\n");
  return 2;
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t require_flows = 0;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (++i >= argc) return usage();
      out_path = argv[i];
    } else if (std::strcmp(argv[i], "--require-flows") == 0) {
      if (++i >= argc) return usage();
      require_flows = std::strtoull(argv[i], nullptr, 10);
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage();

  obs::TraceCorrelator corr;
  for (const char* path : inputs) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path);
      return 2;
    }
    std::vector<obs::TraceEvent> events;
    std::string error;
    if (!obs::trace_events_from_json(text, &events, &error)) {
      std::fprintf(stderr, "%s: %s\n", path, error.c_str());
      return 2;
    }
    std::printf("%s: %zu events\n", path, events.size());
    corr.add_events(events);
  }

  const auto& flows = corr.flows();
  const auto complete = corr.complete_cross_node_flows();
  std::size_t cross = 0;
  for (const obs::TraceFlow& f : flows) {
    if (f.cross_node()) ++cross;
  }
  std::printf("merged: %zu events over %zu nodes\n", corr.events().size(),
              corr.node_count());
  std::printf("flows: %zu total, %zu cross-node, %zu complete "
              "(cross-node, every send matched by its receive)\n",
              flows.size(), cross, complete.size());

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    const std::string doc = corr.to_chrome_trace();
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.put('\n');
    if (!out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("correlated trace written to %s\n", out_path.c_str());
  }

  if (complete.size() < require_flows) {
    std::fprintf(stderr,
                 "FAIL: %zu complete cross-node flows < required %zu\n",
                 complete.size(), require_flows);
    return 1;
  }
  return 0;
}

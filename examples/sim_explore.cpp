// sim_explore — drive the deterministic-simulation model checker from the
// command line. This is the CI entry point: the sim-explore job runs the
// DFS and random-walk suites here, and a failing run writes a replayable
// schedule artifact that `sim_explore replay` reproduces locally.
//
// Usage:
//   sim_explore dfs <scenario> [--delay-bound K] [--max-schedules N]
//                              [--artifact PATH] [--flight DIR]
//   sim_explore random <scenario> --seeds N [--first-seed S]
//                              [--artifact PATH] [--flight DIR]
//   sim_explore replay <scenario> <schedule-file> [--flight DIR]
//
// --flight DIR arms the flight recorder: a failing execution dumps the full
// observability state (correlated trace, counters, vector clocks, recent
// ops) into a timestamped subdirectory of DIR, alongside the minimized
// schedule artifact.
//
// Scenarios:
//   causal             the Fig. 4 owner protocol, 2-node small scope
//   broadcast          vector-clock-gated broadcast memory, 3 nodes
//   broadcast-ungated  broadcast WITHOUT delivery gating (known bad —
//                      exploration is expected to find the violation)
//
// Exit codes: 0 = all explored schedules checker-clean (or, for replay of a
// known-bad scenario, the expected failure reproduced); 1 = a failure was
// found (artifact written if --artifact was given) or a replay did not
// reproduce; 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "causalmem/sim/explorer.hpp"
#include "causalmem/sim/scenarios.hpp"

using namespace causalmem::sim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sim_explore dfs <scenario> [--delay-bound K]"
      " [--max-schedules N] [--artifact PATH] [--flight DIR]\n"
      "       sim_explore random <scenario> --seeds N [--first-seed S]"
      " [--artifact PATH] [--flight DIR]\n"
      "       sim_explore replay <scenario> <schedule-file> [--flight DIR]\n"
      "scenarios: causal | broadcast | broadcast-ungated\n");
  return 2;
}

bool make_run(const std::string& name, const std::string& flight_dir,
              RunFn* out) {
  if (name == "causal") {
    CausalScenarioConfig cfg = small_scope_causal();
    cfg.flight_dir = flight_dir;
    *out = make_causal_run(std::move(cfg));
  } else if (name == "broadcast" || name == "broadcast-ungated") {
    BroadcastScenarioConfig cfg = small_scope_broadcast(name == "broadcast");
    cfg.flight_dir = flight_dir;
    *out = make_broadcast_run(std::move(cfg));
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
    return false;
  }
  return true;
}

int report(const ExploreResult& res) {
  std::printf("schedules run: %llu%s\n",
              static_cast<unsigned long long>(res.schedules_run),
              res.exhausted ? " (exhausted)" : "");
  if (res.clean()) {
    std::printf("verdict: CLEAN — every explored schedule checker-clean\n");
    return 0;
  }
  std::printf("verdict: FAILURE\n  %s\n", res.failure.c_str());
  if (!res.artifact_written.empty()) {
    std::printf("replayable schedule written to %s\n",
                res.artifact_written.c_str());
    std::printf("reproduce with: sim_explore replay <scenario> %s\n",
                res.artifact_written.c_str());
  } else {
    std::printf("minimized repro schedule (%zu steps):\n%s",
                res.repro.steps.size(), res.repro.to_text().c_str());
  }
  if (!res.flight_artifact.empty()) {
    std::printf("flight-recorder dump written to %s\n",
                res.flight_artifact.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  ExploreOptions opt;
  std::uint64_t seeds = 0;
  std::uint64_t first_seed = 1;
  std::string flight_dir;
  // replay takes one positional (the schedule file) before the flags.
  const int flags_from = mode == "replay" ? 4 : 3;
  for (int i = flags_from; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();  // every flag takes a value
    const char* val = argv[++i];
    if (flag == "--delay-bound") {
      opt.delay_bound = std::atoi(val);
    } else if (flag == "--max-schedules") {
      opt.max_schedules = std::strtoull(val, nullptr, 10);
    } else if (flag == "--artifact") {
      opt.artifact_path = val;
    } else if (flag == "--flight") {
      flight_dir = val;
    } else if (flag == "--seeds") {
      seeds = std::strtoull(val, nullptr, 10);
    } else if (flag == "--first-seed") {
      first_seed = std::strtoull(val, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return usage();
    }
  }

  RunFn run;
  if (!make_run(argv[2], flight_dir, &run)) return usage();

  if (mode == "replay") {
    if (argc < 4) return usage();
    std::string err;
    const auto sched = Schedule::load(argv[3], &err);
    if (!sched) {
      std::fprintf(stderr, "cannot load schedule: %s\n", err.c_str());
      return 2;
    }
    const ExecutionResult res = replay(run, *sched);
    if (res.failed()) {
      std::printf("replay reproduced the failure:\n  %s\n",
                  res.failure().c_str());
      if (!res.flight_artifact.empty()) {
        std::printf("flight-recorder dump written to %s\n",
                    res.flight_artifact.c_str());
      }
      return 0;  // reproducing the recorded failure is this mode's success
    }
    std::printf("replay ran clean — the schedule does NOT reproduce\n");
    return 1;
  }

  if (mode == "dfs") {
    std::printf("exploring '%s' by DFS (delay bound %d, budget %llu)...\n",
                argv[2], opt.delay_bound,
                static_cast<unsigned long long>(opt.max_schedules));
    return report(explore_dfs(run, opt));
  }
  if (mode == "random") {
    if (seeds == 0) return usage();
    std::printf("exploring '%s' with %llu random walks (seeds %llu..%llu)"
                "...\n",
                argv[2], static_cast<unsigned long long>(seeds),
                static_cast<unsigned long long>(first_seed),
                static_cast<unsigned long long>(first_seed + seeds - 1));
    return report(explore_random(run, first_seed, seeds, opt));
  }
  return usage();
}

#include "causalmem/common/expect.hpp"

#include <cstdio>

namespace causalmem::detail {

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const char* msg) noexcept {
  std::fprintf(stderr, "causalmem: %s violated: `%s` at %s:%d%s%s\n", kind,
               expr, file, line, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               (msg != nullptr) ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace causalmem::detail

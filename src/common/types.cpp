#include "causalmem/common/types.hpp"

#include <sstream>

namespace causalmem {

std::string to_string(const WriteTag& tag) {
  std::ostringstream oss;
  if (tag.is_initial()) {
    oss << "w(init)";
  } else {
    oss << "w(P" << tag.writer << "#" << tag.seq << ")";
  }
  return oss.str();
}

}  // namespace causalmem

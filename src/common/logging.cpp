#include "causalmem/common/logging.hpp"

#include <cstdio>
#include <mutex>
#include <utility>

#include "causalmem/obs/clock.hpp"

namespace causalmem {

namespace log_detail {

std::atomic<LogLevel>& global_level() noexcept {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

namespace {

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::mutex& emit_mutex() noexcept {
  static std::mutex mu;
  return mu;
}

/// Guarded by emit_mutex(); empty = default stderr sink.
LogSink& sink_slot() noexcept {
  static LogSink sink;
  return sink;
}

}  // namespace

void emit(LogLevel level, const std::string& message) {
  const auto now_us = obs::now_ns() / 1000;
  std::scoped_lock lock(emit_mutex());
  if (const LogSink& sink = sink_slot(); sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%12lld us] %s %s\n", static_cast<long long>(now_us),
               level_name(level), message.c_str());
}

}  // namespace log_detail

void set_log_sink(LogSink sink) {
  std::scoped_lock lock(log_detail::emit_mutex());
  log_detail::sink_slot() = std::move(sink);
}

}  // namespace causalmem

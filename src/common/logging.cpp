#include "causalmem/common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace causalmem::log_detail {

std::atomic<LogLevel>& global_level() noexcept {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

namespace {

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::mutex& emit_mutex() noexcept {
  static std::mutex mu;
  return mu;
}

}  // namespace

void emit(LogLevel level, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::scoped_lock lock(emit_mutex());
  std::fprintf(stderr, "[%12lld us] %s %s\n", static_cast<long long>(now),
               level_name(level), message.c_str());
}

}  // namespace causalmem::log_detail

#include "causalmem/dsm/failover.hpp"

#include <algorithm>
#include <numeric>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/obs/flight_recorder.hpp"
#include "causalmem/obs/trace.hpp"

namespace causalmem {

bool fresher_stamp(const VectorClock& a, const VectorClock& b) {
  switch (a.compare(b)) {
    case ClockOrder::kAfter:
      return true;
    case ClockOrder::kBefore:
    case ClockOrder::kEqual:
      return false;
    case ClockOrder::kConcurrent:
      break;
  }
  const auto sum = [](const VectorClock& v) {
    const auto& c = v.components();
    return std::accumulate(c.begin(), c.end(), std::uint64_t{0});
  };
  const std::uint64_t sa = sum(a);
  const std::uint64_t sb = sum(b);
  if (sa != sb) return sa > sb;
  return a.components() > b.components();
}

FailoverDirectory::FailoverDirectory(std::unique_ptr<Ownership> base,
                                     std::size_t n, StatsRegistry* stats)
    : n_(n), base_(std::move(base)), stats_(stats) {
  CM_EXPECTS(n_ > 0);
  CM_EXPECTS(base_ != nullptr);
  reroute_ = std::vector<std::atomic<NodeId>>(n_);
  for (auto& r : reroute_) r.store(kNoNode, std::memory_order_relaxed);
  down_ = std::vector<std::atomic<bool>>(n_);
  durable_ = std::vector<std::atomic<bool>>(n_);
  last_alive_ = std::vector<std::atomic<std::uint64_t>>(n_);
  const std::uint64_t now = obs::now_ns();
  for (auto& t : last_alive_) t.store(now, std::memory_order_relaxed);
}

NodeId FailoverDirectory::owner(Addr x) const {
  NodeId cur = base_->owner(x);
  // Follow the reroute chain (a successor may itself have failed over).
  // Chains are loop-free: a reroute always points past the dead node in
  // ring order and is never installed twice for one node.
  for (std::size_t hops = 0; hops < n_; ++hops) {
    const NodeId next = reroute_[cur].load(std::memory_order_acquire);
    if (next == kNoNode) return cur;
    cur = next;
  }
  return cur;
}

std::vector<NodeId> FailoverDirectory::live_peers(NodeId self) const {
  std::vector<NodeId> out;
  out.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (i != self && !down_[i].load(std::memory_order_acquire)) {
      out.push_back(i);
    }
  }
  return out;
}

bool FailoverDirectory::suspect(NodeId suspect, NodeId reporter) {
  CM_EXPECTS(suspect < n_);
  if (stats_ != nullptr && reporter < n_) {
    stats_->node(reporter).bump(Counter::kFoSuspect);
    if (obs::Tracer* t = stats_->tracer(reporter)) {
      t->record(obs::TraceEventKind::kSuspect, 0, suspect);
    }
  }
  std::scoped_lock lock(mu_);
  if (down_[suspect].load(std::memory_order_acquire)) return false;
  // Deterministic successor: the next live DURABLE node in ring order when
  // one exists (its checkpoint + WAL survive a later crash of the successor
  // itself), otherwise the next live node. Both passes are ring scans, so
  // every node computing the successor independently agrees.
  NodeId successor = kNoNode;
  for (std::size_t step = 1; step < n_; ++step) {
    const NodeId cand = static_cast<NodeId>((suspect + step) % n_);
    if (!down_[cand].load(std::memory_order_acquire) &&
        durable_[cand].load(std::memory_order_acquire)) {
      successor = cand;
      break;
    }
  }
  if (successor == kNoNode) {
    for (std::size_t step = 1; step < n_; ++step) {
      const NodeId cand = static_cast<NodeId>((suspect + step) % n_);
      if (!down_[cand].load(std::memory_order_acquire)) {
        successor = cand;
        break;
      }
    }
  }
  if (successor == kNoNode) return false;  // nobody left to take over
  down_[suspect].store(true, std::memory_order_release);
  reroute_[suspect].store(successor, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  CM_LOG_INFO("failover: P" << suspect << " suspected (reporter="
                            << static_cast<std::int64_t>(
                                   reporter == kNoNode ? -1 : reporter)
                            << "), successor P" << successor);
  if (stats_ != nullptr) {
    stats_->node(successor).bump(Counter::kFoFailover);
    if (obs::Tracer* t = stats_->tracer(successor)) {
      t->record(obs::TraceEventKind::kFailover, 0, suspect);
    }
    if (obs::FlightRecorder* fr =
            stats_->node(successor).flight_recorder()) {
      fr->on_failover(successor, suspect);
    }
  }
  return true;
}

void FailoverDirectory::record_alive(NodeId subject) {
  if (subject >= n_) return;
  last_alive_[subject].store(obs::now_ns(), std::memory_order_release);
}

void FailoverDirectory::mark_restarted(NodeId id) {
  CM_EXPECTS(id < n_);
  std::scoped_lock lock(mu_);
  last_alive_[id].store(obs::now_ns(), std::memory_order_release);
  down_[id].store(false, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  // reroute_[id] is deliberately kept: migrated ownership never reverts.
}

void FailoverDirectory::set_durable(NodeId id, bool durable) {
  CM_EXPECTS(id < n_);
  durable_[id].store(durable, std::memory_order_release);
}

// --------------------------------------------------------------------------
// HeartbeatMonitor
// --------------------------------------------------------------------------

HeartbeatMonitor::HeartbeatMonitor(Transport* transport,
                                   FailoverDirectory* directory,
                                   HeartbeatConfig config, StatsRegistry* stats)
    : transport_(transport),
      directory_(directory),
      config_(config),
      stats_(stats) {
  CM_EXPECTS(transport_ != nullptr);
  CM_EXPECTS(directory_ != nullptr);
  CM_EXPECTS(config_.interval.count() > 0);
  CM_EXPECTS(config_.suspect_after >= config_.interval);
}

void HeartbeatMonitor::start() {
  if (running_.exchange(true)) return;
  prober_ = std::jthread([this](const std::stop_token& st) { run(st); });
}

void HeartbeatMonitor::stop() {
  if (!running_.exchange(false)) return;
  if (prober_.joinable()) {
    prober_.request_stop();
    prober_.join();
  }
}

void HeartbeatMonitor::run(const std::stop_token& st) {
  const auto interval_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.interval)
          .count());
  // The sleep only paces the polling; whether a round is due is judged in
  // obs::now_ns() time, so a FakeClock fully controls heartbeat cadence
  // (satellite: no stray real-clock reads in timeout logic).
  const auto poll = std::min(config_.interval,
                             std::chrono::microseconds{500});
  std::uint64_t last_round = obs::now_ns();
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(poll);
    if (st.stop_requested()) return;
    const std::uint64_t vnow = obs::now_ns();
    if (vnow - last_round < interval_ns) continue;
    last_round = vnow;
    tick();
  }
}

void HeartbeatMonitor::tick() {
  const std::size_t n = directory_->node_count();
  const auto suspect_after_ns =
      static_cast<std::uint64_t>(std::chrono::duration_cast<
                                     std::chrono::nanoseconds>(
                                     config_.suspect_after)
                                     .count());
  // Probe: every live node pings every other live node. The probe itself
  // is its sender's sign of life — receipt refreshes last_alive via
  // CausalNode's record_alive hook.
  for (NodeId from = 0; from < n; ++from) {
    if (directory_->is_down(from)) continue;
    for (NodeId to = 0; to < n; ++to) {
      if (to == from || directory_->is_down(to)) continue;
      Message hb;
      hb.type = MsgType::kHeartbeat;
      hb.from = from;
      hb.to = to;
      hb.stamp = VectorClock(0);
      if (stats_ != nullptr) stats_->node(from).bump(Counter::kNetHeartbeat);
      if (stats_ != nullptr) {
        if (obs::Tracer* t = stats_->tracer(from)) {
          t->record(obs::TraceEventKind::kHeartbeat,
                    static_cast<std::uint8_t>(MsgType::kHeartbeat), to);
        }
      }
      transport_->send(std::move(hb));
    }
  }
  // Scan: anyone silent past the threshold is suspected. Probes sent just
  // above need a round trip before they count, so a node only trips the
  // threshold after missing several whole intervals.
  const std::uint64_t now = obs::now_ns();
  for (NodeId id = 0; id < n; ++id) {
    if (directory_->is_down(id)) continue;
    const std::uint64_t last = directory_->last_alive_ns(id);
    if (now - last > suspect_after_ns) {
      directory_->suspect(id, kNoNode);
    }
  }
}

}  // namespace causalmem

#include "causalmem/dsm/atomic/node.hpp"

#include "causalmem/common/expect.hpp"
#include "causalmem/obs/trace.hpp"

namespace causalmem {

namespace {

/// Operation-completion span + latency sample (tr may be null: tracing off).
void record_op_done(NodeStats& stats, obs::Tracer* tr, LatencyMetric metric,
                    obs::TraceEventKind kind, Addr x, const OpTiming& done,
                    std::uint64_t trace_id = 0) noexcept {
  const std::uint64_t dur = done.end_ns - done.start_ns;
  stats.record_latency(metric, dur);
  if (tr != nullptr) {
    tr->record(kind, 0, kNoNode, x, nullptr, done.start_ns, dur, trace_id);
  }
}

}  // namespace

AtomicNode::AtomicNode(NodeId id, std::size_t n, const Ownership& ownership,
                       Transport& transport, NodeStats& stats,
                       AtomicConfig /*config*/, OpObserver* observer)
    : id_(id),
      n_(n),
      ownership_(ownership),
      transport_(transport),
      stats_(stats),
      observer_(observer) {
  CM_EXPECTS(id < n);
  transport_.register_node(id_, [this](const Message& m) { on_message(m); });
}

// --------------------------------------------------------------------------
// Application-facing operations
// --------------------------------------------------------------------------

Value AtomicNode::read(Addr x) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  {
    std::unique_lock lock(mu_);
    if (ownership_.owner(x) == id_) {
      // Strong consistency: do not expose a value mid-invalidation-round.
      write_done_cv_.wait(lock, [&] { return !in_flight_.contains(x); });
      OwnedCell& c = owned_cell(x);
      stats_.bump(Counter::kReadHit);
      if (tr != nullptr) {
        tr->record(obs::TraceEventKind::kReadHit, 0, kNoNode, x);
      }
      const Value v = c.value;
      const WriteTag tag = c.tag;
      const OpTiming done = op_start.close();
      record_op_done(stats_, tr, LatencyMetric::kReadNs,
                     obs::TraceEventKind::kReadDone, x, done);
      if (observer_ != nullptr) {
        observer_->on_read(id_, x, v, tag, done);
      }
      return v;
    }
    if (auto it = cache_.find(x); it != cache_.end()) {
      stats_.bump(Counter::kReadHit);
      if (tr != nullptr) {
        tr->record(obs::TraceEventKind::kReadHit, 0, kNoNode, x);
      }
      const Value v = it->second.value;
      const WriteTag tag = it->second.tag;
      const OpTiming done = op_start.close();
      record_op_done(stats_, tr, LatencyMetric::kReadNs,
                     obs::TraceEventKind::kReadDone, x, done);
      if (observer_ != nullptr) {
        observer_->on_read(id_, x, v, tag, done);
      }
      return v;
    }
    stats_.bump(Counter::kReadMiss);
    if (tr != nullptr) {
      tr->record(obs::TraceEventKind::kReadMiss, 0, ownership_.owner(x), x);
    }
  }

  std::uint64_t rid;
  std::uint64_t tid;
  std::future<Message> fut;
  {
    std::unique_lock lock(mu_);
    rid = next_rid_++;
    tid = new_trace_id();
    fut = register_pending(rid);
  }
  Message req;
  req.type = MsgType::kRead;
  req.from = id_;
  req.to = ownership_.owner(x);
  req.request_id = rid;
  req.addr = x;
  req.trace_id = tid;
  stats_.bump(Counter::kMsgReadRequest);
  transport_.send(std::move(req));

  // The cached copy was installed by complete_pending on the delivery
  // thread, *before* this future resolved — so an INV that the owner sends
  // after our R_REPLY (FIFO channel) can never race past the install.
  const Message rep = fut.get();
  const OpTiming done = op_start.close();
  record_op_done(stats_, tr, LatencyMetric::kReadNs,
                 obs::TraceEventKind::kReadDone, x, done, tid);
  std::unique_lock lock(mu_);
  if (observer_ != nullptr) {
    observer_->on_read(id_, x, rep.value, rep.tag, done);
  }
  return rep.value;
}

void AtomicNode::write(Addr x, Value v) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  if (ownership_.owner(x) == id_) {
    std::unique_lock lock(mu_);
    stats_.bump(Counter::kWriteLocal);
    const WriteTag tag{id_, ++write_seq_};
    // A local write still fans out invalidations; the id correlates them.
    const std::uint64_t tid = new_trace_id();
    write_done_cv_.wait(lock, [&] { return !in_flight_.contains(x); });
    if (!begin_write(lock, x, v, tag, id_, 0, tid)) {
      // Our round is in flight; wait until it completes (our write applies —
      // possibly to be overwritten by a deferred write right after, which is
      // a legitimate subsequent event, not a failure of ours).
      write_done_cv_.wait(lock, [&] {
        auto it = in_flight_.find(x);
        return it == in_flight_.end() || !(it->second.tag == tag);
      });
    }
    const OpTiming done = op_start.close();
    record_op_done(stats_, tr, LatencyMetric::kWriteNs,
                   obs::TraceEventKind::kWriteDone, x, done, tid);
    if (observer_ != nullptr) {
      observer_->on_write(id_, x, v, tag, true, done);
    }
    return;
  }

  std::uint64_t rid;
  std::uint64_t tid;
  std::future<Message> fut;
  WriteTag tag;
  {
    std::unique_lock lock(mu_);
    stats_.bump(Counter::kWriteRemote);
    tag = WriteTag{id_, ++write_seq_};
    rid = next_rid_++;
    tid = new_trace_id();
    fut = register_pending(rid);
  }
  Message req;
  req.type = MsgType::kWrite;
  req.from = id_;
  req.to = ownership_.owner(x);
  req.request_id = rid;
  req.addr = x;
  req.value = v;
  req.tag = tag;
  req.trace_id = tid;
  stats_.bump(Counter::kMsgWriteRequest);
  transport_.send(std::move(req));

  (void)fut.get();  // cache install happened in complete_pending (FIFO-safe)
  const OpTiming done = op_start.close();
  record_op_done(stats_, tr, LatencyMetric::kWriteNs,
                 obs::TraceEventKind::kWriteDone, x, done, tid);
  std::unique_lock lock(mu_);
  if (observer_ != nullptr) {
    observer_->on_write(id_, x, v, tag, true, done);
  }
}

bool AtomicNode::discard(Addr /*x*/) {
  // Invalidations are pushed by owners; polling a cached copy is live.
  return false;
}

bool AtomicNode::owns(Addr x) const { return ownership_.owner(x) == id_; }

// --------------------------------------------------------------------------
// Owner-side protocol
// --------------------------------------------------------------------------

void AtomicNode::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kRead:
      serve_read(m);
      return;
    case MsgType::kWrite:
      serve_write(m);
      return;
    case MsgType::kInvalidate:
      handle_inv(m);
      return;
    case MsgType::kInvalidateAck:
      handle_inv_ack(m);
      return;
    case MsgType::kReadReply:
    case MsgType::kWriteReply:
      complete_pending(m);
      return;
    default:
      CM_UNREACHABLE("unexpected message type at atomic node");
  }
}

void AtomicNode::serve_read(const Message& m) {
  std::unique_lock lock(mu_);
  CM_ASSERT_MSG(ownership_.owner(m.addr) == id_, "READ routed to non-owner");
  if (in_flight_.contains(m.addr)) {
    deferred_[m.addr].push_back(m);
    return;
  }
  OwnedCell& c = owned_cell(m.addr);
  c.copyset.insert(m.from);
  Message rep;
  rep.type = MsgType::kReadReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  rep.addr = m.addr;
  rep.value = c.value;
  rep.tag = c.tag;
  rep.trace_id = m.trace_id;  // the reply stays on the requester's flow
  stats_.bump(Counter::kMsgReadReply);
  lock.unlock();
  transport_.send(std::move(rep));
}

void AtomicNode::serve_write(const Message& m) {
  std::unique_lock lock(mu_);
  CM_ASSERT_MSG(ownership_.owner(m.addr) == id_, "WRITE routed to non-owner");
  if (in_flight_.contains(m.addr)) {
    deferred_[m.addr].push_back(m);
    return;
  }
  (void)begin_write(lock, m.addr, m.value, m.tag, m.from, m.request_id,
                    m.trace_id);
}

bool AtomicNode::begin_write(std::unique_lock<std::mutex>& lock, Addr x,
                             Value v, WriteTag tag, NodeId origin,
                             std::uint64_t reply_rid,
                             std::uint64_t trace_id) {
  CM_ASSERT(!in_flight_.contains(x));
  OwnedCell& c = owned_cell(x);
  std::unordered_set<NodeId> members = c.copyset;
  members.erase(origin);  // the writer gets the new value via its reply
  if (members.empty()) {
    c.value = v;
    c.tag = tag;
    c.copyset.clear();
    if (obs::Tracer* t = stats_.tracer()) {
      t->record(obs::TraceEventKind::kApply,
                static_cast<std::uint8_t>(MsgType::kWrite), origin, x, nullptr,
                0, 0, trace_id);
    }
    if (origin != id_) {
      c.copyset.insert(origin);
      Message rep;
      rep.type = MsgType::kWriteReply;
      rep.from = id_;
      rep.to = origin;
      rep.request_id = reply_rid;
      rep.addr = x;
      rep.value = v;
      rep.tag = tag;
      rep.trace_id = trace_id;
      stats_.bump(Counter::kMsgWriteReply);
      lock.unlock();
      transport_.send(std::move(rep));
      lock.lock();
    }
    return true;
  }

  in_flight_.emplace(
      x, PendingWrite{v, tag, origin, reply_rid, members.size(), trace_id});
  for (NodeId member : members) {
    Message inv;
    inv.type = MsgType::kInvalidate;
    inv.from = id_;
    inv.to = member;
    inv.addr = x;
    inv.trace_id = trace_id;  // the fan-out belongs to the write's flow
    stats_.bump(Counter::kMsgInvalidate);
    transport_.send(std::move(inv));
  }
  return false;
}

void AtomicNode::handle_inv(const Message& m) {
  {
    std::unique_lock lock(mu_);
    cache_.erase(m.addr);
    stats_.bump(Counter::kInvalidationApplied);
    if (obs::Tracer* t = stats_.tracer()) {
      t->record(obs::TraceEventKind::kInvalidate, 0, m.from, m.addr, nullptr,
                0, 0, m.trace_id);
    }
    stats_.bump(Counter::kMsgInvalidateAck);
  }
  Message ack;
  ack.type = MsgType::kInvalidateAck;
  ack.from = id_;
  ack.to = m.from;
  ack.addr = m.addr;
  ack.trace_id = m.trace_id;  // the ack closes one edge of the write's flow
  transport_.send(std::move(ack));
}

void AtomicNode::handle_inv_ack(const Message& m) {
  std::unique_lock lock(mu_);
  auto it = in_flight_.find(m.addr);
  CM_ASSERT_MSG(it != in_flight_.end(), "stray INV_ACK");
  CM_ASSERT(it->second.remaining > 0);
  if (--it->second.remaining == 0) {
    finish_write(lock, m.addr);
  }
}

void AtomicNode::finish_write(std::unique_lock<std::mutex>& lock, Addr x) {
  auto it = in_flight_.find(x);
  CM_ASSERT(it != in_flight_.end());
  const PendingWrite pw = it->second;
  in_flight_.erase(it);

  OwnedCell& c = owned_cell(x);
  c.value = pw.value;
  c.tag = pw.tag;
  c.copyset.clear();
  if (obs::Tracer* t = stats_.tracer()) {
    t->record(obs::TraceEventKind::kApply,
              static_cast<std::uint8_t>(MsgType::kWrite), pw.origin, x,
              nullptr, 0, 0, pw.trace_id);
  }
  if (pw.origin != id_) {
    c.copyset.insert(pw.origin);
    Message rep;
    rep.type = MsgType::kWriteReply;
    rep.from = id_;
    rep.to = pw.origin;
    rep.request_id = pw.reply_rid;
    rep.addr = x;
    rep.value = pw.value;
    rep.tag = pw.tag;
    rep.trace_id = pw.trace_id;
    stats_.bump(Counter::kMsgWriteReply);
    lock.unlock();
    transport_.send(std::move(rep));
    lock.lock();
  }
  write_done_cv_.notify_all();

  // Drain requests that arrived during the round. A deferred WRITE may begin
  // a new round, at which point the remainder stays deferred.
  auto dq = deferred_.find(x);
  while (dq != deferred_.end() && !dq->second.empty() &&
         !in_flight_.contains(x)) {
    const Message next = dq->second.front();
    dq->second.pop_front();
    if (next.type == MsgType::kRead) {
      OwnedCell& cell = owned_cell(x);
      cell.copyset.insert(next.from);
      Message rep;
      rep.type = MsgType::kReadReply;
      rep.from = id_;
      rep.to = next.from;
      rep.request_id = next.request_id;
      rep.addr = x;
      rep.value = cell.value;
      rep.tag = cell.tag;
      rep.trace_id = next.trace_id;
      stats_.bump(Counter::kMsgReadReply);
      lock.unlock();
      transport_.send(std::move(rep));
      lock.lock();
      dq = deferred_.find(x);
    } else {
      CM_ASSERT(next.type == MsgType::kWrite);
      (void)begin_write(lock, x, next.value, next.tag, next.from,
                        next.request_id, next.trace_id);
      dq = deferred_.find(x);
    }
  }
  if (dq != deferred_.end() && dq->second.empty()) deferred_.erase(dq);
}

void AtomicNode::complete_pending(const Message& m) {
  std::unique_lock lock(mu_);
  auto it = pending_.find(m.request_id);
  CM_ASSERT_MSG(it != pending_.end(), "reply for unknown request");
  std::promise<Message> prom = std::move(it->second);
  pending_.erase(it);
  // Install the fetched/written copy here, on the delivery thread: the owner
  // put us in the copyset before sending this reply, so any INV for this
  // location is behind us on the FIFO channel and will observe the install.
  if (!owns(m.addr)) {
    cache_[m.addr] = CachedCell{m.value, m.tag};
  }
  lock.unlock();
  prom.set_value(m);
}

AtomicNode::OwnedCell& AtomicNode::owned_cell(Addr x) {
  return owned_.try_emplace(x).first->second;
}

std::future<Message> AtomicNode::register_pending(std::uint64_t rid) {
  auto [it, inserted] = pending_.try_emplace(rid);
  CM_ASSERT(inserted);
  return it->second.get_future();
}

}  // namespace causalmem

#include "causalmem/dsm/memory.hpp"

#include "causalmem/common/backoff.hpp"
#include "causalmem/common/coop.hpp"

namespace causalmem {

Value spin_until(SharedMemory& mem, Addr x,
                 const std::function<bool(Value)>& pred) {
  Backoff backoff;
  bool last_poll_refetched = false;
  for (;;) {
    const Value v = mem.read(x);
    if (pred(v)) {
      mem.stats().bump(Counter::kSpinTransition);
      return v;
    }
    if (last_poll_refetched) {
      // This poll cost a full round trip to the owner and still failed;
      // that's busy-wait overhead, not protocol cost.
      mem.stats().bump(Counter::kSpinRefetch);
    }
    last_poll_refetched = mem.discard(x);
    // Under the simulation scheduler the poll yields a choice point instead
    // of burning real time; otherwise pace with the usual backoff.
    if (!coop::yield()) backoff.pause();
  }
}

}  // namespace causalmem

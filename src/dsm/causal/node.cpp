#include "causalmem/dsm/causal/node.hpp"

#include <algorithm>
#include <chrono>

#include "causalmem/common/coop.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/obs/flight_recorder.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/persist/store.hpp"

namespace causalmem {

namespace {

/// Records an operation-completion span and its latency sample. `tr` may be
/// null (tracing off) — the latency histogram is always recorded.
void record_op_done(NodeStats& stats, obs::Tracer* tr, LatencyMetric metric,
                    obs::TraceEventKind kind, Addr x, const OpTiming& done,
                    std::uint64_t trace_id = 0) noexcept {
  const std::uint64_t dur = done.end_ns - done.start_ns;
  stats.record_latency(metric, dur);
  if (tr != nullptr) {
    tr->record(kind, 0, kNoNode, x, nullptr, done.start_ns, dur, trace_id);
  }
}

}  // namespace

CausalNode::CausalNode(NodeId id, std::size_t n, const Ownership& ownership,
                       Transport& transport, NodeStats& stats,
                       CausalConfig config, OpObserver* observer)
    : id_(id),
      n_(n),
      ownership_(ownership),
      transport_(transport),
      stats_(stats),
      cfg_(config),
      observer_(observer),
      vt_(n),
      served_merges_(n) {
  CM_EXPECTS(id < n);
  CM_EXPECTS(cfg_.page_size > 0);
  CM_EXPECTS(cfg_.cache_capacity_pages > 0);
  CM_EXPECTS_MSG(cfg_.write_mode == WriteMode::kBlocking ||
                     cfg_.conflict == ConflictPolicy::kLastArrivalWins,
                 "async writes require last-arrival-wins conflict policy");
  CM_EXPECTS_MSG(!cfg_.read_through || cfg_.write_mode == WriteMode::kBlocking,
                 "read-through (atomic) mode requires blocking writes");
  transport_.register_node(id_, [this](const Message& m) { on_message(m); });
}

// --------------------------------------------------------------------------
// Application-facing operations (Figure 4's r_i and w_i)
// --------------------------------------------------------------------------

Value CausalNode::read(Addr x) {
  for (;;) {
    const ReadResult r = try_read(x);
    if (r.ok()) return r.value;
    // Unreachable, but this caller wants the paper's blocking semantics:
    // retry forever. Every failed round filed a suspicion, so with failover
    // attached a successor eventually answers; without it this blocks until
    // the owner is back — exactly the pre-deadline behaviour.
  }
}

ReadResult CausalNode::try_read(Addr x) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  const std::uint64_t pg = page_of(x);
  // Correlation id for the whole miss (all retry rounds share it); 0 until
  // the operation is known to go remote.
  std::uint64_t tid = 0;
  {
    std::unique_lock lock(mu_);
    if (owner_of(x) == id_ && page_ready_locally(pg)) {
      Cell& c = owned_cell(x);
      stats_.bump(Counter::kReadHit);
      if (tr != nullptr) {
        tr->record(obs::TraceEventKind::kReadHit, 0, kNoNode, x, &vt_);
      }
      const Value v = c.value;
      const WriteTag tag = c.tag;
      const OpTiming done = op_start.close();
      record_op_done(stats_, tr, LatencyMetric::kReadNs,
                     obs::TraceEventKind::kReadDone, x, done);
      if (observer_ != nullptr) {
        observer_->on_read(id_, x, v, tag, done);
      }
      return ReadResult{OpStatus::kOk, v};
    }
    if (!cfg_.read_through) {
      if (auto it = cache_.find(pg); it != cache_.end()) {
        touch_lru(it->second);
        const Cell& c = it->second.cells[x - page_base(pg)];
        stats_.bump(Counter::kReadHit);
        if (tr != nullptr) {
          tr->record(obs::TraceEventKind::kReadHit, 0, kNoNode, x, &vt_);
        }
        const Value v = c.value;
        const WriteTag tag = c.tag;
        const OpTiming done = op_start.close();
        record_op_done(stats_, tr, LatencyMetric::kReadNs,
                       obs::TraceEventKind::kReadDone, x, done);
        if (observer_ != nullptr) {
          observer_->on_read(id_, x, v, tag, done);
        }
        return ReadResult{OpStatus::kOk, v};
      }
    }
    stats_.bump(Counter::kReadMiss);
    tid = new_trace_id();
    if (tr != nullptr) {
      tr->record(obs::TraceEventKind::kReadMiss, 0, owner_of(x), x, &vt_, 0, 0,
                 tid);
    }
  }

  // Read miss: request a current copy from the owner and block (Fig. 4),
  // bounded by the per-round deadline when one is configured. Each round
  // re-resolves the owner, so a failover between rounds redirects the retry
  // to the successor. The send happens under the operation mutex so the
  // channel order to each owner equals the node's operation-issue order
  // (several application threads may share this node).
  const bool bounded = cfg_.request_timeout.count() > 0;
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(cfg_.request_timeout.count());
  const std::uint32_t rounds = bounded ? cfg_.request_retries + 1 : 1;
  NodeId target = kNoNode;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    std::future<Message> fut;
    std::uint64_t rid = 0;
    std::uint64_t epoch_at_send = 0;
    {
      std::unique_lock lock(mu_);
      target = owner_of(x);
      rid = next_rid_++;
      epoch_at_send = transport_.endpoint_epoch(id_);
      fut = register_pending(rid, /*async=*/false, op_start.start_ns, tid);
      Message req;
      req.type = MsgType::kRead;
      req.from = id_;
      req.to = target;
      req.request_id = rid;
      req.addr = x;
      req.trace_id = tid;
      // The stamp stays empty: the owner ignores it, and empty clocks are
      // transparent to the channel's delta baseline.
      stats_.bump(Counter::kMsgReadRequest);
      transport_.send(std::move(req));
    }

    // The reply was already applied (clock merge, per-cell install
    // preferring locally newer own writes, invalidation sweep, observer
    // notification) by complete_pending on the delivery thread — in FIFO
    // position, so a later WRITE service can never sweep past a
    // not-yet-installed stale copy, and the recorded per-node operation
    // order is the order effects actually took place (which is what makes
    // several application threads per node sound). complete_pending put the
    // chosen value into the reply.
    const std::uint64_t deadline = bounded ? obs::now_ns() + timeout_ns : 0;
    if (await_reply(fut, rid, deadline)) {
      const Value v = fut.get().value;
      record_op_done(stats_, tr, LatencyMetric::kReadNs,
                     obs::TraceEventKind::kReadDone, x, op_start.close(), tid);
      return ReadResult{OpStatus::kOk, v};
    }
    on_round_timeout(target, x, epoch_at_send);
  }
  stats_.bump(Counter::kFoUnreachable);
  if (tr != nullptr) {
    tr->record(obs::TraceEventKind::kUnreachable,
               static_cast<std::uint8_t>(MsgType::kRead), target, x, nullptr,
               0, 0, tid);
  }
  notify_unreachable(MsgType::kRead, target, x);
  return ReadResult{OpStatus::kUnreachable, 0};
}

void CausalNode::write(Addr x, Value v) {
  while (try_write(x, v) != OpStatus::kOk) {
    // Blocking semantics on top of the bounded core: retry forever. Each
    // exhausted attempt filed suspicions, so with failover attached the
    // retry eventually lands at a live successor.
  }
}

OpStatus CausalNode::try_write(Addr x, Value v) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  const std::uint64_t pg = page_of(x);
  // The entire issue sequence — clock increment, observation, local
  // install, and the send — happens under ONE hold of the operation mutex,
  // so every channel's message order equals this node's operation-issue
  // order even with several application threads (DESIGN.md §6 rule 5a).
  std::unique_lock lock(mu_);
  CM_EXPECTS_MSG(!read_only_pages_.contains(pg),
                 "write to a location marked read-only");
  // Async-mode soundness fence: in-flight asynchronous writes are ordered
  // only by their FIFO channel to one owner. Any write that publishes
  // through a *different* node (a local write, or a remote write to
  // another owner) would let readers observe this write's causal future
  // before the owner applied it — so such a write first waits out the
  // outstanding chain. Writes to the same owner keep pipelining.
  if (cfg_.write_mode == WriteMode::kAsync && outstanding_async_ > 0 &&
      owner_of(x) != async_chain_owner_) {
    wait_flushed(lock);
  }
  // Every write attempt increments the writer's clock (Fig. 4).
  vt_.increment(id_);
  const WriteTag tag{id_, ++write_seq_};
  if (owner_of(x) == id_ && page_ready_locally(pg)) {
    Cell& c = owned_cell(x);
    c.value = v;
    c.stamp = vt_;
    c.tag = tag;
    persist_apply(x, c);
    stats_.bump(Counter::kWriteLocal);
    const OpTiming done = op_start.close();
    record_op_done(stats_, tr, LatencyMetric::kWriteNs,
                   obs::TraceEventKind::kWriteDone, x, done);
    if (observer_ != nullptr) {
      observer_->on_write(id_, x, v, tag, true, done);
    }
    return OpStatus::kOk;
  }

  // Remote write — possibly to ourselves: a page acquired by failover but
  // not yet recovered routes through the transport like any other request,
  // so it queues behind the page's election in arrival order.
  NodeId target = owner_of(x);
  const VectorClock stamp_at_issue = vt_;
  stats_.bump(Counter::kWriteRemote);
  // Remember our latest write into this page so read replies that predate
  // it (race: READ overtaken by this WRITE's effect) are retried.
  own_writes_[pg].outstanding.insert(tag.seq);
  // The write's causal position is its stamp — created here — so this is
  // where it is observed. (With the owner-wins policy the rejection
  // outcome is not yet known; the history records the write as a normal
  // write, which is exactly Definition 1's treatment: a rejected write
  // exists and is concurrent with the owner's value, it just installed
  // nothing anybody will read. A write that later exhausts its deadline
  // gets the same treatment — it exists, and nobody will read it.)
  //
  // Real-time bracket: deliberately UNTIMED (end_ns = 0). The write's
  // global take-effect point is at the owner, after this observation; an
  // interval closed here would exclude it and make the linearizability
  // checker reject correct read-through executions.
  if (observer_ != nullptr) {
    observer_->on_write(id_, x, v, tag, true,
                        OpTiming{op_start.start_ns, 0});
  }
  // Install the written value locally at issue time (with the issue stamp —
  // the certified reply refreshes it). A sibling application thread that
  // reads x between our issue and the owner's reply must see this write:
  // it is already in this node's program order. (Read-through mode caches
  // nothing; a sibling's read reaches the owner FIFO-behind this WRITE.)
  if (!cfg_.read_through) cache_own_write(x, v, tag, stamp_at_issue);

  const bool async = cfg_.write_mode == WriteMode::kAsync;
  const std::uint64_t tid = new_trace_id();
  std::uint64_t rid = next_rid_++;
  std::future<Message> fut =
      register_pending(rid, async, op_start.start_ns, tid);
  if (async) {
    ++outstanding_async_;
    async_chain_owner_ = target;
  }
  Message req;
  req.type = MsgType::kWrite;
  req.from = id_;
  req.to = target;
  req.request_id = rid;
  req.addr = x;
  req.value = v;
  req.tag = tag;
  req.stamp = stamp_at_issue;
  req.trace_id = tid;
  stats_.bump(Counter::kMsgWriteRequest);
  std::uint64_t epoch_at_send = transport_.endpoint_epoch(id_);
  transport_.send(Message(req));
  lock.unlock();

  if (async) {
    // Certification happens in the background (complete_pending); deadline
    // handling does not apply — flush() is the fence.
    record_op_done(stats_, tr, LatencyMetric::kWriteNs,
                   obs::TraceEventKind::kWriteDone, x, op_start.close(), tid);
    return OpStatus::kOk;
  }

  // Deadline-bounded certification: every retry round re-sends the SAME
  // tag and issue stamp (idempotent at the owner — serve_write recognizes
  // an already-applied write) to the freshly resolved owner.
  const bool bounded = cfg_.request_timeout.count() > 0;
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(cfg_.request_timeout.count());
  const std::uint32_t rounds = bounded ? cfg_.request_retries + 1 : 1;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    if (round > 0) {
      std::unique_lock relock(mu_);
      target = owner_of(x);
      rid = next_rid_++;
      epoch_at_send = transport_.endpoint_epoch(id_);
      fut = register_pending(rid, /*async=*/false, op_start.start_ns, tid);
      Message retry = req;
      retry.to = target;
      retry.request_id = rid;
      stats_.bump(Counter::kMsgWriteRequest);
      transport_.send(std::move(retry));
    }
    const std::uint64_t deadline = bounded ? obs::now_ns() + timeout_ns : 0;
    if (await_reply(fut, rid, deadline)) {
      // Clock merge and cache refresh happened in complete_pending on the
      // delivery thread (FIFO position — see the read path comment).
      (void)fut.get();
      record_op_done(stats_, tr, LatencyMetric::kWriteNs,
                     obs::TraceEventKind::kWriteDone, x, op_start.close(),
                     tid);
      return OpStatus::kOk;
    }
    on_round_timeout(target, x, epoch_at_send);
  }

  // Exhausted. Unwind what the issue sequence promised: the per-page
  // own-write requirement (a read reply must not wait forever for a write
  // that may never have landed) and the issue-time local install (nobody
  // must read a value the system may never have accepted).
  {
    std::unique_lock relock(mu_);
    if (auto ow = own_writes_.find(pg); ow != own_writes_.end()) {
      ow->second.outstanding.erase(tag.seq);
    }
    if (!cfg_.read_through) {
      if (auto pit = cache_.find(pg); pit != cache_.end()) {
        Cell& c = pit->second.cells[x - page_base(pg)];
        if (c.tag == tag) erase_page(pit);
      }
    }
  }
  stats_.bump(Counter::kFoUnreachable);
  if (tr != nullptr) {
    tr->record(obs::TraceEventKind::kUnreachable,
               static_cast<std::uint8_t>(MsgType::kWrite), target, x, nullptr,
               0, 0, tid);
  }
  notify_unreachable(MsgType::kWrite, target, x);
  return OpStatus::kUnreachable;
}

bool CausalNode::discard(Addr x) {
  std::unique_lock lock(mu_);
  if (owner_of(x) == id_) return false;
  if (auto it = cache_.find(page_of(x)); it != cache_.end()) {
    stats_.bump(Counter::kDiscard);
    if (obs::Tracer* t = stats_.tracer()) {
      t->record(obs::TraceEventKind::kDiscard, 0, kNoNode, x, &vt_);
    }
    erase_page(it);
  }
  return true;
}

bool CausalNode::owns(Addr x) const { return owner_of(x) == id_; }

void CausalNode::flush() {
  std::unique_lock lock(mu_);
  wait_flushed(lock);
}

void CausalNode::wait_flushed(std::unique_lock<std::mutex>& lock) {
  if (coop::enabled()) {
    // Simulated run: hand control to the scheduler instead of blocking the
    // task thread. The lock must be dropped while parked — the handler that
    // drains outstanding_async_ runs on the scheduler thread and takes mu_.
    while (outstanding_async_ > 0) {
      lock.unlock();
      coop::park(
          [this] {
            std::scoped_lock probe(mu_);
            return outstanding_async_ == 0;
          },
          0, "flush");
      lock.lock();
    }
    return;
  }
  flush_cv_.wait(lock, [&] { return outstanding_async_ == 0; });
}

void CausalNode::mark_read_only(Addr lo, Addr hi) {
  CM_EXPECTS(lo <= hi);
  std::unique_lock lock(mu_);
  for (std::uint64_t pg = page_of(lo); page_base(pg) < hi; ++pg) {
    const Addr base = page_base(pg);
    if (base >= lo && base + cfg_.page_size <= hi) {
      read_only_pages_.insert(pg);
    }
  }
}

VectorClock CausalNode::vector_time() const {
  std::unique_lock lock(mu_);
  return vt_;
}

bool CausalNode::is_cached(Addr x) const {
  std::unique_lock lock(mu_);
  return cache_.contains(page_of(x));
}

std::size_t CausalNode::cached_page_count() const {
  std::unique_lock lock(mu_);
  return cache_.size();
}

// --------------------------------------------------------------------------
// Owner-side servicing (Figure 4's [READ, x] and [WRITE, x, v, VT])
// --------------------------------------------------------------------------

void CausalNode::on_message(const Message& m) {
  // Any delivery is proof of life — the failure detector piggybacks on
  // protocol traffic, so busy systems never need dedicated heartbeats.
  if (failover_ != nullptr) failover_->record_alive(m.from);
  switch (m.type) {
    case MsgType::kRead:
      serve_read(m);
      return;
    case MsgType::kWrite:
      serve_write(m);
      return;
    case MsgType::kReadReply:
    case MsgType::kWriteReply:
    case MsgType::kSyncReply:
      complete_pending(m);
      return;
    case MsgType::kHeartbeat:
      return;  // record_alive above was the whole point
    case MsgType::kSyncRequest:
      serve_sync(m);
      return;
    case MsgType::kRecover:
      serve_recover(m);
      return;
    case MsgType::kRecoverReply:
      on_recover_reply(m);
      return;
    case MsgType::kCatchupRequest:
      serve_catchup(m);
      return;
    case MsgType::kCatchupReply:
      // Same election bookkeeping as a RECOVER_REPLY: an accepted reply is
      // a fresher candidate, a rejected one just checks the peer off.
      if (m.accepted) stats_.bump(Counter::kPersistCatchupFresher);
      on_recover_reply(m);
      return;
    default:
      CM_UNREACHABLE("unexpected message type at causal node");
  }
}

void CausalNode::serve_read(const Message& m) {
  Message rep;
  {
    std::unique_lock lock(mu_);
    const std::uint64_t pg = page_of(m.addr);
    if (failover_ != nullptr) {
      // Stale routing (the sender resolved the owner before a failover): let
      // the request die — the sender's deadline re-resolves and retries.
      if (owner_of(m.addr) != id_) return;
      if (!page_ready_locally(pg)) {
        begin_or_join_recovery(pg, m, lock);
        return;
      }
    } else {
      CM_ASSERT_MSG(owner_of(m.addr) == id_, "READ routed to non-owner");
    }
    const Addr base = page_base(pg);
    rep.stamp = VectorClock(n_);
    rep.cells.reserve(cfg_.page_size);
    for (Addr a = base; a < base + cfg_.page_size; ++a) {
      Cell& c = owned_cell(a);
      rep.cells.push_back(CellUpdate{a, c.value, c.tag});
      rep.stamp.update(c.stamp);  // page stamp = join of cell writestamps
    }
    stats_.bump(Counter::kMsgReadReply);
  }
  rep.type = MsgType::kReadReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  rep.addr = m.addr;
  rep.trace_id = m.trace_id;  // the reply stays on the requester's flow
  transport_.send(std::move(rep));
}

void CausalNode::serve_write(const Message& m) {
  Message rep;
  bool accepted = true;
  {
    std::unique_lock lock(mu_);
    if (failover_ != nullptr) {
      if (owner_of(m.addr) != id_) return;  // stale routing — sender retries
      if (!page_ready_locally(page_of(m.addr))) {
        begin_or_join_recovery(page_of(m.addr), m, lock);
        return;
      }
    } else {
      CM_ASSERT_MSG(owner_of(m.addr) == id_, "WRITE routed to non-owner");
    }
    // VT_i := update(VT_i, VT) — the owner learns the writer's causal past.
    vt_.update(m.stamp);

    Cell& cur = owned_cell(m.addr);
    // Deadline-retry idempotency: a retried WRITE whose first copy already
    // landed (the reply was lost or late) must not re-install — the stored
    // stamp is the *merged* clock, so re-applying the issue stamp could
    // regress it.
    //
    // Two writes from the SAME writer are ordered exactly by their tag seq
    // (one writer's issue stamps are pointwise monotone), so a smaller or
    // equal seq means "applied here before, and possibly since overwritten
    // by the writer's own later write": re-ack. A larger seq MUST install,
    // even when our cell's stamp dominates the incoming issue stamp — the
    // clock counts write ATTEMPTS at issue time, and a writer's increment
    // for write B leaks through its own owner-side replies to third
    // parties faster than B travels its FIFO channel; a third party's
    // unrelated write can then carry B's component into our merged cell
    // stamp while B is still in flight. Classifying B by stamp here would
    // silently drop the newest write in its writer's program order and
    // leave the overwritten predecessor readable forever (stale-read
    // violation, reproduced by the async property stress configs).
    //
    // For DIFFERENT writers the stamp test stands: a first-time write
    // whose issue stamp our cell strictly dominates is concurrent with the
    // cell, and dropping it is observably an immediate overwrite — nobody
    // can have read it, and its writer reading the standing value later is
    // a legal serialization of concurrent writes.
    const bool same_writer = !cur.tag.is_initial() &&
                             cur.tag.writer == m.tag.writer;
    const bool already =
        cur.tag == m.tag || (same_writer ? m.tag.seq < cur.tag.seq
                                         : m.stamp.before(cur.stamp));
    if (!already && cfg_.conflict == ConflictPolicy::kOwnerWins &&
        cur.tag.writer == id_ && cur.stamp.concurrent_with(m.stamp)) {
      // Section 4.2: a remote write concurrent with a value the owner itself
      // wrote loses. (A write whose stamp dominates cur.stamp has seen the
      // owner's value and legitimately overwrites it.)
      accepted = false;
    }
    if (accepted && !already) {
      cur.value = m.value;
      cur.stamp = vt_;  // M_i[x] := (v, VT_i) with the merged clock
      cur.tag = m.tag;
      // The installed value is now locally readable; its causal past (the
      // writer's issue stamp) feeds the mid-flight stale-install guard.
      served_merges_.update(m.stamp);
      // Durability point: the apply is on disk before the reply leaves, so
      // a crash after the writer unblocks can always replay it.
      persist_apply(m.addr, cur);
      // The owner-side take-effect point of the remote write — the middle
      // node of the correlated flow (send -> recv -> apply -> reply).
      if (obs::Tracer* t = stats_.tracer()) {
        t->record(obs::TraceEventKind::kApply,
                  static_cast<std::uint8_t>(MsgType::kWrite), m.from, m.addr,
                  &vt_, 0, 0, m.trace_id);
      }
      // The remote write is a causal interaction: invalidate cached values
      // that are now provably overwritable (M_i[y].VT < VT_i).
      invalidate_cache(vt_, page_of(m.addr), m.trace_id);
    } else {
      // The request's value was NOT installed (idempotent re-ack, shadowed
      // duplicate, or owner-wins rejection). Tell the writer what actually
      // stands so its recovery log records a value that exists, not one
      // that was never certified — the reply tag stays the REQUEST tag for
      // the writer's own-write bookkeeping.
      rep.cells.push_back(CellUpdate{m.addr, cur.value, cur.tag});
    }
    rep.stamp = vt_;
    rep.value = accepted && !already ? m.value : cur.value;
    stats_.bump(Counter::kMsgWriteReply);
  }
  rep.type = MsgType::kWriteReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  rep.addr = m.addr;
  rep.tag = m.tag;
  rep.accepted = accepted;
  rep.trace_id = m.trace_id;  // the reply stays on the writer's flow
  transport_.send(std::move(rep));
}

void CausalNode::complete_pending(const Message& m) {
  std::unique_lock lock(mu_);
  auto it = pending_.find(m.request_id);
  if (it == pending_.end()) {
    // A reply that outlived its deadline (the round timed out and abandoned
    // the slot) or a duplicate. Harmless to drop: the retry re-fetches any
    // state this reply carried, and a retried write is idempotent at the
    // owner. Without deadlines this cannot happen — keep the old invariant.
    CM_ASSERT_MSG(cfg_.request_timeout.count() > 0,
                  "reply for unknown request");
    return;
  }

  if (m.type == MsgType::kSyncReply) {
    // rejoin()'s clock resync: merge the peer's vector time and wake the
    // rejoin loop. No cache or own-write bookkeeping is involved.
    vt_.update(m.stamp);
    std::promise<Message> prom = std::move(it->second.reply);
    pending_.erase(it);
    lock.unlock();
    prom.set_value(m);
    return;
  }

  if (m.type == MsgType::kWriteReply) {
    // Resolve this write in the per-page requirement bookkeeping (see
    // own_writes_): certified writes raise the floor, rejected ones just
    // stop being owed.
    if (auto ow = own_writes_.find(page_of(m.addr)); ow != own_writes_.end()) {
      ow->second.outstanding.erase(m.tag.seq);
      if (m.accepted) {
        ow->second.accepted_floor =
            std::max(ow->second.accepted_floor, m.tag.seq);
      }
    }
  }

  if (m.type == MsgType::kReadReply) {
    // A reply that predates one of our own (issued, possibly in-flight)
    // writes to this page must not take effect: the read is ordered after
    // that write in this node's program order. Retry — the re-sent READ is
    // FIFO-behind our WRITE at the owner, so this terminates (a rejected
    // write lowers the requirement when its W_REPLY resolves).
    const auto own = own_writes_.find(page_of(m.addr));
    bool predates_own_write =
        own != own_writes_.end() && m.stamp[id_] < own->second.required();
    // The stamp test alone is not leak-proof: the reply stamp is the
    // owner-side join, which sibling cells and reply-borne clock leakage
    // can inflate past our seq while the addressed cell itself still holds
    // one of our OLDER writes (possible only across failover re-elections,
    // hence page_size == 1 — without failover the reply is FIFO-ordered
    // behind every own write it must cover). Tags cannot be inflated: our
    // own write below the page requirement can never legally be read
    // after the newer write was issued (own writes are totally ordered).
    if (!predates_own_write && own != own_writes_.end() &&
        cfg_.page_size == 1) {
      for (const CellUpdate& cell : m.cells) {
        if (cell.addr == m.addr && cell.tag.writer == id_ &&
            cell.tag.seq < own->second.required()) {
          predates_own_write = true;
        }
      }
    }
    if (predates_own_write) {
      Message req;
      req.type = MsgType::kRead;
      req.from = id_;
      req.to = owner_of(m.addr);
      req.request_id = m.request_id;  // keep the same pending slot
      req.addr = m.addr;
      req.trace_id = it->second.trace_id;  // still the same operation's flow
      stats_.bump(Counter::kMsgReadRequest);
      lock.unlock();
      transport_.send(std::move(req));
      return;
    }
  }

  if (it->second.start_ns != 0) {
    stats_.record_latency(LatencyMetric::kOwnerRttNs,
                          OpTiming::now_ns() - it->second.start_ns);
  }

  if (it->second.async) {
    // Background certification of a non-blocking write: merge the owner's
    // clock and release any flush() waiter.
    vt_.update(m.stamp);
    CM_ASSERT_MSG(m.accepted, "async write rejected (policy forbids this)");
    // A reply carrying a cell means OUR value was not installed (shadowed
    // duplicate): log the standing cell the owner reported, never a value
    // that exists nowhere — the recovery log feeds elections.
    if (m.cells.empty()) {
      log_observe(m.addr, Cell{m.value, m.stamp, m.tag});
    } else {
      log_observe(m.addr, Cell{m.cells.front().value, m.stamp,
                               m.cells.front().tag});
    }
    pending_.erase(it);
    CM_ASSERT(outstanding_async_ > 0);
    if (--outstanding_async_ == 0) flush_cv_.notify_all();
    return;
  }
  std::promise<Message> prom = std::move(it->second.reply);
  const std::uint64_t op_start_ns = it->second.start_ns;
  const VectorClock serve_snapshot = std::move(it->second.serve_snapshot);
  pending_.erase(it);

  // Apply the reply HERE, on the delivery thread, so the install/sweep is
  // atomic with respect to — and FIFO-ordered against — owner servicing.
  // (If the blocked application thread applied it after wakeup, a WRITE
  // service arriving after this reply could run its invalidation sweep
  // before the stale install landed: a causal violation.)
  Message result = m;
  if (m.type == MsgType::kReadReply) {
    // Fig. 4: VT_i := update(VT_i, VT'); M_i[x] := (v', VT'); invalidate all
    // cached values strictly older than VT'.
    CM_ASSERT(m.cells.size() == cfg_.page_size);
    const std::uint64_t pg = page_of(m.addr);
    vt_.update(m.stamp);
    // The stale-reply retry above guarantees this reply covers every own
    // write to the page, so installing the owner's cells verbatim can never
    // regress this node's program order.
    CachedPage cp;
    cp.stamp = m.stamp;
    cp.cells.reserve(cfg_.page_size);
    for (const CellUpdate& cell : m.cells) {
      cp.cells.push_back(Cell{cell.value, m.stamp, cell.tag});
    }
    const Cell chosen = cp.cells[m.addr - page_base(pg)];
    log_observe(m.addr, chosen);
    // Mid-flight staleness: the reply was SERVED at some owner-side point,
    // but lands here after any number of local events. If a WRITE service
    // (or recovery election) installed a value into this node's memory
    // while the READ was in flight, and that install's causal past is not
    // covered by the reply stamp, then this reply's cells may already be
    // overwritten in the past of something a sibling thread can read
    // locally — and the install below would land AFTER the sweep that
    // should have dropped it. Returning the value is still safe (it was
    // ordered before those installs at the owner and this thread observed
    // nothing in between), but the copy must not be CACHED.
    bool serve_stale = false;
    for (std::size_t k = 0; k < n_; ++k) {
      if (served_merges_[k] > std::max(serve_snapshot[k], m.stamp[k])) {
        serve_stale = true;
      }
    }
    if (!cfg_.read_through) {
      if (serve_stale) {
        // Sweep with no exemption — the pre-existing copy of pg (if any)
        // gets no fresh replacement, so it must not outlive the threshold.
        invalidate_cache(m.stamp, kNoPage, m.trace_id);
        stats_.bump(Counter::kStaleInstallSkipped);
      } else {
        invalidate_cache(m.stamp, pg, m.trace_id);
        served_merges_.update(m.stamp);
        install_page(pg, std::move(cp));
        evict_over_capacity();
      }
    }
    // The read returns the post-merge cell and is observed at its effect
    // point, so the recorded per-node order is the order effects happened.
    result.value = chosen.value;
    result.tag = chosen.tag;
    if (observer_ != nullptr) {
      observer_->on_read(id_, m.addr, chosen.value, chosen.tag,
                         OpTiming{op_start_ns, OpTiming::now_ns()});
    }
  } else {
    CM_ASSERT(m.type == MsgType::kWriteReply);
    vt_.update(m.stamp);
    const std::uint64_t pg = page_of(m.addr);
    auto pit = cache_.find(pg);
    Cell* cur = pit != cache_.end()
                    ? &pit->second.cells[m.addr - page_base(pg)]
                    : nullptr;
    if (m.accepted) {
      // Fig. 4 writer side: M_i[x] := (v, VT_i). Under per-operation
      // atomicity VT_i equals update(increment_result, VT'), and VT'
      // already dominates the issue stamp (the owner merged it before
      // replying) — so the certified write's true stamp is exactly m.stamp.
      // The value itself was installed at issue time; here we only refresh
      // the stamp, and only if the cell still holds *this* write — a newer
      // local write or a newer fetch must not be regressed, and a cell
      // invalidated in flight stays invalid (the owner serves fresh copies).
      if (cur != nullptr && cur->tag == m.tag) {
        cur->stamp = m.stamp;
        if (cfg_.page_size == 1) pit->second.stamp = m.stamp;
      }
      // A reply carrying a cell reports the standing value (our write was
      // recognized but not installed): the recovery log must record what
      // exists, not what was shadowed.
      if (m.cells.empty()) {
        log_observe(m.addr, Cell{m.value, m.stamp, m.tag});
      } else {
        log_observe(m.addr, Cell{m.cells.front().value, m.stamp,
                                 m.cells.front().tag});
      }
    } else {
      // Owner-wins resolution rejected the write: drop the local copy (if
      // it is still this write) so a later read fetches the favored value.
      if (cur != nullptr && cur->tag == m.tag) {
        erase_page(pit);
      }
      // The favored value the owner reported is certified state we have
      // now observed — election material like any other reply.
      if (!m.cells.empty()) {
        log_observe(m.addr, Cell{m.cells.front().value, m.stamp,
                                 m.cells.front().tag});
      }
    }
  }

  lock.unlock();
  prom.set_value(std::move(result));
}

// --------------------------------------------------------------------------
// Crash tolerance: deadlines, failover routing, recovery elections, rejoin
// --------------------------------------------------------------------------

void CausalNode::attach_failover(FailoverDirectory* dir) {
  CM_EXPECTS(dir != nullptr);
  CM_EXPECTS_MSG(cfg_.page_size == 1,
                 "failover requires the per-location protocol (page_size 1)");
  failover_ = dir;
  if (persist_ != nullptr) failover_->set_durable(id_, true);
}

void CausalNode::attach_persist(persist::Store* store) {
  CM_EXPECTS(store != nullptr);
  persist_ = store;
  // Durable nodes are preferred failover successors (either attach order).
  if (failover_ != nullptr) failover_->set_durable(id_, true);
}

void CausalNode::persist_apply(Addr x, const Cell& c) {
  if (persist_ == nullptr) return;
  persist_->append(persist::DurableCell{x, c.value, c.tag, c.stamp},
                   write_seq_);
  if (persist_->checkpoint_due()) checkpoint_locked();
}

bool CausalNode::checkpoint_locked() {
  std::vector<persist::DurableCell> cells;
  cells.reserve(owned_.size());
  for (const auto& [addr, c] : owned_) {
    cells.push_back(persist::DurableCell{addr, c.value, c.tag, c.stamp});
  }
  const bool ok = persist_->checkpoint(cells, vt_, write_seq_);
  if (obs::Tracer* t = stats_.tracer()) {
    t->record(obs::TraceEventKind::kCheckpoint, 0, kNoNode, cells.size(),
              &vt_);
  }
  return ok;
}

bool CausalNode::checkpoint_now() {
  std::unique_lock lock(mu_);
  if (persist_ == nullptr) return false;
  return checkpoint_locked();
}

bool CausalNode::page_ready_locally(std::uint64_t pg) const {
  if (failover_ == nullptr) return true;
  if (recovered_pages_.contains(pg)) return true;
  // An incarnation that lost its disk serves nothing it didn't re-elect:
  // base ownership no longer implies having the page's state.
  if (lost_disk_epoch_) return false;
  return failover_->base_owner(page_base(pg)) == id_;
}

bool CausalNode::await_reply(std::future<Message>& fut, std::uint64_t rid,
                             std::uint64_t deadline_ns) {
  const auto ready = [&fut] {
    return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  if (coop::enabled()) {
    // Simulated run: park until the reply is fulfilled (by complete_pending
    // on the scheduler thread) or virtual time reaches the deadline — both
    // conditions advance only under scheduler control.
    while (!ready()) {
      if (deadline_ns != 0 && obs::now_ns() >= deadline_ns) break;
      coop::park(ready, deadline_ns, "await_reply");
    }
    if (ready()) return true;
  } else if (deadline_ns == 0) {
    fut.wait();
    return true;
  } else {
    // Deadlines are virtual time (obs::now_ns()), so FakeClock tests control
    // expiry deterministically; the short real-time poll only paces the
    // check.
    for (;;) {
      if (fut.wait_for(std::chrono::microseconds(200)) ==
          std::future_status::ready) {
        return true;
      }
      if (obs::now_ns() >= deadline_ns) break;
    }
  }
  std::unique_lock lock(mu_);
  if (!pending_.contains(rid)) {
    // complete_pending already claimed the slot and is mid-application:
    // the promise is about to be (or was just) fulfilled. Wait it out —
    // only complete_pending and this function ever erase a pending slot.
    lock.unlock();
    fut.wait();
    return true;
  }
  // Abandon the round: a reply arriving after this is dropped by the
  // tolerant lookup in complete_pending.
  pending_.erase(rid);
  return false;
}

void CausalNode::on_round_timeout(NodeId target, Addr x,
                                  std::uint64_t epoch_at_send) {
  (void)x;
  stats_.bump(Counter::kFoRequestTimeout);
  // suspect() does its own counting/tracing and is idempotent; self-sends
  // cannot time out from unreachability, only from recovery queueing.
  if (failover_ == nullptr || target == id_) return;
  // A timed-out round is evidence about the target only if our OWN endpoint
  // was up for the whole round: if we crashed after sending (the request or
  // the reply died with our endpoint), the silence is self-inflicted. "Up
  // now AND same incarnation as at send" implies up throughout — the epoch
  // bumps on every crash and restart, so any dip in between changes it.
  if (!transport_.endpoint_up(id_) ||
      transport_.endpoint_epoch(id_) != epoch_at_send) {
    return;
  }
  failover_->suspect(target, id_);
}

void CausalNode::log_observe(Addr x, const Cell& c) {
  if (failover_ == nullptr) return;  // fault-free path stays allocation-free
  auto [it, fresh] = recovery_log_.try_emplace(x, c);
  if (!fresh && fresher_stamp(c.stamp, it->second.stamp)) it->second = c;
}

void CausalNode::serve_sync(const Message& m) {
  Message rep;
  {
    std::unique_lock lock(mu_);
    rep.stamp = vt_;
    stats_.bump(Counter::kFoSyncReply);
  }
  rep.type = MsgType::kSyncReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  transport_.send(std::move(rep));
}

void CausalNode::serve_recover(const Message& m) {
  Message rep;
  {
    std::unique_lock lock(mu_);
    // Answer from the monotone observation log only: cache_ entries can be
    // invalidated (and so roll backwards); the log can't.
    if (auto it = recovery_log_.find(m.addr); it != recovery_log_.end()) {
      rep.accepted = true;
      rep.value = it->second.value;
      rep.stamp = it->second.stamp;
      rep.tag = it->second.tag;
    } else {
      rep.accepted = false;
      rep.stamp = VectorClock(n_);
    }
    stats_.bump(Counter::kFoRecoverReply);
  }
  rep.type = MsgType::kRecoverReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  rep.addr = m.addr;
  transport_.send(std::move(rep));
}

void CausalNode::serve_catchup(const Message& m) {
  Message rep;
  {
    std::unique_lock lock(mu_);
    rep.accepted = false;
    rep.stamp = VectorClock(n_);
    // serve_recover's source (the monotone observation log), filtered by
    // the requester's durable bound: a copy the bound already covers would
    // lose its election anyway, so the reply stays payload-free. The same
    // deterministic fresher_stamp order decides both, so "peer sends" and
    // "requester would elect" agree exactly.
    if (auto it = recovery_log_.find(m.addr);
        it != recovery_log_.end() && fresher_stamp(it->second.stamp, m.stamp)) {
      rep.accepted = true;
      rep.value = it->second.value;
      rep.stamp = it->second.stamp;
      rep.tag = it->second.tag;
    }
    stats_.bump(Counter::kPersistCatchupReply);
  }
  rep.type = MsgType::kCatchupReply;
  rep.from = id_;
  rep.to = m.from;
  rep.request_id = m.request_id;
  rep.addr = m.addr;
  transport_.send(std::move(rep));
}

void CausalNode::on_recover_reply(const Message& m) {
  std::unique_lock lock(mu_);
  const std::uint64_t pg = page_of(m.addr);
  auto it = recovering_.find(pg);
  if (it == recovering_.end()) return;  // duplicate / post-election straggler
  PageRecovery& rec = it->second;
  rec.expected.erase(m.from);
  if (m.accepted &&
      (!rec.has_candidate || fresher_stamp(m.stamp, rec.best.stamp))) {
    rec.best = Cell{m.value, m.stamp, m.tag};
    rec.has_candidate = true;
  }
  if (rec.expected.empty()) finish_recovery(pg, lock);
}

void CausalNode::begin_or_join_recovery(std::uint64_t pg, const Message& m,
                                        std::unique_lock<std::mutex>& lock) {
  auto [it, fresh] = recovering_.try_emplace(pg);
  PageRecovery& rec = it->second;
  // Queue the request behind the election. Dedupe by (sender, rid): the
  // reliable layer can deliver a request only once per rid, but a sender's
  // deadline retry arrives under a NEW rid — the duplicate replay is
  // harmless (WRITEs are idempotent at the owner, and a reply to an
  // abandoned rid is dropped by the tolerant pending lookup).
  if (rec.queued.insert({m.from, m.request_id}).second) {
    rec.deferred.push_back(m);
  }
  if (fresh) {
    // Seed the election with our own freshest observation, then poll every
    // live peer for theirs.
    if (auto lg = recovery_log_.find(page_base(pg));
        lg != recovery_log_.end()) {
      rec.best = lg->second;
      rec.has_candidate = true;
    }
    for (NodeId p : failover_->live_peers(id_)) rec.expected.insert(p);
    // With durable storage and a seed, the election becomes a writestamp-
    // bounded catch-up: peers send a full copy only when theirs would beat
    // the seed, so a restored page costs payload-free round trips instead
    // of one full copy per peer. (Without persist the plain RECOVER poll is
    // kept even when a seed exists — identical outcome, and the recovery
    // counter accounting of existing deployments stays untouched.)
    const bool bounded = persist_ != nullptr && rec.has_candidate;
    if (bounded) {
      if (obs::Tracer* t = stats_.tracer()) {
        t->record(obs::TraceEventKind::kCatchup, 0, kNoNode, page_base(pg),
                  &rec.best.stamp);
      }
    }
    for (const NodeId p : rec.expected) {
      Message req;
      req.type = bounded ? MsgType::kCatchupRequest : MsgType::kRecover;
      req.from = id_;
      req.to = p;
      req.request_id = 0;  // routed by type, not by pending slot
      req.addr = page_base(pg);
      if (bounded) {
        req.stamp = rec.best.stamp;
        stats_.bump(Counter::kPersistCatchupRequest);
      } else {
        stats_.bump(Counter::kFoRecoverRequest);
      }
      transport_.send(std::move(req));
    }
  } else {
    // Prune peers that died since the election began — their RECOVER_REPLY
    // will never come. The pruning is driven by retried requests landing
    // here, so a stalled election makes progress exactly when someone still
    // wants the page.
    for (auto pit = rec.expected.begin(); pit != rec.expected.end();) {
      if (failover_->is_down(*pit)) {
        pit = rec.expected.erase(pit);
      } else {
        ++pit;
      }
    }
  }
  if (rec.expected.empty()) {
    finish_recovery(pg, lock);
    return;
  }
  lock.unlock();
}

void CausalNode::finish_recovery(std::uint64_t pg,
                                 std::unique_lock<std::mutex>& lock) {
  auto it = recovering_.find(pg);
  CM_ASSERT(it != recovering_.end());
  PageRecovery rec = std::move(it->second);
  recovering_.erase(it);
  const Addr base = page_base(pg);
  // Install the election winner as the owned copy. No candidate anywhere
  // means nobody ever observed a certified value for the page: the paper's
  // distinguished initial write stands (owned_cell conjures it on demand).
  if (rec.has_candidate) {
    Cell& c = owned_cell(base);
    c = rec.best;
    vt_.update(rec.best.stamp);
    // The elected value is now locally readable (mid-flight guard input).
    served_merges_.update(rec.best.stamp);
    // The election winner is an owner apply like any other: durable before
    // the deferred requests (and their replies) go out.
    persist_apply(base, c);
    // Taking over the page is a causal interaction like serving a WRITE:
    // our cached copies that the winner's past overwrites must go.
    invalidate_cache(vt_, pg);
  }
  recovered_pages_.insert(pg);
  if (obs::Tracer* t = stats_.tracer()) {
    t->record(obs::TraceEventKind::kRecover, 0, kNoNode, base, &vt_);
  }
  std::vector<Message> deferred = std::move(rec.deferred);
  // Replay outside the mutex: the deferred requests run the normal service
  // path (which re-locks) and their replies re-enter the transport.
  lock.unlock();
  for (const Message& dm : deferred) on_message(dm);
}

bool CausalNode::rejoin() {
  CM_EXPECTS_MSG(failover_ != nullptr, "rejoin requires attach_failover");
  struct Wait {
    NodeId peer;
    std::uint64_t rid;
    std::future<Message> fut;
  };
  std::vector<Wait> waits;
  std::uint64_t epoch_at_send = 0;
  {
    std::unique_lock lock(mu_);
    epoch_at_send = transport_.endpoint_epoch(id_);
    // Volatile state dies with the incarnation. Owned cells for pages that
    // migrated away while we were down are dropped (their successor is now
    // authoritative); our never-migrated pages survive — the crash model is
    // transport-level, standing in for a reload from stable storage.
    cache_.clear();
    lru_.clear();
    own_writes_.clear();
    recovery_log_.clear();
    recovered_pages_.clear();
    recovering_.clear();
    read_only_pages_.clear();
    for (auto oit = owned_.begin(); oit != owned_.end();) {
      if (failover_->owner(oit->first) != id_) {
        oit = owned_.erase(oit);
      } else {
        ++oit;
      }
    }
    // NOT pending_ / outstanding_async_: application threads may still hold
    // futures from before the crash; their rounds expire via await_reply.
    //
    // The clock restarts from the stable write counter: our own component
    // must stay ahead of every write this incarnation will issue (tags are
    // {id, ++write_seq_}), and the peers' components are re-learned below.
    lost_disk_epoch_ = false;
    persist::RecoveredState durable;
    if (persist_ != nullptr) {
      // Honest crash: with durable storage the in-memory cells do NOT
      // survive the incarnation — the transport-crash model's "memory
      // survives" stand-in is replaced by a real reload. Everything this
      // incarnation may serve comes from checkpoint + WAL, complete for
      // every acknowledged write under sync_every_append (every owner apply
      // was on disk before its reply left, and a down owner certifies
      // nothing while down).
      owned_.clear();
      durable = persist_->recover();
      write_seq_ = std::max(write_seq_, durable.write_seq);
      if (obs::Tracer* t = stats_.tracer()) {
        t->record(obs::TraceEventKind::kWalReplay, 0, kNoNode,
                  durable.wal_records, &durable.vt);
      }
      if (!durable.any()) {
        // Nothing durable came back (media loss, or a crash before the
        // first apply): serving base-owned pages from conjured initial
        // cells could roll back values peers already read, so every page
        // must first win its election (see page_ready_locally).
        lost_disk_epoch_ = true;
      }
    }
    std::vector<std::uint64_t> comps(n_, 0);
    comps[id_] = write_seq_;
    vt_ = VectorClock(comps);
    if (persist_ != nullptr) {
      // vt_ must dominate the stamp of every restored (= applied) cell;
      // durable.vt is exactly that join.
      vt_.update(durable.vt);
      for (persist::DurableCell& dc : durable.cells) {
        const std::uint64_t pg = page_of(dc.addr);
        if (failover_->owner(dc.addr) != id_) {
          // The page migrated away while we were down — its successor is
          // authoritative now. The durable copy still seeds the observation
          // log: if the successor dies before anyone re-reads the page, the
          // next election can be won from here instead of losing the data.
          log_observe(dc.addr, Cell{dc.value, dc.stamp, dc.tag});
          continue;
        }
        Cell restored{dc.value, std::move(dc.stamp), dc.tag};
        log_observe(dc.addr, restored);
        owned_[dc.addr] = std::move(restored);
        if (failover_->base_owner(page_base(pg)) != id_) {
          // A page acquired by failover in a previous incarnation: restored
          // state stands in for the election it already won.
          recovered_pages_.insert(pg);
        }
      }
    }
    for (const NodeId p : failover_->live_peers(id_)) {
      const std::uint64_t rid = next_rid_++;
      std::future<Message> fut =
          register_pending(rid, /*async=*/false, /*start_ns=*/0);
      Message req;
      req.type = MsgType::kSyncRequest;
      req.from = id_;
      req.to = p;
      req.request_id = rid;
      stats_.bump(Counter::kFoSyncRequest);
      transport_.send(std::move(req));
      waits.push_back(Wait{p, rid, std::move(fut)});
    }
  }
  const std::uint64_t timeout_ns =
      cfg_.request_timeout.count() > 0
          ? static_cast<std::uint64_t>(cfg_.request_timeout.count())
          : 500'000'000ULL;  // un-configured systems still must not hang
  bool all = true;
  for (Wait& w : waits) {
    if (!await_reply(w.fut, w.rid, obs::now_ns() + timeout_ns)) {
      // Same endpoint-liveness guard as on_round_timeout: if we crashed
      // again mid-rejoin, the sync silence says nothing about the peer.
      if (transport_.endpoint_up(id_) &&
          transport_.endpoint_epoch(id_) == epoch_at_send) {
        failover_->suspect(w.peer, id_);
      }
      all = false;
    }
  }
  if (obs::Tracer* t = stats_.tracer()) {
    std::unique_lock lock(mu_);
    t->record(obs::TraceEventKind::kRestart, 0, kNoNode, 0, &vt_);
  }
  return all;
}

// --------------------------------------------------------------------------
// Cache bookkeeping
// --------------------------------------------------------------------------

CausalNode::Cell& CausalNode::owned_cell(Addr x) {
  auto it = owned_.find(x);
  if (it == owned_.end()) {
    it = owned_
             .try_emplace(x, Cell{kInitialValue, VectorClock(n_), WriteTag{}})
             .first;
  }
  return it->second;
}

void CausalNode::install_page(std::uint64_t page, CachedPage&& cp) {
  if (auto it = cache_.find(page); it != cache_.end()) erase_page(it);
  lru_.push_front(page);
  cp.lru_it = lru_.begin();
  cache_.try_emplace(page, std::move(cp));
}

void CausalNode::cache_own_write(Addr x, Value v, const WriteTag& tag,
                                 const VectorClock& stamp) {
  const std::uint64_t pg = page_of(x);
  if (auto it = cache_.find(pg); it != cache_.end()) {
    Cell& c = it->second.cells[x - page_base(pg)];
    c.value = v;
    c.stamp = stamp;
    c.tag = tag;
    if (cfg_.page_size == 1) {
      // Fig. 4: M_i[x] := (v, VT_i) — the unit's stamp is the write's stamp.
      it->second.stamp = stamp;
    }
    // Multi-cell pages: deliberately do NOT advance the page stamp. The
    // write's reply stamp carries the owner's current knowledge — including
    // overwrites of this page's *other* cells that we have not fetched —
    // so merging it would shield those stale sibling cells from the very
    // invalidation sweeps that must kill them. Keeping the fetch-time stamp
    // is conservative: the page (with our fresh cell) may be dropped early
    // and re-fetched, never read stale.
    touch_lru(it->second);
    return;
  }
  if (cfg_.page_size == 1) {
    // Fig. 4 caches the certified write at the writer. With multi-location
    // pages we cannot conjure the rest of the page, so (page mode only) an
    // uncached written page stays uncached until the next read miss.
    CachedPage cp;
    cp.stamp = stamp;
    cp.cells.push_back(Cell{v, stamp, tag});
    install_page(pg, std::move(cp));
    evict_over_capacity();
  }
}

void CausalNode::invalidate_cache(const VectorClock& threshold,
                                  std::uint64_t keep_page,
                                  std::uint64_t trace_id) {
  obs::Tracer* const tr = stats_.tracer();
  const bool flush_all = cfg_.invalidation == InvalidationStrategy::kFlushAll;
  const bool any_read_only = !read_only_pages_.empty();
  for (auto it = cache_.begin(); it != cache_.end();) {
    const bool keep =
        it->first == keep_page ||
        (any_read_only && read_only_pages_.contains(it->first));
    const bool drop = !keep && (flush_all || it->second.stamp.before(threshold));
    if (drop) {
      stats_.bump(Counter::kInvalidationApplied);
      if (tr != nullptr) {
        tr->record(obs::TraceEventKind::kInvalidate, 0, kNoNode,
                   page_base(it->first), &threshold, 0, 0, trace_id);
      }
      lru_.erase(it->second.lru_it);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void CausalNode::erase_page(FlatHashMap<std::uint64_t, CachedPage>::iterator it) {
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

void CausalNode::touch_lru(CachedPage& cp) {
  lru_.splice(lru_.begin(), lru_, cp.lru_it);
}

void CausalNode::evict_over_capacity() {
  while (cache_.size() > cfg_.cache_capacity_pages) {
    const std::uint64_t victim = lru_.back();
    stats_.bump(Counter::kDiscard);
    if (obs::Tracer* t = stats_.tracer()) {
      t->record(obs::TraceEventKind::kDiscard, 0, kNoNode, page_base(victim),
                &vt_);
    }
    auto it = cache_.find(victim);
    CM_ASSERT(it != cache_.end());
    erase_page(it);
  }
}

std::future<Message> CausalNode::register_pending(std::uint64_t rid,
                                                  bool async,
                                                  std::uint64_t start_ns,
                                                  std::uint64_t trace_id) {
  auto [it, inserted] = pending_.try_emplace(rid);
  CM_ASSERT(inserted);
  it->second.async = async;
  it->second.start_ns = start_ns;
  it->second.trace_id = trace_id;
  it->second.serve_snapshot = served_merges_;
  return it->second.reply.get_future();
}

void CausalNode::notify_unreachable(MsgType op, NodeId target, Addr x) {
  if (obs::FlightRecorder* fr = stats_.flight_recorder()) {
    fr->on_unreachable(id_, target, static_cast<std::uint8_t>(op), x);
  }
}

}  // namespace causalmem

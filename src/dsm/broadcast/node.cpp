#include "causalmem/dsm/broadcast/node.hpp"

#include "causalmem/common/coop.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/obs/trace.hpp"

namespace causalmem {

BroadcastNode::BroadcastNode(NodeId id, std::size_t n,
                             const Ownership& /*ownership*/,
                             Transport& transport, NodeStats& stats,
                             BroadcastConfig config, OpObserver* observer)
    : id_(id),
      n_(n),
      cfg_(config),
      transport_(transport),
      stats_(stats),
      observer_(observer),
      delivered_(n, 0) {
  CM_EXPECTS(id < n);
  transport_.register_node(id_, [this](const Message& m) { on_message(m); });
}

Value BroadcastNode::read(Addr x) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  std::unique_lock lock(mu_);
  stats_.bump(Counter::kReadHit);  // replica reads are always local
  if (tr != nullptr) {
    tr->record(obs::TraceEventKind::kReadHit, 0, kNoNode, x);
  }
  const auto it = store_.find(x);
  const Value v = it != store_.end() ? it->second.value : kInitialValue;
  const WriteTag tag = it != store_.end() ? it->second.tag : WriteTag{};
  const OpTiming done = op_start.close();
  const std::uint64_t dur = done.end_ns - done.start_ns;
  stats_.record_latency(LatencyMetric::kReadNs, dur);
  if (tr != nullptr) {
    tr->record(obs::TraceEventKind::kReadDone, 0, kNoNode, x, nullptr,
               done.start_ns, dur);
  }
  if (observer_ != nullptr) {
    observer_->on_read(id_, x, v, tag, done);
  }
  return v;
}

void BroadcastNode::write(Addr x, Value v) {
  const OpTiming op_start = OpTiming::begin();
  obs::Tracer* const tr = stats_.tracer();
  Message m;
  {
    std::unique_lock lock(mu_);
    stats_.bump(Counter::kWriteLocal);
    const WriteTag tag{id_, ++write_seq_};
    // Causal broadcast stamp: delivered-counts vector with our own write
    // counted. Receivers deliver when they have seen everything we had.
    ++delivered_[id_];
    ++applied_total_;
    store_[x] = StoredCell{v, tag};
    const std::uint64_t tid = new_trace_id();
    const OpTiming done = op_start.close();
    const std::uint64_t dur = done.end_ns - done.start_ns;
    stats_.record_latency(LatencyMetric::kWriteNs, dur);
    if (tr != nullptr) {
      tr->record(obs::TraceEventKind::kWriteDone, 0, kNoNode, x, nullptr,
                 done.start_ns, dur, tid);
    }
    if (observer_ != nullptr) {
      observer_->on_write(id_, x, v, tag, true, done);
    }

    m.type = MsgType::kBroadcastUpdate;
    m.from = id_;
    m.addr = x;
    m.value = v;
    m.tag = tag;
    m.stamp = VectorClock(std::vector<std::uint64_t>(delivered_));
    m.trace_id = tid;  // every fan-out copy carries the write's flow id
  }
  applied_cv_.notify_all();
  for (NodeId peer = 0; peer < n_; ++peer) {
    if (peer == id_) continue;
    Message copy = m;
    copy.to = peer;
    stats_.bump(Counter::kMsgBroadcast);
    transport_.send(std::move(copy));
  }
}

bool BroadcastNode::discard(Addr /*x*/) { return false; }

std::uint64_t BroadcastNode::applied_count() const {
  std::unique_lock lock(mu_);
  return applied_total_;
}

std::uint64_t BroadcastNode::issued_count() const {
  std::unique_lock lock(mu_);
  return write_seq_;
}

void BroadcastNode::wait_applied(std::uint64_t target) {
  std::unique_lock lock(mu_);
  if (coop::enabled()) {
    // Simulated run: park on the applied-count instead of blocking the task
    // thread; updates are applied by handlers on the scheduler thread.
    while (applied_total_ < target) {
      lock.unlock();
      coop::park(
          [this, target] {
            std::scoped_lock probe(mu_);
            return applied_total_ >= target;
          },
          0, "wait_applied");
      lock.lock();
    }
    return;
  }
  applied_cv_.wait(lock, [&] { return applied_total_ >= target; });
}

void BroadcastNode::on_message(const Message& m) {
  CM_ASSERT(m.type == MsgType::kBroadcastUpdate);
  {
    std::unique_lock lock(mu_);
    if (!cfg_.causal_delivery) {
      // Ungated mode: apply immediately, ignoring the causal stamp. Only
      // the delivered-count for the sender is kept honest so issued/applied
      // accounting (and a later re-enable of gating) stays coherent.
      apply(m);
    } else {
      holdback_.push_back(m);
      drain_holdback();
    }
  }
  applied_cv_.notify_all();
}

bool BroadcastNode::deliverable(const Message& m) const {
  const NodeId sender = m.from;
  // ISIS-style rule: next-in-sequence from the sender, and we have already
  // delivered every write the sender had delivered when it sent.
  if (m.stamp[sender] != delivered_[sender] + 1) return false;
  for (NodeId k = 0; k < n_; ++k) {
    if (k == sender) continue;
    if (m.stamp[k] > delivered_[k]) return false;
  }
  return true;
}

void BroadcastNode::apply(const Message& m) {
  store_[m.addr] = StoredCell{m.value, m.tag};
  ++delivered_[m.from];
  ++applied_total_;
  // The replica-side take-effect point of the broadcast write — closes one
  // edge of the writer's fan-out flow.
  if (obs::Tracer* t = stats_.tracer()) {
    t->record(obs::TraceEventKind::kApply,
              static_cast<std::uint8_t>(MsgType::kBroadcastUpdate), m.from,
              m.addr, &m.stamp, 0, 0, m.trace_id);
  }
}

void BroadcastNode::drain_holdback() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      if (deliverable(*it)) {
        apply(*it);
        holdback_.erase(it);
        progressed = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

}  // namespace causalmem

#include "causalmem/stats/counters.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string_view>

namespace causalmem {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kMsgReadRequest: return "msg.read_request";
    case Counter::kMsgReadReply: return "msg.read_reply";
    case Counter::kMsgWriteRequest: return "msg.write_request";
    case Counter::kMsgWriteReply: return "msg.write_reply";
    case Counter::kMsgInvalidate: return "msg.invalidate";
    case Counter::kMsgInvalidateAck: return "msg.invalidate_ack";
    case Counter::kMsgBroadcast: return "msg.broadcast";
    case Counter::kReadHit: return "read.hit";
    case Counter::kReadMiss: return "read.miss";
    case Counter::kWriteLocal: return "write.local";
    case Counter::kWriteRemote: return "write.remote";
    case Counter::kInvalidationApplied: return "cache.invalidated";
    case Counter::kDiscard: return "cache.discarded";
    case Counter::kStaleInstallSkipped: return "cache.stale_install_skipped";
    case Counter::kSpinRefetch: return "spin.refetch";
    case Counter::kSpinTransition: return "spin.transition";
    case Counter::kNetRetransmit: return "net.retransmit";
    case Counter::kNetDupDropped: return "net.dup_dropped";
    case Counter::kNetAckSent: return "net.ack";
    case Counter::kNetFaultDrop: return "net.fault_drop";
    case Counter::kNetFaultDup: return "net.fault_dup";
    case Counter::kNetFaultDelay: return "net.fault_delay";
    case Counter::kNetSendFailed: return "net.send_failed";
    case Counter::kNetFrameError: return "net.frame_error";
    case Counter::kNetHeartbeat: return "net.heartbeat";
    case Counter::kNetPeerUnreachable: return "net.peer_unreachable";
    case Counter::kNetOutOfWindow: return "net.out_of_window";
    case Counter::kFoSuspect: return "fo.suspect";
    case Counter::kFoFailover: return "fo.failover";
    case Counter::kFoRecoverRequest: return "fo.recover_request";
    case Counter::kFoRecoverReply: return "fo.recover_reply";
    case Counter::kFoSyncRequest: return "fo.sync_request";
    case Counter::kFoSyncReply: return "fo.sync_reply";
    case Counter::kFoRequestTimeout: return "fo.request_timeout";
    case Counter::kFoUnreachable: return "fo.unreachable";
    case Counter::kPersistWalAppend: return "persist.wal_append";
    case Counter::kPersistWalReplayed: return "persist.wal_replayed";
    case Counter::kPersistWalTruncated: return "persist.wal_truncated";
    case Counter::kPersistCheckpoint: return "persist.checkpoint";
    case Counter::kPersistCkptRejected: return "persist.ckpt_rejected";
    case Counter::kPersistRestoredCells: return "persist.restored_cells";
    case Counter::kPersistCatchupRequest: return "persist.catchup_request";
    case Counter::kPersistCatchupReply: return "persist.catchup_reply";
    case Counter::kPersistCatchupFresher: return "persist.catchup_fresher";
    case Counter::kCounterCount: break;
  }
  return "unknown";
}

const char* latency_metric_name(LatencyMetric m) noexcept {
  switch (m) {
    case LatencyMetric::kReadNs: return "lat.read_ns";
    case LatencyMetric::kWriteNs: return "lat.write_ns";
    case LatencyMetric::kOwnerRttNs: return "lat.owner_rtt_ns";
    case LatencyMetric::kRetransmitDelayNs: return "lat.retransmit_delay_ns";
    case LatencyMetric::kMetricCount: break;
  }
  return "unknown";
}

std::uint64_t StatsSnapshot::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (is_message_counter(static_cast<Counter>(i))) total += values[i];
  }
  return total;
}

StatsSnapshot& StatsSnapshot::operator+=(const StatsSnapshot& other) noexcept {
  for (std::size_t i = 0; i < kNumCounters; ++i) values[i] += other.values[i];
  return *this;
}

StatsSnapshot operator-(StatsSnapshot lhs, const StatsSnapshot& rhs) noexcept {
  for (std::size_t i = 0; i < kNumCounters; ++i) lhs.values[i] -= rhs.values[i];
  return lhs;
}

std::string StatsSnapshot::to_string() const {
  // Two sections: protocol counters, then transport-recovery (net.*) cost.
  // E1's accounting keeps those separate, and so does the rendering.
  std::size_t name_w = 0;
  std::size_t value_w = 1;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (values[i] == 0) continue;
    name_w = std::max(
        name_w, std::string_view(counter_name(static_cast<Counter>(i))).size());
    value_w = std::max(value_w, std::to_string(values[i]).size());
  }
  std::ostringstream oss;
  const auto emit_section = [&](bool recovery, const char* header) {
    bool any = false;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      const auto c = static_cast<Counter>(i);
      if (values[i] == 0 || is_recovery_counter(c) != recovery) continue;
      if (!any && header != nullptr) oss << header << "\n";
      any = true;
      oss << std::left << std::setw(static_cast<int>(name_w))
          << counter_name(c) << " = " << std::right
          << std::setw(static_cast<int>(value_w)) << values[i] << "\n";
    }
  };
  emit_section(/*recovery=*/false, nullptr);
  emit_section(/*recovery=*/true, "-- recovery (net.*) --");
  return oss.str();
}

}  // namespace causalmem

#include "causalmem/stats/counters.hpp"

#include <sstream>

namespace causalmem {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kMsgReadRequest: return "msg.read_request";
    case Counter::kMsgReadReply: return "msg.read_reply";
    case Counter::kMsgWriteRequest: return "msg.write_request";
    case Counter::kMsgWriteReply: return "msg.write_reply";
    case Counter::kMsgInvalidate: return "msg.invalidate";
    case Counter::kMsgInvalidateAck: return "msg.invalidate_ack";
    case Counter::kMsgBroadcast: return "msg.broadcast";
    case Counter::kReadHit: return "read.hit";
    case Counter::kReadMiss: return "read.miss";
    case Counter::kWriteLocal: return "write.local";
    case Counter::kWriteRemote: return "write.remote";
    case Counter::kInvalidationApplied: return "cache.invalidated";
    case Counter::kDiscard: return "cache.discarded";
    case Counter::kSpinRefetch: return "spin.refetch";
    case Counter::kSpinTransition: return "spin.transition";
    case Counter::kNetRetransmit: return "net.retransmit";
    case Counter::kNetDupDropped: return "net.dup_dropped";
    case Counter::kNetAckSent: return "net.ack";
    case Counter::kNetFaultDrop: return "net.fault_drop";
    case Counter::kNetFaultDup: return "net.fault_dup";
    case Counter::kNetFaultDelay: return "net.fault_delay";
    case Counter::kNetSendFailed: return "net.send_failed";
    case Counter::kNetFrameError: return "net.frame_error";
    case Counter::kCounterCount: break;
  }
  return "unknown";
}

std::uint64_t StatsSnapshot::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (is_message_counter(static_cast<Counter>(i))) total += values[i];
  }
  return total;
}

StatsSnapshot& StatsSnapshot::operator+=(const StatsSnapshot& other) noexcept {
  for (std::size_t i = 0; i < kNumCounters; ++i) values[i] += other.values[i];
  return *this;
}

StatsSnapshot operator-(StatsSnapshot lhs, const StatsSnapshot& rhs) noexcept {
  for (std::size_t i = 0; i < kNumCounters; ++i) lhs.values[i] -= rhs.values[i];
  return lhs;
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (values[i] == 0) continue;
    oss << counter_name(static_cast<Counter>(i)) << "=" << values[i] << " ";
  }
  return oss.str();
}

}  // namespace causalmem

#include "causalmem/stats/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "causalmem/common/expect.hpp"

namespace causalmem {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  CM_EXPECTS(!headers_.empty());
}

void Table::set_align(std::size_t col, Align align) {
  CM_EXPECTS(col < aligns_.size());
  aligns_[col] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  CM_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ")
         << (aligns_[c] == Align::kLeft ? std::left : std::right)
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << std::right << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace causalmem

#include "causalmem/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "causalmem/common/expect.hpp"

namespace causalmem::obs {

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

void JsonWriter::append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CM_EXPECTS(!first_.empty());
  first_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CM_EXPECTS(!first_.empty());
  first_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  CM_EXPECTS(!first_.empty() && !after_key_);
  if (!first_.back()) out_.push_back(',');
  first_.back() = false;
  append_escaped(out_, k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  append_escaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CM_ASSERT(ec == std::errc());
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CM_ASSERT(ec == std::errc());
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CM_ASSERT(ec == std::errc());
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() && {
  CM_EXPECTS_MSG(first_.empty() && !after_key_, "unbalanced JSON writer");
  return std::move(out_);
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters after document";
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
      error_ += " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool consume(char c, const char* why) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(why);
    ++pos_;
    return true;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "expected ':'")) return false;
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs not combined —
          // the writer never emits them).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out.type = JsonValue::Type::kNumber;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, out.number);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace causalmem::obs

#include "causalmem/obs/correlate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "causalmem/obs/json.hpp"
#include "causalmem/obs/metrics_export.hpp"

namespace causalmem::obs {

namespace {

bool event_order(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
  if (a.node != b.node) return a.node < b.node;
  return a.seq < b.seq;
}

/// One directed message edge of a flow: (sender, receiver, message type).
/// Retransmissions of the same message collapse onto the same edge key.
std::uint64_t edge_key(NodeId from, NodeId to, std::uint8_t msg_type) {
  return static_cast<std::uint64_t>(from) << 24 |
         static_cast<std::uint64_t>(to) << 8 | msg_type;
}

}  // namespace

bool TraceFlow::cross_node() const noexcept {
  if (events.empty()) return false;
  const NodeId first = events.front().node;
  for (const TraceEvent& ev : events) {
    if (ev.node != first) return true;
  }
  return false;
}

NodeId TraceFlow::initiator() const noexcept {
  return events.empty() ? kNoNode : events.front().node;
}

bool TraceFlow::complete() const noexcept {
  bool applied = false;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEventKind::kReadDone ||
        ev.kind == TraceEventKind::kWriteDone) {
      return true;
    }
    applied = applied || ev.kind == TraceEventKind::kApply;
  }
  // One-way fan-out flows (no requester-side done span in this buffer) count
  // as complete once a remote apply landed.
  return applied && cross_node();
}

bool TraceFlow::connected() const noexcept {
  // kSend at node A carries peer = destination; kRecv at node B carries
  // peer = sender (Transport::trace_msg). Every send edge must have a
  // matching receive edge or the operation's message never arrived.
  std::unordered_set<std::uint64_t> recv_edges;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEventKind::kRecv && ev.peer != kNoNode) {
      recv_edges.insert(edge_key(ev.peer, ev.node, ev.msg_type));
    }
  }
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEventKind::kSend || ev.peer == kNoNode) continue;
    if (recv_edges.count(edge_key(ev.node, ev.peer, ev.msg_type)) == 0) {
      return false;
    }
  }
  return true;
}

TraceCorrelator::TraceCorrelator(std::vector<TraceEvent> events)
    : events_(std::move(events)) {}

void TraceCorrelator::add_events(const std::vector<TraceEvent>& events) {
  events_.insert(events_.end(), events.begin(), events.end());
  invalidate();
}

const std::vector<TraceEvent>& TraceCorrelator::events() const {
  regroup();
  return events_;
}

const std::vector<TraceFlow>& TraceCorrelator::flows() const {
  regroup();
  return flows_;
}

std::vector<const TraceFlow*> TraceCorrelator::complete_cross_node_flows()
    const {
  regroup();
  std::vector<const TraceFlow*> out;
  for (const TraceFlow& f : flows_) {
    if (f.cross_node() && f.complete() && f.connected()) {
      out.push_back(&f);
    }
  }
  return out;
}

std::size_t TraceCorrelator::node_count() const {
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.node != kNoNode) {
      n = std::max(n, static_cast<std::size_t>(ev.node) + 1);
    }
  }
  return n;
}

void TraceCorrelator::regroup() const {
  if (grouped_) return;
  std::sort(events_.begin(), events_.end(), event_order);
  flows_.clear();
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const TraceEvent& ev : events_) {
    if (ev.trace_id == 0) continue;  // untraced: local ops, transport frames
    const auto [it, inserted] = index.emplace(ev.trace_id, flows_.size());
    if (inserted) {
      flows_.push_back(TraceFlow{ev.trace_id, {}});
    }
    flows_[it->second].events.push_back(ev);
  }
  // events_ is globally ordered, so per-flow event lists are too; order the
  // flows themselves by when each operation started.
  std::sort(flows_.begin(), flows_.end(),
            [](const TraceFlow& a, const TraceFlow& b) {
              return event_order(a.events.front(), b.events.front());
            });
  grouped_ = true;
}

std::string TraceCorrelator::to_chrome_trace() const {
  regroup();
  JsonWriter w;
  chrome_trace_begin(w, node_count());
  for (const TraceEvent& ev : events_) chrome_trace_event(w, ev);
  // Flow arrows: one "s" → "t"... → "f" chain per cross-node operation,
  // sharing id = trace id, each arrowhead pinned to the (pid, ts) of the
  // trace event it follows.
  for (const TraceFlow& f : flows_) {
    if (!f.cross_node() || f.events.size() < 2) continue;
    for (std::size_t i = 0; i < f.events.size(); ++i) {
      const TraceEvent& ev = f.events[i];
      const char* ph = i == 0                    ? "s"
                       : i + 1 == f.events.size() ? "f"
                                                  : "t";
      w.begin_object();
      w.key("name").value("op");
      w.key("cat").value("flow");
      w.key("ph").value(ph);
      w.key("id").value(f.trace_id);
      w.key("pid").value(static_cast<std::uint64_t>(ev.node));
      w.key("tid").value(0);
      w.key("ts").value(static_cast<double>(ev.ts_ns) / 1000.0);
      if (ph[0] == 'f') {
        w.key("bp").value("e");  // bind to the enclosing slice, not the next
      }
      w.end_object();
    }
  }
  return chrome_trace_end(std::move(w));
}

namespace {

bool num_field(const JsonValue& args, std::string_view key,
               std::uint64_t* out) {
  const JsonValue* v = args.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

}  // namespace

bool trace_events_from_json(std::string_view json,
                            std::vector<TraceEvent>* out,
                            std::string* error) {
  out->clear();
  std::string parse_error;
  const std::optional<JsonValue> doc = parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return false;
  }
  const JsonValue* trace_events = doc->find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    if (error != nullptr) *error = "no traceEvents array";
    return false;
  }
  for (const JsonValue& rec : trace_events->array) {
    if (!rec.is_object()) {
      if (error != nullptr) *error = "non-object trace record";
      return false;
    }
    const JsonValue* ph = rec.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    // Only "X" spans and "i" instants are event records; metadata ("M") and
    // flow arrows ("s"/"t"/"f") carry no payload to reload.
    if (ph->string != "X" && ph->string != "i") continue;
    const JsonValue* args = rec.find("args");
    const JsonValue* pid = rec.find("pid");
    if (args == nullptr || !args->is_object() || pid == nullptr ||
        !pid->is_number()) {
      continue;
    }
    TraceEvent ev;
    std::uint64_t kind = 0;
    // Records written before the numeric-args format (or by other tools)
    // lack the exact fields; skip them rather than guess.
    if (!num_field(*args, "kind", &kind) ||
        !num_field(*args, "ts_ns", &ev.ts_ns)) {
      continue;
    }
    ev.kind = static_cast<TraceEventKind>(kind);
    ev.node = static_cast<NodeId>(pid->number);
    std::uint64_t tmp = 0;
    if (num_field(*args, "seq", &tmp)) ev.seq = tmp;
    if (num_field(*args, "addr", &tmp)) ev.addr = tmp;
    if (num_field(*args, "peer", &tmp)) ev.peer = static_cast<NodeId>(tmp);
    if (num_field(*args, "msg_type", &tmp)) {
      ev.msg_type = static_cast<std::uint8_t>(tmp);
    }
    if (num_field(*args, "trace_id", &tmp)) ev.trace_id = tmp;
    if (num_field(*args, "dur_ns", &tmp)) ev.dur_ns = tmp;
    if (const JsonValue* vt = args->find("vt");
        vt != nullptr && vt->is_array()) {
      ev.vclock.reserve(vt->array.size());
      for (const JsonValue& c : vt->array) {
        if (!c.is_number()) {
          if (error != nullptr) *error = "non-numeric vt component";
          return false;
        }
        ev.vclock.push_back(static_cast<std::uint64_t>(c.number));
      }
    }
    out->push_back(std::move(ev));
  }
  std::sort(out->begin(), out->end(), event_order);
  return true;
}

}  // namespace causalmem::obs

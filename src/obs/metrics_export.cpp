#include "causalmem/obs/metrics_export.hpp"

#include <fstream>

#include "causalmem/net/message.hpp"
#include "causalmem/obs/json.hpp"

namespace causalmem::obs {

void RunMetrics::capture(const StatsRegistry& stats) {
  nodes.clear();
  nodes.reserve(stats.node_count());
  for (NodeId i = 0; i < stats.node_count(); ++i) {
    nodes.push_back(stats.node_snapshot(i));
  }
  for (std::size_t m = 0; m < kNumLatencyMetrics; ++m) {
    latency[m] = stats.latency_total(static_cast<LatencyMetric>(m));
  }
}

void RunMetrics::capture_trace(const TraceHub& hub) {
  has_trace = true;
  trace_retained = hub.events().size();
  trace_attempted = hub.attempted();
  trace_dropped = hub.dropped();
}

StatsSnapshot RunMetrics::totals() const {
  StatsSnapshot total;
  for (const auto& n : nodes) total += n;
  return total;
}

RunMetrics& MetricsExporter::add_run(std::string label) {
  runs_.push_back(std::make_unique<RunMetrics>());
  runs_.back()->label = std::move(label);
  return *runs_.back();
}

namespace {

void write_counters(JsonWriter& w, const StatsSnapshot& s) {
  w.begin_object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (s.values[i] == 0) continue;
    w.key(counter_name(static_cast<Counter>(i))).value(s.values[i]);
  }
  w.end_object();
}

void write_histogram(JsonWriter& w, const HistogramSnapshot& h) {
  w.begin_object();
  w.key("count").value(h.count);
  w.key("sum").value(h.sum);
  w.key("max").value(h.max);
  w.key("mean").value(h.mean());
  w.key("p50").value(h.percentile(50.0));
  w.key("p90").value(h.percentile(90.0));
  w.key("p99").value(h.percentile(99.0));
  w.key("buckets").begin_array();
  for (std::size_t b = 0; b < HistogramSnapshot::kBucketCount; ++b) {
    if (h.buckets[b] == 0) continue;
    w.begin_array()
        .value(HistogramSnapshot::bucket_lower(b))
        .value(HistogramSnapshot::bucket_upper(b))
        .value(h.buckets[b])
        .end_array();
  }
  w.end_array();
  w.end_object();
}

void write_run(JsonWriter& w, const RunMetrics& run) {
  w.begin_object();
  w.key("label").value(run.label);
  w.key("params").begin_object();
  for (const auto& [k, v] : run.params) w.key(k).value(v);
  w.end_object();
  w.key("values").begin_object();
  for (const auto& [k, v] : run.values) w.key(k).value(v);
  w.end_object();

  const StatsSnapshot total = run.totals();
  w.key("totals").begin_object();
  w.key("messages_sent").value(total.messages_sent());
  w.key("counters");
  write_counters(w, total);
  w.end_object();

  w.key("nodes").begin_array();
  for (std::size_t i = 0; i < run.nodes.size(); ++i) {
    w.begin_object();
    w.key("node").value(static_cast<std::uint64_t>(i));
    w.key("messages_sent").value(run.nodes[i].messages_sent());
    w.key("counters");
    write_counters(w, run.nodes[i]);
    w.end_object();
  }
  w.end_array();

  w.key("latency").begin_object();
  for (std::size_t m = 0; m < kNumLatencyMetrics; ++m) {
    if (run.latency[m].count == 0) continue;
    w.key(latency_metric_name(static_cast<LatencyMetric>(m)));
    write_histogram(w, run.latency[m]);
  }
  w.end_object();

  if (run.has_trace) {
    w.key("trace").begin_object();
    w.key("retained").value(run.trace_retained);
    w.key("attempted").value(run.trace_attempted);
    w.key("dropped").value(run.trace_dropped);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string MetricsExporter::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("causalmem-metrics-v1");
  w.key("benchmark").value(benchmark_);
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta_) w.key(k).value(v);
  w.end_object();
  w.key("runs").begin_array();
  for (const auto& run : runs_) write_run(w, *run);
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool MetricsExporter::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string doc = to_json();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
  return static_cast<bool>(out.flush());
}

std::string live_metrics_json(const StatsRegistry& stats, const TraceHub* hub,
                              const std::string& label) {
  MetricsExporter exp("live");
  RunMetrics& run = exp.add_run(label);
  run.capture(stats);
  if (hub != nullptr) run.capture_trace(*hub);
  return exp.to_json();
}

namespace {

/// Message-bearing kinds get the MsgType spelled into the event name so the
/// Perfetto timeline reads "send write_reply", not just "send".
bool kind_has_msg_type(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSend:
    case TraceEventKind::kRecv:
    case TraceEventKind::kRetransmit:
    case TraceEventKind::kDupDrop:
    case TraceEventKind::kFaultDrop:
    case TraceEventKind::kFaultDup:
    case TraceEventKind::kFaultDelay:
      return true;
    default:
      return false;
  }
}

}  // namespace

void chrome_trace_begin(JsonWriter& w, std::size_t node_count) {
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  // Process-name metadata: one "process" per node.
  for (std::size_t i = 0; i < node_count; ++i) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(i));
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("name").value("node " + std::to_string(i));
    w.end_object();
    w.end_object();
  }
}

void chrome_trace_event(JsonWriter& w, const TraceEvent& ev) {
  std::string name = trace_event_kind_name(ev.kind);
  if (ev.msg_type != 0 && kind_has_msg_type(ev.kind)) {
    name += ' ';
    name += msg_type_name(static_cast<MsgType>(ev.msg_type));
  }
  w.begin_object();
  w.key("name").value(name);
  w.key("cat").value(ev.dur_ns != 0 ? "op" : "proto");
  w.key("pid").value(static_cast<std::uint64_t>(ev.node));
  w.key("tid").value(0);
  // Chrome trace timestamps are microseconds; fractional values keep the
  // nanosecond resolution.
  w.key("ts").value(static_cast<double>(ev.ts_ns) / 1000.0);
  if (ev.dur_ns != 0) {
    w.key("ph").value("X");
    w.key("dur").value(static_cast<double>(ev.dur_ns) / 1000.0);
  } else {
    w.key("ph").value("i");
    w.key("s").value("t");
  }
  w.key("args").begin_object();
  w.key("seq").value(ev.seq);
  if (ev.peer != kNoNode) {
    w.key("peer").value(static_cast<std::uint64_t>(ev.peer));
  }
  w.key("addr").value(static_cast<std::uint64_t>(ev.addr));
  // Exact numeric fields (the display ts/dur above are lossy microseconds):
  // these make the document a lossless serialization of the TraceEvent, so
  // trace_events_from_json can reload it for offline correlation.
  w.key("kind").value(static_cast<std::uint64_t>(ev.kind));
  if (ev.msg_type != 0) {
    w.key("msg_type").value(static_cast<std::uint64_t>(ev.msg_type));
  }
  if (ev.trace_id != 0) {
    w.key("trace_id").value(ev.trace_id);
  }
  w.key("ts_ns").value(ev.ts_ns);
  if (ev.dur_ns != 0) {
    w.key("dur_ns").value(ev.dur_ns);
  }
  if (!ev.vclock.empty()) {
    w.key("vt").begin_array();
    for (std::uint64_t c : ev.vclock) w.value(c);
    w.end_array();
  }
  w.end_object();
  w.end_object();
}

std::string chrome_trace_end(JsonWriter&& w) {
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::size_t node_count) {
  JsonWriter w;
  chrome_trace_begin(w, node_count);
  for (const TraceEvent& ev : events) chrome_trace_event(w, ev);
  return chrome_trace_end(std::move(w));
}

bool write_chrome_trace(const std::string& path, const TraceHub& hub) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string doc = chrome_trace_json(hub.events(), hub.node_count());
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
  return static_cast<bool>(out.flush());
}

}  // namespace causalmem::obs

#include "causalmem/obs/flight_recorder.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "causalmem/net/message.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/obs/correlate.hpp"
#include "causalmem/obs/json.hpp"
#include "causalmem/obs/metrics_export.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem::obs {

namespace {

/// Lowercases and squashes a reason string into a directory-name-safe slug.
std::string slugify(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
    if (out.size() >= 40) break;
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out.empty() ? "trigger" : out;
}

bool write_file(const std::filesystem::path& path, const std::string& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.put('\n');
  return static_cast<bool>(out.flush());
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions opts)
    : opts_(std::move(opts)) {}

void FlightRecorder::attach(const StatsRegistry* stats, const TraceHub* hub) {
  stats_ = stats;
  hub_ = hub;
  recent_.clear();
  const std::size_t n = stats != nullptr ? stats->node_count() : 0;
  recent_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    recent_.push_back(std::make_unique<OpRing>());
  }
}

void FlightRecorder::set_vclock_probe(
    std::function<std::vector<std::vector<std::uint64_t>>()> probe) {
  vclock_probe_ = std::move(probe);
}

void FlightRecorder::set_extra_artifact(std::string filename,
                                        std::function<std::string()> provider) {
  extra_artifacts_.emplace_back(std::move(filename), std::move(provider));
}

void FlightRecorder::add_counter_trigger(
    std::string name, std::function<bool(const StatsRegistry&)> pred) {
  counter_triggers_.push_back({std::move(name), std::move(pred)});
}

void FlightRecorder::poll() {
  if (stats_ == nullptr || fired()) return;
  for (const CounterTrigger& ct : counter_triggers_) {
    if (ct.pred(*stats_)) {
      fire(FlightTrigger{"counter", ct.name, kNoNode, kNoNode});
      return;
    }
  }
}

void FlightRecorder::on_violation(std::string detail) {
  fire(FlightTrigger{"violation", std::move(detail), kNoNode, kNoNode});
}

void FlightRecorder::on_unreachable(NodeId node, NodeId target,
                                    std::uint8_t msg_type, Addr x) {
  std::string detail = "op ";
  detail += msg_type_name(static_cast<MsgType>(msg_type));
  detail += " addr ";
  detail += std::to_string(x);
  detail += " exhausted retries to node ";
  detail += std::to_string(target);
  fire(FlightTrigger{"unreachable", std::move(detail), node, target});
}

void FlightRecorder::on_failover(NodeId successor, NodeId failed) {
  std::string detail = "node " + std::to_string(successor) +
                       " took over pages of node " + std::to_string(failed);
  fire(FlightTrigger{"failover", std::move(detail), successor, failed});
}

bool FlightRecorder::dump(std::string reason) {
  return fire(FlightTrigger{"manual", std::move(reason), kNoNode, kNoNode});
}

void FlightRecorder::note_op(NodeId node, const RecentOp& op) {
  if (node >= recent_.size() || opts_.recent_ops == 0) return;
  OpRing& ring = *recent_[node];
  std::scoped_lock lock(ring.mu);
  if (ring.ops.size() < opts_.recent_ops) {
    ring.ops.push_back(op);
  } else {
    ring.ops[ring.next % opts_.recent_ops] = op;
  }
  ++ring.next;
}

std::string FlightRecorder::artifact_path() const {
  std::scoped_lock lock(mu_);
  return artifact_dir_;
}

FlightTrigger FlightRecorder::last_trigger() const {
  std::scoped_lock lock(mu_);
  return trigger_;
}

bool FlightRecorder::fire(FlightTrigger t) {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  bool expected = false;
  if (!fired_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    return false;  // someone else latched first; keep their artifact
  }
  std::scoped_lock lock(mu_);
  trigger_ = std::move(t);
  if (!opts_.armed) return false;
  std::string dir;
  if (!write_artifact(trigger_, &dir)) return false;
  artifact_dir_ = std::move(dir);
  return true;
}

bool FlightRecorder::write_artifact(const FlightTrigger& t,
                                    std::string* dir_out) const {
  namespace fs = std::filesystem;
  const std::uint64_t ts = now_ns();
  // Process-wide ordinal: under a simulated (deterministic) clock, repeated
  // runs in one process would otherwise collide on the same directory.
  static std::atomic<std::uint64_t> ordinal{0};
  const fs::path dir =
      fs::path(opts_.artifact_dir) /
      (slugify(t.kind + "-" + t.detail) + "-" + std::to_string(ts) + "-" +
       std::to_string(ordinal.fetch_add(1, std::memory_order_relaxed)));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  // trace.json — merged + correlated Chrome trace (when tracing is on).
  bool has_trace = false;
  if (hub_ != nullptr) {
    TraceCorrelator corr(hub_->events());
    has_trace = write_file(dir / "trace.json", corr.to_chrome_trace());
  }

  // metrics.json — the standard causalmem-metrics-v1 document.
  bool has_metrics = false;
  if (stats_ != nullptr) {
    MetricsExporter exp("flight_recorder");
    exp.set_meta("trigger", t.kind);
    if (!opts_.run_label.empty()) exp.set_meta("run_label", opts_.run_label);
    RunMetrics& run = exp.add_run("at_trigger");
    run.capture(*stats_);
    if (hub_ != nullptr) run.capture_trace(*hub_);
    has_metrics = exp.write((dir / "metrics.json").string());
  }

  // state.json — per-node vector clocks + recent-operation history.
  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("causalmem-flightrec-state-v1");
    if (vclock_probe_) {
      w.key("vclocks").begin_array();
      for (const auto& vt : vclock_probe_()) {
        w.begin_array();
        for (std::uint64_t c : vt) w.value(c);
        w.end_array();
      }
      w.end_array();
    }
    w.key("recent_ops").begin_array();
    for (std::size_t node = 0; node < recent_.size(); ++node) {
      OpRing& ring = *recent_[node];
      std::scoped_lock ring_lock(ring.mu);
      w.begin_object();
      w.key("node").value(static_cast<std::uint64_t>(node));
      w.key("total").value(ring.next);
      w.key("ops").begin_array();
      // Oldest first: the ring's logical order starts at `next` when full.
      const std::size_t count = ring.ops.size();
      const std::size_t start =
          count < opts_.recent_ops ? 0 : ring.next % opts_.recent_ops;
      for (std::size_t i = 0; i < count; ++i) {
        const RecentOp& op = ring.ops[(start + i) % count];
        w.begin_object();
        w.key("kind").value(op.is_write ? "write" : "read");
        if (op.is_write && !op.applied) w.key("applied").value(false);
        w.key("addr").value(static_cast<std::uint64_t>(op.addr));
        w.key("value").value(static_cast<std::int64_t>(op.value));
        if (!op.tag.is_initial()) {
          w.key("tag").begin_array()
              .value(static_cast<std::uint64_t>(op.tag.writer))
              .value(op.tag.seq)
              .end_array();
        }
        w.key("start_ns").value(op.start_ns);
        if (op.end_ns != 0) w.key("end_ns").value(op.end_ns);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!write_file(dir / "state.json", std::move(w).str())) return false;
  }

  // Registered extra artifacts (e.g. the persist layer's persist.json).
  // Best-effort: a failing provider write drops that file, not the dump.
  std::vector<std::string> extra_written;
  for (const auto& [name, provider] : extra_artifacts_) {
    if (write_file(dir / name, provider())) extra_written.push_back(name);
  }

  // manifest.json last: its presence marks a complete artifact.
  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("causalmem-flightrec-v1");
    w.key("ts_ns").value(ts);
    if (!opts_.run_label.empty()) w.key("run_label").value(opts_.run_label);
    w.key("trigger").begin_object();
    w.key("kind").value(t.kind);
    w.key("detail").value(t.detail);
    if (t.node != kNoNode) {
      w.key("node").value(static_cast<std::uint64_t>(t.node));
    }
    if (t.peer != kNoNode) {
      w.key("peer").value(static_cast<std::uint64_t>(t.peer));
    }
    w.end_object();
    w.key("files").begin_array();
    if (has_trace) w.value("trace.json");
    if (has_metrics) w.value("metrics.json");
    w.value("state.json");
    for (const std::string& name : extra_written) w.value(name);
    w.end_array();
    w.end_object();
    if (!write_file(dir / "manifest.json", std::move(w).str())) return false;
  }

  *dir_out = dir.string();
  return true;
}

}  // namespace causalmem::obs

#include "causalmem/history/causal_checker.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>

#include "causalmem/common/expect.hpp"

namespace causalmem {

namespace {

struct TagKey {
  Addr addr;
  WriteTag tag;
  friend bool operator==(const TagKey&, const TagKey&) = default;
};

struct TagKeyHash {
  std::size_t operator()(const TagKey& k) const noexcept {
    std::size_t h = std::hash<Addr>{}(k.addr);
    h = h * 31 + std::hash<NodeId>{}(k.tag.writer);
    h = h * 31 + std::hash<std::uint64_t>{}(k.tag.seq);
    return h;
  }
};

}  // namespace

CausalChecker::CausalChecker(const History& history) {
  // 1. One virtual initial-write node per distinct location. The paper:
  //    "all locations are initialized by writes of a distinguished value
  //    that precede all operations in any process sequence."
  std::unordered_map<Addr, std::size_t> initial_of;
  for (const auto& seq : history.per_process) {
    for (const auto& op : seq) {
      if (initial_of.contains(op.addr)) continue;
      Node n;
      n.op = Operation{OpKind::kWrite, kNoNode, op.addr, kInitialValue,
                       WriteTag{}, true};
      n.is_initial = true;
      initial_of.emplace(op.addr, nodes_.size());
      nodes_.push_back(std::move(n));
    }
  }
  first_real_node_ = nodes_.size();

  // 2. Real operations, with program-order edges.
  std::unordered_map<TagKey, std::size_t, TagKeyHash> write_of;
  for (NodeId p = 0; p < history.per_process.size(); ++p) {
    const auto& seq = history.per_process[p];
    for (std::size_t i = 0; i < seq.size(); ++i) {
      Node n;
      n.op = seq[i];
      n.ref = OpRef{p, i};
      const std::size_t idx = nodes_.size();
      nodes_.push_back(std::move(n));
      if (i == 0) {
        // Initial writes precede every process's first operation.
        for (const auto& [addr, init_idx] : initial_of) {
          nodes_[init_idx].succ.push_back(idx);
          nodes_[idx].pred.push_back(init_idx);
        }
      } else {
        nodes_[idx - 1].succ.push_back(idx);
        nodes_[idx].pred.push_back(idx - 1);
      }
      if (seq[i].kind == OpKind::kWrite) {
        write_of.emplace(TagKey{seq[i].addr, seq[i].tag}, idx);
      }
    }
  }

  // 3. Reads-from edges. A read's own edge position is remembered so
  //    Definition 1's exclusion can skip exactly that edge.
  for (std::size_t idx = first_real_node_; idx < nodes_.size(); ++idx) {
    Node& n = nodes_[idx];
    if (n.op.kind != OpKind::kRead) continue;
    read_nodes_.push_back(idx);
    std::size_t src;
    if (n.op.tag.is_initial()) {
      src = initial_of.at(n.op.addr);
    } else {
      const auto it = write_of.find(TagKey{n.op.addr, n.op.tag});
      if (it == write_of.end()) {
        // Dangling reads-from: leave rf_source at kNoEdge; check() reports.
        continue;
      }
      src = it->second;
    }
    n.rf_source = src;
    n.own_rf_pred_pos = n.pred.size();
    n.pred.push_back(src);
    nodes_[src].succ.push_back(idx);
  }
}

std::vector<bool> CausalChecker::reaches(std::size_t target,
                                         bool skip_own_rf) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<std::size_t> frontier;
  visited[target] = true;
  const Node& t = nodes_[target];
  for (std::size_t i = 0; i < t.pred.size(); ++i) {
    if (skip_own_rf && i == t.own_rf_pred_pos) continue;
    if (!visited[t.pred[i]]) {
      visited[t.pred[i]] = true;
      frontier.push_back(t.pred[i]);
    }
  }
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (const std::size_t p : nodes_[cur].pred) {
      if (!visited[p]) {
        visited[p] = true;
        frontier.push_back(p);
      }
    }
  }
  visited[target] = false;  // "reaches target" is strict
  return visited;
}

std::vector<bool> CausalChecker::reachable_from(std::size_t source) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<std::size_t> frontier{source};
  visited[source] = true;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (const std::size_t s : nodes_[cur].succ) {
      if (!visited[s]) {
        visited[s] = true;
        frontier.push_back(s);
      }
    }
  }
  visited[source] = false;  // strict
  return visited;
}

std::optional<CausalViolation> CausalChecker::check_read(
    std::size_t read_node) const {
  const Node& r = nodes_[read_node];
  if (r.rf_source == kNoEdge) {
    return CausalViolation{r.ref,
                           "read returned a value no write in the execution "
                           "produced: " + r.op.to_string()};
  }
  const std::size_t w = r.rf_source;

  // All causal relationships except the read's own reads-from edge.
  const std::vector<bool> before = reaches(read_node, /*skip_own_rf=*/true);

  if (before[w]) {
    // Condition 2: no intervening read or write of x with another value.
    const std::vector<bool> after_w = reachable_from(w);
    for (std::size_t m = 0; m < nodes_.size(); ++m) {
      if (m == w || m == read_node) continue;
      if (!before[m] || !after_w[m]) continue;
      const Operation& mid = nodes_[m].op;
      if (mid.addr != r.op.addr) continue;
      if (mid.tag == nodes_[w].op.tag) continue;  // same value confirms, not kills
      std::ostringstream oss;
      oss << "stale read " << r.op.to_string() << ": its write was overwritten"
          << " — intervening " << mid.to_string() << " with w *-> m *-> r";
      return CausalViolation{r.ref, oss.str()};
    }
    return std::nullopt;  // live via condition 2
  }

  const std::vector<bool> from_r = reachable_from(read_node);
  if (from_r[w]) {
    std::ostringstream oss;
    oss << "read from the causal future: " << r.op.to_string()
        << " causally precedes the write it read from";
    return CausalViolation{r.ref, oss.str()};
  }
  return std::nullopt;  // concurrent => live via condition 1
}

std::optional<CausalViolation> CausalChecker::check() const {
  for (const std::size_t rn : read_nodes_) {
    if (auto v = check_read(rn)) return v;
  }
  return std::nullopt;
}

std::vector<CausalViolation> CausalChecker::check_all() const {
  std::vector<CausalViolation> out;
  for (const std::size_t rn : read_nodes_) {
    if (auto v = check_read(rn)) out.push_back(std::move(*v));
  }
  return out;
}

std::set<Value> CausalChecker::live_set(OpRef ref) const {
  const std::size_t read_node = node_of(ref);
  const Node& r = nodes_[read_node];
  CM_EXPECTS_MSG(r.op.kind == OpKind::kRead, "live_set of a non-read");

  const std::vector<bool> before = reaches(read_node, /*skip_own_rf=*/true);
  const std::vector<bool> from_r = reachable_from(read_node);

  std::set<Value> live;
  for (std::size_t w = 0; w < nodes_.size(); ++w) {
    const Node& wn = nodes_[w];
    if (wn.op.kind != OpKind::kWrite || wn.op.addr != r.op.addr) continue;
    if (from_r[w]) continue;  // causally follows the read: never live
    if (!before[w]) {
      live.insert(wn.op.value);  // concurrent: always live
      continue;
    }
    const std::vector<bool> after_w = reachable_from(w);
    bool overwritten = false;
    for (std::size_t m = 0; m < nodes_.size() && !overwritten; ++m) {
      if (m == w || m == read_node) continue;
      if (!before[m] || !after_w[m]) continue;
      const Operation& mid = nodes_[m].op;
      overwritten = mid.addr == r.op.addr && !(mid.tag == wn.op.tag);
    }
    if (!overwritten) live.insert(wn.op.value);
  }
  return live;
}

bool CausalChecker::precedes(OpRef a, OpRef b) const {
  return reachable_from(node_of(a))[node_of(b)];
}

std::size_t CausalChecker::node_of(OpRef ref) const {
  for (std::size_t i = first_real_node_; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_initial && nodes_[i].ref == ref) return i;
  }
  CM_UNREACHABLE("OpRef not found in history");
}

}  // namespace causalmem

#include "causalmem/history/consistency.hpp"

#include "causalmem/history/causal_checker.hpp"
#include "causalmem/history/model_checkers.hpp"

namespace causalmem {

namespace {
std::string describe(const History& h, OpRef ref, const std::string& reason) {
  std::string out = "p" + std::to_string(ref.proc) + "[" +
                    std::to_string(ref.index) + "] " +
                    h.per_process[ref.proc][ref.index].to_string() + ": " +
                    reason;
  return out;
}
}  // namespace

ConsistencyReport check_consistency_hierarchy(const History& history,
                                              std::size_t pram_max_states) {
  ConsistencyReport rep;
  if (auto v = CausalChecker(history).check()) {
    rep.causal = false;
    rep.reason = "causal violation: " + describe(history, v->read, v->reason);
    return rep;
  }
  if (auto v = check_slow_consistency(history)) {
    rep.slow = false;
    rep.reason = "slow-memory violation: " +
                 describe(history, v->read, v->reason);
    return rep;
  }
  switch (check_pram_consistency(history, pram_max_states)) {
    case ScResult::kConsistent:
      break;
    case ScResult::kInconsistent:
      rep.pram = false;
      rep.reason = "PRAM violation (no per-reader serialization exists)";
      break;
    case ScResult::kUndecided:
      rep.pram_decided = false;
      break;
  }
  return rep;
}

ConsistencyReport check_consistency_hierarchy_streaming(
    const History& history, const StreamingHierarchyOptions& options) {
  ConsistencyReport rep;
  const auto res = StreamingCausalChecker::check(history, options.checker);
  if (!res.causal) {
    rep.causal = false;
    rep.reason = "causal violation: " +
                 describe(history, res.first->op, res.first->detail);
    return rep;
  }
  if (auto v = check_slow_consistency(history)) {
    rep.slow = false;
    rep.reason =
        "slow-memory violation: " + describe(history, v->read, v->reason);
    return rep;
  }
  if (history.total_ops() > options.pram_op_limit) {
    rep.pram_decided = false;
    return rep;
  }
  switch (check_pram_consistency(history, options.pram_max_states)) {
    case ScResult::kConsistent:
      break;
    case ScResult::kInconsistent:
      rep.pram = false;
      rep.reason = "PRAM violation (no per-reader serialization exists)";
      break;
    case ScResult::kUndecided:
      rep.pram_decided = false;
      break;
  }
  return rep;
}

ConsistencyReport check_consistency_hierarchy_auto(const History& history,
                                                   std::size_t streaming_from) {
  if (history.total_ops() < streaming_from) {
    return check_consistency_hierarchy(history);
  }
  return check_consistency_hierarchy_streaming(history);
}

}  // namespace causalmem

#include "causalmem/history/history.hpp"

#include <sstream>
#include <unordered_map>

namespace causalmem {

std::string Operation::to_string() const {
  std::ostringstream oss;
  oss << (kind == OpKind::kRead ? "r" : "w") << proc << "(x" << addr << ")"
      << value;
  if (!applied) oss << "[rejected]";
  return oss.str();
}

std::string History::to_string() const {
  std::ostringstream oss;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    oss << "P" << p << ":";
    for (const auto& o : per_process[p]) oss << " " << o.to_string();
    oss << "\n";
  }
  return oss.str();
}

HistoryBuilder& HistoryBuilder::write(NodeId p, Addr x, Value v) {
  CM_EXPECTS(p < h_.per_process.size());
  Operation o;
  o.kind = OpKind::kWrite;
  o.proc = p;
  o.addr = x;
  o.value = v;
  o.tag = WriteTag{p, ++seq_[p]};
  h_.per_process[p].push_back(o);
  return *this;
}

HistoryBuilder& HistoryBuilder::read(NodeId p, Addr x, Value v) {
  CM_EXPECTS(p < h_.per_process.size());
  Operation o;
  o.kind = OpKind::kRead;
  o.proc = p;
  o.addr = x;
  o.value = v;
  // Reads-from is resolved at build() time so a read may precede the write
  // it reads from in construction order (needed for e.g. "read from the
  // causal future" adversarial histories).
  h_.per_process[p].push_back(o);
  return *this;
}

namespace {

struct AddrValueKey {
  Addr addr;
  Value value;
  friend bool operator==(const AddrValueKey&, const AddrValueKey&) = default;
};

struct AddrValueHash {
  std::size_t operator()(const AddrValueKey& k) const noexcept {
    return std::hash<Addr>{}(k.addr) * 1000003 +
           std::hash<Value>{}(k.value);
  }
};

}  // namespace

History HistoryBuilder::build() const {
  History out = h_;
  // Resolve by (addr, value) through one index pass: the paper's examples
  // keep write values unique per location, and the old per-read scan was
  // quadratic — ruinous for the 10^5-op histories the streaming-checker
  // suites build. A duplicated (addr, value) only aborts if a read actually
  // needs it, same contract as the scan.
  struct Resolved {
    WriteTag tag{};
    bool ambiguous{false};
  };
  std::unordered_map<AddrValueKey, Resolved, AddrValueHash> writes;
  std::size_t write_count = 0;
  for (const auto& seq : out.per_process) {
    for (const Operation& o : seq) write_count += o.kind == OpKind::kWrite;
  }
  writes.reserve(write_count);
  for (const auto& seq : out.per_process) {
    for (const Operation& o : seq) {
      if (o.kind != OpKind::kWrite) continue;
      auto [it, inserted] =
          writes.try_emplace(AddrValueKey{o.addr, o.value}, Resolved{o.tag});
      if (!inserted) it->second.ambiguous = true;
    }
  }
  for (auto& seq : out.per_process) {
    for (Operation& o : seq) {
      if (o.kind != OpKind::kRead) continue;
      const auto it = writes.find(AddrValueKey{o.addr, o.value});
      if (it != writes.end()) {
        CM_EXPECTS_MSG(!it->second.ambiguous,
                       "ambiguous reads-from: duplicate write value");
        o.tag = it->second.tag;
        continue;
      }
      CM_EXPECTS_MSG(
          o.value == kInitialValue,
          "read of a value no write produced (and not the initial 0)");
      o.tag = WriteTag{};  // distinguished initial write
    }
  }
  return out;
}

}  // namespace causalmem

#include "causalmem/history/history.hpp"

#include <sstream>

namespace causalmem {

std::string Operation::to_string() const {
  std::ostringstream oss;
  oss << (kind == OpKind::kRead ? "r" : "w") << proc << "(x" << addr << ")"
      << value;
  if (!applied) oss << "[rejected]";
  return oss.str();
}

std::string History::to_string() const {
  std::ostringstream oss;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    oss << "P" << p << ":";
    for (const auto& o : per_process[p]) oss << " " << o.to_string();
    oss << "\n";
  }
  return oss.str();
}

HistoryBuilder& HistoryBuilder::write(NodeId p, Addr x, Value v) {
  CM_EXPECTS(p < h_.per_process.size());
  Operation o;
  o.kind = OpKind::kWrite;
  o.proc = p;
  o.addr = x;
  o.value = v;
  o.tag = WriteTag{p, ++seq_[p]};
  h_.per_process[p].push_back(o);
  return *this;
}

HistoryBuilder& HistoryBuilder::read(NodeId p, Addr x, Value v) {
  CM_EXPECTS(p < h_.per_process.size());
  Operation o;
  o.kind = OpKind::kRead;
  o.proc = p;
  o.addr = x;
  o.value = v;
  // Reads-from is resolved at build() time so a read may precede the write
  // it reads from in construction order (needed for e.g. "read from the
  // causal future" adversarial histories).
  h_.per_process[p].push_back(o);
  return *this;
}

History HistoryBuilder::build() const {
  History out = h_;
  for (auto& seq : out.per_process) {
    for (Operation& o : seq) {
      if (o.kind != OpKind::kRead) continue;
      // Resolve by (addr, value): the paper's examples keep write values
      // unique per location.
      bool found = false;
      for (const auto& wseq : out.per_process) {
        for (const auto& w : wseq) {
          if (w.kind == OpKind::kWrite && w.addr == o.addr &&
              w.value == o.value) {
            CM_EXPECTS_MSG(!found,
                           "ambiguous reads-from: duplicate write value");
            o.tag = w.tag;
            found = true;
          }
        }
      }
      if (!found) {
        CM_EXPECTS_MSG(
            o.value == kInitialValue,
            "read of a value no write produced (and not the initial 0)");
        o.tag = WriteTag{};  // distinguished initial write
      }
    }
  }
  return out;
}

}  // namespace causalmem

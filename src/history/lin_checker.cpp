#include "causalmem/history/lin_checker.hpp"

#include <map>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace causalmem {

namespace {

struct LinSearch {
  const History& h;
  const std::size_t max_states;
  std::unordered_set<std::string> visited;
  std::size_t states_seen{0};
  bool budget_exhausted{false};

  LinSearch(const History& history, std::size_t budget)
      : h(history), max_states(budget) {}

  struct State {
    std::vector<std::size_t> pos;
    std::map<Addr, WriteTag> mem;

    [[nodiscard]] std::string key() const {
      std::ostringstream oss;
      for (const auto p : pos) oss << p << ";";
      oss << "|";
      for (const auto& [addr, tag] : mem) {
        oss << addr << ":" << tag.writer << "." << tag.seq << ";";
      }
      return oss.str();
    }
  };

  /// Real-time enabledness: the next op of process p may be scheduled only
  /// if no *unscheduled* timed operation's interval ends strictly before
  /// this op's interval begins. (Scheduling it earlier than such an op
  /// would invert real time.)
  [[nodiscard]] bool rt_enabled(const State& s, NodeId p) const {
    const Operation& cand = h.per_process[p][s.pos[p]];
    if (!cand.timed()) return true;
    for (NodeId q = 0; q < h.process_count(); ++q) {
      for (std::size_t i = s.pos[q]; i < h.per_process[q].size(); ++i) {
        const Operation& other = h.per_process[q][i];
        if (q == p && i == s.pos[p]) continue;
        if (other.timed() && other.end_ns < cand.start_ns) return false;
        // Later ops of q start even later only if timed; keep scanning —
        // intervals within one process may be untimed in between.
      }
    }
    return true;
  }

  bool dfs(const State& s) {  // NOLINT(misc-no-recursion)
    if (states_seen >= max_states) {
      budget_exhausted = true;
      return false;
    }
    if (!visited.insert(s.key()).second) return false;
    ++states_seen;

    bool done = true;
    for (NodeId p = 0; p < h.process_count(); ++p) {
      if (s.pos[p] < h.per_process[p].size()) done = false;
    }
    if (done) return true;

    for (NodeId p = 0; p < h.process_count(); ++p) {
      if (s.pos[p] >= h.per_process[p].size()) continue;
      if (!rt_enabled(s, p)) continue;
      const Operation& op = h.per_process[p][s.pos[p]];
      if (op.kind == OpKind::kRead) {
        const auto it = s.mem.find(op.addr);
        const WriteTag current = it != s.mem.end() ? it->second : WriteTag{};
        if (!(current == op.tag)) continue;
        State next = s;
        ++next.pos[p];
        if (dfs(next)) return true;
      } else {
        State next = s;
        ++next.pos[p];
        if (op.applied) next.mem[op.addr] = op.tag;
        if (dfs(next)) return true;
      }
    }
    return false;
  }

  ScResult run() {
    State init;
    init.pos.assign(h.process_count(), 0);
    if (dfs(init)) return ScResult::kConsistent;
    return budget_exhausted ? ScResult::kUndecided : ScResult::kInconsistent;
  }
};

}  // namespace

ScResult check_linearizability(const History& history,
                               std::size_t max_states) {
  return LinSearch(history, max_states).run();
}

}  // namespace causalmem

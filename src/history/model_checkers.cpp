#include "causalmem/history/model_checkers.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

namespace causalmem {

ScResult check_pram_consistency(const History& history,
                                std::size_t max_states) {
  bool undecided = false;
  for (NodeId reader = 0; reader < history.process_count(); ++reader) {
    // Keep all writes, and only the reader's reads.
    History reduced;
    reduced.per_process.resize(history.process_count());
    for (NodeId p = 0; p < history.process_count(); ++p) {
      for (const Operation& op : history.per_process[p]) {
        if (op.kind == OpKind::kWrite) {
          // A write rejected by the owner-wins policy installed no value
          // anywhere; forcing the serialization to place it would create
          // spurious inconsistencies.
          if (op.applied) reduced.per_process[p].push_back(op);
        } else if (p == reader) {
          reduced.per_process[p].push_back(op);
        }
      }
    }
    switch (check_sequential_consistency(reduced, max_states)) {
      case ScResult::kConsistent:
        break;
      case ScResult::kInconsistent:
        return ScResult::kInconsistent;
      case ScResult::kUndecided:
        undecided = true;
        break;
    }
  }
  return undecided ? ScResult::kUndecided : ScResult::kConsistent;
}

namespace {

// Per-writer seqs in WriteTag are global across locations, so the slow
// checker indexes each writer's writes *per location* via this key.
struct Key {
  Addr addr;
  NodeId writer;
  friend bool operator==(const Key&, const Key&) = default;
};
struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    return std::hash<Addr>{}(k.addr) * 31 + std::hash<NodeId>{}(k.writer);
  }
};

}  // namespace

std::optional<SlowViolation> check_slow_consistency(const History& history) {
  // Per (addr, writer): tag.seq -> position in that writer's per-location
  // write sequence (1-based; the initial write is position 0).
  std::unordered_map<Key, std::map<std::uint64_t, std::size_t>, KeyHash>
      position;
  for (const auto& seq : history.per_process) {
    for (const Operation& op : seq) {
      if (op.kind != OpKind::kWrite) continue;
      auto& slots = position[Key{op.addr, op.proc}];
      slots.emplace(op.tag.seq, slots.size() + 1);
    }
  }
  auto position_of = [&](Addr addr, const WriteTag& tag) -> std::size_t {
    if (tag.is_initial()) return 0;
    return position.at(Key{addr, tag.writer}).at(tag.seq);
  };

  for (NodeId p = 0; p < history.process_count(); ++p) {
    // floor[(addr, writer)] = last observed position of that writer's
    // writes to addr. Observing the initial value is compatible with floor 0
    // for every writer; observing (q, k) raises q's floor to k.
    std::unordered_map<Key, std::size_t, KeyHash> floor;
    for (std::size_t i = 0; i < history.per_process[p].size(); ++i) {
      const Operation& op = history.per_process[p][i];
      if (op.kind == OpKind::kWrite) {
        if (!op.applied) continue;  // a rejected write installed nothing
        floor[Key{op.addr, p}] = position_of(op.addr, op.tag);
        continue;
      }
      if (op.tag.is_initial()) {
        // Reading the initial value: a regression iff any writer's floor for
        // this location is already positive (the initial write precedes
        // every real write in every per-writer sequence).
        for (const auto& [key, fl] : floor) {
          if (key.addr == op.addr && fl > 0) {
            std::ostringstream oss;
            oss << "slow-memory violation: " << op.to_string()
                << " regresses to the initial value after observing a real "
                   "write to the same location";
            return SlowViolation{OpRef{p, i}, oss.str()};
          }
        }
        continue;
      }
      const Key key{op.addr, op.tag.writer};
      const std::size_t pos = position_of(op.addr, op.tag);
      auto it = floor.find(key);
      if (it != floor.end() && pos < it->second) {
        std::ostringstream oss;
        oss << "slow-memory violation: " << op.to_string()
            << " observes write #" << pos << " of P" << op.tag.writer
            << " to this location after already observing write #"
            << it->second;
        return SlowViolation{OpRef{p, i}, oss.str()};
      }
      floor[key] = std::max(it != floor.end() ? it->second : 0, pos);
    }
  }
  return std::nullopt;
}

}  // namespace causalmem

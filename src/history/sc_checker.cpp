#include "causalmem/history/sc_checker.hpp"

#include <map>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

namespace causalmem {

namespace {

/// Search state: how far each process has executed plus the latest write tag
/// per location. Encoded to a string for memoization.
struct SearchState {
  std::vector<std::size_t> pos;
  std::map<Addr, WriteTag> mem;

  [[nodiscard]] std::string key() const {
    std::ostringstream oss;
    for (const auto p : pos) oss << p << ";";
    oss << "|";
    for (const auto& [addr, tag] : mem) {
      oss << addr << ":" << tag.writer << "." << tag.seq << ";";
    }
    return oss.str();
  }
};

class ScSearch {
 public:
  ScSearch(const History& h, std::size_t max_states)
      : h_(h), max_states_(max_states) {}

  ScResult run() {
    SearchState init;
    init.pos.assign(h_.process_count(), 0);
    const bool found = dfs(init);
    if (found) return ScResult::kConsistent;
    return budget_exhausted_ ? ScResult::kUndecided : ScResult::kInconsistent;
  }

 private:
  bool dfs(const SearchState& s) {  // NOLINT(misc-no-recursion)
    if (states_seen_ >= max_states_) {
      budget_exhausted_ = true;
      return false;
    }
    if (!visited_.insert(s.key()).second) return false;
    ++states_seen_;

    bool done = true;
    for (std::size_t p = 0; p < h_.process_count(); ++p) {
      if (s.pos[p] < h_.per_process[p].size()) done = false;
    }
    if (done) return true;

    for (std::size_t p = 0; p < h_.process_count(); ++p) {
      if (s.pos[p] >= h_.per_process[p].size()) continue;
      const Operation& op = h_.per_process[p][s.pos[p]];
      if (op.kind == OpKind::kRead) {
        const auto it = s.mem.find(op.addr);
        const WriteTag current =
            it != s.mem.end() ? it->second : WriteTag{};  // initial
        if (!(current == op.tag)) continue;  // read can't go now
        SearchState next = s;
        ++next.pos[p];
        if (dfs(next)) return true;
      } else {
        SearchState next = s;
        ++next.pos[p];
        next.mem[op.addr] = op.tag;
        if (dfs(next)) return true;
      }
    }
    return false;
  }

  const History& h_;
  const std::size_t max_states_;
  std::unordered_set<std::string> visited_;
  std::size_t states_seen_{0};
  bool budget_exhausted_{false};
};

}  // namespace

ScResult check_sequential_consistency(const History& history,
                                      std::size_t max_states) {
  return ScSearch(history, max_states).run();
}

}  // namespace causalmem

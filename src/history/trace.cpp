#include "causalmem/history/trace.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

namespace causalmem {

std::string format_trace(const History& history) {
  std::ostringstream oss;
  for (NodeId p = 0; p < history.process_count(); ++p) {
    for (const Operation& op : history.per_process[p]) {
      oss << (op.kind == OpKind::kRead ? "r " : "w ") << p << " " << op.addr
          << " " << op.value << "\n";
    }
  }
  return oss.str();
}

std::variant<History, TraceParseError> parse_trace(std::istream& in) {
  struct RawOp {
    char kind;
    NodeId proc;
    Addr addr;
    Value value;
  };
  std::vector<RawOp> raw;
  std::size_t max_proc = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    RawOp op{};
    op.kind = kind[0];
    if ((op.kind != 'r' && op.kind != 'w') || kind.size() != 1 ||
        !(ls >> op.proc >> op.addr >> op.value)) {
      return TraceParseError{lineno,
                             "expected `r|w <proc> <addr> <value>`, got: " +
                                 line};
    }
    max_proc = std::max<std::size_t>(max_proc, op.proc);
    raw.push_back(op);
  }
  if (raw.empty()) {
    return TraceParseError{lineno, "no operations in trace"};
  }

  // Validate resolvability before handing to HistoryBuilder (which treats
  // violations as contract failures).
  for (const RawOp& op : raw) {
    if (op.kind != 'r') continue;
    std::size_t matches = 0;
    for (const RawOp& w : raw) {
      if (w.kind == 'w' && w.addr == op.addr && w.value == op.value) {
        ++matches;
      }
    }
    if (matches > 1) {
      return TraceParseError{
          0, "ambiguous reads-from: multiple writes of the same value to "
             "one location"};
    }
    if (matches == 0 && op.value != kInitialValue) {
      std::ostringstream oss;
      oss << "read of value " << op.value << " at location " << op.addr
          << " that no write produced";
      return TraceParseError{0, oss.str()};
    }
  }

  HistoryBuilder hb(max_proc + 1);
  for (const RawOp& op : raw) {
    if (op.kind == 'w') {
      hb.write(op.proc, op.addr, op.value);
    } else {
      hb.read(op.proc, op.addr, op.value);
    }
  }
  return hb.build();
}

}  // namespace causalmem

#include "causalmem/history/streaming_checker.hpp"

#include <algorithm>
#include <sstream>

#include "causalmem/common/expect.hpp"

namespace causalmem {

const char* bad_pattern_name(BadPattern p) noexcept {
  switch (p) {
    case BadPattern::kThinAirRead: return "ThinAirRead";
    case BadPattern::kCyclicCO: return "CyclicCO";
    case BadPattern::kWriteCOInitRead: return "WriteCOInitRead";
    case BadPattern::kWriteCORead: return "WriteCORead";
    case BadPattern::kWriteHBInitRead: return "WriteHBInitRead";
    case BadPattern::kWriteHBRead: return "WriteHBRead";
    case BadPattern::kCyclicCF: return "CyclicCF";
  }
  return "?";
}

ViolationClass violation_class_of(BadPattern p) noexcept {
  switch (p) {
    case BadPattern::kThinAirRead: return ViolationClass::kThinAir;
    case BadPattern::kCyclicCO: return ViolationClass::kFuture;
    case BadPattern::kWriteCOInitRead:
    case BadPattern::kWriteCORead:
    case BadPattern::kWriteHBInitRead:
    case BadPattern::kWriteHBRead: return ViolationClass::kStale;
    case BadPattern::kCyclicCF: return ViolationClass::kConvergence;
  }
  return ViolationClass::kStale;
}

ViolationClass classify_causal_reason(std::string_view reason) {
  if (reason.find("no write in the execution") != std::string_view::npos) {
    return ViolationClass::kThinAir;
  }
  if (reason.find("causal future") != std::string_view::npos) {
    return ViolationClass::kFuture;
  }
  // "stale read ...: its write was overwritten" and the hierarchy-prefixed
  // forms all land here; stale is also the safe default for unknown text.
  return ViolationClass::kStale;
}

StreamingCausalChecker::StreamingCausalChecker(std::size_t nprocs_hint,
                                               StreamingOptions opts)
    : opts_(opts), procs_declared_(nprocs_hint > 0) {
  clocks_.resize(nprocs_hint);
  for (auto& c : clocks_) c.assign(nprocs_hint, 0);
  pending_.resize(nprocs_hint);
  blocked_.assign(nprocs_hint, 0);
  min_frontier_.assign(nprocs_hint, 0);
}

void StreamingCausalChecker::ensure_proc(NodeId p) {
  if (p < clocks_.size()) return;
  // GC's judgments quantify over EVERY process ("dominated by all",
  // "overwritten in everyone's past"); they are unsound the moment a process
  // outside the set they saw appears with an empty causal past. Admitting a
  // late process therefore demotes the checker to the open-set regime (no
  // further collection, verdicts unaffected) — and is a caller contract
  // violation once collection has already happened, because the dropped
  // clocks and tombstoned records cannot be rebuilt.
  CM_EXPECTS_MSG(stats_.gc_clock_drops == 0 && stats_.gc_tombstoned == 0,
                 "process admitted after GC already dropped state: construct "
                 "StreamingCausalChecker with the full process count, or set "
                 "gc_interval=0");
  procs_declared_ = false;
  clocks_.resize(p + 1);
  pending_.resize(p + 1);
  blocked_.resize(p + 1, 0);
  min_frontier_.assign(min_frontier_.size(), 0);
  min_frontier_.resize(p + 1, 0);
}

void StreamingCausalChecker::set_component(std::vector<std::uint64_t>& v,
                                           std::size_t i,
                                           std::uint64_t value) {
  if (i >= v.size()) v.resize(i + 1, 0);
  v[i] = value;
}

void StreamingCausalChecker::merge_clock(
    std::vector<std::uint64_t>& into, const std::vector<std::uint64_t>& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

void StreamingCausalChecker::kill_min(std::vector<std::uint64_t>& kill,
                                      std::size_t q, std::uint64_t n) {
  if (q >= kill.size()) kill.resize(q + 1, kNoKill);
  kill[q] = std::min(kill[q], n);
}

int StreamingCausalChecker::kill_hit(const std::vector<std::uint64_t>& kill,
                                     const std::vector<std::uint64_t>& pre) {
  for (std::size_t q = 0; q < kill.size(); ++q) {
    if (kill[q] != kNoKill && kill[q] <= at(pre, q)) {
      return static_cast<int>(q);
    }
  }
  return -1;
}

void StreamingCausalChecker::on_write(NodeId p, Addr x, Value v,
                                      const WriteTag& tag) {
  Operation op;
  op.kind = OpKind::kWrite;
  op.proc = p;
  op.addr = x;
  op.value = v;
  op.tag = tag;
  on_op(op);
}

void StreamingCausalChecker::on_read(NodeId p, Addr x, Value v,
                                     const WriteTag& tag) {
  Operation op;
  op.kind = OpKind::kRead;
  op.proc = p;
  op.addr = x;
  op.value = v;
  op.tag = tag;
  on_op(op);
}

void StreamingCausalChecker::on_op(const Operation& op) {
  CM_EXPECTS_MSG(!finished_, "on_op after finish()");
  ensure_proc(op.proc);
  ++stats_.ops_seen;
  pending_[op.proc].push_back(op);
  ++stats_.pending_ops;
  stats_.peak_pending = std::max(stats_.peak_pending, stats_.pending_ops);
  if (blocked_[op.proc] == 0) drain_from(op.proc);
}

void StreamingCausalChecker::drain_from(NodeId first) {
  // Iterative worklist: completing a write may unpark reads at other
  // processes, whose processing may unpark further processes.
  std::deque<NodeId> work{first};
  while (!work.empty()) {
    const NodeId q = work.front();
    work.pop_front();
    if (blocked_[q] != 0) blocked_[q] = 0;
    auto& queue = pending_[q];
    while (!queue.empty()) {
      const Operation& head = queue.front();
      if (head.kind == OpKind::kRead && !head.tag.is_initial()) {
        const TagKey key{head.addr, head.tag};
        if (!writes_.contains(key) && !is_tombstoned(head.tag)) {
          // Source not processed yet: park this process until it is (or
          // finish() classifies the wait as ThinAirRead / CyclicCO).
          blocked_[q] = 1;
          waiters_[key].push_back(q);
          break;
        }
      }
      Operation op = std::move(queue.front());
      queue.pop_front();
      --stats_.pending_ops;
      process_op(op);
      if (op.kind == OpKind::kWrite) {
        if (const auto it = waiters_.find(TagKey{op.addr, op.tag});
            it != waiters_.end()) {
          for (const NodeId s : it->second) work.push_back(s);
          waiters_.erase(it);
        }
      }
    }
  }
}

void StreamingCausalChecker::process_op(const Operation& op) {
  if (op.kind == OpKind::kRead) {
    process_read(op);
  } else {
    process_write(op);
  }
  ++stats_.ops_processed;
  if (opts_.gc_interval != 0 && ++ops_since_gc_ >= opts_.gc_interval) {
    ops_since_gc_ = 0;
    gc();
  }
}

void StreamingCausalChecker::process_read(const Operation& op) {
  const NodeId q = op.proc;
  auto& V = clocks_[q];
  const std::uint64_t n = self_count(q) + 1;
  const OpRef ref{q, static_cast<std::size_t>(n - 1)};

  // pre(r): the clock BEFORE merging the read's own reads-from edge — every
  // other causal path into r runs through its program-order predecessor, so
  // this is exactly Definition 1's "own edge excluded" relation.
  WriteRec* src = nullptr;
  if (op.tag.is_initial()) {
    if (const auto it = init_kill_.find(op.addr); it != init_kill_.end()) {
      if (const int kq = kill_hit(it->second.cc, V); kq >= 0) {
        std::ostringstream oss;
        oss << "stale read " << op.to_string()
            << ": a write of x" << op.addr
            << " by p" << kq << " precedes this read of the initial value";
        record(ref, BadPattern::kWriteCOInitRead, oss.str());
      } else if (const int kr = kill_hit(it->second.cm, V); kr >= 0) {
        std::ostringstream oss;
        oss << "stale read " << op.to_string() << ": p" << kr
            << " already read a written value of x" << op.addr
            << " inside this read's causal past";
        record(ref, BadPattern::kWriteHBInitRead, oss.str());
      }
    }
  } else {
    const TagKey key{op.addr, op.tag};
    if (is_tombstoned(op.tag)) {
      std::ostringstream oss;
      oss << "stale read " << op.to_string()
          << ": its write was overwritten in every process's causal past";
      record(ref, BadPattern::kWriteCORead, oss.str());
    } else {
      src = &writes_.at(key);  // drain_from guarantees presence
      if (co_before(*src, V)) {
        if (const int kq = kill_hit(src->kill_cc, V); kq >= 0) {
          std::ostringstream oss;
          oss << "stale read " << op.to_string()
              << ": its write was overwritten — intervening write of x"
              << op.addr << " at p" << kq << " with w *-> m *-> r";
          record(ref, BadPattern::kWriteCORead, oss.str());
        } else if (const int kr = kill_hit(src->kill_cm, V); kr >= 0) {
          std::ostringstream oss;
          oss << "stale read " << op.to_string()
              << ": its write was overwritten — intervening read of x"
              << op.addr << " at p" << kr << " with w *-> m *-> r";
          record(ref, BadPattern::kWriteHBRead, oss.str());
        }
      }
      if (opts_.track_ccv) note_cf_edges(op, *src, V);
    }
  }

  if (src != nullptr && !src->clock_dropped) merge_clock(V, src->clock);
  set_component(V, q, n);

  // This read as an intervener: it kills (at the hb/CM level) every live
  // write of x with another tag inside its causal past.
  kill_scan(op.addr, op.tag, /*is_write=*/false, q, n);
  if (!op.tag.is_initial()) {
    kill_min(init_kill_[op.addr].cm, q, n);
  }
}

void StreamingCausalChecker::process_write(const Operation& op) {
  const NodeId q = op.proc;
  auto& V = clocks_[q];
  const std::uint64_t n = self_count(q) + 1;
  set_component(V, q, n);

  kill_scan(op.addr, op.tag, /*is_write=*/true, q, n);
  kill_min(init_kill_[op.addr].cc, q, n);

  const auto [it, inserted] = writes_.try_emplace(TagKey{op.addr, op.tag});
  if (!inserted || is_tombstoned(op.tag)) {
    // Non-differentiated input (duplicate tag): keep the first write, like
    // CausalChecker's write_of.emplace. The DSM never produces this.
    ++stats_.duplicate_tags;
    if (inserted) writes_.erase(it);
    return;
  }
  WriteRec& rec = it->second;
  rec.tag = op.tag;
  rec.proc = q;
  rec.num = n;
  rec.value = op.value;
  rec.clock = V;
  by_addr_[op.addr].push_back(&rec);
  stats_.live_writes = writes_.size();
  stats_.peak_live_writes =
      std::max(stats_.peak_live_writes, stats_.live_writes);
}

void StreamingCausalChecker::kill_scan(Addr addr, const WriteTag& value_tag,
                                       bool is_write, NodeId q,
                                       std::uint64_t n) {
  const auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) return;
  const auto& clk = clocks_[q];  // now includes this op itself
  for (WriteRec* w : it->second) {
    if (w->tag == value_tag) continue;  // same value confirms, not kills
    if (!co_before(*w, clk)) continue;  // killer must causally follow w
    kill_min(is_write ? w->kill_cc : w->kill_cm, q, n);
  }
}

void StreamingCausalChecker::note_cf_edges(
    const Operation& read, WriteRec& src,
    const std::vector<std::uint64_t>& pre) {
  // Conflict (cf) edges: reading w2 while another write w1 of x sits in the
  // read's causal past demands arbitration w1 < w2. An edge contradicting
  // co, or a cf 2-cycle, is a CCv violation (longer cycles are out of this
  // check's reach — ccv_decided() stays honest about saturation instead).
  const auto it = by_addr_.find(read.addr);
  if (it == by_addr_.end()) return;
  for (WriteRec* w1 : it->second) {
    if (w1->tag == src.tag) continue;
    if (!co_before(*w1, pre)) continue;  // not in the read's causal past
    // w1 -> co -> w2 already implies the arbitration order; no edge needed.
    if (!src.clock_dropped && at(src.clock, w1->proc) >= w1->num) continue;
    if (src.clock_dropped && w1->clock_dropped) continue;  // unknowable; skip
    // Contradiction with co: the read's source precedes w1 causally, yet
    // arbitration needs w1 before the source.
    if (!w1->clock_dropped && at(w1->clock, src.proc) >= src.num) {
      const std::uint64_t n = self_count(read.proc) + 1;
      std::ostringstream oss;
      oss << "convergence conflict at " << read.to_string()
          << ": arbitration needs w" << w1->proc << "#" << w1->num
          << " before the write read, but causal order has it after";
      record(OpRef{read.proc, static_cast<std::size_t>(n - 1)},
             BadPattern::kCyclicCF, oss.str());
      continue;
    }
    // cf 2-cycle: some earlier read demanded the opposite arbitration.
    if (std::find(w1->cf_before.begin(), w1->cf_before.end(), src.tag) !=
        w1->cf_before.end()) {
      const std::uint64_t n = self_count(read.proc) + 1;
      std::ostringstream oss;
      oss << "convergence conflict at " << read.to_string()
          << ": two processes observed writes of x" << read.addr
          << " in opposite orders";
      record(OpRef{read.proc, static_cast<std::size_t>(n - 1)},
             BadPattern::kCyclicCF, oss.str());
      continue;
    }
    if (std::find(src.cf_before.begin(), src.cf_before.end(), w1->tag) !=
        src.cf_before.end()) {
      continue;  // edge already known
    }
    if (src.cf_before.size() >= opts_.ccv_edges_per_write) {
      src.ccv_saturated = true;
      ccv_decided_ = false;
      continue;
    }
    src.cf_before.push_back(w1->tag);
  }
}

void StreamingCausalChecker::record(OpRef ref, BadPattern pattern,
                                    std::string detail) {
  ++pattern_counts_[static_cast<std::size_t>(pattern)];
  StreamingViolation v{ref, pattern, std::move(detail)};
  if (pattern == BadPattern::kCyclicCF) {
    ccv_bad_ = true;
  } else {
    if (!first_causal_.has_value()) first_causal_ = v;
    if (pattern != BadPattern::kWriteHBInitRead &&
        pattern != BadPattern::kWriteHBRead && !first_cc_.has_value()) {
      first_cc_ = v;
    }
  }
  if (violations_.size() < opts_.max_recorded) {
    violations_.push_back(std::move(v));
  }
}

void StreamingCausalChecker::gc() {
  if (!procs_declared_) {
    // Open process set (no nprocs at construction, or a late admission):
    // "dominated by every process" is unknowable while new processes may
    // still appear, so collection is off — verdicts are unaffected and
    // memory grows with the write count, exactly as with gc_interval=0.
    refresh_memory_estimate();
    return;
  }
  // Refresh the global min frontier: a write dominated by EVERY process's
  // clock can never again be merged usefully (its clock is already below
  // each V_q) and is co-before every future operation.
  const std::size_t procs = clocks_.size();
  min_frontier_.assign(procs, kNoKill);
  for (std::size_t q = 0; q < procs; ++q) {
    for (std::size_t i = 0; i < procs; ++i) {
      min_frontier_[i] = std::min(min_frontier_[i], at(clocks_[q], i));
    }
  }
  for (auto& [addr, list] : by_addr_) {
    for (std::size_t i = 0; i < list.size();) {
      WriteRec* w = list[i];
      if (!w->clock_dropped) {
        bool dominated = true;
        for (std::size_t c = 0; c < w->clock.size() && dominated; ++c) {
          dominated = w->clock[c] <= at(min_frontier_, c);
        }
        if (dominated) {
          w->clock.clear();
          w->clock.shrink_to_fit();
          w->clock_dropped = true;
          ++stats_.gc_clock_drops;
        }
      }
      bool tombstoned = false;
      if (w->clock_dropped && !w->kill_cc.empty()) {
        // Tombstone once a co-later write of x exists in EVERY process's
        // past: any future read of w is then stale by construction, so the
        // record can shrink to its tag.
        tombstoned = true;
        for (std::size_t s = 0; s < procs && tombstoned; ++s) {
          bool covered = false;
          for (std::size_t c = 0; c < w->kill_cc.size() && !covered; ++c) {
            covered = w->kill_cc[c] != kNoKill &&
                      w->kill_cc[c] <= at(clocks_[s], c);
          }
          tombstoned = covered;
        }
      }
      if (tombstoned) {
        const TagKey key{addr, w->tag};
        list[i] = list.back();
        list.pop_back();
        add_tombstone(w->tag);
        writes_.erase(key);
        ++stats_.gc_tombstoned;
      } else {
        ++i;
      }
    }
  }
  stats_.live_writes = writes_.size();
  stats_.tombstones = tombstone_count_;
  refresh_memory_estimate();
}

bool StreamingCausalChecker::is_tombstoned(const WriteTag& tag) const {
  const auto it = tombstones_.find(tag.writer);
  if (it == tombstones_.end()) return false;
  return tag.seq <= it->second.watermark ||
         it->second.pending.contains(tag.seq);
}

void StreamingCausalChecker::add_tombstone(const WriteTag& tag) {
  TombTracker& t = tombstones_[tag.writer];
  ++tombstone_count_;
  if (tag.seq == t.watermark + 1) {
    ++t.watermark;
    while (t.pending.erase(t.watermark + 1) != 0) ++t.watermark;
  } else {
    t.pending.insert(tag.seq);
  }
}

void StreamingCausalChecker::refresh_memory_estimate() {
  const std::size_t procs = clocks_.size();
  std::uint64_t bytes = 0;
  bytes += static_cast<std::uint64_t>(procs) * procs * sizeof(std::uint64_t);
  // Live writes: record + clock/kill vectors (worst-case procs-sized each)
  // + map node + by_addr slot. Tombstones: set node only.
  bytes += stats_.live_writes *
           (sizeof(WriteRec) + 3 * procs * sizeof(std::uint64_t) + 64);
  for (const auto& [writer, t] : tombstones_) {
    bytes += sizeof(TombTracker) + 32 +
             t.pending.size() * (sizeof(std::uint64_t) + 32);
  }
  bytes += stats_.pending_ops * sizeof(Operation);
  stats_.approx_bytes = bytes;
  stats_.peak_approx_bytes = std::max(stats_.peak_approx_bytes, bytes);
}

void StreamingCausalChecker::finish() {
  if (finished_) return;
  finished_ = true;
  if (opts_.gc_interval != 0) gc();
  refresh_memory_estimate();

  // Anything still parked lost its race with the end of the stream. Each
  // blocked process's head is a read waiting on a write that either never
  // arrived anywhere (ThinAirRead) or arrived behind ANOTHER blocked read.
  // Following the "whose write am I waiting for" chain either closes a
  // po ∪ rf cycle (CyclicCO) or dead-ends in a thin-air read. Processes
  // queued BEHIND such a chain are collateral: their reads' writes exist
  // and are valid, they were just never processed — no diagnosis of their
  // own (recording one would break the differential contract on histories
  // whose only defect is the upstream ThinAirRead).
  const std::size_t procs = pending_.size();
  auto arrived_unprocessed = [&](const TagKey& key) -> NodeId {
    for (NodeId p = 0; p < procs; ++p) {
      for (const Operation& o : pending_[p]) {
        if (o.kind == OpKind::kWrite && o.addr == key.addr &&
            o.tag == key.tag) {
          return p;
        }
      }
    }
    return kNoNode;
  };

  constexpr std::uint8_t kCycle = 1;       // diagnosed member of a cycle
  constexpr std::uint8_t kCollateral = 2;  // parked behind one, or thin air
  std::vector<std::uint8_t> classified(procs, 0);
  for (NodeId q = 0; q < procs; ++q) {
    if (pending_[q].empty() || classified[q] != 0) continue;
    // Walk the waiting chain from q; chain members whose write DID arrive
    // point at the process holding it.
    std::vector<NodeId> path;
    std::vector<std::uint8_t> on_path(procs, 0);
    NodeId cur = q;
    while (true) {
      const Operation& head = pending_[cur].front();
      CM_EXPECTS(head.kind == OpKind::kRead && !head.tag.is_initial());
      const TagKey key{head.addr, head.tag};
      const OpRef ref{cur, static_cast<std::size_t>(self_count(cur))};
      const NodeId holder = arrived_unprocessed(key);
      if (holder == kNoNode) {
        std::ostringstream oss;
        oss << "read returned a value no write in the execution produced: "
            << head.to_string();
        record(ref, BadPattern::kThinAirRead, oss.str());
        for (const NodeId p : path) classified[p] = kCollateral;
        classified[cur] = kCollateral;
        break;
      }
      if (on_path[holder] != 0) {
        // Chain closed on itself: the blocked reads from `holder` onward
        // form a program-order/reads-from cycle; any prefix fed into it.
        std::ostringstream oss;
        oss << "read from the causal future: " << head.to_string()
            << " causally precedes the write it read from";
        record(ref, BadPattern::kCyclicCO, oss.str());
        bool in_cycle = false;
        for (const NodeId p : path) {
          in_cycle = in_cycle || p == holder;
          classified[p] = in_cycle ? kCycle : kCollateral;
        }
        classified[cur] = kCycle;
        break;
      }
      if (classified[holder] != 0) {
        // Merged into an already-classified chain. Only a genuine cycle
        // propagates a diagnosis to the read blocked directly behind it;
        // merging into a thin-air-blocked (or collateral) chain is not a
        // violation — that read's write exists.
        if (classified[holder] == kCycle) {
          std::ostringstream oss;
          oss << "read from the causal future: " << head.to_string()
              << " reads from a write queued behind a causal cycle";
          record(ref, BadPattern::kCyclicCO, oss.str());
        }
        for (const NodeId p : path) classified[p] = kCollateral;
        classified[cur] = kCollateral;
        break;
      }
      on_path[cur] = 1;
      path.push_back(cur);
      cur = holder;
    }
  }
}

StreamingCausalChecker::Result StreamingCausalChecker::check(
    const History& h, StreamingOptions opts) {
  StreamingCausalChecker c(h.process_count(), opts);
  c.feed(h);
  c.finish();
  Result res;
  res.cc = c.cc_ok();
  res.causal = c.causal_ok();
  res.ccv = c.ccv_ok();
  res.ccv_decided = c.ccv_decided();
  res.first = c.first_violation();
  res.stats = c.stats();
  return res;
}

void StreamingCausalChecker::feed(const History& h) {
  // Round-robin across processes rather than process-major: the verdict is
  // feeding-order invariant (deferral parks forward references), but the GC
  // frontier is min-over-processes — feeding one process to completion first
  // pins the other components at zero and no write can be collected until
  // the very end. Interleaving approximates the real-time order an online
  // run would see, which is what keeps live state bounded.
  std::vector<std::size_t> next(h.per_process.size(), 0);
  std::size_t remaining = h.total_ops();
  while (remaining > 0) {
    for (NodeId p = 0; p < h.per_process.size(); ++p) {
      if (next[p] >= h.per_process[p].size()) continue;
      Operation o = h.per_process[p][next[p]++];
      o.proc = p;  // trust the history's structure over the op field
      on_op(o);
      --remaining;
    }
  }
}

}  // namespace causalmem

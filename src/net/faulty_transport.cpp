#include "causalmem/net/fault_injection.hpp"

#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"

namespace causalmem {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultModel model)
    : inner_(std::move(inner)), model_(model) {
  CM_EXPECTS(inner_ != nullptr);
  CM_EXPECTS(model_.drop_rate >= 0.0 && model_.drop_rate <= 1.0);
  CM_EXPECTS(model_.dup_rate >= 0.0 && model_.dup_rate <= 1.0);
  CM_EXPECTS(model_.delay_rate >= 0.0 && model_.delay_rate <= 1.0);
  const std::size_t n = inner_->node_count();
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    auto ch = std::make_unique<Channel>();
    ch->rng = Rng(model_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    channels_.push_back(std::move(ch));
  }
  crashed_ = std::vector<std::atomic<bool>>(n);
  epochs_ = std::vector<std::atomic<std::uint64_t>>(n);
}

FaultyTransport::~FaultyTransport() { shutdown(); }

void FaultyTransport::register_node(NodeId id, Handler handler) {
  inner_->register_node(id, std::move(handler));
}

void FaultyTransport::attach_stats(StatsRegistry* stats) noexcept {
  stats_ = stats;
  inner_->attach_stats(stats);
}

void FaultyTransport::bump_node(NodeId node, Counter c) noexcept {
  if (stats_ != nullptr && node < inner_->node_count()) {
    stats_->node(node).bump(c);
  }
}

void FaultyTransport::start() {
  CM_EXPECTS_MSG(!started_.exchange(true), "transport started twice");
  timer_ = std::jthread([this] { run_timer(); });
  inner_->start();
}

void FaultyTransport::crash_node(NodeId id) {
  CM_EXPECTS(id < inner_->node_count());
  crashed_[id].store(true, std::memory_order_release);
  epochs_[id].fetch_add(1, std::memory_order_acq_rel);
}

void FaultyTransport::restart_node(NodeId id) {
  CM_EXPECTS(id < inner_->node_count());
  crashed_[id].store(false, std::memory_order_release);
  epochs_[id].fetch_add(1, std::memory_order_acq_rel);
}

void FaultyTransport::set_partition(NodeId from, NodeId to, bool blocked) {
  CM_EXPECTS(from < inner_->node_count() && to < inner_->node_count());
  Channel& ch = channel(from, to);
  std::scoped_lock lock(ch.mu);
  ch.blocked = blocked;
}

void FaultyTransport::send(Message m) {
  if (stopping_.load(std::memory_order_acquire)) return;
  const std::size_t n = inner_->node_count();
  CM_EXPECTS(m.from < n && m.to < n);

  if (crashed_[m.from].load(std::memory_order_acquire) ||
      crashed_[m.to].load(std::memory_order_acquire)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    bump_node(m.from, Counter::kNetFaultDrop);
    trace_msg(m.from, obs::TraceEventKind::kFaultDrop, m);
    return;
  }

  bool dup = false;
  std::chrono::microseconds delay{0};
  {
    Channel& ch = channel(m.from, m.to);
    std::scoped_lock lock(ch.mu);
    if (ch.blocked || ch.rng.chance(model_.drop_rate)) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      bump_node(m.from, Counter::kNetFaultDrop);
      trace_msg(m.from, obs::TraceEventKind::kFaultDrop, m);
      return;
    }
    dup = ch.rng.chance(model_.dup_rate);
    if (dup || ch.rng.chance(model_.delay_rate)) {
      auto extra = model_.delay_base;
      if (model_.delay_jitter.count() > 0) {
        extra += std::chrono::microseconds(ch.rng.next_below(
            static_cast<std::uint64_t>(model_.delay_jitter.count()) + 1));
      }
      delay = extra;
    }
  }

  if (dup) {
    // The extra copy re-enters the inner transport later, after subsequent
    // sends on the channel — an out-of-order duplicate, the hard case for
    // the receive side.
    dups_.fetch_add(1, std::memory_order_relaxed);
    bump_node(m.from, Counter::kNetFaultDup);
    trace_msg(m.from, obs::TraceEventKind::kFaultDup, m);
    enqueue_delayed(m, delay);
    inner_->send(std::move(m));
    return;
  }
  if (delay.count() > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    bump_node(m.from, Counter::kNetFaultDelay);
    trace_msg(m.from, obs::TraceEventKind::kFaultDelay, m);
    enqueue_delayed(std::move(m), delay);
    return;
  }
  inner_->send(std::move(m));
}

void FaultyTransport::enqueue_delayed(Message m,
                                      std::chrono::microseconds delay) {
  {
    std::scoped_lock lock(delay_mu_);
    if (timer_stop_) return;
    delay_queue_.push(Delayed{Clock::now() + delay, delay_seq_++, std::move(m)});
  }
  delay_cv_.notify_one();
}

void FaultyTransport::run_timer() {
  std::unique_lock lock(delay_mu_);
  for (;;) {
    delay_cv_.wait(lock, [&] { return timer_stop_ || !delay_queue_.empty(); });
    if (timer_stop_) return;
    const auto send_at = delay_queue_.top().send_at;
    const auto now = Clock::now();
    if (send_at > now) {
      // An earlier deadline cannot appear (new entries use Clock::now() +
      // a non-negative delay), but shutdown can.
      delay_cv_.wait_until(lock, send_at, [&] { return timer_stop_; });
      if (timer_stop_) return;
      continue;
    }
    Message m = delay_queue_.top().msg;
    delay_queue_.pop();
    lock.unlock();
    inner_->send(std::move(m));
    lock.lock();
  }
}

void FaultyTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  {
    std::scoped_lock lock(delay_mu_);
    timer_stop_ = true;
    // Drop still-delayed messages: the system is quiescing and the inner
    // transport drops post-shutdown sends anyway.
    while (!delay_queue_.empty()) delay_queue_.pop();
  }
  delay_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  inner_->shutdown();
}

}  // namespace causalmem

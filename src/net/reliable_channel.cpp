#include "causalmem/net/reliable_channel.hpp"

#include <algorithm>

#include "causalmem/common/backoff.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"

namespace causalmem {

namespace {
constexpr std::uint64_t to_ns(std::chrono::microseconds us) noexcept {
  return static_cast<std::uint64_t>(us.count()) * 1000ULL;
}
}  // namespace

ReliableChannel::ReliableChannel(std::unique_ptr<Transport> inner,
                                 ReliableConfig config)
    : inner_(std::move(inner)), config_(config) {
  CM_EXPECTS(inner_ != nullptr);
  CM_EXPECTS(config_.initial_rto.count() > 0);
  CM_EXPECTS(config_.max_rto >= config_.initial_rto);
  CM_EXPECTS(config_.reorder_window > 0);
  const std::size_t n = inner_->node_count();
  handlers_.resize(n);
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    auto ch = std::make_unique<Channel>();
    ch->ring.resize(config_.reorder_window);
    ch->present.assign(config_.reorder_window, 0);
    channels_.push_back(std::move(ch));
  }
}

ReliableChannel::~ReliableChannel() { shutdown(); }

void ReliableChannel::attach_stats(StatsRegistry* stats) noexcept {
  stats_ = stats;
  inner_->attach_stats(stats);
}

void ReliableChannel::bump_node(NodeId node, Counter c) noexcept {
  if (stats_ != nullptr && node < inner_->node_count()) {
    stats_->node(node).bump(c);
  }
}

void ReliableChannel::register_node(NodeId id, Handler handler) {
  CM_EXPECTS(id < inner_->node_count());
  CM_EXPECTS_MSG(!started_.load(), "register_node after start()");
  CM_EXPECTS(handler != nullptr);
  handlers_[id] = std::move(handler);
  inner_->register_node(id, [this](const Message& m) { on_receive(m); });
}

void ReliableChannel::start() {
  CM_EXPECTS_MSG(!started_.exchange(true), "transport started twice");
  inner_->start();
  retransmitter_ =
      std::jthread([this](const std::stop_token& st) { run_retransmitter(st); });
}

void ReliableChannel::send(Message m) {
  if (stopping_.load(std::memory_order_acquire)) return;
  const std::size_t n = inner_->node_count();
  CM_EXPECTS(m.from < n && m.to < n);
  if (m.from == m.to) {  // loopback needs no reliability machinery
    inner_->send(std::move(m));
    return;
  }
  {
    // Piggyback the reverse channel's cumulative ack. Separate critical
    // section from the sequence assignment below — channel locks never nest.
    Channel& rev = channel(m.to, m.from);
    std::scoped_lock lock(rev.mu);
    m.rel_ack = rev.next_deliver_seq - 1;
  }
  {
    Channel& ch = channel(m.from, m.to);
    std::scoped_lock lock(ch.mu);
    m.rel_seq = ch.next_send_seq++;
    const std::uint64_t now = obs::now_ns();
    ch.outstanding.push_back(
        Pending{m, now + to_ns(config_.initial_rto), config_.initial_rto, now});
  }
  inner_->send(std::move(m));
}

void ReliableChannel::apply_ack(NodeId sender, NodeId receiver,
                                std::uint64_t acked) {
  if (acked == 0) return;
  Channel& ch = channel(sender, receiver);
  std::scoped_lock lock(ch.mu);
  // Cumulative: everything <= acked arrived. The deque holds consecutive
  // seqs starting at base_seq, so the acked prefix pops off the front.
  while (!ch.outstanding.empty() && ch.base_seq <= acked) {
    ch.outstanding.pop_front();
    ++ch.base_seq;
  }
}

void ReliableChannel::send_ack(NodeId receiver, NodeId sender,
                               std::uint64_t acked) {
  if (stopping_.load(std::memory_order_acquire)) return;
  Message ack;
  ack.type = MsgType::kRelAck;
  ack.from = receiver;
  ack.to = sender;
  ack.rel_ack = acked;
  acks_.fetch_add(1, std::memory_order_relaxed);
  bump_node(receiver, Counter::kNetAckSent);
  trace_msg(receiver, obs::TraceEventKind::kAckSent, ack);
  inner_->send(std::move(ack));
}

void ReliableChannel::on_receive(const Message& m) {
  if (m.type == MsgType::kRelAck) {
    apply_ack(/*sender=*/m.to, /*receiver=*/m.from, m.rel_ack);
    return;
  }
  if (m.rel_seq == 0) {
    // Unsequenced (loopback or a sender bypassing the adapter): deliver
    // directly, reliability is not our problem for these.
    handlers_[m.to](m);
    return;
  }
  apply_ack(/*sender=*/m.to, /*receiver=*/m.from, m.rel_ack);

  Channel& ch = channel(m.from, m.to);
  {
    std::scoped_lock lock(ch.mu);
    const std::size_t window = config_.reorder_window;
    if (m.rel_seq >= ch.next_deliver_seq + window) {
      // Beyond the bounded reorder buffer: drop instead of buffering, so a
      // wildly reordered (or hostile) sender cannot grow receiver state
      // without limit. The sender's retransmission redelivers the frame
      // once the window has advanced past it.
      out_of_window_.fetch_add(1, std::memory_order_relaxed);
      bump_node(m.to, Counter::kNetOutOfWindow);
    } else if (m.rel_seq < ch.next_deliver_seq ||
               ch.present[m.rel_seq % window] != 0) {
      // Duplicate (retransmission that crossed its ack, or an injected
      // copy). Drop it but re-ack: the first ack may have been lost.
      dup_drops_.fetch_add(1, std::memory_order_relaxed);
      bump_node(m.to, Counter::kNetDupDropped);
      trace_msg(m.to, obs::TraceEventKind::kDupDrop, m);
    } else {
      const std::size_t slot = m.rel_seq % window;
      ch.ring[slot] = m;
      ch.present[slot] = 1;
    }
    if (ch.draining) {
      // Another thread is mid-drain and will deliver (and ack) any frame we
      // just installed before it retires; a second popper here could
      // interleave its out-of-lock handler calls with the drainer's and
      // break per-channel FIFO.
      return;
    }
    ch.draining = true;
  }
  // Drain as the channel's sole popper. Deliver outside the lock: handlers
  // are protocol state machines that send replies, and those sends re-enter
  // this adapter (send() takes this very channel's mutex for the piggyback
  // ack when replying). Re-check after each batch so frames that arrived on
  // other threads during delivery are not stranded in the ring.
  std::vector<Message> ready;
  std::uint64_t ack_val = 0;
  for (;;) {
    {
      std::scoped_lock lock(ch.mu);
      const std::size_t window = config_.reorder_window;
      while (ch.present[ch.next_deliver_seq % window] != 0) {
        const std::size_t head = ch.next_deliver_seq % window;
        ready.push_back(std::move(ch.ring[head]));
        ch.ring[head] = Message{};  // release the buffered frame's storage
        ch.present[head] = 0;
        ++ch.next_deliver_seq;
      }
      if (ready.empty()) {
        ch.draining = false;
        ack_val = ch.next_deliver_seq - 1;
        break;
      }
    }
    for (const Message& r : ready) handlers_[m.to](r);
    ready.clear();
  }
  send_ack(/*receiver=*/m.to, /*sender=*/m.from, ack_val);
}

void ReliableChannel::reset_peer(NodeId id) {
  const std::size_t n = inner_->node_count();
  CM_EXPECTS(id < n);
  for (std::size_t other = 0; other < n; ++other) {
    if (other == id) continue;
    for (Channel* ch : {&channel(id, static_cast<NodeId>(other)),
                        &channel(static_cast<NodeId>(other), id)}) {
      std::scoped_lock lock(ch->mu);
      ch->outstanding.clear();
      ch->base_seq = 1;
      ch->next_send_seq = 1;
      ch->next_deliver_seq = 1;
      for (Message& buffered : ch->ring) buffered = Message{};
      std::fill(ch->present.begin(), ch->present.end(), std::uint8_t{0});
    }
  }
}

bool ReliableChannel::retransmit_due() {
  const std::uint64_t now = obs::now_ns();
  const std::size_t n = inner_->node_count();
  bool any = false;
  struct Resend {
    Message msg;
    std::uint64_t first_sent_ns;
  };
  std::vector<Resend> resend;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      resend.clear();
      {
        Channel& ch = channel(static_cast<NodeId>(s), static_cast<NodeId>(d));
        std::scoped_lock lock(ch.mu);
        for (Pending& pending : ch.outstanding) {
          if (pending.dead || pending.deadline_ns > now) continue;
          if (config_.max_retransmits != 0 &&
              pending.retries >= config_.max_retransmits) {
            // Give up: the peer is presumed dead. The message dies here —
            // exactly-once holds for delivered messages only; the layer
            // above (request deadlines / failover) owns this failure.
            peer_unreachable_.fetch_add(1, std::memory_order_relaxed);
            bump_node(pending.msg.from, Counter::kNetPeerUnreachable);
            trace_msg(pending.msg.from,
                      obs::TraceEventKind::kPeerUnreachable, pending.msg);
            CM_LOG_DEBUG("reliable give-up " << pending.msg.to_string());
            pending.dead = true;
            pending.msg = Message{};  // release the copy's storage now
            continue;
          }
          ++pending.retries;
          pending.rto = std::min(pending.rto * 2, config_.max_rto);
          pending.deadline_ns = now + to_ns(pending.rto);
          resend.push_back(Resend{pending.msg, pending.first_sent_ns});
        }
        // Dead entries at the front no longer gate the window prefix.
        while (!ch.outstanding.empty() && ch.outstanding.front().dead) {
          ch.outstanding.pop_front();
          ++ch.base_seq;
        }
      }
      for (Resend& r : resend) {
        Message& m = r.msg;
        retransmits_.fetch_add(1, std::memory_order_relaxed);
        bump_node(m.from, Counter::kNetRetransmit);
        if (stats_ != nullptr && m.from < n) {
          stats_->node(m.from).record_latency(
              LatencyMetric::kRetransmitDelayNs,
              obs::now_ns() - r.first_sent_ns);
        }
        trace_msg(m.from, obs::TraceEventKind::kRetransmit, m);
        CM_LOG_DEBUG("reliable retransmit " << m.to_string());
        inner_->send(std::move(m));
      }
      any = any || !resend.empty();
    }
  }
  return any;
}

void ReliableChannel::run_retransmitter(const std::stop_token& st) {
  // Backoff paces the scan: tight after a retransmission burst (more loss is
  // likely), escalating to max_sleep = tick when all channels are clean.
  Backoff pacer(config_.tick);
  while (!st.stop_requested()) {
    if (retransmit_due()) {
      pacer.reset();
    } else {
      pacer.pause();
    }
  }
}

void ReliableChannel::shutdown() {
  if (stopping_.exchange(true)) return;
  if (retransmitter_.joinable()) {
    retransmitter_.request_stop();
    retransmitter_.join();
  }
  // Unacked messages die with the channel: the system is quiescing, and the
  // Transport contract already drops post-shutdown sends.
  inner_->shutdown();
}

}  // namespace causalmem

#include "causalmem/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "causalmem/common/arena.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Reads exactly `len` bytes; returns false on orderly EOF / reset.
bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::byte*>(buf);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(std::size_t n) : n_(n), handlers_(n) {
  CM_EXPECTS(n > 0);
  conn_.resize(n);
  for (auto& row : conn_) row.resize(n);

  // Bind one listener per node on an ephemeral loopback port.
  std::vector<int> listeners(n, -1);
  std::vector<std::uint16_t> ports(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      throw_errno("bind");
    }
    if (::listen(fd, static_cast<int>(n)) < 0) throw_errno("listen");
    socklen_t alen = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) < 0) {
      throw_errno("getsockname");
    }
    listeners[i] = fd;
    ports[i] = ntohs(addr.sin_port);
  }

  // Connect the mesh: for every pair (i, j) with i < j, i dials j. The
  // dialer announces its id in a 4-byte hello so the acceptor can place the
  // connection. Accepts are interleaved with dials to avoid backlog stalls
  // (loopback backlog is ample for our n, so a simple two-phase loop works).
  for (std::size_t j = 0; j < n; ++j) {
    // Dial all higher-numbered peers first...
    for (std::size_t k = j + 1; k < n; ++k) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket(dial)");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports[k]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        throw_errno("connect");
      }
      set_nodelay(fd);
      const std::uint32_t hello = static_cast<std::uint32_t>(j);
      if (!write_all(fd, &hello, sizeof(hello))) throw_errno("hello");
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->owner = static_cast<NodeId>(j);
      conn_[j][k] = conn;
    }
    // ...then accept all lower-numbered dialers. Each side of a pair holds
    // its own Conn around its own end of the one TCP connection.
    for (std::size_t accepted = 0; accepted < j; ++accepted) {
      const int fd = ::accept(listeners[j], nullptr, nullptr);
      if (fd < 0) throw_errno("accept");
      set_nodelay(fd);
      std::uint32_t hello = 0;
      if (!read_exact(fd, &hello, sizeof(hello))) throw_errno("hello read");
      CM_ASSERT_MSG(hello < n, "bogus hello id");
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->owner = static_cast<NodeId>(j);
      conn_[j][hello] = conn;
    }
  }

  for (int fd : listeners) ::close(fd);
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::register_node(NodeId id, Handler handler) {
  CM_EXPECTS(id < n_);
  CM_EXPECTS_MSG(!started_.load(), "register_node after start()");
  handlers_[id] = std::move(handler);
}

void TcpTransport::start() {
  CM_EXPECTS_MSG(!started_.exchange(true), "transport started twice");
  for (std::size_t i = 0; i < n_; ++i) {
    CM_EXPECTS_MSG(handlers_[i] != nullptr, "node missing handler");
  }
  // One reader per endpoint per peer connection.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j || conn_[i][j] == nullptr) continue;
      Conn& c = *conn_[i][j];
      c.reader = std::jthread([this, &c] { run_reader(c); });
    }
  }
}

void TcpTransport::mark_broken(Conn& conn, const char* why) {
  if (conn.broken.exchange(true)) return;
  CM_LOG_WARN("tcp connection (node " << conn.owner << ") torn down: " << why);
  // SHUT_RDWR wakes this side's reader and pushes an EOF/RST to the peer,
  // whose reader then exits too — the pair is dead in both directions. The
  // fd itself is closed once, in shutdown().
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
}

void TcpTransport::run_reader(Conn& conn) {
  // Both buffers live for the whole connection: after the first few frames
  // their capacity covers the steady state and reads decode allocation-free.
  std::vector<std::byte> payload;
  Message m;
  for (;;) {
    std::uint32_t len = 0;
    if (!read_exact(conn.fd, &len, sizeof(len))) return;
    // Never trust the length prefix: a corrupt frame must not drive a
    // multi-gigabyte allocation. Tear the connection down instead.
    if (len == 0 || len > kMaxFrameBytes) {
      if (stats_ != nullptr && conn.owner < n_) {
        stats_->node(conn.owner).bump(Counter::kNetFrameError);
      }
      mark_broken(conn, "corrupt frame length");
      return;
    }
    payload.resize(len);
    if (!read_exact(conn.fd, payload.data(), len)) return;
    if (stopping_.load(std::memory_order_acquire)) return;
    Message::decode_into(payload, m, &conn.rx);
    CM_ASSERT(m.to < n_);
    trace_msg(m.to, obs::TraceEventKind::kRecv, m);
    handlers_[m.to](m);
  }
}

void TcpTransport::send(Message m) {
  CM_EXPECTS(m.from < n_ && m.to < n_ && m.from != m.to);
  if (stopping_.load(std::memory_order_acquire)) return;
  auto conn = conn_[m.from][m.to];
  CM_ASSERT(conn != nullptr);
  if (conn->broken.load(std::memory_order_acquire)) {
    // Fail fast: the connection already died; count the lost send so the
    // blocked-requester symptom is visible in stats instead of silent.
    if (stats_ != nullptr) stats_->node(m.from).bump(Counter::kNetSendFailed);
    return;
  }
  trace_msg(m.from, obs::TraceEventKind::kSend, m);
  write_frame(*conn, m);
}

void TcpTransport::send_raw(NodeId from, NodeId to,
                            std::span<const std::byte> bytes) {
  CM_EXPECTS(from < n_ && to < n_ && from != to);
  auto conn = conn_[from][to];
  CM_ASSERT(conn != nullptr);
  std::scoped_lock lock(conn->write_mu);
  (void)write_all(conn->fd, bytes.data(), bytes.size());
}

void TcpTransport::write_frame(Conn& conn, const Message& m) {
  // Encode under write_mu: the stream's clock-delta baseline must advance in
  // exactly the order frames hit the socket. The frame is assembled —
  // length prefix and payload — in the connection's reusable buffer and
  // written with a single send() call.
  std::scoped_lock lock(conn.write_mu);
  std::vector<std::byte> payload = m.encode(conn.tx);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  conn.wbuf.clear();
  conn.wbuf.resize(sizeof(len));
  std::memcpy(conn.wbuf.data(), &len, sizeof(len));
  conn.wbuf.insert(conn.wbuf.end(), payload.begin(), payload.end());
  FrameArena::release(std::move(payload));
  // A failed send means the reply the peer owes us will never come; silently
  // dropping it would leave a blocked requester waiting forever. Count it,
  // log it, and break the connection so later sends fail fast.
  if (!write_all(conn.fd, conn.wbuf.data(), conn.wbuf.size())) {
    if (stats_ != nullptr && conn.owner < n_) {
      stats_->node(conn.owner).bump(Counter::kNetSendFailed);
    }
    mark_broken(conn, "frame write failed");
  }
}

void TcpTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (conn_[i][j] != nullptr && conn_[i][j]->fd >= 0) {
        ::shutdown(conn_[i][j]->fd, SHUT_RDWR);
      }
    }
  }
  // Every cell owns a distinct per-side Conn, so each is joined and closed
  // exactly once.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      auto& c = conn_[i][j];
      if (c == nullptr) continue;
      if (c->reader.joinable()) c->reader.join();
      if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
      }
      c = nullptr;
    }
  }
}

}  // namespace causalmem

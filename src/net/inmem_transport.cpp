#include "causalmem/net/inmem_transport.hpp"

#include "causalmem/common/arena.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"

namespace causalmem {

namespace {

// Message types eligible for inline delivery on the sender's thread.
//
// Proof obligation: every send site of an eligible type, in every protocol
// layer, must hold no node or channel lock at the call — the inline path
// runs the receiver's handler (which takes the receiver's locks, and may
// itself send) before send() returns. Reply types qualify: all four DSM
// node implementations build replies under their mutex but send after
// releasing it, and ReliableChannel's acks are sent outside its channel
// locks. Request types do NOT qualify (AtomicNode sends kInvalidate under
// its mutex; requesters send while their own reply future is registered),
// and one-way updates (kBroadcastUpdate, kHeartbeat) stay on the queued
// path so their fan-out keeps its cost off the sending thread.
constexpr bool inline_eligible(MsgType t) noexcept {
  switch (t) {
    case MsgType::kReadReply:
    case MsgType::kWriteReply:
    case MsgType::kSyncReply:
    case MsgType::kRecoverReply:
    case MsgType::kRelAck:
      return true;
    default:
      return false;
  }
}

}  // namespace

InMemTransport::InMemTransport(std::size_t n, LatencyModel latency,
                               bool exercise_codec)
    : latency_(latency), exercise_codec_(exercise_codec) {
  CM_EXPECTS(n > 0);
  endpoints_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
  }
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    auto ch = std::make_unique<Channel>();
    ch->rng = Rng(latency_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    channels_.push_back(std::move(ch));
  }
}

InMemTransport::~InMemTransport() { shutdown(); }

void InMemTransport::register_node(NodeId id, Handler handler) {
  CM_EXPECTS(id < endpoints_.size());
  CM_EXPECTS_MSG(!started_.load(), "register_node after start()");
  CM_EXPECTS(handler != nullptr);
  endpoints_[id]->handler = std::move(handler);
}

void InMemTransport::start() {
  CM_EXPECTS_MSG(!started_.exchange(true), "transport started twice");
  for (auto& ep : endpoints_) {
    CM_EXPECTS_MSG(ep->handler != nullptr, "node missing handler");
    ep->worker = std::jthread([this, &ep_ref = *ep] { run_endpoint(ep_ref); });
  }
}

void InMemTransport::set_channel_latency(NodeId from, NodeId to,
                                         LatencyModel latency) {
  CM_EXPECTS(from < endpoints_.size() && to < endpoints_.size());
  CM_EXPECTS_MSG(!started_.load(), "set_channel_latency after start()");
  Channel& ch = *channels_[from * endpoints_.size() + to];
  std::scoped_lock lock(ch.mu);
  ch.has_override = true;
  ch.override_latency = latency;
}

InMemTransport::Clock::time_point InMemTransport::next_deadline_locked(
    Channel& ch) {
  const LatencyModel& lat = ch.has_override ? ch.override_latency : latency_;
  auto deadline = Clock::now();
  if (!lat.is_zero()) {
    auto extra = lat.base;
    if (lat.jitter.count() > 0) {
      extra += std::chrono::microseconds(ch.rng.next_below(
          static_cast<std::uint64_t>(lat.jitter.count()) + 1));
    }
    deadline += extra;
  }
  // Clamp to monotonic per-channel deadlines: FIFO survives jitter.
  if (deadline < ch.last_deadline) deadline = ch.last_deadline;
  ch.last_deadline = deadline;
  return deadline;
}

void InMemTransport::send(Message m) {
  CM_EXPECTS(m.from < endpoints_.size());
  CM_EXPECTS(m.to < endpoints_.size());
  if (stopping_.load(std::memory_order_acquire)) return;

  Channel& ch = *channels_[m.from * endpoints_.size() + m.to];
  Clock::time_point deadline{};
  bool try_inline = false;
  {
    std::scoped_lock lock(ch.mu);
    if (exercise_codec_) {
      // Round-trip through the wire format to prove serialization fidelity.
      // Encode and decode share this channel's lock, so the clock-delta
      // baselines advance in perfect lockstep; the frame comes from (and
      // returns to) the arena, and the swap recycles the caller's message
      // buffers as the next round-trip's decode target.
      std::vector<std::byte> wire = m.encode(ch.tx);
      Message::decode_into(wire, ch.scratch, &ch.rx);
      FrameArena::release(std::move(wire));
      std::swap(m, ch.scratch);
    }
    const LatencyModel& lat = ch.has_override ? ch.override_latency : latency_;
    try_inline = lat.is_zero() && inline_eligible(m.type);
    if (!try_inline) deadline = next_deadline_locked(ch);
  }

  // Wire-level send: recorded here (below the recovery layers) so
  // retransmissions show up as the extra sends they are.
  trace_msg(m.from, obs::TraceEventKind::kSend, m);

  Endpoint& ep = *endpoints_[m.to];
  if (try_inline) {
    // Claim the idle channel (0 -> 1). Success means nothing is queued or
    // mid-delivery on it, so delivering here cannot reorder the channel;
    // holding the claim until the handler returns keeps it that way. The
    // acquire pairs with the release decrements below, so the handler sees
    // every effect of the channel's previous delivery. On a busy channel,
    // fall through to the queue (the deadline was skipped above: a
    // zero-latency channel's deadline is just "now").
    std::uint32_t idle = 0;
    if (ch.inflight.compare_exchange_strong(idle, 1,
                                            std::memory_order_acq_rel)) {
      trace_msg(m.to, obs::TraceEventKind::kRecv, m);
      ep.handler(m);
      delivered_.fetch_add(1, std::memory_order_relaxed);
      ch.inflight.fetch_sub(1, std::memory_order_release);
      return;
    }
    std::scoped_lock lock(ch.mu);
    deadline = next_deadline_locked(ch);
  }

  {
    std::scoped_lock lock(ep.mu);
    if (ep.stopped) return;
    // Count before the push is visible: any send that happens-after this one
    // observes a non-idle channel and cannot jump the queue.
    ch.inflight.fetch_add(1, std::memory_order_relaxed);
    ep.queue.push(Envelope{deadline, ep.next_seq++, std::move(m)});
  }
  ep.cv.notify_one();
}

void InMemTransport::run_endpoint(Endpoint& ep) {
  std::unique_lock lock(ep.mu);
  for (;;) {
    ep.cv.wait(lock, [&] { return ep.stopped || !ep.queue.empty(); });
    if (ep.stopped && ep.queue.empty()) return;
    const auto deliver_at = ep.queue.top().deliver_at;
    const auto now = Clock::now();
    if (deliver_at > now) {
      // Wait out the injected latency; a new earlier message cannot appear
      // (deadlines are assigned at send time and the top is the earliest),
      // but shutdown can, so re-check the predicate.
      ep.cv.wait_until(lock, deliver_at,
                       [&] { return ep.stopped && ep.queue.empty(); });
      continue;
    }
    // priority_queue::top() is const, but moving out before pop() is safe
    // (pop only needs the element to be assignable) and saves copying the
    // message's stamp and cells on every delivery.
    Envelope env = std::move(const_cast<Envelope&>(ep.queue.top()));
    ep.queue.pop();
    lock.unlock();
    trace_msg(env.msg.to, obs::TraceEventKind::kRecv, env.msg);
    ep.handler(env.msg);
    delivered_.fetch_add(1, std::memory_order_relaxed);
    // Release the channel only after the handler returns: an inline send
    // that observes 0 must also observe this delivery's effects.
    channels_[env.msg.from * endpoints_.size() + env.msg.to]->inflight
        .fetch_sub(1, std::memory_order_release);
    lock.lock();
  }
}

void InMemTransport::shutdown() {
  if (stopping_.exchange(true)) {
    // Already stopping; jthread joins on destruction.
  }
  for (auto& ep : endpoints_) {
    {
      std::scoped_lock lock(ep->mu);
      ep->stopped = true;
      // Drop undelivered messages: receivers are quiescing and replies to
      // them would target dead futures.
      while (!ep->queue.empty()) ep->queue.pop();
    }
    ep->cv.notify_all();
  }
  for (auto& ep : endpoints_) {
    if (ep->worker.joinable()) ep->worker.join();
  }
}

}  // namespace causalmem

#include "causalmem/net/inmem_transport.hpp"

#include "causalmem/common/expect.hpp"
#include "causalmem/common/logging.hpp"

namespace causalmem {

InMemTransport::InMemTransport(std::size_t n, LatencyModel latency,
                               bool exercise_codec)
    : latency_(latency), exercise_codec_(exercise_codec) {
  CM_EXPECTS(n > 0);
  endpoints_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
  }
  channels_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    auto ch = std::make_unique<Channel>();
    ch->rng = Rng(latency_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    channels_.push_back(std::move(ch));
  }
}

InMemTransport::~InMemTransport() { shutdown(); }

void InMemTransport::register_node(NodeId id, Handler handler) {
  CM_EXPECTS(id < endpoints_.size());
  CM_EXPECTS_MSG(!started_.load(), "register_node after start()");
  CM_EXPECTS(handler != nullptr);
  endpoints_[id]->handler = std::move(handler);
}

void InMemTransport::start() {
  CM_EXPECTS_MSG(!started_.exchange(true), "transport started twice");
  for (auto& ep : endpoints_) {
    CM_EXPECTS_MSG(ep->handler != nullptr, "node missing handler");
    ep->worker = std::jthread([this, &ep_ref = *ep] { run_endpoint(ep_ref); });
  }
}

void InMemTransport::set_channel_latency(NodeId from, NodeId to,
                                         LatencyModel latency) {
  CM_EXPECTS(from < endpoints_.size() && to < endpoints_.size());
  CM_EXPECTS_MSG(!started_.load(), "set_channel_latency after start()");
  Channel& ch = *channels_[from * endpoints_.size() + to];
  std::scoped_lock lock(ch.mu);
  ch.has_override = true;
  ch.override_latency = latency;
}

InMemTransport::Clock::time_point InMemTransport::next_deadline(NodeId from,
                                                                NodeId to) {
  const auto n = endpoints_.size();
  Channel& ch = *channels_[from * n + to];
  std::scoped_lock lock(ch.mu);
  const LatencyModel& lat = ch.has_override ? ch.override_latency : latency_;
  auto deadline = Clock::now();
  if (!lat.is_zero()) {
    auto extra = lat.base;
    if (lat.jitter.count() > 0) {
      extra += std::chrono::microseconds(ch.rng.next_below(
          static_cast<std::uint64_t>(lat.jitter.count()) + 1));
    }
    deadline += extra;
  }
  // Clamp to monotonic per-channel deadlines: FIFO survives jitter.
  if (deadline < ch.last_deadline) deadline = ch.last_deadline;
  ch.last_deadline = deadline;
  return deadline;
}

void InMemTransport::send(Message m) {
  CM_EXPECTS(m.from < endpoints_.size());
  CM_EXPECTS(m.to < endpoints_.size());
  if (stopping_.load(std::memory_order_acquire)) return;

  if (exercise_codec_) {
    // Round-trip through the wire format to prove serialization fidelity.
    m = Message::decode(m.encode());
  }

  // Wire-level send: recorded here (below the recovery layers) so
  // retransmissions show up as the extra sends they are.
  trace_msg(m.from, obs::TraceEventKind::kSend, m);

  const auto deadline = next_deadline(m.from, m.to);
  Endpoint& ep = *endpoints_[m.to];
  {
    std::scoped_lock lock(ep.mu);
    if (ep.stopped) return;
    ep.queue.push(Envelope{deadline, ep.next_seq++, std::move(m)});
  }
  ep.cv.notify_one();
}

void InMemTransport::run_endpoint(Endpoint& ep) {
  std::unique_lock lock(ep.mu);
  for (;;) {
    ep.cv.wait(lock, [&] { return ep.stopped || !ep.queue.empty(); });
    if (ep.stopped && ep.queue.empty()) return;
    const auto deliver_at = ep.queue.top().deliver_at;
    const auto now = Clock::now();
    if (deliver_at > now) {
      // Wait out the injected latency; a new earlier message cannot appear
      // (deadlines are assigned at send time and the top is the earliest),
      // but shutdown can, so re-check the predicate.
      ep.cv.wait_until(lock, deliver_at,
                       [&] { return ep.stopped && ep.queue.empty(); });
      continue;
    }
    Envelope env = ep.queue.top();
    ep.queue.pop();
    lock.unlock();
    trace_msg(env.msg.to, obs::TraceEventKind::kRecv, env.msg);
    ep.handler(env.msg);
    delivered_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void InMemTransport::shutdown() {
  if (stopping_.exchange(true)) {
    // Already stopping; jthread joins on destruction.
  }
  for (auto& ep : endpoints_) {
    {
      std::scoped_lock lock(ep->mu);
      ep->stopped = true;
      // Drop undelivered messages: receivers are quiescing and replies to
      // them would target dead futures.
      while (!ep->queue.empty()) ep->queue.pop();
    }
    ep->cv.notify_all();
  }
  for (auto& ep : endpoints_) {
    if (ep->worker.joinable()) ep->worker.join();
  }
}

}  // namespace causalmem

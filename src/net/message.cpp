#include "causalmem/net/message.hpp"

#include <sstream>

#include "causalmem/common/arena.hpp"

namespace causalmem {

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kRead: return "READ";
    case MsgType::kReadReply: return "R_REPLY";
    case MsgType::kWrite: return "WRITE";
    case MsgType::kWriteReply: return "W_REPLY";
    case MsgType::kInvalidate: return "INV";
    case MsgType::kInvalidateAck: return "INV_ACK";
    case MsgType::kBroadcastUpdate: return "BCAST";
    case MsgType::kRelAck: return "REL_ACK";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kSyncRequest: return "SYNC";
    case MsgType::kSyncReply: return "SYNC_REPLY";
    case MsgType::kRecover: return "RECOVER";
    case MsgType::kRecoverReply: return "RECOVER_REPLY";
    case MsgType::kCatchupRequest: return "CATCHUP";
    case MsgType::kCatchupReply: return "CATCHUP_REPLY";
  }
  return "?";
}

void CellUpdate::encode(ByteWriter& w) const {
  w.put(addr);
  w.put(value);
  w.put(tag.writer);
  w.put(tag.seq);
}

CellUpdate CellUpdate::decode(ByteReader& r) {
  CellUpdate c;
  c.addr = r.get<Addr>();
  c.value = r.get<Value>();
  c.tag.writer = r.get<NodeId>();
  c.tag.seq = r.get<std::uint64_t>();
  return c;
}

namespace {

/// Everything but the stamp, which the two encode overloads frame
/// differently (full vs. channel-delta).
template <typename StampEncoder>
std::vector<std::byte> encode_message(const Message& m, StampEncoder&& stamp) {
  ByteWriter w(FrameArena::acquire());
  w.put(kWireVersion);
  w.put(m.type);
  w.put(m.from);
  w.put(m.to);
  w.put(m.request_id);
  w.put(m.addr);
  w.put(m.value);
  w.put(m.tag.writer);
  w.put(m.tag.seq);
  stamp(w);
  w.put<std::uint8_t>(m.accepted ? 1 : 0);
  w.put_count(m.cells.size());
  for (const auto& c : m.cells) c.encode(w);
  w.put(m.rel_seq);
  w.put(m.rel_ack);
  w.put(m.trace_id);  // v3 trailer
  return std::move(w).take();
}

}  // namespace

std::vector<std::byte> Message::encode() const {
  return encode_message(*this, [this](ByteWriter& w) { stamp.encode(w); });
}

std::vector<std::byte> Message::encode(ClockCodecState& tx) const {
  return encode_message(*this,
                        [this, &tx](ByteWriter& w) { stamp.encode(w, tx); });
}

Message Message::decode(std::span<const std::byte> bytes) {
  Message m;
  decode_into(bytes, m, nullptr);
  return m;
}

void Message::decode_into(std::span<const std::byte> bytes, Message& m,
                          ClockCodecState* rx) {
  ByteReader r(bytes);
  const auto version = r.get<std::uint8_t>();
  CM_EXPECTS_MSG(version >= kMinWireVersion && version <= kWireVersion,
                 "unsupported wire version");
  m.type = r.get<MsgType>();
  m.from = r.get<NodeId>();
  m.to = r.get<NodeId>();
  m.request_id = r.get<std::uint64_t>();
  m.addr = r.get<Addr>();
  m.value = r.get<Value>();
  m.tag.writer = r.get<NodeId>();
  m.tag.seq = r.get<std::uint64_t>();
  m.stamp.decode_in_place(r, rx);
  m.accepted = r.get<std::uint8_t>() != 0;
  const auto n = r.get<std::uint32_t>();
  // Each cell occupies a fixed number of wire bytes; checking the count
  // against the remaining payload first keeps a corrupt count from forcing
  // a huge allocation before the under-run is caught.
  constexpr std::size_t kCellWireBytes =
      sizeof(Addr) + sizeof(Value) + sizeof(NodeId) + sizeof(std::uint64_t);
  CM_EXPECTS_MSG(r.remaining() / kCellWireBytes >= n,
                 "codec under-run (cell count)");
  m.cells.clear();
  m.cells.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.cells.push_back(CellUpdate::decode(r));
  m.rel_seq = r.get<std::uint64_t>();
  m.rel_ack = r.get<std::uint64_t>();
  // v2 frames end here; the v3 trace_id trailer reads as 0 for them.
  m.trace_id = version >= 3 ? r.get<std::uint64_t>() : 0;
  CM_ENSURES(r.exhausted());
}

std::string Message::to_string() const {
  std::ostringstream oss;
  oss << msg_type_name(type) << " P" << from << "->P" << to << " x=" << addr
      << " v=" << value << " " << causalmem::to_string(tag) << " VT="
      << stamp.to_string();
  if (!accepted) oss << " REJECTED";
  if (!cells.empty()) oss << " cells=" << cells.size();
  if (rel_seq != 0) oss << " rseq=" << rel_seq;
  if (rel_ack != 0) oss << " rack=" << rel_ack;
  if (trace_id != 0) oss << " tid=" << trace_id;
  return oss.str();
}

}  // namespace causalmem

#include "causalmem/net/message.hpp"

#include <sstream>

namespace causalmem {

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kRead: return "READ";
    case MsgType::kReadReply: return "R_REPLY";
    case MsgType::kWrite: return "WRITE";
    case MsgType::kWriteReply: return "W_REPLY";
    case MsgType::kInvalidate: return "INV";
    case MsgType::kInvalidateAck: return "INV_ACK";
    case MsgType::kBroadcastUpdate: return "BCAST";
  }
  return "?";
}

void CellUpdate::encode(ByteWriter& w) const {
  w.put(addr);
  w.put(value);
  w.put(tag.writer);
  w.put(tag.seq);
}

CellUpdate CellUpdate::decode(ByteReader& r) {
  CellUpdate c;
  c.addr = r.get<Addr>();
  c.value = r.get<Value>();
  c.tag.writer = r.get<NodeId>();
  c.tag.seq = r.get<std::uint64_t>();
  return c;
}

std::vector<std::byte> Message::encode() const {
  ByteWriter w;
  w.put(type);
  w.put(from);
  w.put(to);
  w.put(request_id);
  w.put(addr);
  w.put(value);
  w.put(tag.writer);
  w.put(tag.seq);
  stamp.encode(w);
  w.put<std::uint8_t>(accepted ? 1 : 0);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(cells.size()));
  for (const auto& c : cells) c.encode(w);
  return std::move(w).take();
}

Message Message::decode(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  Message m;
  m.type = r.get<MsgType>();
  m.from = r.get<NodeId>();
  m.to = r.get<NodeId>();
  m.request_id = r.get<std::uint64_t>();
  m.addr = r.get<Addr>();
  m.value = r.get<Value>();
  m.tag.writer = r.get<NodeId>();
  m.tag.seq = r.get<std::uint64_t>();
  m.stamp = VectorClock::decode(r);
  m.accepted = r.get<std::uint8_t>() != 0;
  const auto n = r.get<std::uint32_t>();
  m.cells.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.cells.push_back(CellUpdate::decode(r));
  CM_ENSURES(r.exhausted());
  return m;
}

std::string Message::to_string() const {
  std::ostringstream oss;
  oss << msg_type_name(type) << " P" << from << "->P" << to << " x=" << addr
      << " v=" << value << " " << causalmem::to_string(tag) << " VT="
      << stamp.to_string();
  if (!accepted) oss << " REJECTED";
  if (!cells.empty()) oss << " cells=" << cells.size();
  return oss.str();
}

}  // namespace causalmem

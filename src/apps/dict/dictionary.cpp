#include "causalmem/apps/dict/dictionary.hpp"

namespace causalmem {

std::unique_ptr<Ownership> Dictionary::make_ownership(std::size_t rows,
                                                      std::size_t slots,
                                                      Addr base) {
  auto own = std::make_unique<ExplicitOwnership>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < slots; ++c) {
      own->assign(base + r * slots + c, static_cast<NodeId>(r));
    }
  }
  return own;
}

bool Dictionary::insert(Value v) {
  CM_EXPECTS_MSG(!is_free(v), "cannot insert a reserved encoding");
  const std::size_t row = mem_.node_id();
  for (std::size_t c = 0; c < slots_; ++c) {
    const Addr a = slot_addr(row, c);
    if (is_free(mem_.read(a))) {
      mem_.write(a, v);
      return true;
    }
  }
  return false;
}

bool Dictionary::lookup(Value v) {
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < slots_; ++c) {
      if (mem_.read(slot_addr(r, c)) == v) return true;
    }
  }
  return false;
}

bool Dictionary::remove(Value v) {
  CM_EXPECTS_MSG(!is_free(v), "cannot delete a reserved encoding");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < slots_; ++c) {
      const Addr a = slot_addr(r, c);
      if (mem_.read(a) == v) {
        // The owner-wins policy arbitrates if this lambda races with the
        // owner's newer insert into the same slot (Section 4.2).
        mem_.write(a, kLambda);
        return true;
      }
    }
  }
  return false;
}

void Dictionary::refresh() {
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == mem_.node_id()) continue;  // own row is always current
    for (std::size_t c = 0; c < slots_; ++c) {
      (void)mem_.discard(slot_addr(r, c));
    }
  }
}

std::vector<Value> Dictionary::snapshot() {
  std::vector<Value> out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < slots_; ++c) {
      const Value v = mem_.read(slot_addr(r, c));
      if (!is_free(v)) out.push_back(v);
    }
  }
  return out;
}

}  // namespace causalmem

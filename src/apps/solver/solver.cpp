#include "causalmem/apps/solver/solver.hpp"

#include <algorithm>
#include <thread>

#include "causalmem/apps/sync/sync.hpp"
#include "causalmem/common/expect.hpp"

namespace causalmem {

namespace {

constexpr Value kTrue = 1;
constexpr Value kFalse = 0;

/// Seeds A and b through the coordinator's memory (it owns them, so these
/// are local writes that precede every worker operation).
void seed_constants(const SolverProblem& p, const SolverLayout& layout,
                    SharedMemory& coord) {
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.n; ++j) {
      coord.write(layout.a(i, j), value_from_double(p.a_at(i, j)));
    }
    coord.write(layout.b(i), value_from_double(p.b[i]));
  }
}

/// One worker's compute step: t_i from the currently visible x vector, with
/// a fixed reduction order (j ascending) so results are comparable
/// bit-for-bit with SolverProblem::jacobi_reference.
double compute_ti(const SolverProblem& p, const SolverLayout& layout,
                  SharedMemory& mem, std::size_t i) {
  double acc = double_from_value(mem.read(layout.b(i)));
  for (std::size_t j = 0; j < p.n; ++j) {
    if (j == i) continue;
    const double aij = double_from_value(mem.read(layout.a(i, j)));
    const double xj = double_from_value(mem.read(layout.x(j)));
    acc -= aij * xj;
  }
  return acc / double_from_value(mem.read(layout.a(i, i)));
}

std::vector<double> collect_result(const SolverProblem& p,
                                   const SolverLayout& layout,
                                   SharedMemory& coord) {
  std::vector<double> x(p.n, 0.0);
  for (std::size_t i = 0; i < p.n; ++i) {
    coord.discard(layout.x(i));  // fresh copies from the owners
    x[i] = double_from_value(coord.read(layout.x(i)));
  }
  return x;
}

}  // namespace

SolverRun run_sync_solver(const SolverProblem& problem,
                          const SolverLayout& layout,
                          std::vector<SharedMemory*> memories,
                          const SolverOptions& options) {
  const std::size_t n = problem.n;
  const std::size_t nw = layout.workers();
  CM_EXPECTS(memories.size() == layout.node_count());
  CM_EXPECTS(layout.elements() == n);
  SharedMemory& coord = *memories[layout.coordinator()];

  seed_constants(problem, layout, coord);

  std::vector<std::jthread> workers;
  workers.reserve(nw);
  for (std::size_t w = 0; w < nw; ++w) {
    workers.emplace_back([&, w] {
      SharedMemory& mem = *memories[w];
      if (options.protect_constants) {
        mem.mark_read_only(layout.constants_begin(), layout.constants_end());
      }
      std::vector<std::pair<std::size_t, double>> block;
      for (std::size_t k = 0; k < options.iterations; ++k) {
        // Phase k: compute this worker's block from the phase k-1 vector.
        block.clear();
        for (std::size_t i = 0; i < n; ++i) {
          if (layout.worker_of(i) != w) continue;
          block.emplace_back(i, compute_ti(problem, layout, mem, i));
        }
        // Handshake 1: announce completion, wait for the go-ahead.
        mem.write(layout.complete(w), kTrue);
        (void)spin_until_equals(mem, layout.complete(w), kFalse);
        // Publish the block (owned locally: no messages).
        for (const auto& [i, ti] : block) {
          mem.write(layout.x(i), value_from_double(ti));
        }
        // Handshake 2: announce the copy, wait for phase end.
        mem.write(layout.changed(w), kTrue);
        (void)spin_until_equals(mem, layout.changed(w), kFalse);
      }
    });
  }

  for (std::size_t k = 0; k < options.iterations; ++k) {
    if (options.on_phase) options.on_phase(k);
    for (std::size_t w = 0; w < nw; ++w) {
      (void)spin_until_equals(coord, layout.complete(w), kTrue);
    }
    for (std::size_t w = 0; w < nw; ++w) {
      coord.write(layout.complete(w), kFalse);
    }
    for (std::size_t w = 0; w < nw; ++w) {
      (void)spin_until_equals(coord, layout.changed(w), kTrue);
    }
    for (std::size_t w = 0; w < nw; ++w) {
      coord.write(layout.changed(w), kFalse);
    }
  }

  for (auto& w : workers) w.join();

  SolverRun run;
  run.iterations = options.iterations;
  run.x = collect_result(problem, layout, coord);
  return run;
}

SolverRun run_async_solver(const SolverProblem& problem,
                           const SolverLayout& layout,
                           std::vector<SharedMemory*> memories,
                           const SolverOptions& options) {
  const std::size_t n = problem.n;
  CM_EXPECTS(memories.size() == layout.node_count());
  SharedMemory& coord = *memories[layout.coordinator()];

  // complete_i doubles as the control flag: kFalse = hold, kTrue = run,
  // kStop = converged, shut down.
  constexpr Value kStop = 2;

  seed_constants(problem, layout, coord);
  const std::size_t nw = layout.workers();
  std::vector<std::size_t> sweeps(nw, 0);
  std::vector<std::jthread> workers;
  workers.reserve(nw);
  for (std::size_t w = 0; w < nw; ++w) {
    workers.emplace_back([&, w] {
      SharedMemory& mem = *memories[w];
      if (options.protect_constants) {
        mem.mark_read_only(layout.constants_begin(), layout.constants_end());
      }
      // Wait for the go-ahead (the constants exist once it arrives).
      (void)spin_until(mem, layout.complete(w),
                       [](Value v) { return v != kFalse; });
      for (std::size_t k = 0; k < options.iterations; ++k) {
        if (mem.read(layout.complete(w)) == kStop) break;  // owned: local
        // Chaotic relaxation: read whatever is visible now. Discard cached
        // neighbour values first so owner updates eventually flow in
        // (Section 3.1: "occasional execution of discard ... ensures
        // eventual communication").
        for (std::size_t j = 0; j < n; ++j) {
          if (layout.worker_of(j) != w) (void)mem.discard(layout.x(j));
        }
        for (std::size_t i = 0; i < n; ++i) {
          if (layout.worker_of(i) != w) continue;
          const double ti = compute_ti(problem, layout, mem, i);
          mem.write(layout.x(i), value_from_double(ti));
        }
        mem.flush();
        ++sweeps[w];
      }
      mem.write(layout.changed(w), kTrue);
    });
  }

  for (std::size_t w = 0; w < nw; ++w) coord.write(layout.complete(w), kTrue);

  // Termination detection: the coordinator polls the global vector and
  // raises the stop flags once the residual is small. Workers that exhaust
  // their sweep budget stop on their own (converged=false).
  std::vector<double> x(n, 0.0);
  bool converged = false;
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)coord.discard(layout.x(i));
      x[i] = double_from_value(coord.read(layout.x(i)));
    }
    if (problem.residual(x) < options.tolerance) {
      converged = true;
      break;
    }
    bool all_done = true;
    for (std::size_t w = 0; w < nw; ++w) {
      (void)coord.discard(layout.changed(w));
      all_done = all_done && coord.read(layout.changed(w)) == kTrue;
    }
    if (all_done) break;  // budgets exhausted without convergence
    std::this_thread::yield();
  }
  for (std::size_t w = 0; w < nw; ++w) coord.write(layout.complete(w), kStop);
  for (std::size_t w = 0; w < nw; ++w) {
    (void)spin_until_equals(coord, layout.changed(w), kTrue);
  }
  for (auto& w : workers) w.join();

  SolverRun run;
  run.iterations = *std::max_element(sweeps.begin(), sweeps.end());
  run.converged = converged;
  run.x = collect_result(problem, layout, coord);
  return run;
}

std::unique_ptr<Ownership> DecentralizedSolverLayout::make_ownership() const {
  auto own = std::make_unique<ExplicitOwnership>(node_count());
  for (std::size_t i = 0; i < n_; ++i) {
    own->assign(x(i), worker_of(i));
  }
  for (std::size_t k = 0; k < w_; ++k) {
    own->assign(barrier_base() + k, static_cast<NodeId>(k));
  }
  for (Addr addr = constants_begin(); addr < constants_end(); ++addr) {
    own->assign(addr, 0);  // worker 0 seeds and owns the constants
  }
  return own;
}

SolverRun run_decentralized_solver(const SolverProblem& problem,
                                   const DecentralizedSolverLayout& layout,
                                   std::vector<SharedMemory*> memories,
                                   const SolverOptions& options) {
  const std::size_t n = problem.n;
  const std::size_t nw = layout.workers();
  CM_EXPECTS(memories.size() == layout.node_count());
  CM_EXPECTS(layout.elements() == n);

  std::vector<std::jthread> workers;
  workers.reserve(nw);
  for (std::size_t w = 0; w < nw; ++w) {
    workers.emplace_back([&, w] {
      SharedMemory& mem = *memories[w];
      if (w == 0) {
        // Worker 0 owns A and b: seed before releasing anyone.
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            mem.write(layout.a(i, j), value_from_double(problem.a_at(i, j)));
          }
          mem.write(layout.b(i), value_from_double(problem.b[i]));
        }
      }
      if (options.protect_constants) {
        mem.mark_read_only(layout.constants_begin(), layout.constants_end());
      }
      CausalBarrier barrier(mem, layout.barrier_base(), nw, w);
      barrier.arrive_and_wait();  // constants exist beyond this point

      std::vector<std::pair<std::size_t, double>> block;
      for (std::size_t k = 0; k < options.iterations; ++k) {
        block.clear();
        for (std::size_t i = 0; i < n; ++i) {
          if (layout.worker_of(i) != w) continue;
          auto bi = double_from_value(mem.read(layout.b(i)));
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            bi -= double_from_value(mem.read(layout.a(i, j))) *
                  double_from_value(mem.read(layout.x(j)));
          }
          block.emplace_back(i, bi / double_from_value(mem.read(layout.a(i, i))));
        }
        barrier.arrive_and_wait();  // everyone computed: old x may die
        for (const auto& [i, ti] : block) {
          mem.write(layout.x(i), value_from_double(ti));
        }
        barrier.arrive_and_wait();  // everyone published: next phase
      }
    });
  }
  for (auto& w : workers) w.join();

  SolverRun run;
  run.iterations = options.iterations;
  run.x.resize(n);
  SharedMemory& reader = *memories[0];
  for (std::size_t i = 0; i < n; ++i) {
    (void)reader.discard(layout.x(i));
    run.x[i] = double_from_value(reader.read(layout.x(i)));
  }
  return run;
}

}  // namespace causalmem

#include "causalmem/apps/solver/problem.hpp"

#include <algorithm>
#include <cmath>

#include "causalmem/common/rng.hpp"

namespace causalmem {

SolverProblem SolverProblem::random(std::size_t n, std::uint64_t seed) {
  CM_EXPECTS(n > 0);
  Rng rng(seed);
  SolverProblem p;
  p.n = n;
  p.a.resize(n * n);
  p.b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double off_diag_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = rng.next_double() * 2.0 - 1.0;  // [-1, 1)
      p.a[i * n + j] = v;
      off_diag_sum += std::abs(v);
    }
    // Strict diagonal dominance with margin: Jacobi contracts.
    p.a[i * n + i] = off_diag_sum + 1.0 + rng.next_double();
    p.b[i] = rng.next_double() * 10.0 - 5.0;
  }
  return p;
}

std::vector<double> SolverProblem::jacobi_reference(std::size_t iters) const {
  std::vector<double> x(n, 0.0);
  std::vector<double> t(n, 0.0);
  for (std::size_t k = 0; k < iters; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      // Reduction order matches the DSM worker: j ascending, skipping i.
      double acc = b[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        acc -= a_at(i, j) * x[j];
      }
      t[i] = acc / a_at(i, i);
    }
    x = t;
  }
  return x;
}

std::vector<double> SolverProblem::exact_solution() const {
  // Gaussian elimination with partial pivoting on a copy.
  std::vector<double> m = a;
  std::vector<double> rhs = b;
  const std::size_t dim = n;
  std::vector<std::size_t> perm(dim);
  for (std::size_t i = 0; i < dim; ++i) perm[i] = i;

  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r) {
      if (std::abs(m[perm[r] * dim + col]) >
          std::abs(m[perm[pivot] * dim + col])) {
        pivot = r;
      }
    }
    std::swap(perm[col], perm[pivot]);
    const double diag = m[perm[col] * dim + col];
    CM_ASSERT_MSG(std::abs(diag) > 1e-12, "singular system");
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double factor = m[perm[r] * dim + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < dim; ++c) {
        m[perm[r] * dim + c] -= factor * m[perm[col] * dim + c];
      }
      rhs[perm[r]] -= factor * rhs[perm[col]];
    }
  }
  std::vector<double> x(dim, 0.0);
  for (std::size_t i = dim; i-- > 0;) {
    double acc = rhs[perm[i]];
    for (std::size_t c = i + 1; c < dim; ++c) {
      acc -= m[perm[i] * dim + c] * x[c];
    }
    x[i] = acc / m[perm[i] * dim + i];
  }
  return x;
}

double SolverProblem::residual(const std::vector<double>& x) const {
  CM_EXPECTS(x.size() == n);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -b[i];
    for (std::size_t j = 0; j < n; ++j) acc += a_at(i, j) * x[j];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

std::unique_ptr<Ownership> SolverLayout::make_ownership_constants_at(
    NodeId storage) const {
  auto own = std::make_unique<ExplicitOwnership>(
      std::max(node_count(), static_cast<std::size_t>(storage) + 1));
  for (std::size_t i = 0; i < n_; ++i) {
    own->assign(x(i), worker_of(i));
  }
  for (std::size_t w = 0; w < w_; ++w) {
    own->assign(complete(w), static_cast<NodeId>(w));
    own->assign(changed(w), static_cast<NodeId>(w));
  }
  for (Addr addr = constants_begin(); addr < constants_end(); ++addr) {
    own->assign(addr, storage);
  }
  return own;
}

std::unique_ptr<Ownership> SolverLayout::make_ownership() const {
  auto own = std::make_unique<ExplicitOwnership>(node_count());
  for (std::size_t i = 0; i < n_; ++i) {
    own->assign(x(i), worker_of(i));
  }
  for (std::size_t w = 0; w < w_; ++w) {
    own->assign(complete(w), static_cast<NodeId>(w));
    own->assign(changed(w), static_cast<NodeId>(w));
  }
  for (Addr addr = constants_begin(); addr < constants_end(); ++addr) {
    own->assign(addr, coordinator());
  }
  return own;
}

}  // namespace causalmem

#include "causalmem/vclock/vector_clock.hpp"

#include <sstream>

namespace causalmem {

std::string VectorClock::to_string() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i != 0) oss << ",";
    oss << components_[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace causalmem

#include "causalmem/sim/scenarios.hpp"

#include <utility>

#include "causalmem/common/coop.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/dsm/causal/node.hpp"
#include "causalmem/dsm/system.hpp"
#include "causalmem/history/recorder.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/persist/store.hpp"
#include "causalmem/persist/vfs.hpp"

namespace causalmem::sim {

namespace {

/// Shared between the chaos task (writer) and the workload tasks (readers).
/// Plain fields are safe: exactly one logical thread runs at a time and the
/// scheduler handshake mutex orders every transition.
struct ChaosState {
  std::vector<std::uint8_t> crashed;
  bool finished{false};
};

std::string format_history(const History& h) {
  std::string out;
  for (std::size_t p = 0; p < h.per_process.size(); ++p) {
    out += 'p';
    out += std::to_string(p);
    out += ':';
    for (const Operation& op : h.per_process[p]) {
      out += ' ';
      out += op.to_string();
      out += ';';
    }
    out += '\n';
  }
  return out;
}

std::string format_trace(const std::vector<obs::TraceEvent>& events) {
  std::string out;
  for (const obs::TraceEvent& e : events) {
    out += std::to_string(e.ts_ns);
    out += " n";
    out += std::to_string(e.node);
    out += ' ';
    out += obs::trace_event_kind_name(e.kind);
    out += " seq=";
    out += std::to_string(e.seq);
    out += " peer=";
    out += std::to_string(e.peer);
    out += " type=";
    out += std::to_string(e.msg_type);
    out += " addr=";
    out += std::to_string(e.addr);
    out += " dur=";
    out += std::to_string(e.dur_ns);
    if (!e.vclock.empty()) {
      out += " vt=[";
      for (std::size_t k = 0; k < e.vclock.size(); ++k) {
        if (k != 0) out += ',';
        out += std::to_string(e.vclock[k]);
      }
      out += ']';
    }
    out += '\n';
  }
  return out;
}

std::string format_counters(StatsRegistry& stats) {
  std::string out;
  for (NodeId i = 0; i < stats.node_count(); ++i) {
    const StatsSnapshot s = stats.node_snapshot(i);
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      out += 'n';
      out += std::to_string(i);
      out += '.';
      out += counter_name(static_cast<Counter>(c));
      out += '=';
      out += std::to_string(s.values[c]);
      out += '\n';
    }
  }
  return out;
}

/// Parks until the node is live again; returns false when chaos ended with
/// the node still down (the workload then abandons its remaining script).
bool await_alive(const ChaosState& st, NodeId i) {
  while (st.crashed[i] != 0) {
    if (st.finished) return false;
    coop::park(
        [&st, i] { return st.crashed[i] == 0 || st.finished; }, 0,
        "crashed");
  }
  return true;
}

template <typename SystemT>
void run_chaos_script(SystemT& sys, SimScheduler& sched, ChaosState& st,
                      const std::vector<ChaosEvent>& events,
                      std::uint64_t base_ns) {
  for (const ChaosEvent& ev : events) {
    const std::uint64_t due = base_ns + ev.after_ns;
    while (sched.now_ns() < due) {
      coop::park([&sched, due] { return sched.now_ns() >= due; }, due,
                 "chaos_wait");
    }
    switch (ev.kind) {
      case ChaosEvent::Kind::kCrash:
      case ChaosEvent::Kind::kCrashWithDisk:
      case ChaosEvent::Kind::kCrashLosingDisk:
        st.crashed[ev.node] = 1;
        sys.sim_transport()->crash_node(ev.node);
        if constexpr (requires { sys.store(ev.node); }) {
          if (persist::Store* s = sys.store(ev.node)) {
            // The process died here: unsynced tail bytes are torn off, and
            // a media loss takes the files with it.
            s->simulate_crash();
            if (ev.kind == ChaosEvent::Kind::kCrashLosingDisk) s->lose_disk();
          }
        }
        break;
      case ChaosEvent::Kind::kRestart:
      case ChaosEvent::Kind::kRecoverFromDisk:
        // rejoin parks awaiting peer resyncs; only after it returns is the
        // node's workload released against recovered state. With a store
        // attached, rejoin restores owned cells from checkpoint + WAL
        // first, so the two kinds differ only in intent at the call site.
        sys.restart_node(ev.node);
        st.crashed[ev.node] = 0;
        break;
      case ChaosEvent::Kind::kCheckpoint:
        if constexpr (requires { sys.node(ev.node).checkpoint_now(); }) {
          (void)sys.node(ev.node).checkpoint_now();
        }
        break;
      case ChaosEvent::Kind::kPartition:
        sys.sim_transport()->set_partition(ev.from, ev.to, true);
        break;
      case ChaosEvent::Kind::kHeal:
        sys.sim_transport()->set_partition(ev.from, ev.to, false);
        break;
    }
  }
  st.finished = true;
}

template <typename SystemT>
ExecutionResult finish_run(RunReport report, const Recorder& recorder,
                           SystemT& sys, ScenarioOutcome* out) {
  History hist = recorder.history();
  // Auto mode: the brute-force hierarchy below the size threshold (its
  // diagnoses are byte-stable, which the determinism suite asserts), the
  // streaming hierarchy above it — long scripted scenarios and deep
  // explorer walks spend their budget exploring, not checking.
  const ConsistencyReport cons = check_consistency_hierarchy_auto(hist);
  ExecutionResult res;
  res.consistent = cons.ok();
  if (!cons.ok()) {
    res.violation = cons.reason;
    // File the violation while the system is still alive so the recorder can
    // snapshot trace rings, counters and clocks at the point of failure.
    if (obs::FlightRecorder* fr = sys.flight_recorder()) {
      fr->on_violation(cons.reason);
      res.flight_artifact = fr->artifact_path();
    }
  }
  if (OnlineChecker* oc = sys.online_checker()) {
    // cfg.online_check ran a StreamingCausalChecker over the same op stream
    // the recorder saw. Its verdict and the post-hoc one must agree — a
    // disagreement is a checker bug, reported as loudly as a protocol bug.
    oc->finish();
    if (oc->ok() != cons.causal) {
      res.consistent = false;
      res.violation += std::string(res.violation.empty() ? "" : "; ") +
                       "online/post-hoc causal checker disagreement: online=" +
                       (oc->ok() ? "clean" : "violating") +
                       " post-hoc=" + (cons.causal ? "clean" : "violating");
    }
  }
  if (out != nullptr) {
    out->history_text = format_history(hist);
    out->counters_text = format_counters(sys.stats());
    out->trace_text = sys.trace_hub() != nullptr
                          ? format_trace(sys.trace_hub()->events())
                          : std::string{};
    out->history = std::move(hist);
    out->consistency = cons;
  }
  res.report = std::move(report);
  return res;
}

}  // namespace

ExecutionResult run_causal_scenario(const CausalScenarioConfig& cfg,
                                    Strategy& strategy, ScenarioOutcome* out) {
  CM_EXPECTS_MSG(cfg.scripts.size() <= cfg.nodes, "more scripts than nodes");
  for (const ChaosEvent& ev : cfg.chaos) {
    CM_EXPECTS_MSG((ev.kind != ChaosEvent::Kind::kRestart &&
                    ev.kind != ChaosEvent::Kind::kRecoverFromDisk) ||
                       cfg.failover,
                   "restart chaos requires failover");
    CM_EXPECTS_MSG((ev.kind != ChaosEvent::Kind::kCheckpoint &&
                    ev.kind != ChaosEvent::Kind::kCrashWithDisk &&
                    ev.kind != ChaosEvent::Kind::kCrashLosingDisk &&
                    ev.kind != ChaosEvent::Kind::kRecoverFromDisk) ||
                       cfg.persist,
                   "persist chaos requires CausalScenarioConfig::persist");
  }
  SimScheduler sched(cfg.sim);
  Recorder recorder(cfg.nodes);
  // Scenario-owned disk: declared before the system so nodes can append to
  // their stores until the transport stops.
  persist::MemVfs vfs;
  SystemOptions opts;
  opts.sim = &sched;
  if (cfg.persist) {
    opts.persist.enabled = true;
    opts.persist.dir = "sim-persist";
    opts.persist.checkpoint_every = cfg.checkpoint_every;
    opts.persist.sync_every_append = true;
    opts.persist.vfs = &vfs;
  }
  opts.trace.enabled = cfg.trace;
  if (!cfg.flight_dir.empty()) {
    opts.flight.enabled = true;
    opts.flight.force_trace = cfg.trace;  // don't force tracing if opted out
    opts.flight.recorder.artifact_dir = cfg.flight_dir;
    opts.flight.recorder.run_label = "causal_scenario";
  }
  opts.failover.enabled = cfg.failover;
  opts.failover.heartbeat = cfg.heartbeat;
  opts.failover.heartbeat_config.interval = cfg.heartbeat_interval;
  opts.failover.heartbeat_config.suspect_after = cfg.heartbeat_suspect_after;
  opts.online_check.enabled = cfg.online_check;
  DsmSystem<CausalNode> sys(cfg.nodes, cfg.config, opts, nullptr, &recorder);

  ChaosState st;
  st.crashed.assign(cfg.nodes, 0);
  st.finished = cfg.chaos.empty();
  const std::uint64_t base_ns = sched.now_ns();
  const bool bounded = cfg.config.request_timeout.count() > 0;
  for (NodeId i = 0; i < cfg.scripts.size(); ++i) {
    if (cfg.scripts[i].empty()) continue;
    sched.add_task(
        "p" + std::to_string(i),
        [&sys, &sched, &st, &script = cfg.scripts[i], i, bounded, base_ns] {
          CausalNode& node = sys.node(i);
          for (const ScriptOp& op : script) {
            if (!await_alive(st, i)) return;
            if (op.kind == ScriptOp::Kind::kSleep) {
              const std::uint64_t due =
                  base_ns + static_cast<std::uint64_t>(op.value);
              while (sched.now_ns() < due) {
                coop::park([&sched, due] { return sched.now_ns() >= due; },
                           due, "script_sleep");
              }
              continue;
            }
            if (op.kind == ScriptOp::Kind::kWrite) {
              if (bounded) {
                (void)node.try_write(op.addr, op.value);
              } else {
                node.write(op.addr, op.value);
              }
            } else {
              if (bounded) {
                (void)node.try_read(op.addr);
              } else {
                (void)node.read(op.addr);
              }
            }
            // One choice point per script position, so the explorer can
            // interleave peers (and faults) between any two operations.
            coop::yield();
          }
        });
  }
  if (!cfg.chaos.empty()) {
    sched.add_task("chaos", [&sys, &sched, &st, &events = cfg.chaos, base_ns] {
      run_chaos_script(sys, sched, st, events, base_ns);
    });
  }

  RunReport report = sched.run(strategy);
  sys.shutdown();
  return finish_run(std::move(report), recorder, sys, out);
}

ExecutionResult run_broadcast_scenario(const BroadcastScenarioConfig& cfg,
                                       Strategy& strategy,
                                       ScenarioOutcome* out) {
  CM_EXPECTS_MSG(cfg.scripts.size() <= cfg.nodes, "more scripts than nodes");
  SimScheduler sched(cfg.sim);
  Recorder recorder(cfg.nodes);
  SystemOptions opts;
  opts.sim = &sched;
  opts.trace.enabled = cfg.trace;
  if (!cfg.flight_dir.empty()) {
    opts.flight.enabled = true;
    opts.flight.force_trace = cfg.trace;
    opts.flight.recorder.artifact_dir = cfg.flight_dir;
    opts.flight.recorder.run_label = "broadcast_scenario";
  }
  opts.online_check.enabled = cfg.online_check;
  DsmSystem<BroadcastNode> sys(cfg.nodes, cfg.config, opts, nullptr,
                               &recorder);

  for (NodeId i = 0; i < cfg.scripts.size(); ++i) {
    if (cfg.scripts[i].empty()) continue;
    sched.add_task("p" + std::to_string(i),
                   [&sys, &script = cfg.scripts[i], i] {
                     BroadcastNode& node = sys.node(i);
                     for (const ScriptOp& op : script) {
                       if (op.kind == ScriptOp::Kind::kWrite) {
                         node.write(op.addr, op.value);
                       } else {
                         (void)node.read(op.addr);
                       }
                       coop::yield();
                     }
                   });
  }

  RunReport report = sched.run(strategy);
  sys.shutdown();
  return finish_run(std::move(report), recorder, sys, out);
}

RunFn make_causal_run(CausalScenarioConfig cfg) {
  return [cfg = std::move(cfg)](Strategy& s) {
    return run_causal_scenario(cfg, s);
  };
}

RunFn make_broadcast_run(BroadcastScenarioConfig cfg) {
  return [cfg = std::move(cfg)](Strategy& s) {
    return run_broadcast_scenario(cfg, s);
  };
}

CausalScenarioConfig small_scope_causal() {
  CausalScenarioConfig c;
  c.nodes = 2;
  // The classic cross-write probe: each node writes its own location, then
  // reads the other's. Two ops per process keeps exhaustive DFS tractable
  // (a few thousand schedules); a third op per process inflates the tree
  // ~20x past any reasonable unit-test budget.
  c.scripts = {
      {ScriptOp::write(0, 1), ScriptOp::read(1)},
      {ScriptOp::write(1, 3), ScriptOp::read(0)},
  };
  return c;
}

BroadcastScenarioConfig small_scope_broadcast(bool causal_delivery) {
  BroadcastScenarioConfig b;
  b.nodes = 3;
  b.config.causal_delivery = causal_delivery;
  b.scripts = {
      {ScriptOp::write(0, 1)},
      {ScriptOp::read(0), ScriptOp::write(1, 2)},
      {ScriptOp::read(1), ScriptOp::read(0)},
  };
  return b;
}

}  // namespace causalmem::sim

#include "causalmem/sim/explorer.hpp"

#include <sstream>

#include "causalmem/common/expect.hpp"

namespace causalmem::sim {

namespace {

/// Meta values must stay on one line in the schedule file.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Chosen indices with the canonical (all-zero) tail stripped: a prefix plus
/// implied zeros re-executes identically, so the tail carries no
/// information.
std::vector<std::size_t> strip_canonical_tail(
    const std::vector<std::size_t>& chosen) {
  std::size_t len = chosen.size();
  while (len > 0 && chosen[len - 1] == 0) --len;
  return {chosen.begin(), chosen.begin() + static_cast<std::ptrdiff_t>(len)};
}

/// Packages a failure into the result: minimize, annotate, write artifact.
void report_failure(const RunFn& run, const ExecutionResult& er,
                    const ExploreOptions& opt, ExploreResult* res) {
  res->found_failure = true;
  res->failure = er.failure();
  res->flight_artifact = er.flight_artifact;
  if (opt.minimize) {
    std::uint64_t extra = 0;
    res->repro = minimize_failure(run, er.report, &extra);
    res->schedules_run += extra;
  } else {
    res->repro = er.report.schedule;
    const std::size_t keep = strip_canonical_tail(er.report.chosen).size();
    res->repro.steps.resize(keep);
  }
  res->repro.set_meta("violation", one_line(res->failure));
  if (!opt.artifact_path.empty()) {
    std::string err;
    if (res->repro.save(opt.artifact_path, &err)) {
      res->artifact_written = opt.artifact_path;
    } else {
      res->failure += " (artifact write failed: " + err + ")";
    }
  }
}

}  // namespace

std::size_t PrefixStrategy::pick(const std::vector<Choice>& choices) {
  const std::size_t want = pos_ < prefix_.size() ? prefix_[pos_] : 0;
  ++pos_;
  if (want >= choices.size()) {
    // Only possible when the scenario is not a pure function of the choice
    // sequence — a harness bug worth failing loudly.
    std::ostringstream os;
    os << "prefix index " << want << " out of range at step " << (pos_ - 1)
       << " (" << choices.size() << " runnable) — scenario nondeterminism?";
    error_ = os.str();
    return kAbort;
  }
  return want;
}

bool next_prefix(const std::vector<std::size_t>& chosen,
                 const std::vector<std::size_t>& branching, int delay_bound,
                 std::vector<std::size_t>* out) {
  CM_EXPECTS(chosen.size() == branching.size());
  // Non-canonical choices at positions < i.
  std::vector<std::size_t> devs(chosen.size() + 1, 0);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    devs[i + 1] = devs[i] + (chosen[i] != 0 ? 1 : 0);
  }
  for (std::size_t i = chosen.size(); i-- > 0;) {
    if (chosen[i] + 1 >= branching[i]) continue;
    if (delay_bound >= 0 &&
        devs[i] + 1 > static_cast<std::size_t>(delay_bound)) {
      continue;
    }
    out->assign(chosen.begin(), chosen.begin() + static_cast<std::ptrdiff_t>(i));
    out->push_back(chosen[i] + 1);
    return true;
  }
  return false;
}

Schedule minimize_failure(const RunFn& run, const RunReport& failing,
                          std::uint64_t* runs_used) {
  std::uint64_t runs = 0;
  const std::vector<std::size_t> full = strip_canonical_tail(failing.chosen);
  // Shortest failing prefix, scanning up from empty. Each probe is one
  // cheap re-execution; small-scope schedules keep `full` short.
  for (std::size_t k = 0; k <= full.size(); ++k) {
    std::vector<std::size_t> prefix(full.begin(),
                                    full.begin() + static_cast<std::ptrdiff_t>(k));
    PrefixStrategy strat(k == full.size() ? full : prefix);
    ExecutionResult er = run(strat);
    ++runs;
    if (er.failed()) {
      if (runs_used != nullptr) *runs_used = runs;
      Schedule s = er.report.schedule;
      const std::size_t keep = strip_canonical_tail(er.report.chosen).size();
      s.steps.resize(keep);
      s.set_meta("minimized", "true");
      return s;
    }
  }
  // The full prefix re-ran clean: the scenario is nondeterministic. Return
  // the original schedule unminimized rather than losing the repro.
  if (runs_used != nullptr) *runs_used = runs;
  Schedule s = failing.schedule;
  s.steps.resize(strip_canonical_tail(failing.chosen).size());
  s.set_meta("minimized", "false");
  s.set_meta("warning", "failure did not reproduce under prefix replay");
  return s;
}

ExploreResult explore_dfs(const RunFn& run, ExploreOptions opt) {
  ExploreResult res;
  std::vector<std::size_t> prefix;
  for (;;) {
    if (res.schedules_run >= opt.max_schedules) break;
    PrefixStrategy strat(prefix);
    ExecutionResult er = run(strat);
    ++res.schedules_run;
    if (er.failed()) {
      report_failure(run, er, opt, &res);
      res.repro.set_meta("strategy",
                         opt.delay_bound >= 0
                             ? "dfs delay_bound=" + std::to_string(opt.delay_bound)
                             : "dfs");
      return res;
    }
    std::vector<std::size_t> next;
    if (!next_prefix(er.report.chosen, er.report.branching, opt.delay_bound,
                     &next)) {
      res.exhausted = true;
      break;
    }
    prefix = std::move(next);
  }
  return res;
}

ExploreResult explore_random(const RunFn& run, std::uint64_t first_seed,
                             std::uint64_t num_seeds, ExploreOptions opt) {
  ExploreResult res;
  for (std::uint64_t i = 0; i < num_seeds; ++i) {
    if (res.schedules_run >= opt.max_schedules) return res;
    const std::uint64_t seed = first_seed + i;
    RandomWalkStrategy strat(seed);
    ExecutionResult er = run(strat);
    ++res.schedules_run;
    if (er.failed()) {
      report_failure(run, er, opt, &res);
      res.repro.set_meta("strategy", "random");
      res.repro.set_meta("seed", std::to_string(seed));
      return res;
    }
  }
  res.exhausted = true;
  return res;
}

ExecutionResult replay(const RunFn& run, const Schedule& schedule) {
  ReplayStrategy strat(schedule);
  return run(strat);
}

}  // namespace causalmem::sim

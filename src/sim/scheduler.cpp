#include "causalmem/sim/scheduler.hpp"

#include <limits>
#include <sstream>

#include "causalmem/sim/transport.hpp"

namespace causalmem::sim {

namespace {
// Identifies the task a thread belongs to (coop::Parker::on_task_thread and
// park routing). Plain pointers: tasks never migrate between threads.
thread_local SimScheduler* tl_sched = nullptr;
thread_local void* tl_task = nullptr;
}  // namespace

std::size_t ReplayStrategy::pick(const std::vector<Choice>& choices) {
  if (pos_ >= schedule_.steps.size()) return 0;  // canonical tail
  const Choice& want = schedule_.steps[pos_];
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i].matches(want)) {
      ++pos_;
      return i;
    }
  }
  std::ostringstream os;
  os << "replay diverged at step " << pos_ << ": '" << want.to_line()
     << "' is not runnable; runnable:";
  for (const Choice& c : choices) os << " [" << c.to_line() << "]";
  error_ = os.str();
  return kAbort;
}

SimScheduler::SimScheduler(SimOptions options)
    : opt_(options), clock_(options.start_ns) {
  CM_EXPECTS_MSG(coop::current() == nullptr,
                 "another SimScheduler is already active");
  obs::set_clock_source(&clock_);
  coop::set_parker(this);
}

SimScheduler::~SimScheduler() {
  // Normally run() has already torn everything down; this path covers a
  // scheduler destroyed without (or after an aborted) run.
  abort_tasks();
  join_tasks();
  coop::set_parker(nullptr);
  obs::set_clock_source(nullptr);
}

std::uint32_t SimScheduler::add_task(std::string name,
                                     std::function<void()> body) {
  CM_EXPECTS_MSG(!ran_, "add_task after run()");
  CM_EXPECTS(body != nullptr);
  auto t = std::make_unique<Task>();
  t->name = std::move(name);
  t->body = std::move(body);
  tasks_.push_back(std::move(t));
  return static_cast<std::uint32_t>(tasks_.size() - 1);
}

bool SimScheduler::on_task_thread() const noexcept {
  return tl_sched == this && tl_task != nullptr;
}

void SimScheduler::park(const std::function<bool()>& ready,
                        std::uint64_t deadline_ns, const char* what) {
  CM_ASSERT(on_task_thread());
  Task& t = *static_cast<Task*>(tl_task);
  std::unique_lock lock(mu_);
  t.state = Task::State::kParked;
  t.ready = ready;
  t.deadline_ns = deadline_ns;
  t.what = what;
  task_active_ = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return t.resume; });
  t.resume = false;
  t.state = Task::State::kRunning;
  t.ready = nullptr;
  t.deadline_ns = 0;
  t.what = "";
  if (aborting_) {
    lock.unlock();
    throw TaskAbort{};
  }
}

void SimScheduler::task_main(Task& t) {
  tl_sched = this;
  tl_task = &t;
  try {
    t.body();
  } catch (const TaskAbort&) {
    // Unwound by abort_tasks; fall through to the finished handshake.
  }
  std::unique_lock lock(mu_);
  t.state = Task::State::kFinished;
  task_active_ = false;
  cv_.notify_all();
}

void SimScheduler::resume_task(Task& t) {
  std::unique_lock lock(mu_);
  CM_ASSERT(t.state != Task::State::kRunning &&
            t.state != Task::State::kFinished);
  task_active_ = true;
  t.state = Task::State::kRunning;
  if (!t.started) {
    t.started = true;
    // The new thread runs the body immediately; the scheduler blocks below
    // until the task parks or finishes, so one logical thread at a time.
    t.thread = std::thread([this, &t] { task_main(t); });
  } else {
    t.resume = true;
    cv_.notify_all();
  }
  cv_.wait(lock, [&] { return !task_active_; });
}

bool SimScheduler::task_runnable(const Task& t) const {
  switch (t.state) {
    case Task::State::kIdle:
      return !t.started;  // runnable: first step starts the body
    case Task::State::kParked:
      if (t.ready && t.ready()) return true;
      return t.deadline_ns != 0 && clock_.now_ns() >= t.deadline_ns;
    case Task::State::kRunning:
    case Task::State::kFinished:
      return false;
  }
  return false;
}

void SimScheduler::collect_choices(std::vector<Choice>* out) const {
  if (transport_ != nullptr) transport_->append_deliverable(out);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!task_runnable(*tasks_[i])) continue;
    Choice c;
    c.kind = ChoiceKind::kStep;
    c.actor = static_cast<std::uint32_t>(i);
    c.label = tasks_[i]->name;
    out->push_back(std::move(c));
  }
  const std::uint64_t now = clock_.now_ns();
  for (std::size_t i = 0; i < timers_.size(); ++i) {
    const Timer& tm = timers_[i];
    if (tm.done || tm.due_ns > now) continue;
    Choice c;
    c.kind = ChoiceKind::kTimer;
    c.actor = static_cast<std::uint32_t>(i);
    c.label = tm.name;
    out->push_back(std::move(c));
  }
}

void SimScheduler::execute(const Choice& c, std::size_t idx) {
  (void)idx;
  switch (c.kind) {
    case ChoiceKind::kDeliver:
      CM_ASSERT(transport_ != nullptr);
      transport_->deliver_one(c.from, c.to);
      return;
    case ChoiceKind::kStep:
      CM_ASSERT(c.actor < tasks_.size());
      resume_task(*tasks_[c.actor]);
      return;
    case ChoiceKind::kTimer: {
      CM_ASSERT(c.actor < timers_.size());
      Timer& tm = timers_[c.actor];
      tm.fire();
      if (tm.period_ns == 0) {
        tm.done = true;
      } else {
        // Re-arm relative to virtual now, not due_ns: after a forced time
        // jump a due_ns+period re-arm would fire a catch-up burst.
        tm.due_ns = clock_.now_ns() + tm.period_ns;
      }
      return;
    }
  }
  CM_UNREACHABLE("bad choice kind");
}

std::string SimScheduler::deadlock_diagnosis() const {
  std::ostringstream os;
  os << "simulation deadlock at t=" << clock_.now_ns() << "ns:";
  for (const auto& tp : tasks_) {
    const Task& t = *tp;
    if (t.state == Task::State::kFinished) continue;
    os << " [task '" << t.name << "' ";
    if (!t.started) {
      os << "not started";
    } else {
      os << "parked on '" << t.what << "'";
      if (t.deadline_ns != 0) os << " deadline=" << t.deadline_ns;
    }
    os << "]";
  }
  if (transport_ != nullptr && transport_->pending_count() != 0) {
    os << " [" << transport_->pending_count() << " undeliverable messages]";
  }
  return os.str();
}

void SimScheduler::abort_tasks() {
  std::unique_lock lock(mu_);
  aborting_ = true;
  // Resume unfinished tasks one at a time; each throws TaskAbort out of its
  // park() and unwinds to task_main. Sequential, so teardown is as
  // deterministic as the run itself.
  for (auto& tp : tasks_) {
    Task& t = *tp;
    if (!t.started || t.state == Task::State::kFinished) continue;
    CM_ASSERT(t.state == Task::State::kParked);
    task_active_ = true;
    t.resume = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return !task_active_; });
  }
}

void SimScheduler::join_tasks() {
  for (auto& tp : tasks_) {
    if (tp->thread.joinable()) tp->thread.join();
  }
}

RunReport SimScheduler::run(Strategy& strategy) {
  CM_EXPECTS_MSG(!ran_, "SimScheduler::run is single-use");
  ran_ = true;
  RunReport rep;
  std::vector<Choice> choices;
  for (;;) {
    bool all_finished = true;
    for (const auto& tp : tasks_) {
      if (tp->state != Task::State::kFinished) {
        all_finished = false;
        break;
      }
    }
    const std::size_t pending =
        transport_ != nullptr ? transport_->pending_count() : 0;
    // Timers are infrastructure (heartbeats): they do not keep a run alive.
    if (all_finished && pending == 0) {
      rep.completed = true;
      break;
    }

    choices.clear();
    collect_choices(&choices);
    if (choices.empty()) {
      // Nothing runnable now; advance virtual time to the next deadline or
      // timer due-time. If there is none, the system can never progress.
      std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
      for (const auto& tp : tasks_) {
        const Task& t = *tp;
        if (t.state == Task::State::kParked && t.deadline_ns != 0) {
          next = std::min(next, t.deadline_ns);
        }
      }
      for (const Timer& tm : timers_) {
        if (!tm.done) next = std::min(next, tm.due_ns);
      }
      if (next == std::numeric_limits<std::uint64_t>::max()) {
        rep.deadlocked = true;
        rep.error = deadlock_diagnosis();
        break;
      }
      CM_ASSERT(next > clock_.now_ns());
      clock_.set_ns(next);
      continue;  // a time jump is not a schedule step
    }

    if (rep.steps >= opt_.max_steps) {
      rep.error = "max_steps (" + std::to_string(opt_.max_steps) +
                  ") exceeded — livelocked schedule?";
      break;
    }
    const std::size_t idx = strategy.pick(choices);
    if (idx == Strategy::kAbort) {
      rep.error = strategy.error_message();
      if (rep.error.empty()) rep.error = "strategy aborted the run";
      break;
    }
    CM_EXPECTS_MSG(idx < choices.size(), "strategy picked an invalid index");
    rep.schedule.steps.push_back(choices[idx]);
    rep.branching.push_back(choices.size());
    rep.chosen.push_back(idx);
    ++rep.steps;
    // Tick before executing so every event (trace records, histories) gets
    // a distinct virtual timestamp.
    clock_.advance_ns(opt_.event_tick_ns);
    execute(choices[idx], idx);
  }

  if (!rep.completed) abort_tasks();
  join_tasks();
  rep.end_ns = clock_.now_ns();
  return rep;
}

}  // namespace causalmem::sim

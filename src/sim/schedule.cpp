#include "causalmem/sim/schedule.hpp"

#include <fstream>
#include <sstream>

namespace causalmem::sim {

namespace {
constexpr const char* kHeader = "# causalmem-schedule-v1";
}  // namespace

const char* choice_kind_name(ChoiceKind k) noexcept {
  switch (k) {
    case ChoiceKind::kDeliver: return "deliver";
    case ChoiceKind::kStep: return "step";
    case ChoiceKind::kTimer: return "timer";
  }
  return "unknown";
}

std::string Choice::to_line() const {
  std::ostringstream os;
  os << choice_kind_name(kind) << ' ';
  if (kind == ChoiceKind::kDeliver) {
    os << from << ' ' << to;
  } else {
    os << actor;
  }
  if (!label.empty()) os << ' ' << label;
  return os.str();
}

void Schedule::set_meta(std::string key, std::string value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> Schedule::meta_value(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Schedule::to_text() const {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const auto& [k, v] : meta) os << "meta " << k << ' ' << v << '\n';
  for (const Choice& c : steps) os << c.to_line() << '\n';
  return os.str();
}

bool Schedule::parse(const std::string& text, Schedule* out,
                     std::string* error) {
  Schedule parsed;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "schedule line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!saw_header) {
      if (line != kHeader) return fail("missing header '" + std::string(kHeader) + "'");
      saw_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "meta") {
      std::string key;
      ls >> key;
      if (key.empty()) return fail("meta without a key");
      std::string value;
      std::getline(ls, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      parsed.meta.emplace_back(std::move(key), std::move(value));
      continue;
    }
    Choice c;
    if (word == "deliver") {
      c.kind = ChoiceKind::kDeliver;
      std::uint64_t from = 0;
      std::uint64_t to = 0;
      if (!(ls >> from >> to)) return fail("deliver needs '<from> <to>'");
      c.from = static_cast<NodeId>(from);
      c.to = static_cast<NodeId>(to);
    } else if (word == "step" || word == "timer") {
      c.kind = word == "step" ? ChoiceKind::kStep : ChoiceKind::kTimer;
      std::uint64_t actor = 0;
      if (!(ls >> actor)) return fail(word + " needs '<index>'");
      c.actor = static_cast<std::uint32_t>(actor);
    } else {
      return fail("unknown directive '" + word + "'");
    }
    std::string label;
    std::getline(ls, label);
    if (!label.empty() && label.front() == ' ') label.erase(0, 1);
    c.label = std::move(label);
    parsed.steps.push_back(std::move(c));
  }
  if (!saw_header) {
    if (error != nullptr) *error = "empty schedule (no header)";
    return false;
  }
  *out = std::move(parsed);
  return true;
}

bool Schedule::save(const std::string& path, std::string* error) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  f << to_text();
  f.flush();
  if (!f) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::optional<Schedule> Schedule::load(const std::string& path,
                                       std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  Schedule s;
  if (!parse(buf.str(), &s, error)) return std::nullopt;
  return s;
}

}  // namespace causalmem::sim

#include "causalmem/persist/store.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace causalmem::persist {

namespace {

std::string node_path(const std::string& dir, NodeId node, const char* ext) {
  std::ostringstream oss;
  oss << dir << "/node" << node << ext;
  return oss.str();
}

}  // namespace

Store::Store(const PersistConfig& cfg, NodeId node, std::size_t n,
             NodeStats* stats)
    : cfg_(cfg),
      node_(node),
      n_(n),
      stats_(stats),
      vfs_(cfg.vfs != nullptr ? cfg.vfs : &default_vfs()),
      ckpt_path_(node_path(cfg.dir, node, ".ckpt")),
      wal_path_(node_path(cfg.dir, node, ".wal")),
      wal_(*vfs_, wal_path_, node, n, cfg.sync_every_append) {
  vfs_->mkdirs(cfg_.dir);
}

RecoveredState Store::recover() {
  RecoveredState out;
  out.vt = VectorClock(n_);

  CheckpointData ckpt;
  switch (load_checkpoint(*vfs_, ckpt_path_, node_, n_, ckpt)) {
    case CkptLoad::kOk:
      out.checkpoint_loaded = true;
      out.write_seq = ckpt.write_seq;
      out.vt.update(ckpt.vt);
      break;
    case CkptLoad::kMissing:
      break;
    case CkptLoad::kCorrupt:
      // Rejected as a whole: a checkpoint either validates or contributes
      // nothing. The stale file is removed so the rejection is visible once,
      // not on every restart.
      out.checkpoint_rejected = true;
      bump(Counter::kPersistCkptRejected);
      vfs_->remove(ckpt_path_);
      break;
  }

  WalReplay replay = replay_wal(*vfs_, wal_path_, node_, n_);
  out.wal_records = replay.records.size();
  out.wal_truncated_bytes = replay.truncated_bytes;
  replayed_records_ = replay.records.size();
  if (replay.file_present && !replay.header_valid) {
    // Header mismatch — including a file cut shorter than the header, even
    // to zero bytes: the whole file is untrusted. Remove it; the writer lays
    // down a fresh header on the next append.
    if (replay.truncated_bytes > 0) bump(Counter::kPersistWalTruncated);
    vfs_->remove(wal_path_);
  } else if (replay.truncated_bytes > 0) {
    // Cut the torn tail so the new epoch appends after the last valid
    // record instead of burying garbage mid-file.
    bump(Counter::kPersistWalTruncated);
    vfs_->truncate(wal_path_, replay.valid_bytes);
  }

  // Merge: checkpoint cells first, then WAL records in apply order — the
  // newest record per address wins, which is exactly the owner's final
  // in-memory state for that address.
  std::unordered_map<Addr, std::size_t> index;
  index.reserve(ckpt.cells.size() + replay.records.size());
  out.cells.reserve(ckpt.cells.size() + replay.records.size());
  for (DurableCell& c : ckpt.cells) {
    index.emplace(c.addr, out.cells.size());
    out.cells.push_back(std::move(c));
  }
  for (WalRecord& rec : replay.records) {
    out.write_seq = std::max(out.write_seq, rec.write_seq);
    out.vt.update(rec.cell.stamp);
    auto [it, fresh] = index.emplace(rec.cell.addr, out.cells.size());
    if (fresh) {
      out.cells.push_back(std::move(rec.cell));
    } else {
      out.cells[it->second] = std::move(rec.cell);
    }
  }

  bump(Counter::kPersistWalReplayed, out.wal_records);
  bump(Counter::kPersistRestoredCells, out.cells.size());
  return out;
}

bool Store::append(const DurableCell& cell, std::uint64_t write_seq) {
  if (!wal_.append(WalRecord{cell, write_seq})) return false;
  ++appends_since_ckpt_;
  bump(Counter::kPersistWalAppend);
  return true;
}

bool Store::checkpoint(std::span<const DurableCell> cells,
                       const VectorClock& vt, std::uint64_t write_seq) {
  CheckpointData data;
  data.node = node_;
  data.write_seq = write_seq;
  data.vt = vt;
  data.cells.assign(cells.begin(), cells.end());
  if (!save_checkpoint(*vfs_, ckpt_path_, data, n_)) return false;
  // Only after the checkpoint is durably in place may the WAL records it
  // covers be dropped. A crash between the two leaves a checkpoint plus a
  // WAL of already-covered records — replay is idempotent (newest wins).
  if (!wal_.reset()) return false;
  appends_since_ckpt_ = 0;
  ++ckpts_;
  bump(Counter::kPersistCheckpoint);
  return true;
}

void Store::lose_disk() {
  vfs_->remove(ckpt_path_);
  vfs_->remove(wal_path_);
  appends_since_ckpt_ = 0;
}

void Store::simulate_crash() {
  vfs_->drop_unsynced(wal_path_);
  vfs_->drop_unsynced(ckpt_path_);
}

std::string Store::summary_json() const {
  std::ostringstream oss;
  oss << "{\"node\":" << node_ << ",\"ckpt\":\"" << ckpt_path_
      << "\",\"wal\":\"" << wal_path_
      << "\",\"checkpoints\":" << ckpts_
      << ",\"appends_since_checkpoint\":" << appends_since_ckpt_
      << ",\"wal_bytes\":" << wal_.appended_bytes()
      << ",\"replayed_records\":" << replayed_records_
      << ",\"sync_every_append\":" << (cfg_.sync_every_append ? "true" : "false")
      << "}";
  return oss.str();
}

}  // namespace causalmem::persist

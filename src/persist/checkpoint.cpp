#include "causalmem/persist/checkpoint.hpp"

#include "causalmem/common/crc32.hpp"

namespace causalmem::persist {

bool save_checkpoint(Vfs& vfs, const std::string& path,
                     const CheckpointData& data, std::size_t n) {
  ByteWriter w;
  const auto* magic = reinterpret_cast<const std::byte*>(kCkptMagic.data());
  w.put_bytes({magic, kCkptMagic.size()});
  w.put(data.node);
  w.put(static_cast<std::uint32_t>(n));
  w.put(data.write_seq);
  w.put_count(data.vt.size());
  for (const std::uint64_t comp : data.vt.components()) w.put(comp);
  w.put_count(data.cells.size());
  for (const DurableCell& c : data.cells) put_cell(w, c);
  w.put(crc32(w.bytes()));
  return vfs.write_file_atomic(path, w.bytes());
}

CkptLoad load_checkpoint(Vfs& vfs, const std::string& path, NodeId expect_node,
                         std::size_t expect_n, CheckpointData& out) {
  std::vector<std::byte> data;
  if (!vfs.read_file(path, data)) return CkptLoad::kMissing;
  // Trailing CRC over the whole body: any flip, truncation or extension is
  // caught before a single field is believed.
  if (data.size() < kCkptMagic.size() + 4) return CkptLoad::kCorrupt;
  std::uint32_t crc = 0;
  std::memcpy(&crc, data.data() + data.size() - 4, 4);
  const std::span<const std::byte> body{data.data(), data.size() - 4};
  if (crc32(body) != crc) return CkptLoad::kCorrupt;
  if (!std::equal(kCkptMagic.begin(), kCkptMagic.end(),
                  reinterpret_cast<const char*>(body.data()))) {
    return CkptLoad::kCorrupt;
  }

  SafeReader r(body.subspan(kCkptMagic.size()));
  CheckpointData parsed;
  std::uint32_t n = 0;
  std::uint32_t cell_count = 0;
  if (!r.get(parsed.node) || parsed.node != expect_node || !r.get(n) ||
      n != expect_n || !r.get(parsed.write_seq) ||
      !r.get_clock(parsed.vt, expect_n) || !r.get(cell_count)) {
    return CkptLoad::kCorrupt;
  }
  parsed.cells.reserve(
      std::min<std::size_t>(cell_count, r.remaining() / 8));
  for (std::uint32_t i = 0; i < cell_count; ++i) {
    DurableCell c;
    if (!r.get_cell(c, expect_n)) return CkptLoad::kCorrupt;
    parsed.cells.push_back(std::move(c));
  }
  if (!r.exhausted()) return CkptLoad::kCorrupt;
  out = std::move(parsed);
  return CkptLoad::kOk;
}

}  // namespace causalmem::persist

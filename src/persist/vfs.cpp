#include "causalmem/persist/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace causalmem::persist {

// --------------------------------------------------------------------------
// RealVfs
// --------------------------------------------------------------------------

namespace {

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

bool write_all(int fd, std::span<const std::byte> data) {
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool RealVfs::read_file(const std::string& path, std::vector<std::byte>& out) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.ok()) return false;
  out.clear();
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.insert(out.end(), buf, buf + n);
  }
}

bool RealVfs::write_file_atomic(const std::string& path,
                                std::span<const std::byte> data) {
  const std::string tmp = path + ".tmp";
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (!fd.ok()) return false;
    if (!write_all(fd.get(), data)) return false;
    if (::fsync(fd.get()) != 0) return false;
  }
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

bool RealVfs::append(const std::string& path, std::span<const std::byte> data,
                     bool sync) {
  Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644));
  if (!fd.ok()) return false;
  if (!write_all(fd.get(), data)) return false;
  return !sync || ::fsync(fd.get()) == 0;
}

bool RealVfs::sync(const std::string& path) {
  Fd fd(::open(path.c_str(), O_WRONLY | O_CLOEXEC));
  if (!fd.ok()) return false;
  return ::fsync(fd.get()) == 0;
}

bool RealVfs::truncate(const std::string& path, std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool RealVfs::remove(const std::string& path) {
  return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

bool RealVfs::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool RealVfs::mkdirs(const std::string& dir) {
  std::string partial;
  partial.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      partial.push_back(dir[i]);
      continue;
    }
    if (i < dir.size()) partial.push_back('/');
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// MemVfs
// --------------------------------------------------------------------------

bool MemVfs::read_file(const std::string& path, std::vector<std::byte>& out) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  out = it->second.data;
  return true;
}

bool MemVfs::write_file_atomic(const std::string& path,
                               std::span<const std::byte> data) {
  std::lock_guard lock(mu_);
  File& f = files_[path];
  f.data.assign(data.begin(), data.end());
  f.synced = f.data.size();  // the rename is the durability point
  return true;
}

bool MemVfs::append(const std::string& path, std::span<const std::byte> data,
                    bool sync) {
  std::lock_guard lock(mu_);
  File& f = files_[path];
  f.data.insert(f.data.end(), data.begin(), data.end());
  if (sync) f.synced = f.data.size();
  return true;
}

bool MemVfs::sync(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  it->second.synced = it->second.data.size();
  return true;
}

bool MemVfs::truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  File& f = it->second;
  if (size < f.data.size()) f.data.resize(size);
  if (f.synced > f.data.size()) f.synced = f.data.size();
  return true;
}

bool MemVfs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  files_.erase(path);
  return true;
}

bool MemVfs::exists(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

bool MemVfs::mkdirs(const std::string&) { return true; }

void MemVfs::drop_unsynced(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return;
  it->second.data.resize(it->second.synced);
}

void MemVfs::crash() {
  std::lock_guard lock(mu_);
  for (auto& [path, f] : files_) f.data.resize(f.synced);
}

void MemVfs::lose_disk() {
  std::lock_guard lock(mu_);
  files_.clear();
}

bool MemVfs::corrupt(const std::string& path, std::uint64_t offset,
                     std::uint8_t bit) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.data.size() || bit > 7) {
    return false;
  }
  it->second.data[offset] ^= static_cast<std::byte>(1u << bit);
  return true;
}

std::uint64_t MemVfs::file_size(const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::uint64_t MemVfs::synced_size(const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced;
}

std::vector<std::string> MemVfs::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, f] : files_) out.push_back(path);
  return out;
}

Vfs& default_vfs() {
  static RealVfs vfs;
  return vfs;
}

}  // namespace causalmem::persist

#include "causalmem/persist/wal.hpp"

#include "causalmem/common/crc32.hpp"

namespace causalmem::persist {

namespace {

std::vector<std::byte> encode_record(const WalRecord& rec) {
  ByteWriter payload;
  put_cell(payload, rec.cell);
  payload.put(rec.write_seq);
  ByteWriter frame;
  frame.put_count(payload.size());
  frame.put(crc32(payload.bytes()));
  frame.put_bytes(payload.bytes());
  return std::move(frame).take();
}

}  // namespace

std::vector<std::byte> wal_header(NodeId node, std::size_t n) {
  ByteWriter w;
  const auto* magic = reinterpret_cast<const std::byte*>(kWalMagic.data());
  w.put_bytes({magic, kWalMagic.size()});
  w.put(node);
  w.put(static_cast<std::uint32_t>(n));
  w.put(crc32(w.bytes()));
  return std::move(w).take();
}

WalReplay replay_wal(Vfs& vfs, const std::string& path, NodeId expect_node,
                     std::size_t expect_n) {
  WalReplay out;
  std::vector<std::byte> data;
  if (!vfs.read_file(path, data)) return out;
  out.file_present = true;

  // Header: magic + node + n, all CRC-guarded. Any mismatch means the file
  // as a whole is untrusted — no record from it may be replayed.
  const std::vector<std::byte> expect_header = wal_header(expect_node, expect_n);
  if (data.size() < expect_header.size() ||
      !std::equal(expect_header.begin(), expect_header.end(), data.begin())) {
    out.truncated_bytes = data.size();
    return out;
  }
  out.header_valid = true;
  out.valid_bytes = expect_header.size();

  std::size_t pos = expect_header.size();
  while (data.size() - pos >= 8) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len > data.size() - pos - 8) break;  // torn: frame over-runs file
    const std::span<const std::byte> payload{data.data() + pos + 8, len};
    if (crc32(payload) != crc) break;  // corrupt payload
    SafeReader r(payload);
    WalRecord rec;
    if (!r.get_cell(rec.cell, expect_n) || !r.get(rec.write_seq) ||
        !r.exhausted()) {
      break;  // CRC-colliding garbage — still rejected, still truncated
    }
    out.records.push_back(std::move(rec));
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  out.truncated_bytes = data.size() - out.valid_bytes;
  return out;
}

WalWriter::WalWriter(Vfs& vfs, std::string path, NodeId node, std::size_t n,
                     bool sync_each)
    : vfs_(vfs),
      path_(std::move(path)),
      node_(node),
      n_(n),
      sync_each_(sync_each) {}

bool WalWriter::ensure_header() {
  if (vfs_.exists(path_)) return true;
  return vfs_.append(path_, wal_header(node_, n_), /*sync=*/true);
}

bool WalWriter::append(const WalRecord& rec) {
  if (!ensure_header()) return false;
  const std::vector<std::byte> frame = encode_record(rec);
  if (!vfs_.append(path_, frame, sync_each_)) return false;
  appended_bytes_ += frame.size();
  return true;
}

bool WalWriter::reset() {
  appended_bytes_ = 0;
  if (!vfs_.remove(path_)) return false;
  return vfs_.append(path_, wal_header(node_, n_), /*sync=*/true);
}

}  // namespace causalmem::persist

// Core identifier and value types shared by every causalmem module.
#pragma once

#include <cstdint>
#include <bit>
#include <limits>
#include <string>

namespace causalmem {

/// Identifies a processor/node in the system. Nodes are numbered 0..n-1.
using NodeId = std::uint32_t;

/// A location (address) in the shared causal memory namespace N.
using Addr = std::uint64_t;

/// The value stored in a memory location.
///
/// The protocol is value-agnostic; we fix a 64-bit payload so messages are
/// trivially serializable. Applications that need doubles (the linear
/// solver) or tagged items (the dictionary) encode into the payload with the
/// helpers below.
using Value = std::int64_t;

/// Distinguished initial value: the paper assumes every location is
/// initialized "by writes of a distinguished value that precede all
/// operations" (Section 2). We use 0 exactly as the paper's examples do.
inline constexpr Value kInitialValue = 0;

/// Distinguished "free slot / deleted" value for the dictionary (the paper's
/// lambda). Chosen far away from plausible application values.
inline constexpr Value kLambda = std::numeric_limits<Value>::min() + 1;

/// Invalid node id sentinel.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Reinterpret a double as a memory Value (bit pattern preserved).
[[nodiscard]] constexpr Value value_from_double(double d) noexcept {
  return std::bit_cast<Value>(d);
}

/// Reinterpret a memory Value as a double (bit pattern preserved).
[[nodiscard]] constexpr double double_from_value(Value v) noexcept {
  return std::bit_cast<double>(v);
}

/// Identifies a unique write: the paper assumes "all writes are unique
/// (easily implemented by associating a timestamp with writes)". We tag each
/// write with its writer and a per-writer sequence number.
struct WriteTag {
  NodeId writer{kNoNode};
  std::uint64_t seq{0};

  friend constexpr bool operator==(const WriteTag&, const WriteTag&) = default;
  friend constexpr auto operator<=>(const WriteTag&, const WriteTag&) = default;

  /// True for the distinguished initial write that precedes all operations.
  [[nodiscard]] constexpr bool is_initial() const noexcept {
    return writer == kNoNode;
  }
};

[[nodiscard]] std::string to_string(const WriteTag& tag);

}  // namespace causalmem

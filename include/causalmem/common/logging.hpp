// Minimal leveled, thread-safe logger. Protocol code logs at DEBUG; the
// default level is WARN so tests and benches stay quiet. Output goes through
// a pluggable sink (default: timestamped stderr) so tests can capture or
// silence it.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace causalmem {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Receives every emitted (level-passing) log message. Called under the
/// logger's emit mutex, so invocations are serialized; keep sinks fast and
/// never log from inside one.
using LogSink = std::function<void(LogLevel, const std::string&)>;

namespace log_detail {

std::atomic<LogLevel>& global_level() noexcept;
void emit(LogLevel level, const std::string& message);

}  // namespace log_detail

/// Sets the global log threshold; messages below it are discarded.
inline void set_log_level(LogLevel level) noexcept {
  log_detail::global_level().store(level, std::memory_order_relaxed);
}

/// Replaces the global log sink; an empty sink restores the default
/// (timestamped stderr). The sink receives the raw message without the
/// default's timestamp/level prefix.
void set_log_sink(LogSink sink);

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return level >= log_detail::global_level().load(std::memory_order_relaxed);
}

}  // namespace causalmem

#define CM_LOG(level, ...)                                      \
  do {                                                          \
    if (::causalmem::log_enabled(level)) {                      \
      std::ostringstream cm_log_oss;                            \
      cm_log_oss << __VA_ARGS__;                                \
      ::causalmem::log_detail::emit(level, cm_log_oss.str());   \
    }                                                           \
  } while (false)

#define CM_LOG_DEBUG(...) CM_LOG(::causalmem::LogLevel::kDebug, __VA_ARGS__)
#define CM_LOG_INFO(...) CM_LOG(::causalmem::LogLevel::kInfo, __VA_ARGS__)
#define CM_LOG_WARN(...) CM_LOG(::causalmem::LogLevel::kWarn, __VA_ARGS__)
#define CM_LOG_ERROR(...) CM_LOG(::causalmem::LogLevel::kError, __VA_ARGS__)

// Deterministic, seedable random number generation for workloads, latency
// injection and property tests. SplitMix64: tiny, fast, good distribution.
#pragma once

#include <cstdint>

#include "causalmem/common/expect.hpp"

namespace causalmem {

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Deterministic per seed.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    CM_EXPECTS(bound > 0);
    // Rejection-free Lemire reduction would be overkill; modulo bias is
    // negligible for our bounds (<< 2^32).
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    CM_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

  /// Derives an independent child generator (for per-thread streams).
  [[nodiscard]] constexpr Rng fork() noexcept { return Rng(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace causalmem

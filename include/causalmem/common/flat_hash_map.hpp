// FlatHashMap: a small open-addressing hash map for the protocol hot paths.
// std::unordered_map pays one heap node per entry and a pointer chase per
// lookup; the owner/cache/pending tables sit on every read, write and
// message-service path, so they use this flat, linear-probed, power-of-two
// table instead. Vendored rather than imported: the protocol needs exactly
// find / try_emplace / operator[] / erase(-during-iteration) over integer
// keys, and forty lines of probing beat a dependency.
//
// Requirements and deviations from std::unordered_map:
//   - K is cheap to copy and equality-comparable; V is default-constructible
//     and move-assignable (erase resets the slot to V{} to release its
//     resources). Both requirements hold for every table in this codebase.
//   - value_type is pair<K, V> with a NON-const key — do not mutate keys
//     through iterators.
//   - Any insert can rehash: ALL iterators and references are invalidated by
//     inserts (unordered_map keeps references stable). Erase invalidates
//     only the erased entry; erase(it) returns the iterator to the next
//     live entry, so erase-during-iteration loops work unchanged.
//   - Iteration order is table order: deterministic for a given
//     insert/erase sequence (the determinism suite relies on nothing more).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "causalmem/common/expect.hpp"

namespace causalmem {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(MapPtr map, std::size_t idx) : map_(map), idx_(idx) {}
    /// iterator -> const_iterator
    operator Iter<true>() const { return Iter<true>(map_, idx_); }

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }

    Iter& operator++() {
      ++idx_;
      skip_dead();
      return *this;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }

   private:
    friend class FlatHashMap;
    void skip_dead() {
      while (idx_ < map_->states_.size() && map_->states_[idx_] != kFull) {
        ++idx_;
      }
    }

    MapPtr map_{nullptr};
    std::size_t idx_{0};
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] iterator begin() {
    iterator it(this, 0);
    it.skip_dead();
    return it;
  }
  [[nodiscard]] iterator end() { return iterator(this, states_.size()); }
  [[nodiscard]] const_iterator begin() const {
    const_iterator it(this, 0);
    it.skip_dead();
    return it;
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, states_.size());
  }

  [[nodiscard]] iterator find(const K& key) {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? end() : iterator(this, idx);
  }
  [[nodiscard]] const_iterator find(const K& key) const {
    const std::size_t idx = find_index(key);
    return idx == kNotFound ? end() : const_iterator(this, idx);
  }
  [[nodiscard]] bool contains(const K& key) const {
    return find_index(key) != kNotFound;
  }

  /// std::unordered_map-compatible: default-constructs on first access.
  V& operator[](const K& key) { return try_emplace(key).first->second; }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    reserve_for_insert();
    std::size_t tomb = kNotFound;
    std::size_t idx = probe_start(key);
    for (;;) {
      if (states_[idx] == kEmpty) {
        const std::size_t target = tomb != kNotFound ? tomb : idx;
        slots_[target].first = key;
        slots_[target].second = V(std::forward<Args>(args)...);
        states_[target] = kFull;
        ++size_;
        if (target == idx) ++used_;
        return {iterator(this, target), true};
      }
      if (states_[idx] == kTomb) {
        if (tomb == kNotFound) tomb = idx;
      } else if (slots_[idx].first == key) {
        return {iterator(this, idx), false};
      }
      idx = (idx + 1) & (states_.size() - 1);
    }
  }

  std::size_t erase(const K& key) {
    const std::size_t idx = find_index(key);
    if (idx == kNotFound) return 0;
    erase_at(idx);
    return 1;
  }

  /// Erases the pointee and returns the iterator to the next live entry —
  /// the drop-in shape for erase-during-iteration loops.
  iterator erase(iterator it) {
    CM_EXPECTS(it.map_ == this && it.idx_ < states_.size());
    erase_at(it.idx_);
    ++it.idx_;
    it.skip_dead();
    return it;
  }

  void clear() {
    slots_.clear();
    states_.clear();
    size_ = 0;
    used_ = 0;
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kInitialCapacity = 16;

  /// libstdc++'s std::hash over integers is the identity; strided keys
  /// (page ids, node-striped addresses) would then collide into runs under
  /// the power-of-two mask. Finish with a SplitMix64-style mixer.
  [[nodiscard]] static std::size_t mix(std::size_t h) noexcept {
    std::uint64_t z = static_cast<std::uint64_t>(h) + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  [[nodiscard]] std::size_t probe_start(const K& key) const noexcept {
    return mix(Hash{}(key)) & (states_.size() - 1);
  }

  [[nodiscard]] std::size_t find_index(const K& key) const {
    if (states_.empty()) return kNotFound;
    std::size_t idx = probe_start(key);
    for (;;) {
      if (states_[idx] == kEmpty) return kNotFound;
      if (states_[idx] == kFull && slots_[idx].first == key) return idx;
      idx = (idx + 1) & (states_.size() - 1);
    }
  }

  void erase_at(std::size_t idx) {
    CM_EXPECTS(states_[idx] == kFull);
    slots_[idx].second = V{};  // release the value's resources now
    states_[idx] = kTomb;
    --size_;
  }

  /// Keeps load (live + tombstones) under 3/4 so probes stay short; growing
  /// rehashes live entries only, which also sweeps tombstones out.
  void reserve_for_insert() {
    if (states_.empty()) {
      slots_.resize(kInitialCapacity);
      states_.assign(kInitialCapacity, kEmpty);
      return;
    }
    if ((used_ + 1) * 4 <= states_.size() * 3) return;
    const std::size_t new_cap =
        (size_ + 1) * 4 > states_.size() * 3 ? states_.size() * 2
                                             : states_.size();
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_states = std::move(states_);
    slots_.clear();
    slots_.resize(new_cap);
    states_.assign(new_cap, kEmpty);
    size_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t idx = probe_start(old_slots[i].first);
      while (states_[idx] != kEmpty) idx = (idx + 1) & (new_cap - 1);
      slots_[idx] = std::move(old_slots[i]);
      states_[idx] = kFull;
      ++size_;
      ++used_;
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> states_;
  std::size_t size_{0};  ///< live entries
  std::size_t used_{0};  ///< live + tombstoned slots (probe-chain occupancy)
};

}  // namespace causalmem

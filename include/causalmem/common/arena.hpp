// Thread-local frame pool for the message codec hot path. Encoding a
// message into a fresh std::vector<std::byte> per send costs one heap
// allocation per message; at bench_throughput rates that allocation (and the
// matching free on the other side of the transport) dominates the codec
// itself. FrameArena recycles the buffers instead: acquire() hands back a
// cleared buffer with its old capacity intact, release() returns it to the
// calling thread's pool.
//
// The pool is strictly thread-local, so acquire/release never synchronize.
// A buffer may be released on a different thread than it was acquired on
// (frames cross threads inside the transports); it then simply joins that
// thread's pool — capacity migrates, correctness is unaffected. Buffers that
// are never released are freed by their destructor as usual, so callers
// outside the hot path can ignore the arena entirely.
#pragma once

#include <cstddef>
#include <vector>

namespace causalmem {

class FrameArena {
 public:
  /// An empty buffer, reusing pooled capacity when available.
  [[nodiscard]] static std::vector<std::byte> acquire() {
    auto& pool = tls_pool();
    if (pool.empty()) return {};
    std::vector<std::byte> buf = std::move(pool.back());
    pool.pop_back();
    buf.clear();
    return buf;
  }

  /// Returns a buffer's capacity to this thread's pool. Over-full pools and
  /// capacity-less buffers are dropped on the floor (plain destruction).
  static void release(std::vector<std::byte>&& buf) {
    auto& pool = tls_pool();
    if (buf.capacity() == 0 || pool.size() >= kMaxPooled) return;
    pool.push_back(std::move(buf));
  }

  /// Buffers currently pooled on the calling thread (tests).
  [[nodiscard]] static std::size_t pooled_count() { return tls_pool().size(); }

 private:
  /// Enough for every in-flight frame of one delivery thread plus slack;
  /// beyond this, pooling more buffers is just holding memory hostage.
  static constexpr std::size_t kMaxPooled = 32;

  static std::vector<std::vector<std::byte>>& tls_pool() {
    thread_local std::vector<std::vector<std::byte>> pool;
    return pool;
  }
};

}  // namespace causalmem

// Unbounded MPSC/MPMC blocking queue used as the FIFO channel primitive of
// the in-memory transport. Close() releases all waiters (CP.42: don't wait
// without a condition — every wait has a predicate).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace causalmem {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false when the queue is closed (item dropped).
  bool push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items still drain, pushes are rejected,
  /// blocked poppers wake up.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_{false};
};

}  // namespace causalmem

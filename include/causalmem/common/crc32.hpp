// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320): integrity guard for
// persisted records. Every on-disk frame the persist layer writes carries a
// CRC so torn, truncated or bit-flipped data is *detected* and rejected —
// never parsed on trust (see docs/PERSISTENCE.md).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace causalmem {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC of `bytes`, chainable via `seed` (pass a previous crc32 result to
/// extend it over a further span).
[[nodiscard]] constexpr std::uint32_t crc32(std::span<const std::byte> bytes,
                                            std::uint32_t seed = 0) {
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    crc = detail::kCrc32Table[(crc ^ std::to_integer<std::uint32_t>(b)) &
                              0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace causalmem

// Byte-level encoder/decoder for protocol messages. Fixed little-endian
// wire format so the in-memory and TCP transports serialize identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "causalmem/common/expect.hpp"

namespace causalmem {

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Writes into `reuse` (cleared first), so a caller on the hot path can
  /// recycle one buffer's capacity across encodes (see common/arena.hpp).
  explicit ByteWriter(std::vector<std::byte> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  template <typename T>
    requires std::is_integral_v<T> || std::is_floating_point_v<T> ||
             std::is_enum_v<T>
  void put(T v) {
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Writes an element/byte count as u32. Counts live in memory as size_t;
  /// anything beyond the u32 wire field would previously be *silently
  /// truncated* by the cast — now it is a contract violation.
  void put_count(std::size_t n) {
    CM_EXPECTS_MSG(n <= UINT32_MAX, "codec count overflows u32 wire field");
    put<std::uint32_t>(static_cast<std::uint32_t>(n));
  }

  void put_string(const std::string& s) {
    put_count(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    put_bytes({p, s.size()});
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    put_count(v.size());
    for (const T& x : v) put(x);
  }

  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitive values back out of a byte buffer. Over-reads are
/// contract violations: messages are produced by our own ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) noexcept : bytes_(bytes) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_floating_point_v<T> ||
             std::is_enum_v<T>
  [[nodiscard]] T get() {
    CM_EXPECTS_MSG(pos_ + sizeof(T) <= bytes_.size(), "codec under-run");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::string get_string() {
    const auto n = get<std::uint32_t>();
    // Validate the wire count against the bytes actually present BEFORE
    // allocating: a corrupt count must fail the contract check, not reserve
    // gigabytes first.
    CM_EXPECTS_MSG(n <= remaining(), "codec under-run (string)");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> get_vector() {
    const auto n = get<std::uint32_t>();
    // Same rule as get_string: each element needs sizeof(T) payload bytes,
    // so any count exceeding remaining()/sizeof(T) is corrupt — check it
    // before reserve() can allocate from the unvalidated count.
    CM_EXPECTS_MSG(remaining() / sizeof(T) >= n, "codec under-run (vector)");
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(get<T>());
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_{0};
};

}  // namespace causalmem

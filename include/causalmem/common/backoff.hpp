// Adaptive busy-wait helper used by the causal memory `wait(B)` idiom.
// Starts with cheap pauses, escalates to yields, then to short sleeps so a
// spinning reader does not starve the node's service thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace causalmem {

class Backoff {
 public:
  /// max_sleep caps the escalation; keep it small — spin loops poll remote
  /// owners, and a cap much larger than the message RTT just adds dead time
  /// to every handshake.
  explicit Backoff(std::chrono::microseconds max_sleep =
                       std::chrono::microseconds(50)) noexcept
      : max_sleep_(max_sleep) {}

  void pause() noexcept {
    ++spins_;
    if (spins_ <= 2) {
      // A couple of relaxed pauses for the multi-core fast path.
      for (std::uint32_t i = 0; i < 64; ++i) cpu_relax();
    } else if (spins_ <= 16) {
      // Yield early: these loops run oversubscribed (n app threads plus n
      // delivery threads), possibly on a single core, where hot spinning
      // starves the very thread that would satisfy the predicate.
      std::this_thread::yield();
    } else {
      const std::uint32_t shift =
          std::min<std::uint32_t>(static_cast<std::uint32_t>(spins_ - 16), 16);
      auto sleep = std::chrono::microseconds(1ULL << shift);
      if (sleep > max_sleep_) sleep = max_sleep_;
      std::this_thread::sleep_for(sleep);
    }
  }

  void reset() noexcept { spins_ = 0; }

  [[nodiscard]] std::uint64_t spin_count() const noexcept { return spins_; }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  std::chrono::microseconds max_sleep_;
  std::uint64_t spins_{0};
};

}  // namespace causalmem

// Contract-checking macros in the spirit of the Core Guidelines' Expects /
// Ensures (I.6, I.8). Violations are programming errors: we print a precise
// diagnostic and abort, never limp on with corrupted protocol state.
#pragma once

#include <cstdlib>

namespace causalmem::detail {

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const char* msg) noexcept;

}  // namespace causalmem::detail

#define CM_CONTRACT_CHECK(kind, cond, msg)                                \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::causalmem::detail::contract_fail(kind, #cond, __FILE__, __LINE__, \
                                         msg);                            \
    }                                                                     \
  } while (false)

/// Precondition on function entry.
#define CM_EXPECTS(cond) CM_CONTRACT_CHECK("precondition", cond, "")
#define CM_EXPECTS_MSG(cond, msg) CM_CONTRACT_CHECK("precondition", cond, msg)

/// Postcondition before returning.
#define CM_ENSURES(cond) CM_CONTRACT_CHECK("postcondition", cond, "")

/// Internal invariant.
#define CM_ASSERT(cond) CM_CONTRACT_CHECK("invariant", cond, "")
#define CM_ASSERT_MSG(cond, msg) CM_CONTRACT_CHECK("invariant", cond, msg)

/// Marks unreachable control flow.
#define CM_UNREACHABLE(msg) \
  ::causalmem::detail::contract_fail("unreachable", "false", __FILE__, __LINE__, msg)

// Cooperative-wait seam for deterministic simulation (sim/scheduler.hpp).
//
// Blocking sites in the protocol code (future waits, flush fences, spin
// loops) normally block their OS thread. Under the simulation scheduler
// exactly one logical thread may run at a time, so those sites must instead
// hand control back to the scheduler and declare what they are waiting for.
// This header is that seam: a process-global Parker hook, mirroring the
// obs::ClockSource seam, that lives in causalmem_common so the dsm layer
// needs no link-time dependency on the sim library.
//
// Contract for park():
//   - call only with no locks held that `ready` or any other task/handler
//     may take (`ready` is evaluated on the scheduler thread);
//   - `ready` must be a pure predicate over shared state (no side effects);
//   - `deadline_ns` is VIRTUAL time (obs::now_ns()); 0 means no deadline;
//   - park returns when `ready()` held, or virtual time reached the
//     deadline, whichever the scheduler observes first.
//
// When no parker is installed (every non-simulated run) park()/yield()
// return false and the call site falls back to its real blocking primitive.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace causalmem::coop {

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;
  virtual ~Parker() = default;

  /// Parks the calling task until `ready()` holds or virtual time reaches
  /// `deadline_ns` (0 = no deadline). Must only be called from a thread the
  /// parker manages (on_task_thread() true).
  virtual void park(const std::function<bool()>& ready,
                    std::uint64_t deadline_ns, const char* what) = 0;

  /// True when the calling thread is a task this parker schedules. Threads
  /// outside the simulation (including the scheduler thread itself) must
  /// keep using their real blocking primitives.
  [[nodiscard]] virtual bool on_task_thread() const noexcept = 0;
};

namespace detail {
inline std::atomic<Parker*> g_parker{nullptr};
}  // namespace detail

/// Installs `parker` as the global cooperative-wait hook; nullptr removes
/// it. Install before simulated tasks start, remove after they join.
inline void set_parker(Parker* parker) noexcept {
  detail::g_parker.store(parker, std::memory_order_release);
}

[[nodiscard]] inline Parker* current() noexcept {
  return detail::g_parker.load(std::memory_order_acquire);
}

/// True when the calling thread is a simulation-managed task. One relaxed
/// load on the disabled path — cheap enough for every blocking site.
[[nodiscard]] inline bool enabled() noexcept {
  Parker* p = current();
  return p != nullptr && p->on_task_thread();
}

/// Parks through the installed hook. Returns false (without blocking) when
/// no parker is installed or the caller is not a managed task — the call
/// site then uses its normal blocking primitive.
inline bool park(const std::function<bool()>& ready, std::uint64_t deadline_ns,
                 const char* what) {
  Parker* p = current();
  if (p == nullptr || !p->on_task_thread()) return false;
  p->park(ready, deadline_ns, what);
  return true;
}

/// Cooperative yield: gives the scheduler a choice point without a wait
/// condition (the task is immediately runnable again). Returns false when
/// not running under a parker.
inline bool yield() {
  return park([] { return true; }, 0, "yield");
}

}  // namespace causalmem::coop

// Tiny fixed-width table renderer used by the benchmark harness so every
// bench prints paper-style rows uniformly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace causalmem {

class Table {
 public:
  /// Per-column cell alignment. Numeric columns default to right alignment;
  /// benches mark their label columns kLeft.
  enum class Align { kRight, kLeft };

  explicit Table(std::vector<std::string> headers);

  /// Sets one column's alignment (default: kRight, which suits numbers).
  void set_align(std::size_t col, Align align);

  /// Adds a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment to `os`.
  void print(std::ostream& os) const;

  /// Formats a double with fixed precision (helper for bench rows).
  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace causalmem

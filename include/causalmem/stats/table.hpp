// Tiny fixed-width table renderer used by the benchmark harness so every
// bench prints paper-style rows uniformly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace causalmem {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment to `os`.
  void print(std::ostream& os) const;

  /// Formats a double with fixed precision (helper for bench rows).
  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace causalmem

// Per-node event counters. Message accounting is a first-class concern: the
// paper's headline quantitative claim is a message count (2n+6 vs 3n+5 per
// processor per solver iteration), so every protocol send and every cache
// event is categorized here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"
#include "causalmem/obs/histogram.hpp"

namespace causalmem {

namespace obs {
class FlightRecorder;
class Tracer;
}  // namespace obs

enum class Counter : std::size_t {
  // --- messages on the wire (sends) ---
  kMsgReadRequest = 0,   ///< [READ, x] to owner
  kMsgReadReply,         ///< [R_REPLY, x, v, VT]
  kMsgWriteRequest,      ///< [WRITE, x, v, VT] to owner
  kMsgWriteReply,        ///< [W_REPLY, x, v, VT]
  kMsgInvalidate,        ///< atomic DSM: INV to a copyset member
  kMsgInvalidateAck,     ///< atomic DSM: INV_ACK back to the owner
  kMsgBroadcast,         ///< broadcast memory: one update message to one peer

  // --- local protocol events ---
  kReadHit,              ///< read satisfied from owned or cached location
  kReadMiss,             ///< read needed a round trip to the owner
  kWriteLocal,           ///< write to an owned location (no messages)
  kWriteRemote,          ///< write certified by a remote owner
  kInvalidationApplied,  ///< one cached entry invalidated (any reason)
  kDiscard,              ///< one cached entry discarded (replacement/liveness)
  kStaleInstallSkipped,  ///< read reply served before a mid-flight owner
                         ///< merge: value returned but not cached

  // --- busy-wait accounting (E1 separates these from protocol cost) ---
  kSpinRefetch,          ///< a wait(B) poll that re-fetched from the owner
  kSpinTransition,       ///< a wait(B) that finally observed the new value

  // --- transport recovery cost (NOT message counters: E1's protocol
  // accounting must separate protocol cost from recovery cost) ---
  kNetRetransmit,        ///< ReliableChannel: timeout-driven retransmission
  kNetDupDropped,        ///< ReliableChannel: receive-side duplicate dropped
  kNetAckSent,           ///< ReliableChannel: cumulative ack sent
  kNetFaultDrop,         ///< FaultyTransport: message dropped (incl. crash/partition)
  kNetFaultDup,          ///< FaultyTransport: duplicate copy injected
  kNetFaultDelay,        ///< FaultyTransport: extra delay injected
  kNetSendFailed,        ///< TcpTransport: frame write failed / connection broken
  kNetFrameError,        ///< TcpTransport: corrupt frame length, connection torn down
  kNetHeartbeat,         ///< HeartbeatMonitor: one HEARTBEAT probe sent
  kNetPeerUnreachable,   ///< ReliableChannel: gave up retransmitting to a peer
  kNetOutOfWindow,       ///< ReliableChannel: frame beyond the reorder window dropped

  // --- crash tolerance (failover layer; NOT message counters: the
  // fault-free path must keep the paper's 2n+6 accounting untouched) ---
  kFoSuspect,            ///< a node reported a peer as suspected
  kFoFailover,           ///< this node became successor-owner for a peer
  kFoRecoverRequest,     ///< successor asked a peer for its freshest copy
  kFoRecoverReply,       ///< peer answered a recovery election request
  kFoSyncRequest,        ///< restarted node asked a peer for its clock
  kFoSyncReply,          ///< peer answered a restart resync request
  kFoRequestTimeout,     ///< one owner request round expired at its deadline
  kFoUnreachable,        ///< an operation exhausted its retries (Unreachable)

  // --- durable persistence (persist/*). Recovery-class like fo.*: all zero
  // on the fault-free path with persistence off, and never message counters
  // (the paper's 2n+6 accounting is untouched) ---
  kPersistWalAppend,      ///< one WAL record appended at an owner apply point
  kPersistWalReplayed,    ///< one WAL record replayed at restart
  kPersistWalTruncated,   ///< a torn/corrupt WAL tail was detected and cut
  kPersistCheckpoint,     ///< one checkpoint written (atomic replace)
  kPersistCkptRejected,   ///< a checkpoint failed validation: discarded
  kPersistRestoredCells,  ///< owned cells restored from checkpoint + WAL
  kPersistCatchupRequest, ///< writestamp-bounded catch-up request sent
  kPersistCatchupReply,   ///< catch-up request served (fresher or not)
  kPersistCatchupFresher, ///< catch-up reply carried a strictly fresher cell

  kCounterCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCounterCount);

[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// Latency distributions recorded next to the counters (obs::Histogram,
/// log-bucketed, mergeable). Values are nanoseconds.
enum class LatencyMetric : std::size_t {
  kReadNs = 0,          ///< application-visible read latency
  kWriteNs,             ///< application-visible write latency
  kOwnerRttNs,          ///< request-send to reply-applied owner round trip
  kRetransmitDelayNs,   ///< first-send to retransmission delay
  kMetricCount,
};

inline constexpr std::size_t kNumLatencyMetrics =
    static_cast<std::size_t>(LatencyMetric::kMetricCount);

[[nodiscard]] const char* latency_metric_name(LatencyMetric m) noexcept;

/// True for counters that belong to the transport recovery layer (net.*),
/// reported separately from protocol cost.
[[nodiscard]] constexpr bool is_recovery_counter(Counter c) noexcept {
  switch (c) {
    case Counter::kNetRetransmit:
    case Counter::kNetDupDropped:
    case Counter::kNetAckSent:
    case Counter::kNetFaultDrop:
    case Counter::kNetFaultDup:
    case Counter::kNetFaultDelay:
    case Counter::kNetSendFailed:
    case Counter::kNetFrameError:
    case Counter::kNetHeartbeat:
    case Counter::kNetPeerUnreachable:
    case Counter::kNetOutOfWindow:
    case Counter::kFoSuspect:
    case Counter::kFoFailover:
    case Counter::kFoRecoverRequest:
    case Counter::kFoRecoverReply:
    case Counter::kFoSyncRequest:
    case Counter::kFoSyncReply:
    case Counter::kFoRequestTimeout:
    case Counter::kFoUnreachable:
    case Counter::kPersistWalAppend:
    case Counter::kPersistWalReplayed:
    case Counter::kPersistWalTruncated:
    case Counter::kPersistCheckpoint:
    case Counter::kPersistCkptRejected:
    case Counter::kPersistRestoredCells:
    case Counter::kPersistCatchupRequest:
    case Counter::kPersistCatchupReply:
    case Counter::kPersistCatchupFresher:
      return true;
    default:
      return false;
  }
}

/// True for counters that represent one message on the wire.
[[nodiscard]] constexpr bool is_message_counter(Counter c) noexcept {
  switch (c) {
    case Counter::kMsgReadRequest:
    case Counter::kMsgReadReply:
    case Counter::kMsgWriteRequest:
    case Counter::kMsgWriteReply:
    case Counter::kMsgInvalidate:
    case Counter::kMsgInvalidateAck:
    case Counter::kMsgBroadcast:
      return true;
    default:
      return false;
  }
}

/// A plain (non-atomic) snapshot of one node's counters.
struct StatsSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }

  /// Total messages sent by this node.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

  StatsSnapshot& operator+=(const StatsSnapshot& other) noexcept;
  friend StatsSnapshot operator-(StatsSnapshot lhs, const StatsSnapshot& rhs) noexcept;

  /// Aligned multi-line rendering: non-zero protocol counters first, then —
  /// when any is non-zero — the net.* recovery counters in their own
  /// section, so protocol vs recovery cost reads at a glance. Names are
  /// left-aligned, values right-aligned.
  [[nodiscard]] std::string to_string() const;
};

/// One node's live counters. Thread-safe via relaxed atomics: counters are
/// statistics, not synchronization.
class NodeStats {
 public:
  void bump(Counter c, std::uint64_t n = 1) noexcept {
    values_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t get(Counter c) const noexcept {
    return values_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] StatsSnapshot snapshot() const noexcept {
    StatsSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.values[i] = values_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  /// Records one latency sample (nanoseconds) into the metric's histogram.
  void record_latency(LatencyMetric m, std::uint64_t ns) noexcept {
    latency_[static_cast<std::size_t>(m)].record(ns);
  }

  [[nodiscard]] const obs::Histogram& latency(LatencyMetric m) const noexcept {
    return latency_[static_cast<std::size_t>(m)];
  }

  /// The node's event tracer, or nullptr when tracing is disabled. A single
  /// relaxed load — the whole cost of the disabled path at call sites.
  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return tracer_.load(std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) the node's tracer. The tracer must
  /// outlive every thread that may record through this NodeStats.
  void set_tracer(obs::Tracer* t) noexcept {
    tracer_.store(t, std::memory_order_relaxed);
  }

  /// The system's flight recorder, or nullptr when none is armed. Same
  /// single-relaxed-load seam as tracer(): trigger sites (all cold paths)
  /// check this unconditionally.
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const noexcept {
    return flight_.load(std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) the flight recorder. It must
  /// outlive every thread that may trigger through this NodeStats.
  void set_flight_recorder(obs::FlightRecorder* fr) noexcept {
    flight_.store(fr, std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& v : values_) v.store(0, std::memory_order_relaxed);
    for (auto& h : latency_) h.reset();
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> values_{};
  std::array<obs::Histogram, kNumLatencyMetrics> latency_{};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::FlightRecorder*> flight_{nullptr};
};

/// Counters for a whole system of n nodes.
class StatsRegistry {
 public:
  explicit StatsRegistry(std::size_t n) : per_node_(n) {}

  [[nodiscard]] NodeStats& node(NodeId i) {
    CM_EXPECTS(i < per_node_.size());
    return per_node_[i];
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return per_node_.size(); }

  [[nodiscard]] StatsSnapshot node_snapshot(NodeId i) const {
    CM_EXPECTS(i < per_node_.size());
    return per_node_[i].snapshot();
  }

  /// Sum over all nodes.
  [[nodiscard]] StatsSnapshot total() const {
    StatsSnapshot s;
    for (const auto& n : per_node_) s += n.snapshot();
    return s;
  }

  /// One node's histogram snapshot for a metric.
  [[nodiscard]] obs::HistogramSnapshot latency_snapshot(NodeId i,
                                                        LatencyMetric m) const {
    CM_EXPECTS(i < per_node_.size());
    return per_node_[i].latency(m).snapshot();
  }

  /// Merged histogram over all nodes for a metric.
  [[nodiscard]] obs::HistogramSnapshot latency_total(LatencyMetric m) const {
    obs::HistogramSnapshot s;
    for (const auto& n : per_node_) s += n.latency(m).snapshot();
    return s;
  }

  /// The tracer of node `i`, or nullptr (out of range, or tracing off).
  [[nodiscard]] obs::Tracer* tracer(NodeId i) const noexcept {
    return i < per_node_.size() ? per_node_[i].tracer() : nullptr;
  }

  void reset() {
    for (auto& n : per_node_) n.reset();
  }

 private:
  // deque-like stability not needed; NodeStats is not movable after threads
  // start, so we size once at construction.
  std::vector<NodeStats> per_node_;
};

}  // namespace causalmem

// Per-node event counters. Message accounting is a first-class concern: the
// paper's headline quantitative claim is a message count (2n+6 vs 3n+5 per
// processor per solver iteration), so every protocol send and every cache
// event is categorized here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"

namespace causalmem {

enum class Counter : std::size_t {
  // --- messages on the wire (sends) ---
  kMsgReadRequest = 0,   ///< [READ, x] to owner
  kMsgReadReply,         ///< [R_REPLY, x, v, VT]
  kMsgWriteRequest,      ///< [WRITE, x, v, VT] to owner
  kMsgWriteReply,        ///< [W_REPLY, x, v, VT]
  kMsgInvalidate,        ///< atomic DSM: INV to a copyset member
  kMsgInvalidateAck,     ///< atomic DSM: INV_ACK back to the owner
  kMsgBroadcast,         ///< broadcast memory: one update message to one peer

  // --- local protocol events ---
  kReadHit,              ///< read satisfied from owned or cached location
  kReadMiss,             ///< read needed a round trip to the owner
  kWriteLocal,           ///< write to an owned location (no messages)
  kWriteRemote,          ///< write certified by a remote owner
  kInvalidationApplied,  ///< one cached entry invalidated (any reason)
  kDiscard,              ///< one cached entry discarded (replacement/liveness)

  // --- busy-wait accounting (E1 separates these from protocol cost) ---
  kSpinRefetch,          ///< a wait(B) poll that re-fetched from the owner
  kSpinTransition,       ///< a wait(B) that finally observed the new value

  // --- transport recovery cost (NOT message counters: E1's protocol
  // accounting must separate protocol cost from recovery cost) ---
  kNetRetransmit,        ///< ReliableChannel: timeout-driven retransmission
  kNetDupDropped,        ///< ReliableChannel: receive-side duplicate dropped
  kNetAckSent,           ///< ReliableChannel: cumulative ack sent
  kNetFaultDrop,         ///< FaultyTransport: message dropped (incl. crash/partition)
  kNetFaultDup,          ///< FaultyTransport: duplicate copy injected
  kNetFaultDelay,        ///< FaultyTransport: extra delay injected
  kNetSendFailed,        ///< TcpTransport: frame write failed / connection broken
  kNetFrameError,        ///< TcpTransport: corrupt frame length, connection torn down

  kCounterCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCounterCount);

[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// True for counters that represent one message on the wire.
[[nodiscard]] constexpr bool is_message_counter(Counter c) noexcept {
  switch (c) {
    case Counter::kMsgReadRequest:
    case Counter::kMsgReadReply:
    case Counter::kMsgWriteRequest:
    case Counter::kMsgWriteReply:
    case Counter::kMsgInvalidate:
    case Counter::kMsgInvalidateAck:
    case Counter::kMsgBroadcast:
      return true;
    default:
      return false;
  }
}

/// A plain (non-atomic) snapshot of one node's counters.
struct StatsSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }

  /// Total messages sent by this node.
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

  StatsSnapshot& operator+=(const StatsSnapshot& other) noexcept;
  friend StatsSnapshot operator-(StatsSnapshot lhs, const StatsSnapshot& rhs) noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// One node's live counters. Thread-safe via relaxed atomics: counters are
/// statistics, not synchronization.
class NodeStats {
 public:
  void bump(Counter c, std::uint64_t n = 1) noexcept {
    values_[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t get(Counter c) const noexcept {
    return values_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] StatsSnapshot snapshot() const noexcept {
    StatsSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.values[i] = values_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  void reset() noexcept {
    for (auto& v : values_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> values_{};
};

/// Counters for a whole system of n nodes.
class StatsRegistry {
 public:
  explicit StatsRegistry(std::size_t n) : per_node_(n) {}

  [[nodiscard]] NodeStats& node(NodeId i) {
    CM_EXPECTS(i < per_node_.size());
    return per_node_[i];
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return per_node_.size(); }

  [[nodiscard]] StatsSnapshot node_snapshot(NodeId i) const {
    CM_EXPECTS(i < per_node_.size());
    return per_node_[i].snapshot();
  }

  /// Sum over all nodes.
  [[nodiscard]] StatsSnapshot total() const {
    StatsSnapshot s;
    for (const auto& n : per_node_) s += n.snapshot();
    return s;
  }

  void reset() {
    for (auto& n : per_node_) n.reset();
  }

 private:
  // deque-like stability not needed; NodeStats is not movable after threads
  // start, so we size once at construction.
  std::vector<NodeStats> per_node_;
};

}  // namespace causalmem

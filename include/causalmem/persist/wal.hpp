// Log-structured write-ahead journal (`causalmem-wal-v1`), appended at
// owner apply points and replayed on restart. Layout:
//
//   header:  16-byte magic "causalmem-wal-v1" | u32 node | u32 n
//            | u32 crc32(previous 24 bytes)
//   record:  u32 payload_len | u32 crc32(payload) | payload
//   payload: u64 addr | i64 value | u32 tag.writer | u64 tag.seq
//            | u64 write_seq | u32 clock_count | clock_count x u64
//
// Replay walks records until the first frame whose length over-runs the
// file or whose CRC fails — everything from there on is a torn or corrupt
// tail: it is reported (`truncated_bytes`) and the caller truncates the
// file back to `valid_bytes`. A torn tail is expected after a crash
// mid-append; it is never an error, and never trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/persist/format.hpp"
#include "causalmem/persist/vfs.hpp"

namespace causalmem::persist {

/// One owner-side apply: the cell as installed plus the owner's own write
/// counter at append time (replay restores `write_seq` as the max seen, so
/// restarted nodes keep minting unique write tags).
struct WalRecord {
  DurableCell cell;
  std::uint64_t write_seq{0};
};

struct WalReplay {
  bool file_present{false};
  bool header_valid{false};      ///< magic/node/n/CRC all checked out
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes{0};  ///< clean prefix length (incl. header)
  std::uint64_t truncated_bytes{0};  ///< torn/corrupt tail length
};

/// Validates and replays `path`. Never aborts on bad bytes: a corrupt
/// header yields header_valid=false with no records (the whole file is
/// untrusted); a bad record stops the walk and reports the tail. Does NOT
/// modify the file — the caller truncates to `valid_bytes` before
/// appending again.
[[nodiscard]] WalReplay replay_wal(Vfs& vfs, const std::string& path,
                                   NodeId expect_node, std::size_t expect_n);

/// Append side. The header is (re)written whenever the file is absent.
class WalWriter {
 public:
  WalWriter(Vfs& vfs, std::string path, NodeId node, std::size_t n,
            bool sync_each);

  /// Appends one CRC-guarded record; with sync_each the record is durable
  /// when this returns (an owner may then certify the write to its client).
  bool append(const WalRecord& rec);

  /// Truncates to a bare header: called after a checkpoint superseded the
  /// log's contents.
  bool reset();

  [[nodiscard]] std::uint64_t appended_bytes() const noexcept {
    return appended_bytes_;
  }

 private:
  bool ensure_header();
  Vfs& vfs_;
  const std::string path_;
  const NodeId node_;
  const std::size_t n_;
  const bool sync_each_;
  std::uint64_t appended_bytes_{0};
};

/// The 28-byte v1 header for `node` in an `n`-node system.
[[nodiscard]] std::vector<std::byte> wal_header(NodeId node, std::size_t n);

}  // namespace causalmem::persist

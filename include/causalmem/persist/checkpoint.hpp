// Checkpoint format (`causalmem-ckpt-v1`): one asynchronous, uncoordinated
// per-node snapshot of the owned cells + vector clock + write counter.
//
// Causal memory admits exactly this — Kulkarni, Nguyen, Tseng & Vaidya show
// that under causal consistency each node may checkpoint independently, with
// no barrier and no coordinated recovery line, because a restored node that
// is "behind" merely exposes an older-but-causally-closed view which the
// catch-up election then advances (see docs/PERSISTENCE.md). Atomic memory
// would need a coordinated snapshot here.
//
// Layout: 17-byte magic "causalmem-ckpt-v1" | u32 node | u32 n
//         | u64 write_seq | clock | u32 cell_count | cells
//         | u32 crc32(everything before)
//
// Written tmp+rename (Vfs::write_file_atomic): a crash mid-checkpoint
// leaves the previous checkpoint intact; a corrupt file is rejected as a
// whole (single trailing CRC — a checkpoint is all-or-nothing, unlike the
// WAL's per-record framing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/persist/format.hpp"
#include "causalmem/persist/vfs.hpp"

namespace causalmem::persist {

struct CheckpointData {
  NodeId node{kNoNode};
  std::uint64_t write_seq{0};
  VectorClock vt;
  std::vector<DurableCell> cells;
};

enum class CkptLoad {
  kOk,
  kMissing,  ///< no file — first boot, or the disk was lost
  kCorrupt,  ///< present but failed validation — rejected, never trusted
};

/// Atomically replaces the checkpoint at `path`.
bool save_checkpoint(Vfs& vfs, const std::string& path,
                     const CheckpointData& data, std::size_t n);

/// Loads and validates. kCorrupt leaves `out` untouched: a bad checkpoint
/// contributes nothing (recovery falls back to the WAL of the previous
/// epoch, or to the peer election).
[[nodiscard]] CkptLoad load_checkpoint(Vfs& vfs, const std::string& path,
                                       NodeId expect_node, std::size_t expect_n,
                                       CheckpointData& out);

}  // namespace causalmem::persist

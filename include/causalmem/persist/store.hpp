// Per-node durable store: the facade the DSM node talks to.
//
// Write path (owner apply points, under the node's lock):
//     append(cell, write_seq)           — one CRC-framed WAL record, fsynced
//                                         before the owner's reply leaves
//     checkpoint_due() / checkpoint()   — every `checkpoint_every` appends,
//                                         atomically replace the checkpoint
//                                         and reset the WAL
//
// Recovery path (CausalNode::rejoin):
//     recover() — load + validate the checkpoint, replay the WAL on top of
//     it (newest record per address wins; WAL order is apply order), cut any
//     torn/corrupt tail back to the last valid byte, and hand the node a
//     single merged RecoveredState. Nothing unvalidated is ever believed:
//     a corrupt checkpoint contributes zero cells, a torn WAL contributes
//     its valid prefix only.
//
// Checkpoints are asynchronous and uncoordinated across nodes (sound under
// causal consistency — see checkpoint.hpp and docs/PERSISTENCE.md); the
// Store therefore never talks to the network and never blocks on peers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "causalmem/persist/checkpoint.hpp"
#include "causalmem/persist/vfs.hpp"
#include "causalmem/persist/wal.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem::persist {

struct PersistConfig {
  bool enabled{false};
  /// Directory holding node<id>.ckpt / node<id>.wal.
  std::string dir{"causalmem-persist"};
  /// Checkpoint after this many WAL appends. 0 = only explicit checkpoints.
  std::uint32_t checkpoint_every{256};
  /// fsync each WAL append before returning (the durability contract the
  /// recovery proof relies on: an acknowledged write is on disk). Turning
  /// this off trades crash-window loss of acked writes for throughput.
  bool sync_every_append{true};
  /// Filesystem seam; null = process-wide RealVfs. Sim and tests inject a
  /// MemVfs here.
  Vfs* vfs{nullptr};
};

/// Everything recover() could reconstruct, already merged.
struct RecoveredState {
  bool checkpoint_loaded{false};
  bool checkpoint_rejected{false};  ///< present but corrupt — discarded whole
  std::uint64_t write_seq{0};       ///< max over checkpoint and WAL records
  VectorClock vt;                   ///< checkpoint vt joined with WAL stamps
  std::vector<DurableCell> cells;   ///< newest per address (WAL over ckpt)
  std::size_t wal_records{0};
  std::uint64_t wal_truncated_bytes{0};  ///< torn tail cut (0 = clean file)

  [[nodiscard]] bool any() const noexcept {
    return checkpoint_loaded || wal_records > 0;
  }
};

class Store {
 public:
  Store(const PersistConfig& cfg, NodeId node, std::size_t n,
        NodeStats* stats = nullptr);

  /// Validates and merges whatever the disk holds; truncates a detected torn
  /// WAL tail in place so the next epoch appends after the last valid byte.
  RecoveredState recover();

  /// One durable WAL record. Returns false only on I/O failure.
  bool append(const DurableCell& cell, std::uint64_t write_seq);

  [[nodiscard]] bool checkpoint_due() const noexcept {
    return cfg_.checkpoint_every != 0 &&
           appends_since_ckpt_ >= cfg_.checkpoint_every;
  }

  /// Atomically replaces the checkpoint with `cells` + `vt` + `write_seq`,
  /// then resets the WAL (its records are now covered by the checkpoint).
  bool checkpoint(std::span<const DurableCell> cells, const VectorClock& vt,
                  std::uint64_t write_seq);

  /// Deletes both files — the "disk lost in the crash" arm of tests and of
  /// bench_recovery's election-only baseline.
  void lose_disk();

  /// Models the process dying at this instant: unsynced bytes of this
  /// node's files vanish (Vfs::drop_unsynced — a torn tail under
  /// sync_every_append == false, a no-op when every append synced). Sim
  /// chaos calls this at crash events.
  void simulate_crash();

  [[nodiscard]] const std::string& wal_path() const noexcept {
    return wal_path_;
  }
  [[nodiscard]] const std::string& ckpt_path() const noexcept {
    return ckpt_path_;
  }
  [[nodiscard]] std::uint64_t appends_since_checkpoint() const noexcept {
    return appends_since_ckpt_;
  }
  [[nodiscard]] std::uint64_t checkpoints_written() const noexcept {
    return ckpts_;
  }
  [[nodiscard]] Vfs& vfs() noexcept { return *vfs_; }

  /// One-line JSON blob for the flight recorder's persist.json.
  [[nodiscard]] std::string summary_json() const;

 private:
  void bump(Counter c, std::uint64_t k = 1) noexcept {
    if (stats_ != nullptr) stats_->bump(c, k);
  }

  PersistConfig cfg_;
  NodeId node_;
  std::size_t n_;
  NodeStats* stats_;
  Vfs* vfs_;
  std::string ckpt_path_;
  std::string wal_path_;
  WalWriter wal_;
  std::uint64_t appends_since_ckpt_{0};
  std::uint64_t ckpts_{0};
  std::uint64_t replayed_records_{0};  ///< from the last recover()
};

}  // namespace causalmem::persist

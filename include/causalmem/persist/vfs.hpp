// Filesystem seam for the persist layer. Two implementations:
//
//   RealVfs — POSIX files with explicit fsync, for examples and benches.
//   MemVfs  — deterministic in-memory fake with crash semantics, for the
//             simulation scheduler and the crash-consistency torture tests:
//             appended bytes stay UNSYNCED until sync()/a syncing append,
//             crash() rolls every file back to its synced size (modelling a
//             torn tail), lose_disk() drops everything (correlated media
//             failure), and corrupt() flips one bit for adversarial tests.
//
// The seam is what makes checkpoint/crash/replay interleavings explorable
// bit-identically under sim::SimScheduler: no host filesystem state leaks
// into a schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace causalmem::persist {

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Whole-file read. Returns false when the file does not exist.
  virtual bool read_file(const std::string& path,
                         std::vector<std::byte>& out) = 0;

  /// Durable atomic replace: write a temporary sibling, fsync it, rename it
  /// over `path`. After a crash either the old or the new content is seen in
  /// full — never a mix.
  virtual bool write_file_atomic(const std::string& path,
                                 std::span<const std::byte> data) = 0;

  /// Appends to `path` (creating it). With `sync`, the bytes are durable
  /// when the call returns; without, they may be lost by a crash.
  virtual bool append(const std::string& path, std::span<const std::byte> data,
                      bool sync) = 0;

  /// Makes every previously appended byte of `path` durable.
  virtual bool sync(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (used to cut a detected torn tail).
  virtual bool truncate(const std::string& path, std::uint64_t size) = 0;

  virtual bool remove(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;

  /// Creates `dir` and missing parents. No-op when already present.
  virtual bool mkdirs(const std::string& dir) = 0;

  /// Crash-simulation hook: rolls `path` back to its last synced prefix, as
  /// a power loss would. MemVfs drops the unsynced appended bytes; the
  /// RealVfs default is a no-op (for real files the kernel page cache is
  /// the power-loss model, not something a live process can replay).
  virtual void drop_unsynced(const std::string& path) { (void)path; }
};

/// POSIX-backed implementation. Stateless; one instance can serve any number
/// of nodes/threads.
class RealVfs final : public Vfs {
 public:
  bool read_file(const std::string& path, std::vector<std::byte>& out) override;
  bool write_file_atomic(const std::string& path,
                         std::span<const std::byte> data) override;
  bool append(const std::string& path, std::span<const std::byte> data,
              bool sync) override;
  bool sync(const std::string& path) override;
  bool truncate(const std::string& path, std::uint64_t size) override;
  bool remove(const std::string& path) override;
  bool exists(const std::string& path) override;
  bool mkdirs(const std::string& dir) override;
};

/// Deterministic in-memory fake (see file header). Thread-safe; iteration
/// order over files is the path order (std::map), so dumps are stable.
class MemVfs final : public Vfs {
 public:
  bool read_file(const std::string& path, std::vector<std::byte>& out) override;
  bool write_file_atomic(const std::string& path,
                         std::span<const std::byte> data) override;
  bool append(const std::string& path, std::span<const std::byte> data,
              bool sync) override;
  bool sync(const std::string& path) override;
  bool truncate(const std::string& path, std::uint64_t size) override;
  bool remove(const std::string& path) override;
  bool exists(const std::string& path) override;
  bool mkdirs(const std::string& dir) override;
  void drop_unsynced(const std::string& path) override;

  // Crash semantics (tests / sim chaos) -----------------------------------

  /// Power loss: every file rolls back to its synced prefix — unsynced
  /// appended bytes vanish, exactly the torn-tail model the WAL reader must
  /// survive.
  void crash();

  /// Media loss: every file disappears.
  void lose_disk();

  /// Flips one bit of `path` at byte `offset`. Returns false out of range.
  bool corrupt(const std::string& path, std::uint64_t offset,
               std::uint8_t bit = 0);

  [[nodiscard]] std::uint64_t file_size(const std::string& path) const;
  [[nodiscard]] std::uint64_t synced_size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list() const;

 private:
  struct File {
    std::vector<std::byte> data;
    std::size_t synced{0};  ///< prefix guaranteed to survive crash()
  };
  mutable std::mutex mu_;
  std::map<std::string, File> files_;
};

/// Process-wide RealVfs used when PersistConfig::vfs is null.
[[nodiscard]] Vfs& default_vfs();

}  // namespace causalmem::persist

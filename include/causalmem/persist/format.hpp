// Shared on-disk vocabulary of the persist layer: magic strings, the
// durable cell record, and a non-aborting byte reader.
//
// The protocol codec (common/codec.hpp) treats malformed input as a
// contract violation and aborts — correct for frames produced by our own
// ByteWriter and guarded by the transport. Disk bytes get NO such trust:
// after a crash the tail can be torn, and media can hand back garbage.
// SafeReader therefore mirrors ByteReader but reports failure instead of
// aborting, so the WAL/checkpoint loaders can reject a bad record and fall
// back (truncate the tail, discard the checkpoint) — detection, never
// silent acceptance, never a crash on startup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "causalmem/common/codec.hpp"
#include "causalmem/common/types.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem::persist {

/// Version-bearing magic strings. A format change bumps the suffix; a
/// reader seeing an unknown magic rejects the file loudly.
inline constexpr std::string_view kWalMagic = "causalmem-wal-v1";
inline constexpr std::string_view kCkptMagic = "causalmem-ckpt-v1";

/// One durable memory cell: what a checkpoint stores per address and what a
/// WAL record carries per owner apply.
struct DurableCell {
  Addr addr{0};
  Value value{kInitialValue};
  WriteTag tag{};
  VectorClock stamp;
};

/// Bounds-checked reader for untrusted disk bytes. Every accessor returns
/// false (and poisons the reader) on under-run instead of aborting.
class SafeReader {
 public:
  explicit SafeReader(std::span<const std::byte> bytes) noexcept
      : bytes_(bytes) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  [[nodiscard]] bool get(T& out) noexcept {
    if (!ok_ || bytes_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return false;
    }
    std::memcpy(&out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a u32 count + that many u64 components. `expect_n` guards the
  /// count (a persisted clock always has the system's node count).
  [[nodiscard]] bool get_clock(VectorClock& out, std::size_t expect_n) {
    std::uint32_t n = 0;
    if (!get(n) || n != expect_n || remaining() / sizeof(std::uint64_t) < n) {
      ok_ = false;
      return false;
    }
    std::vector<std::uint64_t> comps;
    comps.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t c = 0;
      (void)get(c);
      comps.push_back(c);
    }
    out = VectorClock(std::move(comps));
    return ok_;
  }

  [[nodiscard]] bool get_cell(DurableCell& out, std::size_t expect_n) {
    return get(out.addr) && get(out.value) && get(out.tag.writer) &&
           get(out.tag.seq) && get_clock(out.stamp, expect_n);
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Writer-side cell layout (the trusted inverse of SafeReader::get_cell).
inline void put_cell(ByteWriter& w, const DurableCell& c) {
  w.put(c.addr);
  w.put(c.value);
  w.put(c.tag.writer);
  w.put(c.tag.seq);
  w.put_count(c.stamp.size());
  for (const std::uint64_t comp : c.stamp.components()) w.put(comp);
}

}  // namespace causalmem::persist

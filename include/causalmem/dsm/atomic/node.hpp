// AtomicNode: the paper's comparison baseline (Section 4.1) — "a comparable
// owner protocol for atomic memory where locations are stored at the owner
// and cached at other nodes. An atomic write requires that all cached copies
// in the system be invalidated", in the style of Li & Hudak's read-replicate
// write-invalidate shared virtual memory (with a fixed owner, matching the
// causal protocol's static partition).
//
//   read  — owned/cached: local. Miss: fetch from owner; the owner records
//           the reader in the location's copyset.
//   write — funnels to the owner; the owner invalidates every copyset member
//           (INV / INV_ACK round trips) *before* applying and replying, so
//           a new value is never observable while stale copies exist.
//
// While an invalidation round is in flight for x, the owner defers further
// requests for x (and blocks its own local accesses to x), which serializes
// all writes per location — the strong consistency the paper contrasts
// against.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "causalmem/dsm/memory.hpp"
#include "causalmem/dsm/observer.hpp"
#include "causalmem/dsm/ownership.hpp"
#include "causalmem/net/transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

struct AtomicConfig {
  // No knobs yet; present for System<> uniformity and future ablations.
};

class AtomicNode final : public SharedMemory {
 public:
  using Config = AtomicConfig;

  AtomicNode(NodeId id, std::size_t n, const Ownership& ownership,
             Transport& transport, NodeStats& stats, AtomicConfig config,
             OpObserver* observer = nullptr);

  [[nodiscard]] Value read(Addr x) override;
  void write(Addr x, Value v) override;

  /// Atomic memory pushes invalidations, so busy-waiting on a cached flag is
  /// live without discarding; discard is a no-op returning false.
  bool discard(Addr x) override;
  [[nodiscard]] bool owns(Addr x) const override;
  [[nodiscard]] NodeId node_id() const override { return id_; }
  [[nodiscard]] NodeStats& stats() override { return stats_; }

 private:
  struct OwnedCell {
    Value value{kInitialValue};
    WriteTag tag{};
    std::unordered_set<NodeId> copyset;
  };

  struct CachedCell {
    Value value{kInitialValue};
    WriteTag tag{};
  };

  /// An invalidation round in progress at the owner for one location.
  struct PendingWrite {
    Value value{0};
    WriteTag tag{};
    NodeId origin{kNoNode};      ///< requester; == id_ for a local write
    std::uint64_t reply_rid{0};  ///< request to answer when acks drain
    std::size_t remaining{0};    ///< outstanding INV_ACKs
    std::uint64_t trace_id{0};   ///< the write's correlation id (flows on)
  };

  void on_message(const Message& m);
  void serve_read(const Message& m);
  void serve_write(const Message& m);
  void handle_inv(const Message& m);
  void handle_inv_ack(const Message& m);
  void complete_pending(const Message& m);

  /// Applies a completed write and drains the deferred-request queue for x.
  /// Caller holds mu_; may temporarily release it to send messages.
  void finish_write(std::unique_lock<std::mutex>& lock, Addr x);

  /// Starts the invalidation round for a write (or applies it immediately if
  /// no copies exist). Caller holds mu_. Returns true if completed inline.
  /// `trace_id` is the write's correlation id: it rides on the INV fan-out,
  /// the acks and the eventual W_REPLY.
  bool begin_write(std::unique_lock<std::mutex>& lock, Addr x, Value v,
                   WriteTag tag, NodeId origin, std::uint64_t reply_rid,
                   std::uint64_t trace_id);

  OwnedCell& owned_cell(Addr x);
  std::future<Message> register_pending(std::uint64_t rid);

  /// Mints a correlation id for one remote (or fan-out-bearing) operation:
  /// globally unique, never 0. Caller holds mu_.
  [[nodiscard]] std::uint64_t new_trace_id() noexcept {
    return (static_cast<std::uint64_t>(id_) + 1) << 48 | ++trace_seq_;
  }

  const NodeId id_;
  const std::size_t n_;
  const Ownership& ownership_;
  Transport& transport_;
  NodeStats& stats_;
  OpObserver* const observer_;

  mutable std::mutex mu_;
  std::condition_variable write_done_cv_;
  std::uint64_t write_seq_{0};
  std::unordered_map<Addr, OwnedCell> owned_;
  std::unordered_map<Addr, CachedCell> cache_;
  std::unordered_map<Addr, PendingWrite> in_flight_;
  std::unordered_map<Addr, std::deque<Message>> deferred_;
  std::unordered_map<std::uint64_t, std::promise<Message>> pending_;
  std::uint64_t next_rid_{1};
  std::uint64_t trace_seq_{0};  ///< per-node trace-id counter (new_trace_id)
};

}  // namespace causalmem

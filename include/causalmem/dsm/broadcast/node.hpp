// BroadcastNode: the "collection of locations updated by causal broadcasts"
// model that Section 2 (Figure 3) distinguishes from causal memory. Every
// processor holds a full replica; writes are applied locally and broadcast
// with an ISIS-style causal delivery discipline (vector of delivered-counts,
// hold-back queue); reads are purely local.
//
// This memory exists to *demonstrate the paper's negative result*: even with
// causally ordered delivery, concurrent writes to the same location commit
// in different orders at different replicas, producing executions causal
// memory forbids (tests/dsm/broadcast_counterexample_test.cpp reproduces
// Figure 3 exactly).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "causalmem/dsm/memory.hpp"
#include "causalmem/dsm/observer.hpp"
#include "causalmem/dsm/ownership.hpp"
#include "causalmem/net/transport.hpp"

namespace causalmem {

struct BroadcastConfig {
  /// ISIS-style vector-clock gating of update delivery. True is the Fig. 3
  /// protocol. False applies every update the moment it arrives — a
  /// deliberately broken "ungated broadcast" memory whose causal-consistency
  /// violations the schedule explorer must find (its known-bad self-test).
  bool causal_delivery{true};
};

class BroadcastNode final : public SharedMemory {
 public:
  using Config = BroadcastConfig;

  /// `ownership` is accepted for constructor uniformity and ignored — every
  /// replica applies every write.
  BroadcastNode(NodeId id, std::size_t n, const Ownership& ownership,
                Transport& transport, NodeStats& stats, BroadcastConfig config,
                OpObserver* observer = nullptr);

  [[nodiscard]] Value read(Addr x) override;
  void write(Addr x, Value v) override;
  bool discard(Addr x) override;
  [[nodiscard]] bool owns(Addr /*x*/) const override { return false; }
  [[nodiscard]] NodeId node_id() const override { return id_; }
  [[nodiscard]] NodeStats& stats() override { return stats_; }

  /// Number of writes applied at this replica (own + delivered). The system
  /// helper uses this to wait for quiescence.
  [[nodiscard]] std::uint64_t applied_count() const;

  /// Number of writes issued by this replica.
  [[nodiscard]] std::uint64_t issued_count() const;

  /// Blocks until this replica has applied `target` writes in total.
  void wait_applied(std::uint64_t target);

 private:
  struct StoredCell {
    Value value{kInitialValue};
    WriteTag tag{};
  };

  void on_message(const Message& m);
  /// Applies every hold-back message that has become deliverable.
  void drain_holdback();
  [[nodiscard]] bool deliverable(const Message& m) const;
  void apply(const Message& m);

  /// Mints the correlation id stamped on one write's whole broadcast fan-out.
  /// Caller holds mu_.
  [[nodiscard]] std::uint64_t new_trace_id() noexcept {
    return (static_cast<std::uint64_t>(id_) + 1) << 48 | ++trace_seq_;
  }

  const NodeId id_;
  const std::size_t n_;
  const BroadcastConfig cfg_;
  Transport& transport_;
  NodeStats& stats_;
  OpObserver* const observer_;

  mutable std::mutex mu_;
  std::condition_variable applied_cv_;
  std::unordered_map<Addr, StoredCell> store_;
  /// delivered_[k] = number of P_k's writes applied at this replica.
  std::vector<std::uint64_t> delivered_;
  std::vector<Message> holdback_;
  std::uint64_t write_seq_{0};
  std::uint64_t applied_total_{0};
  std::uint64_t trace_seq_{0};  ///< per-node trace-id counter (new_trace_id)
};

}  // namespace causalmem

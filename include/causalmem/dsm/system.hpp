// DsmSystem<NodeT>: wires n nodes of one memory flavour to a transport and a
// stats registry. This is the top-level object applications construct; see
// examples/quickstart.cpp.
#pragma once

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/dsm/failover.hpp"
#include "causalmem/dsm/memory.hpp"
#include "causalmem/dsm/observer.hpp"
#include "causalmem/dsm/ownership.hpp"
#include "causalmem/history/online_checker.hpp"
#include "causalmem/net/fault_injection.hpp"
#include "causalmem/net/inmem_transport.hpp"
#include "causalmem/net/reliable_channel.hpp"
#include "causalmem/net/tcp_transport.hpp"
#include "causalmem/obs/flight_recorder.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/persist/store.hpp"
#include "causalmem/sim/transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

/// One directed-channel latency override (in-memory transport only).
struct ChannelLatencyOverride {
  NodeId from{0};
  NodeId to{0};
  LatencyModel latency{};
};

/// Protocol event tracing (obs::Tracer). Off by default: the disabled path
/// at every instrumentation site is one relaxed load of a null pointer, so
/// message counts and protocol behaviour are bit-identical with tracing off.
struct TraceOptions {
  bool enabled{false};
  /// Ring-buffer capacity per node (rounded up to a power of two);
  /// wraparound keeps the newest events.
  std::size_t events_per_node{1u << 16};
};

/// Anomaly-triggered flight recorder (obs/flight_recorder.hpp): on the first
/// checker violation, unreachable operation, failover election, counter
/// trigger or explicit dump(), every node's trace ring, counters, histograms,
/// vector clocks and recent-op history freeze into one artifact directory.
struct FlightOptions {
  bool enabled{false};
  /// Forces trace.enabled on (an artifact without a trace is near-useless);
  /// set this false to keep tracing off and record counters/state only.
  bool force_trace{true};
  obs::FlightRecorderOptions recorder{};
};

/// Crash tolerance (see dsm/failover.hpp and PROTOCOL.md §Failover).
struct FailoverOptions {
  /// Wrap the ownership map in a FailoverDirectory and attach it to every
  /// node: request deadlines file suspicions, suspected owners' locations
  /// migrate to a ring successor, and DsmSystem::restart_node becomes
  /// available. Requires a node type with attach_failover (CausalNode).
  bool enabled{false};
  /// Also run the active HeartbeatMonitor (probes below the reliable layer)
  /// so idle systems detect crashes too. Off by default: probes are
  /// recovery traffic, but a zero-probe run keeps even the recovery
  /// counters silent for message-accounting experiments.
  bool heartbeat{false};
  HeartbeatConfig heartbeat_config{};
};

/// Online streaming causal checking (docs/CHECKING.md): chain an
/// OnlineChecker in front of the user observer so every operation flows
/// through a StreamingCausalChecker while the system runs. The first
/// violation is latched and — when the flight recorder is armed — filed
/// from the shutdown path (deferred: observer callbacks run under node
/// locks, a dump probes them). Inspect via DsmSystem::online_checker().
struct OnlineCheckOptions {
  bool enabled{false};
  StreamingOptions checker{};
};

struct SystemOptions {
  /// Injected per-message latency (in-memory transport only).
  LatencyModel latency{};
  /// Per-channel latency overrides, applied before the transport starts
  /// (set_channel_latency's contract). In-memory transport only.
  std::vector<ChannelLatencyOverride> channel_latencies;
  /// Run over real loopback TCP sockets instead of the in-memory transport.
  bool use_tcp{false};
  /// In-memory transport: round-trip every message through the byte codec.
  bool exercise_codec{false};
  /// Fault injection: when faults.any(), the base transport is wrapped in a
  /// FaultyTransport (seeded drop/dup/delay). Without `reliable` the
  /// protocols lose the paper's reliable-FIFO assumption and a blocked
  /// requester can wait forever — enable faults only together with
  /// `reliable` unless the test wants exactly that failure.
  FaultModel faults{};
  /// Wrap the (possibly faulty) transport in a ReliableChannel, restoring
  /// reliable-FIFO delivery via sequence numbers, cumulative acks and
  /// timeout-driven retransmission.
  bool reliable{false};
  ReliableConfig reliable_config{};
  /// Install the FaultyTransport layer even when faults.none(): gives tests
  /// crash_node/restart_node/set_partition handles without any random
  /// drop/dup/delay on the fault-free path.
  bool fault_layer{false};
  /// Owner failover and node restart; see FailoverOptions.
  FailoverOptions failover{};
  /// Durable per-node checkpoints + write-ahead log (persist/*; see
  /// docs/PERSISTENCE.md). With persist.enabled the system owns one
  /// persist::Store per node (files dir/node<i>.ckpt and dir/node<i>.wal),
  /// attaches it before the transport starts, and restart_node() restores
  /// the node's owned cells from disk instead of keeping them in memory.
  /// Requires a node type with attach_persist (CausalNode); pair it with
  /// failover.enabled for the restart path.
  persist::PersistConfig persist{};
  /// Protocol event tracing; see TraceOptions.
  TraceOptions trace{};
  /// Anomaly-triggered flight recorder; see FlightOptions.
  FlightOptions flight{};
  /// Online streaming causal checking; see OnlineCheckOptions.
  OnlineCheckOptions online_check{};
  /// Deterministic simulation mode: run on a SimTransport driven by this
  /// scheduler (see sim/scheduler.hpp and docs/SIMULATION.md). Excludes
  /// use_tcp, latency models, random faults, fault_layer and reliable —
  /// the simulated substrate is reliable FIFO, and faults are injected as
  /// schedule events through sim_transport() instead. failover (including
  /// heartbeat, which becomes a scheduler timer) is fully supported.
  sim::SimScheduler* sim{nullptr};
};

template <typename NodeT>
class DsmSystem {
 public:
  using Config = typename NodeT::Config;

  /// Builds a system of `n` nodes. `ownership` defaults to striping pages
  /// round-robin; pass an ExplicitOwnership to pin locations. `observer`
  /// (optional) receives every read/write for history checking.
  explicit DsmSystem(std::size_t n, Config config = {},
                     SystemOptions options = {},
                     std::unique_ptr<Ownership> ownership = nullptr,
                     OpObserver* observer = nullptr)
      : stats_(n),
        ownership_(ownership != nullptr
                       ? std::move(ownership)
                       : std::make_unique<StripedOwnership>(n, page_size_of(config))) {
    CM_EXPECTS(n > 0);
    if (options.failover.enabled) {
      // The directory wraps the static map BEFORE nodes capture their
      // Ownership reference, so every owner_of() resolution follows
      // failover reroutes automatically.
      auto dir =
          std::make_unique<FailoverDirectory>(std::move(ownership_), n, &stats_);
      failover_dir_ = dir.get();
      ownership_ = std::move(dir);
    }
    if (options.flight.enabled && options.flight.force_trace) {
      options.trace.enabled = true;
    }
    if (options.trace.enabled) {
      trace_ = std::make_unique<obs::TraceHub>(n, options.trace.events_per_node);
      for (NodeId i = 0; i < n; ++i) {
        stats_.node(i).set_tracer(&trace_->node(i));
      }
    }
    if (options.flight.enabled) {
      flight_ = std::make_unique<obs::FlightRecorder>(options.flight.recorder);
      flight_->attach(&stats_, trace_.get());
      for (NodeId i = 0; i < n; ++i) {
        stats_.node(i).set_flight_recorder(flight_.get());
      }
      // Chain the recent-op history ring in front of the user's observer.
      recent_ops_ =
          std::make_unique<obs::RecentOpsObserver>(*flight_, observer);
      observer = recent_ops_.get();
    }
    if (options.online_check.enabled) {
      online_ = std::make_unique<OnlineChecker>(
          n, options.online_check.checker, observer);
      if (flight_ != nullptr) online_->set_flight_recorder(flight_.get());
      observer = online_.get();
    }
    std::unique_ptr<Transport> transport;
    if (options.sim != nullptr) {
      CM_EXPECTS_MSG(!options.use_tcp, "sim mode excludes TCP");
      CM_EXPECTS_MSG(options.latency.is_zero() &&
                         options.channel_latencies.empty(),
                     "sim mode ignores latency models (order is the "
                     "scheduler's to choose)");
      CM_EXPECTS_MSG(!options.faults.any() && !options.fault_layer,
                     "sim mode: inject crash/partition via sim_transport() "
                     "schedule events, not FaultyTransport");
      CM_EXPECTS_MSG(!options.reliable,
                     "sim mode: the simulated substrate is already reliable "
                     "FIFO; the retransmitter thread would be nondeterministic");
      auto simt = std::make_unique<sim::SimTransport>(n, options.sim,
                                                      options.exercise_codec);
      sim_ = simt.get();
      transport = std::move(simt);
    } else if (options.use_tcp) {
      transport = std::make_unique<TcpTransport>(n);
    } else {
      auto inmem = std::make_unique<InMemTransport>(n, options.latency,
                                                    options.exercise_codec);
      inmem_ = inmem.get();
      transport = std::move(inmem);
    }
    CM_EXPECTS_MSG(options.channel_latencies.empty() || inmem_ != nullptr,
                   "channel_latencies require the in-memory transport");
    for (const ChannelLatencyOverride& o : options.channel_latencies) {
      inmem_->set_channel_latency(o.from, o.to, o.latency);
    }
    if (options.faults.any() || options.fault_layer) {
      auto faulty =
          std::make_unique<FaultyTransport>(std::move(transport), options.faults);
      faulty_ = faulty.get();
      transport = std::move(faulty);
    }
    // Heartbeat probes enter here — below the reliable layer, so a probe to
    // a dead peer is dropped, not retransmitted forever.
    below_reliable_ = transport.get();
    if (options.reliable) {
      auto reliable = std::make_unique<ReliableChannel>(
          std::move(transport), options.reliable_config);
      reliable_ = reliable.get();
      transport = std::move(reliable);
    }
    transport_ = std::move(transport);
    transport_->attach_stats(&stats_);
    nodes_.reserve(n);
    for (NodeId i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<NodeT>(i, n, *ownership_, *transport_,
                                               stats_.node(i), config,
                                               observer));
    }
    if (failover_dir_ != nullptr) {
      if constexpr (requires(NodeT& nd) {
                      nd.attach_failover(
                          static_cast<FailoverDirectory*>(nullptr));
                    }) {
        for (auto& nd : nodes_) nd->attach_failover(failover_dir_);
      } else {
        CM_EXPECTS_MSG(false,
                       "failover requires a node type with attach_failover");
      }
    }
    if (options.persist.enabled) {
      if constexpr (requires(NodeT& nd, persist::Store* s) {
                      nd.attach_persist(s);
                    }) {
        stores_.reserve(n);
        for (NodeId i = 0; i < n; ++i) {
          stores_.push_back(std::make_unique<persist::Store>(
              options.persist, i, n, &stats_.node(i)));
          nodes_[i]->attach_persist(stores_[i].get());
        }
      } else {
        CM_EXPECTS_MSG(false,
                       "persist requires a node type with attach_persist");
      }
    }
    if (flight_ != nullptr && !stores_.empty()) {
      // Persistence state rides along in every flight-recorder artifact
      // (persist.json): one summary line per store.
      flight_->set_extra_artifact("persist.json", [this] {
        std::string out = "[\n";
        for (std::size_t i = 0; i < stores_.size(); ++i) {
          out += "  " + stores_[i]->summary_json();
          out += i + 1 < stores_.size() ? ",\n" : "\n";
        }
        out += "]\n";
        return out;
      });
    }
    if (flight_ != nullptr) {
      if constexpr (requires(const NodeT& nd) { nd.vector_time(); }) {
        flight_->set_vclock_probe([this] {
          std::vector<std::vector<std::uint64_t>> out;
          out.reserve(nodes_.size());
          for (const auto& nd : nodes_) {
            out.push_back(nd->vector_time().components());
          }
          return out;
        });
      }
    }
    transport_->start();
    if (failover_dir_ != nullptr && options.failover.heartbeat) {
      heartbeat_ = std::make_unique<HeartbeatMonitor>(
          below_reliable_, failover_dir_, options.failover.heartbeat_config,
          &stats_);
      if (options.sim != nullptr) {
        // No prober thread: each probe-and-scan round is a scheduler timer,
        // so heartbeat traffic is deterministic and schedule-controlled.
        const auto interval_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                options.failover.heartbeat_config.interval)
                .count());
        options.sim->add_timer("heartbeat",
                               options.sim->now_ns() + interval_ns, interval_ns,
                               [hb = heartbeat_.get()] { hb->tick(); });
      } else {
        heartbeat_->start();
      }
    }
  }

  ~DsmSystem() { shutdown(); }

  DsmSystem(const DsmSystem&) = delete;
  DsmSystem& operator=(const DsmSystem&) = delete;

  /// Stops message delivery. Nodes must be quiescent (no blocked operations)
  /// when this is called; application threads join first.
  void shutdown() {
    if (heartbeat_ != nullptr) heartbeat_->stop();
    // End the online-check stream first: a latched violation files with the
    // flight recorder while the transport (trace rings, counters, clocks)
    // is still alive to snapshot.
    if (online_ != nullptr) online_->finish();
    transport_->shutdown();
  }

  /// Brings a transport-crashed node back: clears the crash flag and both
  /// channel halves of every link touching it, re-admits it in the failover
  /// directory (ownership migrated away does NOT revert) and runs the
  /// node-level rejoin (state reset + clock resync from live peers).
  /// Returns the rejoin result: true when every live peer answered the
  /// resync. Requires fault_layer (or faults) and failover.enabled.
  bool restart_node(NodeId id) {
    CM_EXPECTS_MSG(faulty_ != nullptr || sim_ != nullptr,
                   "restart_node requires the fault-injection layer (or sim "
                   "mode, where SimTransport plays that role)");
    CM_EXPECTS_MSG(failover_dir_ != nullptr,
                   "restart_node requires failover.enabled");
    CM_EXPECTS(id < nodes_.size());
    // Channel state resets while the node's traffic is still severed, so no
    // in-flight message can be sequenced against half-cleared channels.
    if (reliable_ != nullptr) reliable_->reset_peer(id);
    if (sim_ != nullptr) {
      sim_->restart_node(id);
    } else {
      faulty_->restart_node(id);
    }
    failover_dir_->mark_restarted(id);
    if constexpr (requires(NodeT& nd) { nd.rejoin(); }) {
      return nodes_[id]->rejoin();
    } else {
      return true;
    }
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeT& node(NodeId i) {
    CM_EXPECTS(i < nodes_.size());
    return *nodes_[i];
  }
  [[nodiscard]] SharedMemory& memory(NodeId i) { return node(i); }
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] const Ownership& ownership() const noexcept { return *ownership_; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

  /// The in-memory transport at the bottom of the stack, or nullptr when
  /// running over TCP. Tests use this to shape per-channel latencies.
  [[nodiscard]] InMemTransport* inmem_transport() noexcept { return inmem_; }

  /// The fault-injection layer, or nullptr when options.faults is inactive.
  /// Tests use this to crash nodes / partition channels mid-run.
  [[nodiscard]] FaultyTransport* faulty_transport() noexcept { return faulty_; }

  /// The reliable-delivery adapter, or nullptr when options.reliable is off.
  [[nodiscard]] ReliableChannel* reliable_channel() noexcept { return reliable_; }

  /// The simulation transport, or nullptr outside sim mode. Scenario code
  /// uses it to crash/partition nodes as deterministic schedule events.
  [[nodiscard]] sim::SimTransport* sim_transport() noexcept { return sim_; }

  /// The failover directory, or nullptr when options.failover is off. Tests
  /// use it to inspect reroutes and inject suspicions directly.
  [[nodiscard]] FailoverDirectory* failover_directory() noexcept {
    return failover_dir_;
  }

  /// Node `i`'s durable store, or nullptr when options.persist is off.
  /// Tests/benches use it to force checkpoints, inspect paths, or model a
  /// media loss (lose_disk) before restart_node.
  [[nodiscard]] persist::Store* store(NodeId i) noexcept {
    return i < stores_.size() ? stores_[i].get() : nullptr;
  }

  /// The per-node event tracers, or nullptr when options.trace is off.
  /// Drain (trace_hub()->events()) only after application threads join and
  /// the transport is shut down.
  [[nodiscard]] obs::TraceHub* trace_hub() noexcept { return trace_.get(); }

  /// The flight recorder, or nullptr when options.flight is off. Checkers
  /// call on_violation(); tests/benches call dump() / poll() / fired().
  [[nodiscard]] obs::FlightRecorder* flight_recorder() noexcept {
    return flight_.get();
  }

  /// The online streaming checker, or nullptr when options.online_check is
  /// off. Tests call finish() after application threads join (shutdown()
  /// does it too), then ok() / violation() / stats().
  [[nodiscard]] OnlineChecker* online_checker() noexcept {
    return online_.get();
  }

 private:
  template <typename C>
  static Addr page_size_of(const C& config) {
    if constexpr (requires { config.page_size; }) {
      return config.page_size;
    } else {
      return 1;
    }
  }

  StatsRegistry stats_;
  // Declared before transport_/nodes_ (and thus destroyed after them): the
  // delivery threads and nodes may record into the tracers (and trigger the
  // flight recorder) until shutdown.
  std::unique_ptr<obs::TraceHub> trace_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::RecentOpsObserver> recent_ops_;
  std::unique_ptr<OnlineChecker> online_;
  std::unique_ptr<Ownership> ownership_;
  std::unique_ptr<Transport> transport_;
  // Non-owning views into the transport stack (bottom to top).
  InMemTransport* inmem_{nullptr};
  sim::SimTransport* sim_{nullptr};
  FaultyTransport* faulty_{nullptr};
  ReliableChannel* reliable_{nullptr};
  Transport* below_reliable_{nullptr};
  FailoverDirectory* failover_dir_{nullptr};  // aliases ownership_ when set
  // Declared before nodes_ (destroyed after them): nodes append to their
  // store from operations and message service until the transport stops.
  std::vector<std::unique_ptr<persist::Store>> stores_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
  // Last member: destroyed first, so the prober never outlives the
  // transport stack it sends through.
  std::unique_ptr<HeartbeatMonitor> heartbeat_;
};

/// Waits until every replica of a DsmSystem<BroadcastNode> has applied every
/// write issued so far (quiescence). Call only when no more writes are being
/// issued concurrently.
template <typename SystemT>
void wait_broadcast_quiescent(SystemT& system) {
  std::uint64_t issued = 0;
  for (NodeId i = 0; i < system.node_count(); ++i) {
    issued += system.node(i).issued_count();
  }
  for (NodeId i = 0; i < system.node_count(); ++i) {
    system.node(i).wait_applied(issued);
  }
}

}  // namespace causalmem

// Ownership maps: the shared memory namespace is statically partitioned
// among processors (Section 3.1, "the locations assigned to a processor are
// owned by that processor"). The maps here are immutable once the system
// starts; crash tolerance layers FailoverDirectory (dsm/failover.hpp) on
// top, which reroutes a suspected owner's locations without mutating the
// base map.
#pragma once

#include <unordered_map>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"

namespace causalmem {

class Ownership {
 public:
  virtual ~Ownership() = default;
  /// The processor that owns location `x` (or the page containing it).
  [[nodiscard]] virtual NodeId owner(Addr x) const = 0;
};

/// owner(x) = (x / block) % n — contiguous blocks striped across nodes.
/// block = 1 gives round-robin; larger blocks colocate neighbouring
/// addresses (the natural layout for per-process array rows).
class StripedOwnership final : public Ownership {
 public:
  StripedOwnership(std::size_t n, Addr block = 1) : n_(n), block_(block) {
    CM_EXPECTS(n > 0);
    CM_EXPECTS(block > 0);
  }

  [[nodiscard]] NodeId owner(Addr x) const override {
    return static_cast<NodeId>((x / block_) % n_);
  }

 private:
  std::size_t n_;
  Addr block_;
};

/// Explicit per-location assignments with a striped fallback for unmapped
/// locations. Used by tests and examples that pin ownership (e.g. Figure 5
/// needs owner(x)=P1, owner(y)=P2).
class ExplicitOwnership final : public Ownership {
 public:
  explicit ExplicitOwnership(std::size_t n) : fallback_(n) {}

  void assign(Addr x, NodeId owner) {
    map_[x] = owner;
  }

  [[nodiscard]] NodeId owner(Addr x) const override {
    const auto it = map_.find(x);
    return it != map_.end() ? it->second : fallback_.owner(x);
  }

 private:
  std::unordered_map<Addr, NodeId> map_;
  StripedOwnership fallback_;
};

}  // namespace causalmem

// Operation observer: memory implementations report every completed read and
// write (with the unique-write tag involved) so the history module can record
// executions and the checkers can validate them. Callbacks are invoked in
// each node's program order, under the node's operation lock.
#pragma once

#include <cstdint>

#include "causalmem/common/types.hpp"
#include "causalmem/obs/clock.hpp"

namespace causalmem {

/// Real-time bracket around an operation's take-effect point. end_ns == 0
/// means unknown (no real-time claim is made). Implementations guarantee
/// only that the interval *contains* a valid linearization point for the
/// operation — which is all a linearizability checker needs.
struct OpTiming {
  std::uint64_t start_ns{0};
  std::uint64_t end_ns{0};

  /// Reads the shared observability clock (obs::now_ns): one time source for
  /// OpTiming, the tracer and the latency histograms, replaceable with a
  /// FakeClock in deterministic tests.
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return obs::now_ns();
  }

  /// Starts a bracket now.
  [[nodiscard]] static OpTiming begin() noexcept { return {now_ns(), 0}; }

  /// Closes the bracket now and returns it.
  [[nodiscard]] OpTiming close() const noexcept { return {start_ns, now_ns()}; }
};

class OpObserver {
 public:
  virtual ~OpObserver() = default;

  /// A read by `node` of location `x` returned `v`, which was produced by
  /// the write identified by `tag` (tag.is_initial() for the distinguished
  /// initial value).
  virtual void on_read(NodeId node, Addr x, Value v, const WriteTag& tag,
                       const OpTiming& timing) = 0;

  /// A write by `node` of `v` to location `x`, with unique identity `tag`.
  /// `applied` is false when the owner's conflict policy rejected the write
  /// (owner-wins resolution) — the write happened but installed no value.
  virtual void on_write(NodeId node, Addr x, Value v, const WriteTag& tag,
                        bool applied, const OpTiming& timing) = 0;
};

}  // namespace causalmem

// Configuration knobs for the causal DSM node. The defaults pin the paper's
// Figure 4 algorithm exactly; every enhancement the paper sketches
// (Section 3.2 and footnote 2) is an orthogonal opt-in.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "causalmem/common/types.hpp"

namespace causalmem {

/// What to invalidate when a new value (writestamp VT') enters local memory.
enum class InvalidationStrategy : std::uint8_t {
  /// Figure 4: invalidate every cached value whose writestamp is strictly
  /// dominated by VT' ("older via the causality relation").
  kInvalidateOlder,
  /// Maximally conservative ablation baseline: drop the whole cache on any
  /// introduction. Trivially correct; measures what Figure 4's bookkeeping
  /// buys (experiment E9).
  kFlushAll,
};

/// How the owner resolves an incoming remote write whose writestamp is
/// concurrent with the currently stored value's writestamp.
enum class ConflictPolicy : std::uint8_t {
  /// Figure 4 literal: the arriving write always overwrites.
  kLastArrivalWins,
  /// Section 4.2: "writes by the owner are always favored when resolving
  /// concurrent writes" — a remote write concurrent with a value the owner
  /// itself wrote is rejected. Enables the synchronization-free dictionary.
  kOwnerWins,
};

/// Whether remote writes block for the owner's certification (Figure 4) or
/// return immediately (Section 3.2's "reducing the blocking of processors").
enum class WriteMode : std::uint8_t {
  kBlocking,
  /// The write is installed locally with the writer's stamp and certified in
  /// the background; flush() fences. Requires kLastArrivalWins (a rejected
  /// async write would have to be un-installed after the fact).
  kAsync,
};

struct CausalConfig {
  InvalidationStrategy invalidation{InvalidationStrategy::kInvalidateOlder};
  ConflictPolicy conflict{ConflictPolicy::kLastArrivalWins};
  WriteMode write_mode{WriteMode::kBlocking};

  /// Section 3.2: "a simple strategy to maintain correctness is to force a
  /// request to the owner on every read. This strategy results in a memory
  /// that satisfies atomic correctness, not just causal correctness, but we
  /// lose all the benefits of caching." When true, every non-owned read
  /// goes to the owner (nothing is cached); requires blocking writes.
  bool read_through{false};

  /// Locations per sharing unit (Section 3.2, "scaling the unit of sharing
  /// to a page"). Ownership must be constant within a page. 1 = the paper's
  /// per-location protocol.
  Addr page_size{1};

  /// Cached pages kept before LRU discard (the paper's `discard` as a
  /// replacement policy). Unlimited by default.
  std::size_t cache_capacity_pages{std::numeric_limits<std::size_t>::max()};

  /// Per-round deadline for owner round trips (reads and blocking writes).
  /// 0 (default) preserves the paper's model: requests block until the reply
  /// arrives. With a non-zero timeout an owner request that expires is
  /// retried up to `request_retries` more times (re-resolving the owner each
  /// round, so a failover redirects the retry) and then surfaces a typed
  /// Unreachable result via try_read/try_write. Timing flows through the
  /// obs::now_ns() clock seam, so FakeClock tests are deterministic.
  std::chrono::nanoseconds request_timeout{0};

  /// Extra rounds after the first before an owner request gives up.
  std::uint32_t request_retries{2};
};

}  // namespace causalmem

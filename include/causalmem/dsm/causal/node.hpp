// CausalNode: one processor of the paper's causal DSM, implementing the
// simple owner protocol of Figure 4:
//
//   r_i(x)v  — owned/cached reads are local; a miss asks the owner, merges
//              the reply stamp into VT_i, caches the value and invalidates
//              every cached value with a strictly older writestamp.
//   w_i(x)v  — increments VT_i; owned writes are local; remote writes are
//              certified by the owner (which merges the stamp, stores,
//              invalidates its older cached values and replies).
//   READ     — owner returns (value, writestamp); no clock activity.
//   WRITE    — owner merges, stores with the merged clock, invalidates,
//              replies with its merged clock.
//   discard  — drops a cached copy (replacement and liveness).
//
// Incoming requests are serviced on the transport's delivery thread while
// application reads/writes run on the node's application thread; a single
// operation mutex makes every protocol step atomic, which is the paper's
// "each operation must be executed atomically and owners must fairly
// alternate between issuing reads and writes and responding to READ and
// WRITE messages".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "causalmem/common/flat_hash_map.hpp"
#include "causalmem/dsm/causal/config.hpp"
#include "causalmem/dsm/failover.hpp"
#include "causalmem/dsm/memory.hpp"
#include "causalmem/dsm/observer.hpp"
#include "causalmem/dsm/ownership.hpp"
#include "causalmem/net/transport.hpp"
#include "causalmem/stats/counters.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem {

namespace persist {
class Store;
}

class CausalNode final : public SharedMemory {
 public:
  using Config = CausalConfig;


  /// `ownership` and `transport` must outlive the node. The node registers
  /// its message handler with the transport; call transport.start() after
  /// all nodes are constructed.
  CausalNode(NodeId id, std::size_t n, const Ownership& ownership,
             Transport& transport, NodeStats& stats, CausalConfig config,
             OpObserver* observer = nullptr);

  // SharedMemory API -------------------------------------------------------
  [[nodiscard]] Value read(Addr x) override;
  void write(Addr x, Value v) override;
  bool discard(Addr x) override;

  // Crash tolerance --------------------------------------------------------

  /// Deadline-bounded read: like read(), but with CausalConfig::
  /// request_timeout set, an owner round trip that expires is retried
  /// (request_retries more rounds, re-resolving the owner each round so a
  /// failover redirects it) and then surfaces OpStatus::kUnreachable
  /// instead of blocking forever. With request_timeout == 0 this is read().
  [[nodiscard]] ReadResult try_read(Addr x);

  /// Deadline-bounded write (blocking mode only; async writes certify in
  /// the background and are never Unreachable at the call site). On
  /// exhaustion the issue-time local install and the per-page own-write
  /// requirement are unwound so later reads are not owed a write that may
  /// never have landed.
  OpStatus try_write(Addr x, Value v);

  /// Enables directory-driven crash tolerance. `dir` must be the same
  /// object the node's Ownership reference resolves through (DsmSystem
  /// guarantees this) and must outlive the node. Requires page_size == 1
  /// (recovery elects per-location freshest copies). Call before the
  /// transport starts.
  void attach_failover(FailoverDirectory* dir);

  /// Attaches durable storage (checkpoint + WAL; see docs/PERSISTENCE.md).
  /// Every owner apply point then appends one WAL record before the write's
  /// reply leaves, and rejoin() restores the owned cells from disk instead
  /// of keeping them in memory across the crash. `store` must outlive the
  /// node. Call before the transport starts.
  void attach_persist(persist::Store* store);

  /// Takes an asynchronous uncoordinated checkpoint of the owned cells +
  /// vector clock right now (the periodic trigger is
  /// PersistConfig::checkpoint_every WAL appends). Returns false without a
  /// store or on I/O failure.
  bool checkpoint_now();

  /// Restart protocol for a node whose transport just un-crashed: drops all
  /// volatile protocol state (cache, recovery log, pending bookkeeping —
  /// write_seq_ survives as this node's stable write counter, keeping write
  /// tags unique across incarnations), rebuilds the vector clock, and
  /// resyncs it from every live peer. Returns true when every live peer
  /// answered within the request deadline. Requires attach_failover.
  ///
  /// With a persist::Store attached the crash is honest: the owned cells do
  /// NOT survive in memory — they are reloaded from checkpoint + WAL
  /// (complete for every acknowledged write under sync_every_append), and
  /// recovery elections for restored pages become writestamp-bounded
  /// catch-up rounds that fetch only what some peer observed fresher. When
  /// the disk is gone too, every page this node serves must first win a
  /// peer election, exactly as if the page had migrated.
  bool rejoin();
  [[nodiscard]] bool owns(Addr x) const override;
  void flush() override;
  [[nodiscard]] NodeId node_id() const override { return id_; }
  [[nodiscard]] NodeStats& stats() override { return stats_; }

  // Enhancements -----------------------------------------------------------

  /// Marks every page fully contained in [lo, hi) as read-only: cached
  /// copies of those pages are exempt from causal invalidation (the paper's
  /// footnote 2 — "avoid invalidations of A and b"). Contract: the marked
  /// locations were written before any cross-node interaction and are never
  /// written again; writes to them afterwards abort.
  void mark_read_only(Addr lo, Addr hi) override;

  // Introspection (tests) ---------------------------------------------------

  /// Current vector time of this processor.
  [[nodiscard]] VectorClock vector_time() const;

  /// True when a cached (non-owned) copy of x is present and valid.
  [[nodiscard]] bool is_cached(Addr x) const;

  /// Number of valid cached pages.
  [[nodiscard]] std::size_t cached_page_count() const;

 private:
  /// One memory cell: a value-writestamp pair plus the unique-write tag the
  /// paper assumes ("we assume all writes are unique").
  struct Cell {
    Value value{kInitialValue};
    VectorClock stamp;
    WriteTag tag{};
  };

  /// A cached sharing unit: all cells of the page plus the page writestamp
  /// used for invalidation comparisons.
  struct CachedPage {
    std::vector<Cell> cells;
    VectorClock stamp;
    std::list<std::uint64_t>::iterator lru_it;
  };

  struct Pending {
    bool async{false};
    std::uint64_t start_ns{0};  ///< invocation time of the blocked operation
    std::uint64_t trace_id{0};  ///< correlation id of the owning operation
    /// served_merges_ at send time: lets a READ reply detect owner-side
    /// installs that this node absorbed while the request was in flight
    /// (see the stale-install guard in complete_pending).
    VectorClock serve_snapshot;
    std::promise<Message> reply;
  };

  /// invalidate_cache sentinel: exempt no page from the sweep.
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t page_of(Addr x) const noexcept {
    return x / cfg_.page_size;
  }
  [[nodiscard]] Addr page_base(std::uint64_t page) const noexcept {
    return page * cfg_.page_size;
  }

  void on_message(const Message& m);
  void serve_read(const Message& m);
  void serve_write(const Message& m);
  void complete_pending(const Message& m);
  void serve_sync(const Message& m);
  void serve_recover(const Message& m);
  /// Answers a writestamp-bounded catch-up request: a copy only when this
  /// node observed one that beats the requester's durable bound
  /// (fresher_stamp), else a payload-free "you're current".
  void serve_catchup(const Message& m);
  void on_recover_reply(const Message& m);

  /// True when this node may serve/read the page from its own owned_ cells:
  /// always without failover; with failover, when it is the page's static
  /// owner or has finished the page's recovery election. Caller holds mu_.
  [[nodiscard]] bool page_ready_locally(std::uint64_t pg) const;

  /// Queues `m` (a READ or WRITE this node now owns but has not recovered)
  /// behind the page's writestamp-max election, starting the election on
  /// first demand. Consumes `lock` (the election may complete inline and
  /// dispatch deferred messages outside the mutex).
  void begin_or_join_recovery(std::uint64_t pg, const Message& m,
                              std::unique_lock<std::mutex>& lock);

  /// Installs the election winner as the owned cell, marks the page
  /// recovered and replays the deferred requests. Consumes `lock`.
  void finish_recovery(std::uint64_t pg, std::unique_lock<std::mutex>& lock);

  /// Folds an observed remote cell into the monotone freshest-copy shadow
  /// map that recovery elections draw from. No-op without failover (the
  /// fault-free path stays allocation-free). Caller holds mu_.
  void log_observe(Addr x, const Cell& c);

  /// Waits for `fut` with the configured per-round deadline (virtual time:
  /// obs::now_ns()). Returns true when the reply arrived; on expiry the
  /// pending entry is abandoned (late replies are dropped) and false is
  /// returned. With request_timeout == 0, blocks indefinitely.
  bool await_reply(std::future<Message>& fut, std::uint64_t rid,
                   std::uint64_t deadline_ns);

  /// Blocks until outstanding_async_ drains (the async-mode fence). Takes
  /// the held operation lock; under the simulation parker the lock is
  /// released around the cooperative wait.
  void wait_flushed(std::unique_lock<std::mutex>& lock);

  /// Deadline bookkeeping for one expired round against `target`.
  void on_round_timeout(NodeId target, Addr x, std::uint64_t epoch_at_send);

  /// Fires the flight-recorder unreachable trigger (no-op when none is
  /// attached). Called after an operation surfaces OpStatus::kUnreachable.
  void notify_unreachable(MsgType op, NodeId target, Addr x);

  /// Returns the owned cell for x, creating the initial-value cell on first
  /// touch (the paper: locations are initialized by distinguished writes
  /// that precede all operations). Caller holds mu_.
  Cell& owned_cell(Addr x);

  /// Installs a freshly fetched page into the cache. Caller holds mu_.
  void install_page(std::uint64_t page, CachedPage&& cp);

  /// Records this node's own certified write into its cache (Fig. 4's
  /// M_i[x] := (v, VT_i) on the writer side). Caller holds mu_.
  void cache_own_write(Addr x, Value v, const WriteTag& tag,
                       const VectorClock& stamp);

  /// Figure 4's invalidation sweep: drops every cached page whose stamp is
  /// strictly older than `threshold` (or everything, under kFlushAll),
  /// except `keep_page` and read-only pages. Caller holds mu_.
  void invalidate_cache(const VectorClock& threshold, std::uint64_t keep_page,
                        std::uint64_t trace_id = 0);

  void erase_page(FlatHashMap<std::uint64_t, CachedPage>::iterator it);
  void touch_lru(CachedPage& cp);
  void evict_over_capacity();

  /// WAL-appends one just-applied owned cell (the durability point of the
  /// apply: the record is on disk before the reply leaves) and takes the
  /// periodic checkpoint when due. No-op without a store. Caller holds mu_.
  void persist_apply(Addr x, const Cell& c);

  /// Checkpoints all owned cells + vt_ and resets the WAL. Caller holds mu_.
  bool checkpoint_locked();

  [[nodiscard]] NodeId owner_of(Addr x) const {
    return ownership_.owner(page_base(page_of(x)));
  }

  std::future<Message> register_pending(std::uint64_t rid, bool async,
                                        std::uint64_t start_ns = 0,
                                        std::uint64_t trace_id = 0);

  /// Mints the correlation id stamped on every message and trace event of
  /// one remote operation: globally unique across nodes (the node id lives
  /// in the top bits), never 0. Caller holds mu_.
  [[nodiscard]] std::uint64_t new_trace_id() noexcept {
    return (static_cast<std::uint64_t>(id_) + 1) << 48 | ++trace_seq_;
  }

  const NodeId id_;
  const std::size_t n_;
  const Ownership& ownership_;
  Transport& transport_;
  NodeStats& stats_;
  const CausalConfig cfg_;
  OpObserver* const observer_;

  mutable std::mutex mu_;
  VectorClock vt_;
  /// Join of the issue stamps of every remote value that became locally
  /// readable here (WRITE services installing into owned_, READ replies
  /// installing into cache_, recovery elections). Unlike vt_ it excludes
  /// this node's own increments and reply-borne merges that installed
  /// nothing, so it is exactly the knowledge a concurrent reader could
  /// pick up from this node's memory — the reference point for the
  /// mid-flight stale-install guard in complete_pending.
  VectorClock served_merges_;
  std::uint64_t write_seq_{0};
  // The owned/cache/own-write/pending tables sit on every operation and
  // every message service; they use the flat open-addressing map (one array
  // probe instead of a heap node chase per lookup). NB: inserts may rehash —
  // no reference into these maps is held across an insert into the same map.
  FlatHashMap<Addr, Cell> owned_;
  FlatHashMap<std::uint64_t, CachedPage> cache_;
  std::list<std::uint64_t> lru_;  // front = most recently used page
  std::unordered_set<std::uint64_t> read_only_pages_;

  /// Per page: this node's own writes the page's owner must have processed
  /// before a read reply for the page may take effect. `outstanding` holds
  /// seqs of issued-but-unresolved writes; `accepted_floor` is the highest
  /// certified seq. A reply whose stamp does not cover
  /// max(accepted_floor, max(outstanding)) predates our program order and
  /// is retried. Rejected (owner-wins) writes leave `outstanding` without
  /// raising the floor — their value exists nowhere, and the owner's state
  /// at rejection time is concurrent with them, so no wait is owed.
  struct OwnPageWrites {
    std::uint64_t accepted_floor{0};
    std::set<std::uint64_t> outstanding;

    [[nodiscard]] std::uint64_t required() const noexcept {
      return outstanding.empty()
                 ? accepted_floor
                 : std::max(accepted_floor, *outstanding.rbegin());
    }
  };
  FlatHashMap<std::uint64_t, OwnPageWrites> own_writes_;

  // --- crash tolerance (all inert while failover_ == nullptr) ---
  FailoverDirectory* failover_{nullptr};
  /// Durable storage, or null (volatile node). See attach_persist.
  persist::Store* persist_{nullptr};
  /// True after a rejoin() that found NOTHING durable while a store was
  /// attached (disk lost with the crash): the incarnation may not serve any
  /// page — base-owned ones included — before its election, because the
  /// in-memory "cells survive the crash" stand-in no longer applies and
  /// conjured initial values could roll back what peers already read.
  bool lost_disk_epoch_{false};
  /// Monotone freshest-observed copy of every remote cell this node ever
  /// saw certified (read replies, accepted write replies). Unlike cache_,
  /// entries are exempt from invalidation and eviction: they are not
  /// readable state, only election material — invalidation may legally
  /// drop the last cached copy of a value that a recovery election later
  /// needs to avoid rolling the page back behind what readers observed.
  std::unordered_map<Addr, Cell> recovery_log_;
  /// Pages this node acquired via failover and has finished electing.
  std::unordered_set<std::uint64_t> recovered_pages_;
  /// One in-flight writestamp-max election per acquired page.
  struct PageRecovery {
    std::set<NodeId> expected;     ///< live peers not yet answered
    Cell best;                     ///< current election winner
    bool has_candidate{false};
    std::vector<Message> deferred; ///< requests replayed after the election
    std::set<std::pair<NodeId, std::uint64_t>> queued;  ///< dedupe (from,rid)
  };
  std::unordered_map<std::uint64_t, PageRecovery> recovering_;

  FlatHashMap<std::uint64_t, Pending> pending_;
  std::uint64_t next_rid_{1};
  std::uint64_t trace_seq_{0};  ///< per-node trace-id counter (new_trace_id)
  std::size_t outstanding_async_{0};
  /// Owner of the currently pipelined async-write chain (valid while
  /// outstanding_async_ > 0): consecutive async writes may overlap only
  /// while they target one owner.
  NodeId async_chain_owner_{kNoNode};
  std::condition_variable flush_cv_;
};

}  // namespace causalmem

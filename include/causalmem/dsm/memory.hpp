// The public shared-memory API: what an application process sees. All three
// implementations (causal owner protocol, atomic baseline, causal-broadcast
// memory) implement this interface, so the paper's claim that "similar code
// may be used to program applications on both atomic and causal memories"
// is literal in this codebase — the solver and dictionary are written once.
#pragma once

#include <chrono>
#include <functional>

#include "causalmem/common/types.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

/// Outcome of a deadline-bounded operation (CausalConfig::request_timeout).
enum class OpStatus : std::uint8_t {
  kOk = 0,
  /// The owner did not answer within the deadline across all retry rounds.
  kUnreachable,
};

/// A read with a typed failure path: `value` is meaningful only when ok().
struct ReadResult {
  OpStatus status{OpStatus::kOk};
  Value value{0};

  [[nodiscard]] bool ok() const noexcept { return status == OpStatus::kOk; }
};

class SharedMemory {
 public:
  SharedMemory() = default;
  SharedMemory(const SharedMemory&) = delete;
  SharedMemory& operator=(const SharedMemory&) = delete;
  virtual ~SharedMemory() = default;

  /// Reads location x. May block for a round trip to the owner.
  [[nodiscard]] virtual Value read(Addr x) = 0;

  /// Writes v to location x. May block until the owner certifies the write.
  virtual void write(Addr x, Value v) = 0;

  /// Drops any cached copy of x (the paper's `discard`): used for cache
  /// replacement and — crucially — for liveness when busy-waiting on a flag
  /// owned by another processor. Returns true if the next read of x will
  /// go remote (i.e., something was dropped or x was never local); memory
  /// models whose reads always see fresh values return false.
  virtual bool discard(Addr x) = 0;

  /// True when this processor owns x (local reads of x are always current).
  [[nodiscard]] virtual bool owns(Addr x) const = 0;

  /// Waits for all outstanding asynchronous operations (non-blocking writes)
  /// to be certified. No-op for fully blocking configurations.
  virtual void flush() {}

  /// Declares [lo, hi) write-once data that was fully initialized before any
  /// cross-node interaction (the paper's footnote 2: avoid invalidating the
  /// solver's A and b). Implementations without caches ignore it.
  virtual void mark_read_only(Addr lo, Addr hi) {
    (void)lo;
    (void)hi;
  }

  /// This processor's id.
  [[nodiscard]] virtual NodeId node_id() const = 0;

  /// Statistics sink for this node (never null).
  [[nodiscard]] virtual NodeStats& stats() = 0;
};

/// The paper's `wait(B)`: "while (not B) skip". On causal memory a cached
/// flag is never updated in place, so each failed poll discards the cached
/// copy to force a re-fetch from the owner — exactly the liveness use of
/// `discard` described in Section 3.1. Spin re-fetches are accounted
/// separately (kSpinRefetch) so benchmarks can separate busy-wait overhead
/// from protocol cost.
///
/// Returns the first value satisfying `pred`.
Value spin_until(SharedMemory& mem, Addr x,
                 const std::function<bool(Value)>& pred);

/// Convenience: wait until mem[x] == expected.
inline Value spin_until_equals(SharedMemory& mem, Addr x, Value expected) {
  return spin_until(mem, x, [expected](Value v) { return v == expected; });
}

}  // namespace causalmem

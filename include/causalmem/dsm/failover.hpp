// Crash tolerance for the owner protocol: a failure-detector-fed ownership
// directory plus an optional heartbeat prober.
//
// The paper assumes owners live forever ("the locations assigned to a
// processor are owned by that processor"). FailoverDirectory relaxes that:
// it wraps the static Ownership map and, when a node is suspected (by a
// request deadline expiring, or by the heartbeat monitor), deterministically
// migrates the suspect's locations to a successor — the next live node in
// ring order. The successor reconstructs each page's state lazily, on first
// demand, by a writestamp-max election over the live nodes' freshest cached
// copies (CausalNode's recovery machinery); requesters that timed out simply
// re-resolve the owner and retry, so in-flight operations re-route without
// any coordination beyond the directory.
//
// Everything here is recovery-path machinery: its counters are net.*/fo.*
// recovery counters, never message counters, so the paper's 2n+6 accounting
// is untouched on the fault-free path.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "causalmem/common/types.hpp"
#include "causalmem/dsm/ownership.hpp"
#include "causalmem/net/transport.hpp"
#include "causalmem/stats/counters.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem {

/// Deterministic "which copy wins" order for the writestamp-max election:
/// strictly-after wins; concurrent stamps tie-break by component sum, then
/// lexicographically — every node evaluating the same pair picks the same
/// winner, so independent elections over the same copies agree.
[[nodiscard]] bool fresher_stamp(const VectorClock& a, const VectorClock& b);

/// Ownership decorator holding the live view of "who owns what": the static
/// base map plus a per-node reroute set by failover. Reads (`owner`) are
/// lock-free; mutations (suspect/restart) serialize on one mutex.
class FailoverDirectory final : public Ownership {
 public:
  FailoverDirectory(std::unique_ptr<Ownership> base, std::size_t n,
                    StatsRegistry* stats);

  /// Current owner of x: the base owner, with reroutes followed
  /// transitively (a successor may itself have failed over).
  [[nodiscard]] NodeId owner(Addr x) const override;

  /// The static pre-failover owner of x.
  [[nodiscard]] NodeId base_owner(Addr x) const { return base_->owner(x); }

  [[nodiscard]] bool is_down(NodeId id) const {
    return down_[id].load(std::memory_order_acquire);
  }

  /// Bumped on every ownership migration; nodes use it to notice that a
  /// cached owner resolution may be stale.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// All nodes currently believed alive, excluding `self`.
  [[nodiscard]] std::vector<NodeId> live_peers(NodeId self) const;

  /// Reports `suspect` as failed (reporter = kNoNode for the heartbeat
  /// monitor). Idempotent: the first report migrates the suspect's
  /// locations to the next live node in ring order and returns true; later
  /// reports (and reports with no live successor) return false.
  bool suspect(NodeId suspect, NodeId reporter);

  /// Failure-detector input: `subject` was just heard from.
  void record_alive(NodeId subject);

  /// Nanosecond obs::now_ns() stamp of the last sign of life from `id`.
  [[nodiscard]] std::uint64_t last_alive_ns(NodeId id) const {
    return last_alive_[id].load(std::memory_order_acquire);
  }

  /// Re-admits a restarted node: clears its down flag and refreshes its
  /// liveness stamp. Ownership does NOT revert — pages migrated away stay
  /// with their successor; the restarted node rejoins as a peer.
  void mark_restarted(NodeId id);

  /// Declares whether `id` has durable storage attached (a persist::Store).
  /// suspect() prefers the next live DURABLE node in ring order as the
  /// successor — a durable successor that later crashes itself can restore
  /// the migrated pages from its checkpoint + WAL instead of depending on
  /// whatever copies happen to survive in peers' caches. With no durable
  /// candidate the choice falls back to the plain next-live rule, so
  /// persistence-free systems are unaffected.
  void set_durable(NodeId id, bool durable);

  [[nodiscard]] bool is_durable(NodeId id) const {
    return durable_[id].load(std::memory_order_acquire);
  }

 private:
  const std::size_t n_;
  std::unique_ptr<Ownership> base_;
  StatsRegistry* stats_;
  std::mutex mu_;  // serializes suspect()/mark_restarted()
  std::vector<std::atomic<NodeId>> reroute_;     // kNoNode = not rerouted
  std::vector<std::atomic<bool>> down_;
  std::vector<std::atomic<bool>> durable_;       // set_durable()
  std::vector<std::atomic<std::uint64_t>> last_alive_;
  std::atomic<std::uint64_t> epoch_{0};
};

struct HeartbeatConfig {
  /// Probe period. Probes ride below the reliable layer (fire-and-forget,
  /// never retransmitted) and are recovery traffic, not protocol messages.
  std::chrono::microseconds interval{2000};
  /// Silence threshold: a node not heard from (probe or any protocol
  /// message) for this long is suspected.
  std::chrono::microseconds suspect_after{20000};
};

/// Active failure detector: one thread probing every live node from every
/// other live node each interval, and suspecting nodes whose last sign of
/// life (maintained by FailoverDirectory::record_alive, fed by ALL incoming
/// traffic) is older than `suspect_after`. Deadline-driven suspicion in
/// CausalNode works without this; the monitor covers idle systems where no
/// request would ever hit a deadline.
class HeartbeatMonitor {
 public:
  /// `transport` must be the layer BELOW the ReliableChannel (probes must
  /// not be retransmitted to a dead peer forever); all pointers must
  /// outlive the monitor.
  HeartbeatMonitor(Transport* transport, FailoverDirectory* directory,
                   HeartbeatConfig config, StatsRegistry* stats);

  void start();
  void stop();  ///< idempotent; joins the prober thread

  /// One probe-and-scan round, non-blocking. The prober thread calls this
  /// every interval of obs::now_ns() time; simulation mode skips start()
  /// and fires it from a scheduler timer instead.
  void tick();

  ~HeartbeatMonitor() { stop(); }
  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

 private:
  void run(const std::stop_token& st);

  Transport* transport_;
  FailoverDirectory* directory_;
  HeartbeatConfig config_;
  StatsRegistry* stats_;
  std::jthread prober_;
  std::atomic<bool> running_{false};
};

}  // namespace causalmem

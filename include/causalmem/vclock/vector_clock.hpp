// Vector timestamps ("writestamps") exactly as used by the paper's owner
// protocol (Section 3.1):
//
//   - increment(i):    VT[i] += 1
//   - update(VT, VT'): component-wise max
//   - VT < VT':        forall i: VT[i] <= VT'[i]  and  exists j: VT[j] < VT'[j]
//
// Two stamps not ordered by `<` in either direction are concurrent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "causalmem/common/codec.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"

namespace causalmem {

/// Result of comparing two vector timestamps under the causal partial order.
enum class ClockOrder : std::uint8_t {
  kEqual,       ///< identical components
  kBefore,      ///< lhs < rhs
  kAfter,       ///< lhs > rhs
  kConcurrent,  ///< neither dominates
};

/// One end of a directed channel's clock-delta codec: the last clock carried
/// on the channel. The encoder and decoder each hold one and advance it on
/// every clock framed — the transports guarantee encode/decode are paired in
/// FIFO order per channel, so the two baselines can never diverge.
struct ClockCodecState {
  std::vector<std::uint64_t> baseline;
};

class VectorClock {
 public:
  VectorClock() = default;

  /// A zero clock over `n` processes.
  explicit VectorClock(std::size_t n) : components_(n, 0) {}

  /// Builds from explicit components (tests and examples).
  explicit VectorClock(std::vector<std::uint64_t> components)
      : components_(std::move(components)) {}

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }

  [[nodiscard]] std::uint64_t operator[](NodeId i) const {
    CM_EXPECTS(i < components_.size());
    return components_[i];
  }

  /// Adds one to the i-th component (the paper's `increment(VT_i)`).
  void increment(NodeId i) {
    CM_EXPECTS(i < components_.size());
    ++components_[i];
  }

  /// Component-wise max with `other` (the paper's `update(VT, VT')`).
  void update(const VectorClock& other) {
    CM_EXPECTS(other.size() == size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (other.components_[i] > components_[i]) {
        components_[i] = other.components_[i];
      }
    }
  }

  /// Full partial-order comparison against `other`. Concurrency is decided
  /// as soon as both directions have been witnessed — the invalidation path
  /// compares every cached stamp against every incoming one, and on large
  /// clocks most pairs are concurrent, so the early return matters.
  [[nodiscard]] ClockOrder compare(const VectorClock& other) const {
    CM_EXPECTS(other.size() == size());
    bool some_less = false;
    bool some_greater = false;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (components_[i] < other.components_[i]) {
        if (some_greater) return ClockOrder::kConcurrent;
        some_less = true;
      } else if (components_[i] > other.components_[i]) {
        if (some_less) return ClockOrder::kConcurrent;
        some_greater = true;
      }
    }
    if (some_less) return ClockOrder::kBefore;
    if (some_greater) return ClockOrder::kAfter;
    return ClockOrder::kEqual;
  }

  /// The paper's `VT < VT'` (strictly dominated).
  [[nodiscard]] bool before(const VectorClock& other) const {
    return compare(other) == ClockOrder::kBefore;
  }

  /// True when neither clock dominates the other.
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == ClockOrder::kConcurrent;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  // Wire format ------------------------------------------------------------
  //
  // A clock is framed with a one-byte mode:
  //   kWireFull  (0): u32 count, count x u64 components.
  //   kWireDelta (1): u32 baseline size, u32 ndeltas, ndeltas x (u32 index,
  //                   u64 value) — components that differ from the channel
  //                   baseline (the last clock carried on this directed
  //                   channel, tracked by ClockCodecState on both ends).
  // Delta frames are only emitted by encode(w, tx) when a baseline exists,
  // sizes match and the delta is actually smaller; anything else falls back
  // to a full clock, which also (re)establishes the baseline. A delta frame
  // reaching a decoder without channel state is a contract violation: the
  // stateless codec never produces one.
  //
  // Exception: a zero-length full clock leaves the channel baseline alone on
  // both ends. Stamp-less control messages (READ requests, acks, heartbeats)
  // are thereby transparent to the delta chain, so the stamped traffic they
  // interleave with keeps delta-compressing across them.

  static constexpr std::uint8_t kWireFull = 0;
  static constexpr std::uint8_t kWireDelta = 1;

  /// Stateless encode: always a full clock.
  void encode(ByteWriter& w) const {
    w.put<std::uint8_t>(kWireFull);
    w.put_vector(components_);
  }

  /// Stateful encode for one directed channel: delta against `tx.baseline`
  /// when that is strictly smaller on the wire, full otherwise. Either way
  /// the baseline advances to this clock.
  void encode(ByteWriter& w, ClockCodecState& tx) const {
    const std::size_t n = components_.size();
    if (n == 0) {  // transparent: see the wire-format note above
      encode(w);
      return;
    }
    if (tx.baseline.size() == n) {
      std::uint32_t ndeltas = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (components_[i] != tx.baseline[i]) ++ndeltas;
      }
      // Delta wire cost: 4 (baseline size) + 4 (count) + 12 per entry;
      // full: 4 (count) + 8 per component.
      if (8 + 12 * static_cast<std::size_t>(ndeltas) < 4 + 8 * n) {
        w.put<std::uint8_t>(kWireDelta);
        w.put_count(n);
        w.put<std::uint32_t>(ndeltas);
        for (std::size_t i = 0; i < n; ++i) {
          if (components_[i] != tx.baseline[i]) {
            w.put<std::uint32_t>(static_cast<std::uint32_t>(i));
            w.put<std::uint64_t>(components_[i]);
          }
        }
        tx.baseline = components_;
        return;
      }
    }
    encode(w);
    tx.baseline = components_;
  }

  /// Stateless decode: accepts full frames only.
  static VectorClock decode(ByteReader& r) {
    VectorClock vt;
    vt.decode_in_place(r, nullptr);
    return vt;
  }

  /// Decodes into this clock, reusing its capacity (no allocation once the
  /// component vector has grown to channel size). `rx` carries the directed
  /// channel's baseline and is required for delta frames; pass nullptr for
  /// the stateless codec.
  void decode_in_place(ByteReader& r, ClockCodecState* rx) {
    const auto mode = r.get<std::uint8_t>();
    if (mode == kWireFull) {
      const auto n = r.get<std::uint32_t>();
      CM_EXPECTS_MSG(r.remaining() / sizeof(std::uint64_t) >= n,
                     "codec under-run (clock)");
      components_.clear();
      components_.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        components_.push_back(r.get<std::uint64_t>());
      }
      // Empty clocks are baseline-transparent, mirroring the encoder.
      if (rx != nullptr && n > 0) rx->baseline = components_;
      return;
    }
    CM_EXPECTS_MSG(mode == kWireDelta, "bad clock wire mode");
    CM_EXPECTS_MSG(rx != nullptr, "delta clock frame without channel state");
    const auto n = r.get<std::uint32_t>();
    CM_EXPECTS_MSG(n == rx->baseline.size(),
                   "delta clock baseline size mismatch");
    const auto ndeltas = r.get<std::uint32_t>();
    CM_EXPECTS_MSG(ndeltas <= n, "delta clock count exceeds clock size");
    components_ = rx->baseline;
    for (std::uint32_t i = 0; i < ndeltas; ++i) {
      const auto idx = r.get<std::uint32_t>();
      CM_EXPECTS_MSG(idx < components_.size(), "delta clock index out of range");
      components_[idx] = r.get<std::uint64_t>();
    }
    rx->baseline = components_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& components() const noexcept {
    return components_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> components_;
};

}  // namespace causalmem

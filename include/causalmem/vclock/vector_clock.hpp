// Vector timestamps ("writestamps") exactly as used by the paper's owner
// protocol (Section 3.1):
//
//   - increment(i):    VT[i] += 1
//   - update(VT, VT'): component-wise max
//   - VT < VT':        forall i: VT[i] <= VT'[i]  and  exists j: VT[j] < VT'[j]
//
// Two stamps not ordered by `<` in either direction are concurrent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "causalmem/common/codec.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"

namespace causalmem {

/// Result of comparing two vector timestamps under the causal partial order.
enum class ClockOrder : std::uint8_t {
  kEqual,       ///< identical components
  kBefore,      ///< lhs < rhs
  kAfter,       ///< lhs > rhs
  kConcurrent,  ///< neither dominates
};

class VectorClock {
 public:
  VectorClock() = default;

  /// A zero clock over `n` processes.
  explicit VectorClock(std::size_t n) : components_(n, 0) {}

  /// Builds from explicit components (tests and examples).
  explicit VectorClock(std::vector<std::uint64_t> components)
      : components_(std::move(components)) {}

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }

  [[nodiscard]] std::uint64_t operator[](NodeId i) const {
    CM_EXPECTS(i < components_.size());
    return components_[i];
  }

  /// Adds one to the i-th component (the paper's `increment(VT_i)`).
  void increment(NodeId i) {
    CM_EXPECTS(i < components_.size());
    ++components_[i];
  }

  /// Component-wise max with `other` (the paper's `update(VT, VT')`).
  void update(const VectorClock& other) {
    CM_EXPECTS(other.size() == size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (other.components_[i] > components_[i]) {
        components_[i] = other.components_[i];
      }
    }
  }

  /// Full partial-order comparison against `other`.
  [[nodiscard]] ClockOrder compare(const VectorClock& other) const {
    CM_EXPECTS(other.size() == size());
    bool some_less = false;
    bool some_greater = false;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (components_[i] < other.components_[i]) some_less = true;
      if (components_[i] > other.components_[i]) some_greater = true;
    }
    if (some_less && some_greater) return ClockOrder::kConcurrent;
    if (some_less) return ClockOrder::kBefore;
    if (some_greater) return ClockOrder::kAfter;
    return ClockOrder::kEqual;
  }

  /// The paper's `VT < VT'` (strictly dominated).
  [[nodiscard]] bool before(const VectorClock& other) const {
    return compare(other) == ClockOrder::kBefore;
  }

  /// True when neither clock dominates the other.
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == ClockOrder::kConcurrent;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

  void encode(ByteWriter& w) const { w.put_vector(components_); }

  static VectorClock decode(ByteReader& r) {
    return VectorClock(r.get_vector<std::uint64_t>());
  }

  [[nodiscard]] const std::vector<std::uint64_t>& components() const noexcept {
    return components_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> components_;
};

}  // namespace causalmem

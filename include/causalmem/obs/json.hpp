// Minimal JSON infrastructure for the metrics exporter: a streaming writer
// (no DOM allocation on the hot path) and a small recursive-descent parser
// used by tests and tools to validate that exported documents round-trip.
// Deliberately not a general-purpose library — exactly what RFC 8259 needs
// for the documents we emit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace causalmem::obs {

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object().key("n").value(3).end_object();
///   std::string doc = std::move(w).str();
/// Commas and separators are inserted automatically; the caller is
/// responsible for matching begin/end pairs (checked with CM_EXPECTS).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  [[nodiscard]] std::string str() &&;
  [[nodiscard]] const std::string& peek() const noexcept { return out_; }

  static void append_escaped(std::string& out, std::string_view s);

 private:
  void pre_value();

  std::string out_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool after_key_{false};
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type{Type::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Returns nullopt and fills `error` (if given) on failure.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace causalmem::obs

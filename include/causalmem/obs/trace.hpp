// Per-node protocol event tracer: a fixed-capacity ring buffer with a
// relaxed-atomic write cursor. Writers (application threads, delivery
// threads, the retransmitter, the fault timer) claim a slot with one
// fetch_add and guard the payload write with a per-slot state CAS, so
// recording is lock-free and wait-free for the common case; a writer that
// finds its slot mid-overwrite (another writer lapped the ring onto it)
// drops the event and bumps `dropped` instead of waiting. Capacity bounds
// memory; wraparound keeps the newest events (drop-oldest).
//
// Reading the retained window (events()) is only consistent when writers are
// quiescent — drain after joining application threads / shutting the
// transport down. The tracer pointer reaches instrumentation sites through
// NodeStats::tracer(), a single relaxed load, so the disabled path costs one
// predictable-branch load and nothing else.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem::obs {

enum class TraceEventKind : std::uint8_t {
  kSend = 0,     ///< wire-level send at the base transport
  kRecv,         ///< wire-level delivery at the base transport
  kReadHit,      ///< read satisfied locally (owned or cached)
  kReadMiss,     ///< read needed an owner round trip
  kReadDone,     ///< read completed (dur_ns = operation latency)
  kWriteDone,    ///< write completed (dur_ns = operation latency)
  kInvalidate,   ///< one cached page/cell invalidated
  kDiscard,      ///< one cached page discarded (replacement / liveness)
  kRetransmit,   ///< ReliableChannel re-sent an unacked message
  kDupDrop,      ///< ReliableChannel dropped a receive-side duplicate
  kAckSent,      ///< ReliableChannel sent a cumulative ack
  kFaultDrop,    ///< FaultyTransport dropped a message (incl. crash/partition)
  kFaultDup,     ///< FaultyTransport injected a duplicate copy
  kFaultDelay,   ///< FaultyTransport held a message back
  kHeartbeat,    ///< HeartbeatMonitor probe sent
  kSuspect,      ///< a peer was reported suspected (peer = the suspect)
  kFailover,     ///< this node took over a suspected peer's pages
  kRecover,      ///< successor finished writestamp-max election for a page
  kUnreachable,  ///< an operation exhausted its retries (typed failure)
  kPeerUnreachable,  ///< ReliableChannel gave up retransmitting to a peer
  kRestart,      ///< a restarted node finished rejoining
  kApply,        ///< owner applied (certified) a remote write to memory
  kCheckpoint,   ///< durable checkpoint written (addr = cells checkpointed)
  kWalReplay,    ///< restart replayed the WAL (addr = records restored)
  kCatchup,      ///< writestamp-bounded catch-up round for a restored page
  kKindCount,
};

inline constexpr std::size_t kNumTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::kKindCount);

[[nodiscard]] inline const char* trace_event_kind_name(
    TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kRecv: return "recv";
    case TraceEventKind::kReadHit: return "read_hit";
    case TraceEventKind::kReadMiss: return "read_miss";
    case TraceEventKind::kReadDone: return "read";
    case TraceEventKind::kWriteDone: return "write";
    case TraceEventKind::kInvalidate: return "invalidate";
    case TraceEventKind::kDiscard: return "discard";
    case TraceEventKind::kRetransmit: return "retransmit";
    case TraceEventKind::kDupDrop: return "dup_drop";
    case TraceEventKind::kAckSent: return "ack";
    case TraceEventKind::kFaultDrop: return "fault_drop";
    case TraceEventKind::kFaultDup: return "fault_dup";
    case TraceEventKind::kFaultDelay: return "fault_delay";
    case TraceEventKind::kHeartbeat: return "heartbeat";
    case TraceEventKind::kSuspect: return "suspect";
    case TraceEventKind::kFailover: return "failover";
    case TraceEventKind::kRecover: return "recover";
    case TraceEventKind::kUnreachable: return "unreachable";
    case TraceEventKind::kPeerUnreachable: return "peer_unreachable";
    case TraceEventKind::kRestart: return "restart";
    case TraceEventKind::kApply: return "apply";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kWalReplay: return "wal_replay";
    case TraceEventKind::kCatchup: return "catchup";
    case TraceEventKind::kKindCount: break;
  }
  // Unknown/future kinds (e.g. a newer build's trace read by this one) get a
  // stable per-value name instead of one shared "unknown": distinct kinds
  // stay distinguishable, and repeated calls return the same pointer.
  struct UnknownKindNames {
    char names[256][9];  // "kind_255" + NUL
    UnknownKindNames() noexcept {
      for (unsigned i = 0; i < 256; ++i) {
        std::snprintf(names[i], sizeof(names[i]), "kind_%u", i);
      }
    }
  };
  static const UnknownKindNames unknown;
  return unknown.names[static_cast<std::uint8_t>(k)];
}

struct TraceEvent {
  std::uint64_t seq{0};     ///< global-per-tracer record order (unique)
  std::uint64_t ts_ns{0};   ///< obs::now_ns() at record time (or caller's)
  std::uint64_t dur_ns{0};  ///< 0 = instant; else a completed-span duration
  NodeId node{kNoNode};     ///< the node whose tracer recorded the event
  NodeId peer{kNoNode};     ///< other endpoint for message events
  TraceEventKind kind{TraceEventKind::kSend};
  std::uint8_t msg_type{0};  ///< MsgType value for message events, 0 = n/a
  Addr addr{0};
  /// Correlation id shared by all events of one protocol operation across
  /// all nodes (Message::trace_id); 0 = not part of a correlated flow.
  std::uint64_t trace_id{0};
  std::vector<std::uint64_t> vclock;  ///< node's VT at the event; may be empty
};

class Tracer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  Tracer(NodeId node, std::size_t capacity)
      : node_(node),
        slots_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
        mask_(slots_.size() - 1) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records one event. `ts_ns` 0 means "now"; pass an explicit start stamp
  /// together with `dur_ns` for completed-span events.
  void record(TraceEventKind kind, std::uint8_t msg_type = 0,
              NodeId peer = kNoNode, Addr addr = 0,
              const VectorClock* vt = nullptr, std::uint64_t ts_ns = 0,
              std::uint64_t dur_ns = 0,
              std::uint64_t trace_id = 0) noexcept {
    const std::uint64_t ticket =
        cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & mask_];
    std::uint64_t expected = s.state.load(std::memory_order_relaxed);
    if (expected == kBusy ||
        !s.state.compare_exchange_strong(expected, kBusy,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      // Another writer lapped the ring onto this slot mid-write; dropping
      // beats waiting (the tracer must never become a synchronization point).
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    s.ev.seq = ticket;
    s.ev.ts_ns = ts_ns != 0 ? ts_ns : now_ns();
    s.ev.dur_ns = dur_ns;
    s.ev.node = node_;
    s.ev.peer = peer;
    s.ev.kind = kind;
    s.ev.msg_type = msg_type;
    s.ev.addr = addr;
    s.ev.trace_id = trace_id;
    if (vt != nullptr) {
      s.ev.vclock = vt->components();
    } else {
      s.ev.vclock.clear();
    }
    s.state.store(kFull, std::memory_order_release);
  }

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Total record() calls (kept + overwritten + dropped).
  [[nodiscard]] std::uint64_t attempted() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Events abandoned because their slot was mid-overwrite.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The retained window, oldest first. Only consistent when writers are
  /// quiescent (drain after threads join / transport shutdown).
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      if (s.state.load(std::memory_order_acquire) == kFull) {
        out.push_back(s.ev);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    return out;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.state.store(kFree, std::memory_order_relaxed);
    cursor_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kBusy = 1;
  static constexpr std::uint64_t kFull = 2;

  struct Slot {
    std::atomic<std::uint64_t> state{kFree};
    TraceEvent ev;
  };

  const NodeId node_;
  std::vector<Slot> slots_;
  const std::uint64_t mask_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// One tracer per node of a system; owned by DsmSystem when tracing is on.
class TraceHub {
 public:
  TraceHub(std::size_t nodes, std::size_t capacity_per_node) {
    CM_EXPECTS(nodes > 0);
    tracers_.reserve(nodes);
    for (NodeId i = 0; i < nodes; ++i) {
      tracers_.push_back(std::make_unique<Tracer>(i, capacity_per_node));
    }
  }

  [[nodiscard]] Tracer& node(NodeId i) {
    CM_EXPECTS(i < tracers_.size());
    return *tracers_[i];
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return tracers_.size();
  }

  /// All nodes' retained events merged, timestamp-ordered. Writers must be
  /// quiescent.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    for (const auto& t : tracers_) {
      auto e = t->events();
      out.insert(out.end(), e.begin(), e.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                if (a.node != b.node) return a.node < b.node;
                return a.seq < b.seq;
              });
    return out;
  }

  [[nodiscard]] std::uint64_t attempted() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : tracers_) n += t->attempted();
    return n;
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : tracers_) n += t->dropped();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Tracer>> tracers_;
};

}  // namespace causalmem::obs

// Log-bucketed latency histogram, HDR-style: values are bucketed by power of
// two (octave) with a fixed number of linear sub-buckets per octave, so the
// worst-case relative quantization error is 1/kSubBuckets (~6%) at any
// magnitude while the whole structure is a fixed ~8 KB array. Recording is
// one relaxed fetch_add per sample — safe from any thread, never a
// synchronization point (same policy as NodeStats counters). Snapshots are
// plain structs: mergeable across nodes/runs and queryable for percentiles.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace causalmem::obs {

/// Plain (non-atomic) histogram state: bucket counts plus exact count / sum /
/// max. Merge with += ; percentiles interpolate nothing — they return the
/// upper bound of the bucket containing the target rank (clamped to the exact
/// tracked max, so percentile(100) is exact).
struct HistogramSnapshot {
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;  // 16
  /// Octaves 2^kSubBits .. 2^63 plus the initial linear range.
  static constexpr std::size_t kBucketCount =
      (65 - kSubBits) * static_cast<std::size_t>(kSubBuckets);  // 976

  std::array<std::uint64_t, kBucketCount> buckets{};
  std::uint64_t count{0};
  std::uint64_t sum{0};
  std::uint64_t max{0};

  /// Bucket index for a value: identity below kSubBuckets, log-linear above.
  [[nodiscard]] static constexpr std::size_t bucket_index(
      std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int shift = std::bit_width(v) - 1 - static_cast<int>(kSubBits);
    const std::uint64_t sub = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return (static_cast<std::size_t>(shift) + 1) * kSubBuckets +
           static_cast<std::size_t>(sub - kSubBuckets);
  }

  /// Smallest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(
      std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::size_t shift = i / kSubBuckets - 1;
    const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
    return sub << shift;
  }

  /// Largest value mapping to bucket `i` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::size_t shift = i / kSubBuckets - 1;
    const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
    return ((sub + 1) << shift) - 1;
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value at or below which at least `p` percent of samples fall (p in
  /// [0, 100]). 0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count == 0) return 0;
    p = std::clamp(p, 0.0, 100.0);
    const double exact = p / 100.0 * static_cast<double>(count);
    std::uint64_t target =
        static_cast<std::uint64_t>(exact) +
        (exact > static_cast<double>(static_cast<std::uint64_t>(exact)) ? 1
                                                                        : 0);
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += buckets[i];
      if (seen >= target) return std::min(bucket_upper(i), max);
    }
    return max;
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
    return *this;
  }
};

/// Live histogram: atomic counterpart of HistogramSnapshot. Fixed footprint,
/// relaxed-atomic recording, resettable; read via snapshot().
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[HistogramSnapshot::bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBucketCount>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace causalmem::obs

// Anomaly-triggered flight recorder: a passive observer that, the moment
// something goes wrong — a checker violation, an operation exhausting its
// retries, a failover election, a user-registered counter predicate, or an
// explicit dump() — freezes the whole system's observability state into one
// timestamped artifact directory:
//
//   manifest.json  — schema "causalmem-flightrec-v1": what fired, when, where
//   trace.json     — all nodes' trace rings merged + correlated (Chrome trace
//                    with cross-node flow arrows; loads in ui.perfetto.dev)
//   metrics.json   — counters/histograms ("causalmem-metrics-v1")
//   state.json     — per-node vector clocks and the recent-operation history
//
// The recorder reaches trigger sites the same way the tracer does: a single
// relaxed pointer load through NodeStats::flight_recorder(), so an unarmed
// system pays one predictable branch. Triggers are cold paths. The first
// trigger wins (one-shot latch); later triggers are counted but do not dump
// again, so the artifact reflects the *first* anomaly, not the last.
//
// Ring snapshots are best-effort: writers may still be running when a trigger
// fires mid-flight, and a slot being overwritten at that instant is skipped
// (same contract as Tracer::events()).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "causalmem/common/types.hpp"
#include "causalmem/dsm/observer.hpp"

namespace causalmem {
class StatsRegistry;
}  // namespace causalmem

namespace causalmem::obs {

class TraceHub;

struct FlightRecorderOptions {
  /// Base directory; each dump creates `<artifact_dir>/<slug>-<ts_ns>/`.
  std::string artifact_dir{"flightrec"};

  /// Per-node recent-operation history depth (RecentOpsObserver ring).
  std::size_t recent_ops{128};

  /// False records triggers (trigger_count(), last_trigger()) without
  /// writing an artifact — for tests that only assert the wiring.
  bool armed{true};

  /// Free-form label copied into the manifest (e.g. bench config, seed).
  std::string run_label;
};

/// What fired, recorded in the manifest.
struct FlightTrigger {
  std::string kind;    ///< "violation"|"unreachable"|"failover"|"counter"|"manual"
  std::string detail;  ///< human-readable specifics
  NodeId node{kNoNode};
  NodeId peer{kNoNode};
};

/// One entry of the per-node recent-operation history.
struct RecentOp {
  bool is_write{false};
  bool applied{true};  ///< false: owner-wins policy rejected the write
  Addr addr{0};
  Value value{0};
  WriteTag tag{};
  std::uint64_t start_ns{0};
  std::uint64_t end_ns{0};
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions opts = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Points the recorder at the system's stats and (optional) trace hub.
  /// Both must outlive the recorder; either may be nullptr, dropping the
  /// corresponding artifact file. Sizes the recent-op rings.
  void attach(const StatsRegistry* stats, const TraceHub* hub);

  /// Registers a provider of per-node vector clocks for state.json (the
  /// system wires this; the recorder itself knows nothing about memories).
  void set_vclock_probe(
      std::function<std::vector<std::vector<std::uint64_t>>()> probe);

  /// Registers an extra artifact file: `filename` is written into the
  /// artifact directory with whatever `provider` returns at dump time
  /// (e.g. the persist layer's per-node store summaries as persist.json).
  /// Providers run on the dumping thread; they must be safe to call while
  /// the system is live.
  void set_extra_artifact(std::string filename,
                          std::function<std::string()> provider);

  /// Registers a named predicate over the live counters; poll() fires the
  /// recorder when any predicate first turns true.
  void add_counter_trigger(std::string name,
                           std::function<bool(const StatsRegistry&)> pred);

  /// Evaluates the registered counter predicates (call from a heartbeat /
  /// progress loop; cheap when none are registered).
  void poll();

  // ---- trigger entry points (all one-shot; cold paths) ----

  /// A consistency checker found a violation.
  void on_violation(std::string detail);

  /// An operation exhausted its retries (OpStatus::kUnreachable).
  void on_unreachable(NodeId node, NodeId target, std::uint8_t msg_type,
                      Addr x);

  /// A failover election completed: `successor` took over `failed`'s pages.
  void on_failover(NodeId successor, NodeId failed);

  /// Explicit dump. Returns true if this call wrote the artifact (false:
  /// already fired, unarmed, or I/O failure).
  bool dump(std::string reason);

  /// Appends to the node's recent-op ring (RecentOpsObserver calls this).
  void note_op(NodeId node, const RecentOp& op);

  [[nodiscard]] bool fired() const noexcept {
    return fired_.load(std::memory_order_acquire);
  }

  /// Triggers seen so far (including suppressed ones after the first).
  [[nodiscard]] std::uint64_t trigger_count() const noexcept {
    return triggers_.load(std::memory_order_relaxed);
  }

  /// Directory of the written artifact; empty until a dump succeeds.
  [[nodiscard]] std::string artifact_path() const;

  /// The trigger that latched the recorder (valid once fired()).
  [[nodiscard]] FlightTrigger last_trigger() const;

 private:
  /// Latches on the first trigger and (when armed) writes the artifact.
  /// Returns true if this call performed the dump.
  bool fire(FlightTrigger t);
  bool write_artifact(const FlightTrigger& t, std::string* dir_out) const;

  const FlightRecorderOptions opts_;
  const StatsRegistry* stats_{nullptr};
  const TraceHub* hub_{nullptr};
  std::function<std::vector<std::vector<std::uint64_t>>()> vclock_probe_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      extra_artifacts_;

  struct CounterTrigger {
    std::string name;
    std::function<bool(const StatsRegistry&)> pred;
  };
  std::vector<CounterTrigger> counter_triggers_;

  struct OpRing {
    std::mutex mu;
    std::vector<RecentOp> ops;  ///< ring of opts_.recent_ops entries
    std::uint64_t next{0};      ///< total ops seen; next % size = slot
  };
  std::vector<std::unique_ptr<OpRing>> recent_;

  std::atomic<bool> fired_{false};
  std::atomic<std::uint64_t> triggers_{0};
  mutable std::mutex mu_;  ///< guards trigger_/artifact_dir_ and the dump
  FlightTrigger trigger_;
  std::string artifact_dir_;
};

/// OpObserver decorator that feeds the flight recorder's recent-operation
/// rings and forwards to an optional downstream observer. DsmSystem chains
/// this in front of the user's observer when a recorder is installed.
class RecentOpsObserver final : public OpObserver {
 public:
  RecentOpsObserver(FlightRecorder& fr, OpObserver* next = nullptr)
      : fr_(fr), next_(next) {}

  void on_read(NodeId node, Addr x, Value v, const WriteTag& tag,
               const OpTiming& timing) override {
    fr_.note_op(node, RecentOp{false, true, x, v, tag, timing.start_ns,
                               timing.end_ns});
    if (next_ != nullptr) next_->on_read(node, x, v, tag, timing);
  }

  void on_write(NodeId node, Addr x, Value v, const WriteTag& tag,
                bool applied, const OpTiming& timing) override {
    fr_.note_op(node, RecentOp{true, applied, x, v, tag, timing.start_ns,
                               timing.end_ns});
    if (next_ != nullptr) next_->on_write(node, x, v, tag, applied, timing);
  }

 private:
  FlightRecorder& fr_;
  OpObserver* const next_;
};

}  // namespace causalmem::obs

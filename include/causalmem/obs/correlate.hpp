// Cross-node trace correlation: groups every node's TraceEvents by the
// trace id that the protocol piggybacks on the wire (Message::trace_id,
// wire-format v3), so one remote operation — a write's send, receive, owner
// apply, invalidation fan-out and ack — reads as ONE connected flow instead
// of N per-node islands. The correlator renders the merged trace as
// Chrome-trace/Perfetto JSON with flow arrows (ph "s"/"t"/"f") following
// each operation across processes, and can load such JSON back (the args
// carry the numeric fields losslessly), so traces from separate runs or
// separate per-node files merge offline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "causalmem/obs/trace.hpp"

namespace causalmem::obs {

/// All events sharing one trace id, ordered by (ts, node, seq) — the
/// lifetime of one remote protocol operation across every node it touched.
struct TraceFlow {
  std::uint64_t trace_id{0};
  std::vector<TraceEvent> events;

  /// True when the flow touched more than one node.
  [[nodiscard]] bool cross_node() const noexcept;

  /// Node of the earliest event (the operation's initiator).
  [[nodiscard]] NodeId initiator() const noexcept;

  /// True for a flow that ran to completion: the initiator recorded its
  /// operation-done span (kReadDone/kWriteDone), or — for one-way fan-out
  /// flows with no requester-side completion, like broadcast updates — a
  /// remote apply landed. A flow cut short by a crash, a deadline or ring
  /// overwrite is incomplete.
  [[nodiscard]] bool complete() const noexcept;

  /// True when every kSend in the flow has a matching kRecv on the
  /// destination node (no message of the operation is still in flight or
  /// lost). Retransmissions count as extra sends of the same (type, peer)
  /// edge and do not break connectivity.
  [[nodiscard]] bool connected() const noexcept;
};

/// Merges trace buffers (typically TraceHub::events() of one run, or several
/// per-node files loaded via trace_events_from_json) and groups them into
/// per-operation flows.
class TraceCorrelator {
 public:
  TraceCorrelator() = default;
  explicit TraceCorrelator(std::vector<TraceEvent> events);

  /// Adds more events (merging is by trace id, so buffers from different
  /// nodes/files can arrive in any order).
  void add_events(const std::vector<TraceEvent>& events);

  /// All events, (ts, node, seq)-ordered.
  [[nodiscard]] const std::vector<TraceEvent>& events() const;

  /// All flows with a non-zero trace id, ordered by first-event timestamp.
  [[nodiscard]] const std::vector<TraceFlow>& flows() const;

  /// Flows that are complete(), connected() and cross_node() — the
  /// "one connected flow per write" the merged trace is judged by.
  [[nodiscard]] std::vector<const TraceFlow*> complete_cross_node_flows()
      const;

  /// 1 + the highest node id seen (0 when empty).
  [[nodiscard]] std::size_t node_count() const;

  /// The merged trace as Chrome-trace JSON: every event (same format as
  /// chrome_trace_json) plus flow-arrow records (ph "s"/"t"/"f", id = trace
  /// id) linking each cross-node flow's events in order.
  [[nodiscard]] std::string to_chrome_trace() const;

 private:
  void invalidate() noexcept { grouped_ = false; }
  void regroup() const;

  mutable std::vector<TraceEvent> events_;
  mutable std::vector<TraceFlow> flows_;
  mutable bool grouped_{false};
};

/// Parses Chrome-trace JSON written by chrome_trace_json / to_chrome_trace
/// back into TraceEvents (metadata and flow-arrow records are skipped; the
/// numeric args restore kind/trace_id/timestamps losslessly). Returns false
/// and sets `*error` on malformed input.
bool trace_events_from_json(std::string_view json,
                            std::vector<TraceEvent>* out, std::string* error);

}  // namespace causalmem::obs

// Machine-readable metrics export: one JSON document per benchmark run
// (schema "causalmem-metrics-v1") carrying per-node counters, merged latency
// histograms, run parameters and a trace summary — plus a Chrome-trace /
// Perfetto JSON writer for the event tracer, so a protocol run can be opened
// in ui.perfetto.dev and read alongside the paper's message-count tables.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "causalmem/obs/histogram.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem::obs {

class JsonWriter;

/// Everything measured about one run (one table row) of a benchmark:
/// configuration parameters, derived scalar results, per-node counter
/// snapshots, merged latency histograms and the tracer's summary.
struct RunMetrics {
  std::string label;

  /// Run configuration knobs, in insertion order (e.g. nodes, iterations).
  std::vector<std::pair<std::string, double>> params;

  /// Derived scalar results, in insertion order (e.g. msgs/node/iter).
  std::vector<std::pair<std::string, double>> values;

  /// Counter snapshot of each node, indexed by NodeId.
  std::vector<StatsSnapshot> nodes;

  /// Latency histograms merged over all nodes, indexed by LatencyMetric.
  std::array<HistogramSnapshot, kNumLatencyMetrics> latency{};

  bool has_trace{false};
  std::uint64_t trace_retained{0};   ///< events still in the ring buffers
  std::uint64_t trace_attempted{0};  ///< record() calls over the whole run
  std::uint64_t trace_dropped{0};    ///< events lost to slot contention

  void set_param(std::string name, double v) {
    params.emplace_back(std::move(name), v);
  }
  void set_value(std::string name, double v) {
    values.emplace_back(std::move(name), v);
  }

  /// Captures per-node counters and merged latency histograms. Call before
  /// the system (and its StatsRegistry) is destroyed.
  void capture(const StatsRegistry& stats);

  /// Captures the trace summary (writers must be quiescent).
  void capture_trace(const TraceHub& hub);

  /// Sum of all nodes' counters.
  [[nodiscard]] StatsSnapshot totals() const;
};

/// Accumulates runs and renders the final JSON document. Runs are held by
/// pointer so `add_run` hands back a reference that stays valid as more runs
/// are added.
class MetricsExporter {
 public:
  explicit MetricsExporter(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  /// Free-form string metadata (e.g. memory model, transport) for the
  /// document header.
  void set_meta(std::string key, std::string value) {
    meta_.emplace_back(std::move(key), std::move(value));
  }

  /// Appends a run and returns a stable reference for the caller to fill.
  RunMetrics& add_run(std::string label);

  [[nodiscard]] std::size_t run_count() const noexcept { return runs_.size(); }
  [[nodiscard]] const RunMetrics& run(std::size_t i) const { return *runs_[i]; }

  /// The full document as compact JSON.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::unique_ptr<RunMetrics>> runs_;
};

/// One-call live snapshot: a complete "causalmem-metrics-v1" document of the
/// registry's current counters and histograms (plus the trace summary when
/// `hub` is non-null). Counters are relaxed-atomic reads, so polling mid-run
/// is safe and cheap; successive calls give incremental views of the same
/// run (a dashboard/bench can diff consecutive documents).
[[nodiscard]] std::string live_metrics_json(const StatsRegistry& stats,
                                            const TraceHub* hub = nullptr,
                                            const std::string& label = "live");

/// Renders events as a Chrome-trace JSON object ({"traceEvents": [...]}) that
/// Perfetto and chrome://tracing load directly: one "process" per node,
/// instant events for point events, complete ("X") events for spans. Each
/// event's args carry the numeric kind/msg_type/trace_id/ts_ns/dur_ns fields
/// so correlate.hpp's trace_events_from_json can reload the file losslessly.
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                                            std::size_t node_count);

/// Streaming pieces of chrome_trace_json, for writers that append extra
/// records into the same traceEvents array (the TraceCorrelator uses them to
/// interleave flow-arrow records with the events). Usage:
///   JsonWriter w; chrome_trace_begin(w, n);
///   for (ev : events) chrome_trace_event(w, ev);
///   ... extra records ...
///   std::string doc = chrome_trace_end(std::move(w));
void chrome_trace_begin(JsonWriter& w, std::size_t node_count);
void chrome_trace_event(JsonWriter& w, const TraceEvent& ev);
[[nodiscard]] std::string chrome_trace_end(JsonWriter&& w);

/// Drains `hub` (writers must be quiescent) and writes the Chrome-trace JSON
/// to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const TraceHub& hub);

}  // namespace causalmem::obs

// Single time source for the whole observability stack. OpTiming, the event
// tracer, latency histograms and the log timestamps all read the same seam,
// so a test can install a FakeClock and get deterministic timings without
// sleeping. The default source is the steady clock; swapping sources is a
// test-only operation and must happen while no timed code is running.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace causalmem::obs {

/// Abstract time source: monotonic nanoseconds since an arbitrary epoch.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() noexcept = 0;
};

namespace detail {
inline std::atomic<ClockSource*> g_clock{nullptr};
}  // namespace detail

/// The process steady clock, bypassing any installed source.
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Current time from the installed source (steady clock when none).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  ClockSource* src = detail::g_clock.load(std::memory_order_acquire);
  return src != nullptr ? src->now_ns() : steady_now_ns();
}

/// Installs `source` as the global time source; nullptr restores the steady
/// clock. `source` must outlive every reader — install before threads start
/// and uninstall after they join.
inline void set_clock_source(ClockSource* source) noexcept {
  detail::g_clock.store(source, std::memory_order_release);
}

/// Manually advanced clock for deterministic tests.
class FakeClock final : public ClockSource {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0) noexcept : t_(start_ns) {}

  [[nodiscard]] std::uint64_t now_ns() noexcept override {
    return t_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::uint64_t delta) noexcept {
    t_.fetch_add(delta, std::memory_order_relaxed);
  }

  void set_ns(std::uint64_t t) noexcept {
    t_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> t_;
};

/// RAII installer: swaps the global source in, restores the steady clock on
/// scope exit.
class ScopedClockSource {
 public:
  explicit ScopedClockSource(ClockSource* source) noexcept {
    set_clock_source(source);
  }
  ~ScopedClockSource() { set_clock_source(nullptr); }

  ScopedClockSource(const ScopedClockSource&) = delete;
  ScopedClockSource& operator=(const ScopedClockSource&) = delete;
};

}  // namespace causalmem::obs

// Synchronization variables on causal memory. Section 4.1 notes that
// "special synchronization variables such as semaphores or event counts may
// be used on causal memory"; this module provides the ones that are actually
// implementable on a memory whose concurrent writes are unordered:
//
//   Flag        one-shot / resettable boolean, written by its owner,
//               awaited by anyone (discard-based liveness);
//   EventCount  monotone counter advanced only by its owner — await(n)
//               transfers causality: everything the owner did before
//               advance() is visible to the awaiter afterwards;
//   CausalBarrier  an all-to-all phase barrier built from one event count
//               per participant (no central coordinator).
//
// Deliberately absent: mutexes/semaphores. Mutual exclusion needs a total
// order on competing writes (consensus); causal memory's defining feature is
// that concurrent writes stay unordered, so a correct lock cannot be built
// from causal reads and writes alone. (The paper's dictionary shows the
// causal alternative: partition ownership so conflicts never need a lock.)
#pragma once

#include <cstdint>

#include "causalmem/common/expect.hpp"
#include "causalmem/dsm/memory.hpp"

namespace causalmem {

/// A boolean flag at a fixed location. The owner sets/clears; anyone waits.
class Flag {
 public:
  Flag(SharedMemory& mem, Addr addr) : mem_(mem), addr_(addr) {}

  /// Sets the flag (any process may call; owner-local calls are free).
  void set() { mem_.write(addr_, 1); }
  void clear() { mem_.write(addr_, 0); }

  [[nodiscard]] bool test() { return mem_.read(addr_) != 0; }

  /// Blocks until the flag is set. Everything the setter did causally
  /// before set() is visible to the caller afterwards.
  void wait_set() { (void)spin_until_equals(mem_, addr_, 1); }
  void wait_clear() { (void)spin_until_equals(mem_, addr_, 0); }

 private:
  SharedMemory& mem_;
  Addr addr_;
};

/// A monotone counter advanced only by the process owning its location.
class EventCount {
 public:
  EventCount(SharedMemory& mem, Addr addr) : mem_(mem), addr_(addr) {}

  /// Advances the count to `value`. Only the owner may advance, and values
  /// must be written in increasing order (contract).
  void advance_to(Value value) {
    CM_EXPECTS_MSG(mem_.owns(addr_), "only the owner advances an event count");
    CM_EXPECTS_MSG(mem_.read(addr_) < value, "event counts are monotone");
    mem_.write(addr_, value);
  }

  /// Advances by one; returns the new value.
  Value advance() {
    CM_EXPECTS_MSG(mem_.owns(addr_), "only the owner advances an event count");
    const Value next = mem_.read(addr_) + 1;
    mem_.write(addr_, next);
    return next;
  }

  [[nodiscard]] Value current() { return mem_.read(addr_); }

  /// Blocks until the count reaches at least `target`. On return, every
  /// operation the owner performed before the corresponding advance is in
  /// the caller's causal past (and its stale cached copies are dead).
  void await(Value target) {
    (void)spin_until(mem_, addr_, [target](Value v) { return v >= target; });
  }

 private:
  SharedMemory& mem_;
  Addr addr_;
};

/// An n-party phase barrier with no central coordinator: participant i owns
/// an event count at base+i; arriving advances it, then waits for every
/// other count to reach the phase number.
///
/// The memory's ownership map must assign base+i to participant i.
class CausalBarrier {
 public:
  /// One participant's handle. `index` must equal mem.node_id()'s position
  /// among the participants (commonly just the node id).
  CausalBarrier(SharedMemory& mem, Addr base, std::size_t parties,
                std::size_t index)
      : mem_(mem), base_(base), parties_(parties), index_(index) {
    CM_EXPECTS(parties > 0);
    CM_EXPECTS(index < parties);
    CM_EXPECTS_MSG(mem.owns(base + index),
                   "participant must own its arrival counter");
  }

  /// Arrives at the barrier and blocks until all parties arrive. Returns
  /// the phase number just completed (1-based). Everything any participant
  /// did before arriving is causally visible to every participant after.
  std::uint64_t arrive_and_wait() {
    const Value phase = static_cast<Value>(++local_phase_);
    mem_.write(base_ + index_, phase);  // owned: local
    for (std::size_t j = 0; j < parties_; ++j) {
      if (j == index_) continue;
      (void)spin_until(mem_, base_ + j,
                       [phase](Value v) { return v >= phase; });
    }
    return local_phase_;
  }

  [[nodiscard]] std::uint64_t phase() const noexcept { return local_phase_; }

 private:
  SharedMemory& mem_;
  Addr base_;
  std::size_t parties_;
  std::size_t index_;
  std::uint64_t local_phase_{0};
};

}  // namespace causalmem

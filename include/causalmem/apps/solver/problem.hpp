// Linear systems Ax = b for the Section 4.1 solver: generation of strictly
// diagonally dominant instances (so Jacobi iteration converges), the shared
// memory address layout, and the sequential reference iteration the DSM
// solvers are validated against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"
#include "causalmem/dsm/ownership.hpp"

namespace causalmem {

struct SolverProblem {
  std::size_t n{0};
  std::vector<double> a;  ///< row-major n*n
  std::vector<double> b;  ///< n

  [[nodiscard]] double a_at(std::size_t i, std::size_t j) const {
    return a[i * n + j];
  }

  /// A random strictly diagonally dominant system (|a_ii| > sum|a_ij|),
  /// deterministic per seed.
  static SolverProblem random(std::size_t n, std::uint64_t seed);

  /// `iters` synchronous Jacobi sweeps from x = 0, with the same reduction
  /// order as the DSM workers — the synchronous DSM solvers must reproduce
  /// this bit-for-bit (the paper's Section 4.1 argument: on causal memory
  /// every read returns exactly the previous phase's value).
  [[nodiscard]] std::vector<double> jacobi_reference(std::size_t iters) const;

  /// The true solution, for convergence assertions (Gaussian elimination).
  [[nodiscard]] std::vector<double> exact_solution() const;

  /// Max-norm residual ||Ax - b||_inf of a candidate solution.
  [[nodiscard]] double residual(const std::vector<double>& x) const;
};

/// Shared-memory layout for a solver run with `workers` worker processes
/// (each computing a contiguous block of elements — the paper: "the code is
/// easily modified so that each process computes a set of elements") and one
/// coordinator (node ids: workers 0..w-1, coordinator w).
///
///   x_i        = i            owned by the worker whose block contains i
///   complete_w = n + w        owned by worker w
///   changed_w  = 2n + w       owned by worker w
///   a[i][j]    = 3n + i*n + j owned by the coordinator
///   b_i        = 3n + n^2 + i owned by the coordinator
class SolverLayout {
 public:
  /// `workers` defaults to one worker per element (the paper's Figure 6).
  explicit SolverLayout(std::size_t n, std::size_t workers = 0)
      : n_(n), w_(workers == 0 ? n : workers) {
    CM_EXPECTS(n > 0);
    CM_EXPECTS(w_ > 0 && w_ <= n);
  }

  [[nodiscard]] std::size_t elements() const noexcept { return n_; }
  [[nodiscard]] std::size_t workers() const noexcept { return w_; }
  [[nodiscard]] NodeId coordinator() const noexcept {
    return static_cast<NodeId>(w_);
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return w_ + 1; }

  /// Worker responsible for element i (balanced contiguous blocks).
  [[nodiscard]] NodeId worker_of(std::size_t i) const {
    CM_EXPECTS(i < n_);
    return static_cast<NodeId>(i * w_ / n_);
  }
  [[nodiscard]] Addr x(std::size_t i) const { return i; }
  [[nodiscard]] Addr complete(std::size_t w) const { return n_ + w; }
  [[nodiscard]] Addr changed(std::size_t w) const { return 2 * n_ + w; }
  [[nodiscard]] Addr a(std::size_t i, std::size_t j) const {
    return 3 * n_ + i * n_ + j;
  }
  [[nodiscard]] Addr b(std::size_t i) const { return 3 * n_ + n_ * n_ + i; }

  [[nodiscard]] Addr constants_begin() const { return a(0, 0); }
  [[nodiscard]] Addr constants_end() const { return b(n_ - 1) + 1; }

  /// Ownership map realizing the layout above.
  [[nodiscard]] std::unique_ptr<Ownership> make_ownership() const;

  /// Ownership variant for crash-tolerance tests: A and b live at `storage`
  /// (typically an extra node beyond the w+1 solver processes) instead of
  /// the coordinator, so the constants' owner can crash mid-run without
  /// taking down any process that executes solver code. The coordinator
  /// seeds the constants remotely, which journals every value at live nodes
  /// for the post-crash recovery election.
  [[nodiscard]] std::unique_ptr<Ownership> make_ownership_constants_at(
      NodeId storage) const;

 private:
  std::size_t n_;
  std::size_t w_;
};

}  // namespace causalmem

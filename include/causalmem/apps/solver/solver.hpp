// The Section 4.1 solvers, written once against the SharedMemory interface —
// the same application code runs on causal, atomic and broadcast memory (the
// paper's central programmability claim).
//
// Synchronous (Figure 6): n workers + a coordinator handshake twice per
// phase through per-worker boolean flags (complete_i / changed_i), so every
// read of x_j in phase k returns exactly the phase k-1 value.
//
// Asynchronous ("it is possible to eliminate the synchronization entirely"):
// chaotic relaxation — workers iterate with no barriers, discarding cached
// x_j copies each sweep so owner values eventually propagate (the paper's
// liveness use of discard).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "causalmem/apps/solver/problem.hpp"
#include "causalmem/dsm/memory.hpp"

namespace causalmem {

struct SolverOptions {
  /// Synchronous solver: exact number of phases. Asynchronous solver: upper
  /// bound on sweeps per worker (a safety valve; convergence normally stops
  /// the run first).
  std::size_t iterations{20};
  /// Synchronous solver only: invoked on the coordinator thread at the start
  /// of each phase (argument: the phase index). Crash-tolerance tests and
  /// benchmarks use it to crash/restart nodes at a deterministic point in
  /// the computation.
  std::function<void(std::size_t)> on_phase{};
  /// Apply the footnote-2 enhancement: mark A and b read-only at every
  /// worker so their cached copies survive invalidation sweeps.
  bool protect_constants{true};
  /// Asynchronous solver only: the coordinator stops the run once the
  /// max-norm residual drops below this.
  double tolerance{1e-9};
};

struct SolverRun {
  std::vector<double> x;
  /// Sync: phases run. Async: max sweeps any worker performed.
  std::size_t iterations{0};
  /// Async only: true when the coordinator observed convergence (rather
  /// than workers exhausting their sweep budget).
  bool converged{true};
};

/// Runs the Figure 6 synchronous solver. `memories` holds the workers'
/// memories followed by the coordinator's (layout.node_count() entries,
/// indexed by node id). Spawns one thread per worker; the coordinator runs
/// on the calling thread. With layout.workers() < elements each worker
/// computes a contiguous block (the paper: "each process computes a set of
/// elements").
SolverRun run_sync_solver(const SolverProblem& problem,
                          const SolverLayout& layout,
                          std::vector<SharedMemory*> memories,
                          const SolverOptions& options);

/// Coordinator-free layout for the barrier-based solver: w worker nodes,
/// no extra process.
///
///   x_i         = i              owned by the worker whose block holds i
///   barrier_k   = n + k          owned by worker k (its arrival counter)
///   a[i][j]     = n + w + i*n+j  owned by worker 0
///   b_i         = n + w + n^2 +i owned by worker 0
class DecentralizedSolverLayout {
 public:
  explicit DecentralizedSolverLayout(std::size_t n, std::size_t workers)
      : n_(n), w_(workers) {
    CM_EXPECTS(n > 0);
    CM_EXPECTS(workers > 0 && workers <= n);
  }

  [[nodiscard]] std::size_t elements() const noexcept { return n_; }
  [[nodiscard]] std::size_t workers() const noexcept { return w_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return w_; }
  [[nodiscard]] NodeId worker_of(std::size_t i) const {
    CM_EXPECTS(i < n_);
    return static_cast<NodeId>(i * w_ / n_);
  }
  [[nodiscard]] Addr x(std::size_t i) const { return i; }
  [[nodiscard]] Addr barrier_base() const { return n_; }
  [[nodiscard]] Addr a(std::size_t i, std::size_t j) const {
    return n_ + w_ + i * n_ + j;
  }
  [[nodiscard]] Addr b(std::size_t i) const { return n_ + w_ + n_ * n_ + i; }
  [[nodiscard]] Addr constants_begin() const { return a(0, 0); }
  [[nodiscard]] Addr constants_end() const { return b(n_ - 1) + 1; }

  [[nodiscard]] std::unique_ptr<Ownership> make_ownership() const;

 private:
  std::size_t n_;
  std::size_t w_;
};

/// Synchronous solver with no central coordinator: phases are separated by
/// an all-to-all CausalBarrier (apps/sync). Produces the same bit-exact
/// Jacobi iterates as the Figure 6 coordinator version.
SolverRun run_decentralized_solver(const SolverProblem& problem,
                                   const DecentralizedSolverLayout& layout,
                                   std::vector<SharedMemory*> memories,
                                   const SolverOptions& options);

/// Runs the asynchronous (chaotic relaxation) solver: every worker performs
/// `options.iterations` unsynchronized sweeps. The coordinator only seeds
/// the constants and collects the result.
SolverRun run_async_solver(const SolverProblem& problem,
                           const SolverLayout& layout,
                           std::vector<SharedMemory*> memories,
                           const SolverOptions& options);

}  // namespace causalmem

// The Section 4.2 distributed dictionary: an association table maintained
// cooperatively by n processes with no synchronization around inserts or
// deletes.
//
//   - dict is an n x m array; process i owns row i and only process i
//     inserts into row i (restriction R1/R2 of Fischer & Michael);
//   - insert_i(v): write v into a free slot of row i (a local write);
//   - lookup_i(v): scan all rows; true iff v is found;
//   - delete_i(v): scan for v, write the distinguished lambda over it —
//     possibly into another process's row, possibly concurrent with that
//     owner's newer insert into the same slot;
//   - correctness under concurrent delete/insert relies on the memory's
//     owner-wins conflict policy: "writes by the owner are always favored".
//
// Construct the backing DsmSystem<CausalNode> with
// ConflictPolicy::kOwnerWins (see tests/apps/dictionary_test.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/dsm/memory.hpp"
#include "causalmem/dsm/ownership.hpp"

namespace causalmem {

class Dictionary {
 public:
  /// One process's handle. `mem` is that process's SharedMemory; `rows` is
  /// the number of cooperating processes; `slots` the per-row capacity (the
  /// paper's m, "sufficiently large to hold all items inserted").
  /// `base` is the first shared address of the dict array.
  Dictionary(SharedMemory& mem, std::size_t rows, std::size_t slots,
             Addr base = 0)
      : mem_(mem), rows_(rows), slots_(slots), base_(base) {
    CM_EXPECTS(rows > 0);
    CM_EXPECTS(slots > 0);
    CM_EXPECTS(mem.node_id() < rows);
  }

  /// Ownership map for the backing system: process i owns row i.
  /// Use with DsmSystem and the same `rows`/`slots`/`base`.
  static std::unique_ptr<Ownership> make_ownership(std::size_t rows,
                                                   std::size_t slots,
                                                   Addr base = 0);

  /// Inserts v into this process's row. Items must be unique and not reuse
  /// the reserved encodings (R1). Returns false when the row is full.
  bool insert(Value v);

  /// True iff v has been inserted and not deleted, according to this
  /// process's current view.
  [[nodiscard]] bool lookup(Value v);

  /// Scans for v and overwrites it with lambda. Returns true when a slot
  /// holding v was found and the delete was issued (the owner may still
  /// reject it if it lost a race with a newer insert — which is exactly the
  /// paper's correctness argument). R2: only delete inserted items.
  bool remove(Value v);

  /// Drops every cached dict location so the next scan reads fresh copies —
  /// the liveness lever for view convergence ("all views must eventually
  /// converge ... in the absence of further inserts and deletes").
  void refresh();

  /// All values visible in this process's current view (for tests).
  [[nodiscard]] std::vector<Value> snapshot();

  [[nodiscard]] Addr slot_addr(std::size_t row, std::size_t col) const {
    CM_EXPECTS(row < rows_ && col < slots_);
    return base_ + row * slots_ + col;
  }

 private:
  [[nodiscard]] static bool is_free(Value v) noexcept {
    return v == kInitialValue || v == kLambda;
  }

  SharedMemory& mem_;
  std::size_t rows_;
  std::size_t slots_;
  Addr base_;
};

}  // namespace causalmem

// In-memory transport: one delivery thread per destination node draining a
// deadline-ordered queue. Per-channel FIFO is guaranteed by making each
// (src,dst) channel's delivery deadlines monotonic, so jittered latency can
// never reorder a channel.
//
// Fast path: reply-type messages on an idle zero-latency channel are
// delivered inline on the sender's thread instead of waking the receiver's
// worker, eliding two context switches per request/reply round trip. The
// per-channel in-flight count (incremented before a message is queued,
// decremented only after its handler returns) makes the idle check exact:
// an inline delivery can never overtake a queued or in-delivery message on
// the same channel, so per-channel FIFO is preserved. Only message types
// that every protocol sends with no node lock held are eligible — see
// inline_eligible() in the .cpp for the proof obligation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "causalmem/common/rng.hpp"
#include "causalmem/net/transport.hpp"

namespace causalmem {

class InMemTransport final : public Transport {
 public:
  /// Creates a transport for nodes 0..n-1.
  /// `exercise_codec` round-trips every message through the byte codec, so
  /// tests prove the wire format even without the TCP transport.
  explicit InMemTransport(std::size_t n, LatencyModel latency = {},
                          bool exercise_codec = false);
  ~InMemTransport() override;

  void register_node(NodeId id, Handler handler) override;
  void start() override;
  void send(Message m) override;
  void shutdown() override;
  [[nodiscard]] std::size_t node_count() const override { return endpoints_.size(); }

  /// Total messages delivered so far (all nodes).
  [[nodiscard]] std::uint64_t delivered_count() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Overrides the latency of one directed channel (tests drive specific
  /// interleavings with this, e.g. the Figure 3 counterexample). Must be
  /// called before start() — enforced; DsmSystem callers pass
  /// SystemOptions::channel_latencies instead.
  void set_channel_latency(NodeId from, NodeId to, LatencyModel latency);

 private:
  using Clock = std::chrono::steady_clock;

  struct Envelope {
    Clock::time_point deliver_at;
    std::uint64_t seq;  ///< tie-break so equal deadlines stay FIFO
    Message msg;
  };

  struct EnvelopeLater {
    bool operator()(const Envelope& a, const Envelope& b) const noexcept {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  struct Endpoint {
    Handler handler;
    std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Envelope, std::vector<Envelope>, EnvelopeLater> queue;
    std::uint64_t next_seq{0};
    bool stopped{false};
    std::jthread worker;
  };

  struct Channel {
    std::mutex mu;
    Clock::time_point last_deadline{};
    Rng rng{0};
    bool has_override{false};
    LatencyModel override_latency{};
    // exercise_codec state: the directed channel's clock-delta baselines and
    // a scratch Message whose stamp/cells capacity is recycled across
    // round-trips (send swaps the decoded message out and the caller's
    // buffers in), so the steady-state codec path never allocates.
    ClockCodecState tx;
    ClockCodecState rx;
    Message scratch;
    // Messages queued or in delivery on this channel. 0 means the channel is
    // completely idle, which is what licenses the inline-delivery fast path.
    std::atomic<std::uint32_t> inflight{0};
  };

  void run_endpoint(Endpoint& ep);
  [[nodiscard]] Clock::time_point next_deadline_locked(Channel& ch);

  LatencyModel latency_;
  bool exercise_codec_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Channel>> channels_;  // n*n, index from*n+to
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace causalmem

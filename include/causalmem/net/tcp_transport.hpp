// TCP transport: the same Transport contract over real loopback sockets.
// One TCP connection per unordered node pair gives reliable FIFO channels in
// both directions (TCP's own guarantees). Frames are 4-byte little-endian
// length prefixes followed by the Message codec bytes.
//
// All endpoints live in this process (the paper's system is n processors on
// one LAN; we run n node threads over real sockets on one machine), but
// nothing about the protocol code knows that — it only sees Transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "causalmem/net/transport.hpp"

namespace causalmem {

class TcpTransport final : public Transport {
 public:
  /// Upper bound on a frame's payload length. The largest legitimate frame
  /// is a page reply (page_size cells at ~28 wire bytes each), orders of
  /// magnitude below this; anything larger is a corrupt or hostile length
  /// prefix, and the connection is torn down instead of letting the claimed
  /// length drive a multi-gigabyte allocation.
  static constexpr std::uint32_t kMaxFrameBytes = 1u << 20;  // 1 MiB

  /// Creates n endpoints bound to 127.0.0.1 ephemeral ports and connects the
  /// full mesh. Throws std::system_error on socket failures.
  explicit TcpTransport(std::size_t n);
  ~TcpTransport() override;

  void register_node(NodeId id, Handler handler) override;
  void start() override;
  void send(Message m) override;
  void shutdown() override;
  [[nodiscard]] std::size_t node_count() const override { return n_; }

  /// Fault-injection/test hook: writes `bytes` verbatim (no framing) on the
  /// from->to connection, so tests can feed a node truncated or oversized
  /// frames and observe the teardown path.
  void send_raw(NodeId from, NodeId to, std::span<const std::byte> bytes);

 private:
  struct Conn {
    int fd{-1};
    NodeId owner{kNoNode};  ///< the endpoint this Conn belongs to
    std::atomic<bool> broken{false};
    std::mutex write_mu;
    std::jthread reader;
    /// Clock-delta baselines for this socket's two independent FIFO byte
    /// streams: `tx` for frames this side writes (guarded by write_mu, so
    /// encode order is write order), `rx` for frames its reader decodes
    /// (reader thread only). TCP delivers each direction reliably in order,
    /// so encoder and decoder baselines advance in lockstep.
    ClockCodecState tx;
    ClockCodecState rx;
    /// Write-side scratch (guarded by write_mu): the full [len | payload]
    /// frame is assembled here and written with one send() call.
    std::vector<std::byte> wbuf;
  };

  void run_reader(Conn& conn);
  void write_frame(Conn& conn, const Message& m);
  void mark_broken(Conn& conn, const char* why);

  std::size_t n_;
  std::vector<Handler> handlers_;
  // conn_[i][j] is i's own endpoint (fd) of the TCP connection of the pair
  // {i, j}: for i < j the dialer's socket, for i > j the accepted socket.
  // Every cell owns a distinct Conn with its own reader thread.
  std::vector<std::vector<std::shared_ptr<Conn>>> conn_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace causalmem

// TCP transport: the same Transport contract over real loopback sockets.
// One TCP connection per unordered node pair gives reliable FIFO channels in
// both directions (TCP's own guarantees). Frames are 4-byte little-endian
// length prefixes followed by the Message codec bytes.
//
// All endpoints live in this process (the paper's system is n processors on
// one LAN; we run n node threads over real sockets on one machine), but
// nothing about the protocol code knows that — it only sees Transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "causalmem/net/transport.hpp"

namespace causalmem {

class TcpTransport final : public Transport {
 public:
  /// Creates n endpoints bound to 127.0.0.1 ephemeral ports and connects the
  /// full mesh. Throws std::system_error on socket failures.
  explicit TcpTransport(std::size_t n);
  ~TcpTransport() override;

  void register_node(NodeId id, Handler handler) override;
  void start() override;
  void send(Message m) override;
  void shutdown() override;
  [[nodiscard]] std::size_t node_count() const override { return n_; }

 private:
  struct Conn {
    int fd{-1};
    std::mutex write_mu;
    std::jthread reader;
  };

  void run_reader(Conn& conn);
  void write_frame(Conn& conn, const std::vector<std::byte>& payload);

  std::size_t n_;
  std::vector<Handler> handlers_;
  // conn_[i][j] for i<j is the shared pair connection; conn_[j][i] aliases it.
  std::vector<std::vector<std::shared_ptr<Conn>>> conn_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace causalmem

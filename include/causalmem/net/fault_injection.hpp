// Fault-injection transport decorator. The paper assumes "reliable, ordered
// message passing between any two processors"; FaultyTransport deliberately
// breaks that assumption — seeded, per-channel message drop, duplication and
// extra delay, plus one-shot node-crash and channel-partition toggles — so
// the reliable-delivery adapter (reliable_channel.hpp) and the protocols
// above it can be tested against an explicit fault model instead of a
// trusted substrate.
//
// Faults are injected on the SEND side: a dropped message never reaches the
// inner transport, a duplicated or delayed copy re-enters it later from the
// decorator's timer thread. Delay deliberately breaks per-channel FIFO
// (a delayed message is overtaken by later sends on the same channel).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "causalmem/common/rng.hpp"
#include "causalmem/net/transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

/// Per-message fault probabilities and delay distribution. All randomness is
/// drawn from per-channel SplitMix64 streams derived from `seed`, so a given
/// send sequence on a channel sees a reproducible fault sequence.
struct FaultModel {
  double drop_rate{0.0};   ///< P(message silently dropped)
  double dup_rate{0.0};    ///< P(an extra delayed copy is injected)
  double delay_rate{0.0};  ///< P(message held back by delay_base + jitter)

  /// Extra delay for delayed messages and duplicated copies:
  /// base + uniform[0, jitter].
  std::chrono::microseconds delay_base{500};
  std::chrono::microseconds delay_jitter{500};

  std::uint64_t seed{0xFA17FA17FA17FA17ULL};

  /// True when any probabilistic fault is enabled (crash/partition toggles
  /// are runtime calls and do not depend on this).
  [[nodiscard]] bool any() const noexcept {
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0;
  }
};

/// Wraps any Transport and injects the FaultModel on every send. Crash and
/// partition toggles are independent of the probabilistic model, so a test
/// can run fault-free and then kill one node or cut one channel.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, FaultModel model);
  ~FaultyTransport() override;

  void register_node(NodeId id, Handler handler) override;
  void start() override;
  void send(Message m) override;
  void shutdown() override;
  [[nodiscard]] std::size_t node_count() const override {
    return inner_->node_count();
  }
  void attach_stats(StatsRegistry* stats) noexcept override;

  /// Crash: from now on every message from or to `id` is dropped, until a
  /// matching restart_node(id). Messages already inside the inner transport
  /// (or the delay queue) may still be delivered — exactly like a real
  /// crash, which cannot recall packets in flight.
  void crash_node(NodeId id);

  /// Lifts a crash_node(id): messages from/to `id` flow again. The node's
  /// protocol state is NOT touched here — a restarted DSM node must rejoin
  /// explicitly (resync its clock and drop stale channel state); see
  /// DsmSystem::restart_node for the full sequence.
  void restart_node(NodeId id);

  [[nodiscard]] bool is_crashed(NodeId id) const {
    return crashed_[id].load(std::memory_order_acquire);
  }

  [[nodiscard]] bool endpoint_up(NodeId id) const override {
    return !is_crashed(id);
  }

  [[nodiscard]] std::uint64_t endpoint_epoch(NodeId id) const override {
    return epochs_[id].load(std::memory_order_acquire);
  }

  /// Toggles a directed channel partition. Blocked channels drop every
  /// message; healing re-opens the channel for messages sent afterwards.
  void set_partition(NodeId from, NodeId to, bool blocked);

  [[nodiscard]] Transport& inner() noexcept { return *inner_; }

  // Injected-fault totals (also bumped per sending node when a
  // StatsRegistry is attached).
  [[nodiscard]] std::uint64_t drops_injected() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dups_injected() const noexcept {
    return dups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t delays_injected() const noexcept {
    return delays_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Channel {
    std::mutex mu;
    Rng rng{0};
    bool blocked{false};
  };

  struct Delayed {
    Clock::time_point send_at;
    std::uint64_t seq;  ///< tie-break keeps equal deadlines deterministic
    Message msg;
  };

  struct DelayedLater {
    bool operator()(const Delayed& a, const Delayed& b) const noexcept {
      if (a.send_at != b.send_at) return a.send_at > b.send_at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] Channel& channel(NodeId from, NodeId to) {
    return *channels_[from * inner_->node_count() + to];
  }
  void bump_node(NodeId node, Counter c) noexcept;
  void enqueue_delayed(Message m, std::chrono::microseconds delay);
  void run_timer();

  std::unique_ptr<Transport> inner_;
  FaultModel model_;
  std::vector<std::unique_ptr<Channel>> channels_;  // n*n, index from*n+to
  std::vector<std::atomic<bool>> crashed_;
  std::vector<std::atomic<std::uint64_t>> epochs_;  // crash/restart count

  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, DelayedLater> delay_queue_;
  std::uint64_t delay_seq_{0};
  bool timer_stop_{false};
  std::jthread timer_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace causalmem
